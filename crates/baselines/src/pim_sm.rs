//! PIM-SM — Protocol Independent Multicast, Sparse Mode (paper ref \[6\]).
//!
//! The second shared-tree protocol the paper's introduction discusses
//! next to CBT. Differences from CBT that matter for the §IV metrics:
//!
//! * The (*, G) shared tree rooted at the *rendezvous point* (RP) is
//!   **unidirectional**: data flows only RP → members. Even an on-tree
//!   source must push its packets to the RP first.
//! * Sources send via **Register** encapsulation: the source's DR
//!   tunnels data to the RP, which decapsulates and forwards down the
//!   tree. (The real protocol then lets the RP join a source-specific
//!   SPT and send Register-Stop; we model the long-lived register path,
//!   which is the shape the paper's shared-tree arguments rely on —
//!   SPT switchover is out of scope, like CBT's core election.)
//! * Joins are hop-by-hop JOIN(*, G) toward the RP, instantiating
//!   forwarding state on the way — no ack pass (PIM is soft-state; we
//!   omit the periodic refresh, as the paper omits CBT's keepalives).
//!
//! Consequence visible in experiments: PIM-SM's member-sourced traffic
//! costs *more* than CBT's (source → RP → whole tree, instead of
//! spreading bidirectionally from the source), while its join machinery
//! is the cheapest of all (single pass, no acks).

use crate::common::LocalMembers;
use scmp_net::NodeId;
use scmp_sim::{AppEvent, Ctx, GroupId, Packet, Router};
use std::collections::{BTreeMap, BTreeSet};

/// PIM-SM wire messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PimMsg {
    /// Hop-by-hop JOIN(*, G) toward the RP; state instantiates as it
    /// travels (no ack).
    Join,
    /// Hop-by-hop PRUNE(*, G) from a leaf losing its last interest.
    Prune,
    /// Payload travelling down the shared tree (RP → members only).
    Data,
    /// Register: payload tunnelled from the source's DR to the RP.
    Register,
}

/// Domain configuration.
#[derive(Clone, Copy, Debug)]
pub struct PimConfig {
    /// The rendezvous point.
    pub rp: NodeId,
}

/// Per-group downstream state (upstream is implicit: next hop to RP).
#[derive(Clone, Debug, Default)]
struct Entry {
    children: BTreeSet<NodeId>,
    local: bool,
}

/// The PIM-SM router state machine.
pub struct PimSmRouter {
    me: NodeId,
    config: PimConfig,
    members: LocalMembers,
    entries: BTreeMap<GroupId, Entry>,
}

impl PimSmRouter {
    /// State machine for node `me`.
    pub fn new(me: NodeId, config: PimConfig) -> Self {
        PimSmRouter {
            me,
            config,
            members: LocalMembers::new(),
            entries: BTreeMap::new(),
        }
    }

    fn is_rp(&self) -> bool {
        self.me == self.config.rp
    }

    /// Test accessor: is this router on the (*, G) tree?
    pub fn on_tree(&self, group: GroupId) -> bool {
        self.is_rp() || self.entries.contains_key(&group)
    }

    /// Test accessor: downstream children for `group`.
    pub fn children(&self, group: GroupId) -> Vec<NodeId> {
        self.entries
            .get(&group)
            .map(|e| e.children.iter().copied().collect())
            .unwrap_or_default()
    }

    fn upstream(&self, ctx: &Ctx<'_, PimMsg>) -> Option<NodeId> {
        ctx.routes().next_hop(self.me, self.config.rp)
    }

    /// JOIN(*, G) processing: add the downstream, and keep propagating
    /// toward the RP until an already-joined router (or the RP) absorbs
    /// it.
    fn handle_join(&mut self, from: Option<NodeId>, group: GroupId, ctx: &mut Ctx<'_, PimMsg>) {
        let had_state = self.is_rp() || self.entries.contains_key(&group);
        let e = self.entries.entry(group).or_default();
        match from {
            Some(child) => {
                e.children.insert(child);
            }
            None => e.local = true,
        }
        if !had_state {
            if let Some(up) = self.upstream(ctx) {
                ctx.send(up, Packet::control(group, PimMsg::Join));
            }
        }
    }

    fn prune_if_idle(&mut self, group: GroupId, ctx: &mut Ctx<'_, PimMsg>) {
        if self.is_rp() {
            return;
        }
        if let Some(e) = self.entries.get(&group) {
            if e.children.is_empty() && !e.local {
                if let Some(up) = self.upstream(ctx) {
                    ctx.send(up, Packet::control(group, PimMsg::Prune));
                }
                self.entries.remove(&group);
            }
        }
    }

    fn handle_prune(&mut self, from: NodeId, group: GroupId, ctx: &mut Ctx<'_, PimMsg>) {
        if let Some(e) = self.entries.get_mut(&group) {
            e.children.remove(&from);
        }
        self.prune_if_idle(group, ctx);
    }

    /// Data arriving on the shared tree: strictly downstream forwarding
    /// (unidirectional tree — packets from a child are misrouted).
    fn handle_data(&mut self, from: NodeId, pkt: Packet<PimMsg>, ctx: &mut Ctx<'_, PimMsg>) {
        let expected_parent = self.upstream(ctx);
        if Some(from) != expected_parent {
            ctx.drop_packet();
            return;
        }
        let Some(e) = self.entries.get(&pkt.group) else {
            ctx.drop_packet();
            return;
        };
        if e.local {
            ctx.deliver_local(&pkt);
        }
        for to in e.children.clone() {
            ctx.send(to, pkt.clone());
        }
    }

    /// Register reaching the RP: decapsulate and push down the tree.
    fn handle_register(&mut self, pkt: Packet<PimMsg>, ctx: &mut Ctx<'_, PimMsg>) {
        if !self.is_rp() {
            ctx.drop_packet();
            return;
        }
        let data = Packet {
            body: PimMsg::Data,
            ..pkt
        };
        if let Some(e) = self.entries.get(&data.group) {
            if e.local {
                ctx.deliver_local(&data);
            }
            for to in e.children.clone() {
                ctx.send(to, data.clone());
            }
        }
    }
}

impl Router for PimSmRouter {
    type Msg = PimMsg;

    fn on_packet(&mut self, from: NodeId, pkt: Packet<PimMsg>, ctx: &mut Ctx<'_, PimMsg>) {
        match pkt.body {
            PimMsg::Join => self.handle_join(Some(from), pkt.group, ctx),
            PimMsg::Prune => self.handle_prune(from, pkt.group, ctx),
            PimMsg::Data => self.handle_data(from, pkt, ctx),
            PimMsg::Register => self.handle_register(pkt, ctx),
        }
    }

    fn on_app(&mut self, ev: AppEvent, ctx: &mut Ctx<'_, PimMsg>) {
        match ev {
            AppEvent::Join(g) => {
                if self.members.join(g) {
                    self.handle_join(None, g, ctx);
                }
            }
            AppEvent::Leave(g) => {
                if self.members.leave(g) {
                    if let Some(e) = self.entries.get_mut(&g) {
                        e.local = false;
                    }
                    self.prune_if_idle(g, ctx);
                }
            }
            AppEvent::Send { group, tag } => {
                // Everything registers to the RP — even on-tree sources
                // (the unidirectional-tree cost the paper's bidirectional
                // design avoids). The RP's own subnet sends directly.
                if self.is_rp() {
                    let pkt = Packet::data(group, tag, ctx.now(), PimMsg::Data);
                    if let Some(e) = self.entries.get(&group) {
                        if e.local {
                            ctx.deliver_local(&pkt);
                        }
                        for to in e.children.clone() {
                            ctx.send(to, pkt.clone());
                        }
                    }
                } else {
                    let rp = self.config.rp;
                    ctx.unicast(rp, Packet::data(group, tag, ctx.now(), PimMsg::Register));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scmp_net::topology::examples::fig5;
    use scmp_sim::Engine;

    const G: GroupId = GroupId(1);

    fn engine(rp: NodeId) -> Engine<PimSmRouter> {
        Engine::new(fig5(), move |me, _, _| {
            PimSmRouter::new(me, PimConfig { rp })
        })
    }

    #[test]
    fn join_builds_unidirectional_tree() {
        let mut e = engine(NodeId(0));
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.run_to_quiescence();
        // Path 4-1-0: single join pass, no acks.
        assert!(e.router(NodeId(1)).on_tree(G));
        assert_eq!(e.router(NodeId(1)).children(G), vec![NodeId(4)]);
        assert_eq!(e.router(NodeId(0)).children(G), vec![NodeId(1)]);
        // Exactly 2 control hops (4->1, 1->0) — cheaper than CBT's
        // request+ack double pass.
        assert_eq!(e.stats().control_hops, 2);
    }

    #[test]
    fn data_reaches_members_via_rp_only() {
        let mut e = engine(NodeId(0));
        for (t, m) in [(0, 4u32), (1_000, 3), (2_000, 5)] {
            e.schedule_app(t, NodeId(m), AppEvent::Join(G));
        }
        // Member 4 sends: unlike CBT, the payload MUST detour via the RP.
        e.schedule_app(50_000, NodeId(4), AppEvent::Send { group: G, tag: 1 });
        e.run_to_quiescence();
        for m in [3u32, 4, 5] {
            assert_eq!(e.stats().delivery_count(G, 1, NodeId(m)), 1, "member {m}");
        }
        assert!(!e.stats().has_duplicate_deliveries());
    }

    #[test]
    fn member_source_costs_more_than_cbt() {
        use crate::cbt::{CbtConfig, CbtRouter};
        let drive = |pim: bool| {
            let stats = if pim {
                let mut e = engine(NodeId(0));
                for (t, m) in [(0, 4u32), (1_000, 3), (2_000, 5)] {
                    e.schedule_app(t, NodeId(m), AppEvent::Join(G));
                }
                e.schedule_app(50_000, NodeId(4), AppEvent::Send { group: G, tag: 1 });
                e.run_to_quiescence();
                e.stats().clone()
            } else {
                let mut e = Engine::new(fig5(), |me, _, _| {
                    CbtRouter::new(me, CbtConfig { core: NodeId(0) })
                });
                for (t, m) in [(0, 4u32), (1_000, 3), (2_000, 5)] {
                    e.schedule_app(t, NodeId(m), AppEvent::Join(G));
                }
                e.schedule_app(50_000, NodeId(4), AppEvent::Send { group: G, tag: 1 });
                e.run_to_quiescence();
                e.stats().clone()
            };
            stats.data_overhead
        };
        let pim_cost = drive(true);
        let cbt_cost = drive(false);
        assert!(
            pim_cost > cbt_cost,
            "unidirectional RP tree must cost more for member sources: \
             pim {pim_cost} vs cbt {cbt_cost}"
        );
    }

    #[test]
    fn leave_prunes_single_pass() {
        let mut e = engine(NodeId(0));
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.schedule_app(1_000, NodeId(3), AppEvent::Join(G));
        e.schedule_app(50_000, NodeId(4), AppEvent::Leave(G));
        e.run_to_quiescence();
        assert!(!e.router(NodeId(4)).on_tree(G));
        assert!(!e.router(NodeId(1)).on_tree(G), "idle forwarder pruned");
        assert!(e.router(NodeId(3)).on_tree(G));
    }

    #[test]
    fn rp_subnet_participation() {
        let mut e = engine(NodeId(0));
        e.schedule_app(0, NodeId(0), AppEvent::Join(G));
        e.schedule_app(1_000, NodeId(4), AppEvent::Join(G));
        e.schedule_app(50_000, NodeId(0), AppEvent::Send { group: G, tag: 2 });
        e.run_to_quiescence();
        assert_eq!(e.stats().delivery_count(G, 2, NodeId(0)), 1);
        assert_eq!(e.stats().delivery_count(G, 2, NodeId(4)), 1);
    }

    #[test]
    fn off_tree_register_delivery() {
        let mut e = engine(NodeId(0));
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.schedule_app(50_000, NodeId(5), AppEvent::Send { group: G, tag: 3 });
        e.run_to_quiescence();
        assert_eq!(e.stats().delivery_count(G, 3, NodeId(4)), 1);
        assert_eq!(e.stats().delivery_count(G, 3, NodeId(5)), 0);
    }
}
