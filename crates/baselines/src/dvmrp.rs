//! DVMRP — dense-mode reverse-path flood-and-prune (paper ref \[2\]).
//!
//! Data from a source is flooded over the whole domain by reverse-path
//! forwarding: a router accepts a packet only when it arrives from the
//! neighbour on its own shortest path back to the source, then copies it
//! to every other neighbour. Routers with no members and no interested
//! children send PRUNE(source, group) upstream; prune state expires
//! after [`DvmrpConfig::prune_timeout`], causing the periodic
//! re-flooding that dominates DVMRP's data overhead in Fig. 8. A host
//! joining under a pruned branch triggers a GRAFT chain upstream.
//!
//! Prune state is refreshed *by data*: every packet reaching a
//! disinterested leaf regenerates its prune, so protocol overhead falls
//! as group size grows (fewer disinterested routers) — the §IV-B
//! observation that DVMRP "shows a decrease when the group size
//! increases".

use crate::common::LocalMembers;
use scmp_net::NodeId;
use scmp_sim::{AppEvent, Ctx, GroupId, Packet, Router};
use std::collections::{BTreeMap, BTreeSet};

/// DVMRP wire messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DvmrpMsg {
    /// Flooded payload; RPF keyed on `source`.
    Data { source: NodeId },
    /// Prune (source, group) sent to the RPF upstream.
    Prune { source: NodeId },
    /// Graft (source, group) cancelling a previous prune.
    Graft { source: NodeId },
}

/// DVMRP parameters.
#[derive(Clone, Copy, Debug)]
pub struct DvmrpConfig {
    /// Prune lifetime in ticks (standard DVMRP uses ~2 h; simulations
    /// scale it to a few data periods so expiry-refloods appear within
    /// the 30 s run, as they do in the paper's curves).
    pub prune_timeout: u64,
}

impl Default for DvmrpConfig {
    fn default() -> Self {
        DvmrpConfig {
            prune_timeout: 10_000,
        }
    }
}

/// The DVMRP router state machine.
pub struct DvmrpRouter {
    me: NodeId,
    config: DvmrpConfig,
    members: LocalMembers,
    /// (group, source) -> child -> prune expiry time.
    pruned: BTreeMap<(GroupId, NodeId), BTreeMap<NodeId, u64>>,
    /// (group, source) pairs this router has itself pruned upstream.
    sent_prune: BTreeSet<(GroupId, NodeId)>,
    /// Sources seen per group (to know where to send GRAFTs on join).
    sources_seen: BTreeMap<GroupId, BTreeSet<NodeId>>,
}

impl DvmrpRouter {
    /// State machine for node `me`.
    pub fn new(me: NodeId, config: DvmrpConfig) -> Self {
        DvmrpRouter {
            me,
            config,
            members: LocalMembers::new(),
            pruned: BTreeMap::new(),
            sent_prune: BTreeSet::new(),
            sources_seen: BTreeMap::new(),
        }
    }

    /// Is `child` currently pruned for `(group, source)` at time `now`?
    fn child_pruned(&self, group: GroupId, source: NodeId, child: NodeId, now: u64) -> bool {
        self.pruned
            .get(&(group, source))
            .and_then(|m| m.get(&child))
            .is_some_and(|&expiry| expiry > now)
    }

    /// Test accessor: does this router hold live prune state from `child`?
    pub fn has_prune_from(&self, group: GroupId, source: NodeId, child: NodeId, now: u64) -> bool {
        self.child_pruned(group, source, child, now)
    }

    fn rpf_upstream(&self, source: NodeId, ctx: &Ctx<'_, DvmrpMsg>) -> Option<NodeId> {
        ctx.routes().next_hop(self.me, source)
    }

    /// Forward a flooded packet: copy to every neighbour except the
    /// arrival one and currently-pruned children; prune upstream if this
    /// router turns out disinterested.
    fn flood(
        &mut self,
        arrived_from: Option<NodeId>,
        pkt: &Packet<DvmrpMsg>,
        source: NodeId,
        ctx: &mut Ctx<'_, DvmrpMsg>,
    ) {
        let now = ctx.now();
        self.sources_seen
            .entry(pkt.group)
            .or_default()
            .insert(source);
        if self.members.has(pkt.group) {
            ctx.deliver_local(pkt);
        }
        let upstream = self.rpf_upstream(source, ctx);
        let neighbors: Vec<NodeId> = ctx.topo().neighbors(self.me).iter().map(|e| e.to).collect();
        let mut forwarded_any = false;
        for n in neighbors {
            if Some(n) == arrived_from || Some(n) == upstream {
                continue;
            }
            if self.child_pruned(pkt.group, source, n, now) {
                continue;
            }
            ctx.send(n, pkt.clone());
            forwarded_any = true;
        }
        // Disinterested leaf: no members, nothing forwarded => prune.
        if !forwarded_any && !self.members.has(pkt.group) {
            if let Some(up) = upstream {
                ctx.send(up, Packet::control(pkt.group, DvmrpMsg::Prune { source }));
                self.sent_prune.insert((pkt.group, source));
            }
        }
    }

    fn handle_data(&mut self, from: NodeId, pkt: Packet<DvmrpMsg>, ctx: &mut Ctx<'_, DvmrpMsg>) {
        let DvmrpMsg::Data { source } = pkt.body else {
            unreachable!()
        };
        // RPF check: accept only from the shortest-path neighbour back to
        // the source; everything else is a flood duplicate. On
        // point-to-point links DVMRP answers a wrong-interface packet
        // with a prune on that link, so the flood converges to the RPF
        // tree until the prune expires.
        if self.rpf_upstream(source, ctx) != Some(from) {
            ctx.drop_packet();
            ctx.send(from, Packet::control(pkt.group, DvmrpMsg::Prune { source }));
            return;
        }
        self.flood(Some(from), &pkt, source, ctx);
    }

    fn handle_prune(
        &mut self,
        from: NodeId,
        group: GroupId,
        source: NodeId,
        ctx: &mut Ctx<'_, DvmrpMsg>,
    ) {
        let expiry = ctx.now() + self.config.prune_timeout;
        self.pruned
            .entry((group, source))
            .or_default()
            .insert(from, expiry);
    }

    fn handle_graft(
        &mut self,
        from: NodeId,
        group: GroupId,
        source: NodeId,
        ctx: &mut Ctx<'_, DvmrpMsg>,
    ) {
        if let Some(m) = self.pruned.get_mut(&(group, source)) {
            m.remove(&from);
        }
        // If we had pruned ourselves, we are interested again: graft on.
        if self.sent_prune.remove(&(group, source)) {
            if let Some(up) = self.rpf_upstream(source, ctx) {
                ctx.send(up, Packet::control(group, DvmrpMsg::Graft { source }));
            }
        }
    }

    fn handle_join(&mut self, group: GroupId, ctx: &mut Ctx<'_, DvmrpMsg>) {
        if !self.members.join(group) {
            return;
        }
        // Late join under pruned branches: graft toward every known
        // source we pruned.
        let sources: Vec<NodeId> = self
            .sent_prune
            .iter()
            .filter(|(g, _)| *g == group)
            .map(|&(_, s)| s)
            .collect();
        for source in sources {
            self.sent_prune.remove(&(group, source));
            if let Some(up) = self.rpf_upstream(source, ctx) {
                ctx.send(up, Packet::control(group, DvmrpMsg::Graft { source }));
            }
        }
    }

    fn handle_send(&mut self, group: GroupId, tag: u64, ctx: &mut Ctx<'_, DvmrpMsg>) {
        let source = self.me;
        let pkt = Packet::data(group, tag, ctx.now(), DvmrpMsg::Data { source });
        self.flood(None, &pkt, source, ctx);
    }
}

impl Router for DvmrpRouter {
    type Msg = DvmrpMsg;

    fn on_packet(&mut self, from: NodeId, pkt: Packet<DvmrpMsg>, ctx: &mut Ctx<'_, DvmrpMsg>) {
        match pkt.body {
            DvmrpMsg::Data { .. } => self.handle_data(from, pkt, ctx),
            DvmrpMsg::Prune { source } => self.handle_prune(from, pkt.group, source, ctx),
            DvmrpMsg::Graft { source } => self.handle_graft(from, pkt.group, source, ctx),
        }
    }

    fn on_app(&mut self, ev: AppEvent, ctx: &mut Ctx<'_, DvmrpMsg>) {
        match ev {
            AppEvent::Join(g) => self.handle_join(g, ctx),
            AppEvent::Leave(g) => {
                self.members.leave(g);
                // Disinterest is signalled lazily: the next flooded
                // packet triggers the prune (data-driven prune state).
            }
            AppEvent::Send { group, tag } => self.handle_send(group, tag, ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scmp_net::topology::examples::fig5;
    use scmp_sim::Engine;

    const G: GroupId = GroupId(1);

    fn engine(timeout: u64) -> Engine<DvmrpRouter> {
        Engine::new(fig5(), move |me, _, _| {
            DvmrpRouter::new(
                me,
                DvmrpConfig {
                    prune_timeout: timeout,
                },
            )
        })
    }

    #[test]
    fn first_packet_floods_and_reaches_members() {
        let mut e = engine(10_000);
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.schedule_app(0, NodeId(5), AppEvent::Join(G));
        e.schedule_app(1_000, NodeId(0), AppEvent::Send { group: G, tag: 1 });
        e.run_to_quiescence();
        assert_eq!(e.stats().delivery_count(G, 1, NodeId(4)), 1);
        assert_eq!(e.stats().delivery_count(G, 1, NodeId(5)), 1);
        assert!(!e.stats().has_duplicate_deliveries());
        // Flooding pushed data over far more links than a tree would.
        assert!(e.stats().data_hops >= 7, "hops {}", e.stats().data_hops);
        // Disinterested leaves pruned.
        assert!(e.stats().protocol_overhead > 0);
    }

    #[test]
    fn prunes_suppress_second_flood() {
        let mut e = engine(1_000_000);
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.schedule_app(1_000, NodeId(0), AppEvent::Send { group: G, tag: 1 });
        e.run_until(500_000);
        let hops_after_first = e.stats().data_hops;
        e.schedule_app(600_000, NodeId(0), AppEvent::Send { group: G, tag: 2 });
        e.run_to_quiescence();
        let second_flood = e.stats().data_hops - hops_after_first;
        assert!(
            second_flood < hops_after_first,
            "second send used {second_flood} hops vs first {hops_after_first}"
        );
        assert_eq!(e.stats().delivery_count(G, 2, NodeId(4)), 1);
    }

    #[test]
    fn prune_expiry_causes_reflood() {
        let mut e = engine(2_000);
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.schedule_app(1_000, NodeId(0), AppEvent::Send { group: G, tag: 1 });
        e.run_until(100_000);
        let first = e.stats().data_hops;
        // Well past expiry: flood resumes at full breadth.
        e.schedule_app(200_000, NodeId(0), AppEvent::Send { group: G, tag: 2 });
        e.run_to_quiescence();
        let second = e.stats().data_hops - first;
        assert!(second >= first, "reflood {second} < first {first}");
    }

    #[test]
    fn graft_unpunes_late_joiner() {
        let mut e = engine(1_000_000);
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.schedule_app(1_000, NodeId(0), AppEvent::Send { group: G, tag: 1 });
        e.run_until(500_000);
        // Node 5 (pruned region) joins; graft must reopen its branch.
        e.schedule_app(500_000, NodeId(5), AppEvent::Join(G));
        e.schedule_app(600_000, NodeId(0), AppEvent::Send { group: G, tag: 2 });
        e.run_to_quiescence();
        assert_eq!(
            e.stats().delivery_count(G, 2, NodeId(5)),
            1,
            "grafted member"
        );
        assert_eq!(e.stats().delivery_count(G, 2, NodeId(4)), 1);
    }

    #[test]
    fn rpf_drops_non_shortest_path_copies() {
        let mut e = engine(1_000_000);
        for v in 0..6u32 {
            e.schedule_app(0, NodeId(v), AppEvent::Join(G));
        }
        e.schedule_app(1_000, NodeId(3), AppEvent::Send { group: G, tag: 1 });
        e.run_to_quiescence();
        // Everyone got exactly one copy despite cycles in fig5.
        for v in 0..6u32 {
            assert_eq!(e.stats().delivery_count(G, 1, NodeId(v)), 1, "node {v}");
        }
        assert!(!e.stats().has_duplicate_deliveries());
        // And drops occurred (the duplicate flood copies).
        assert!(e.stats().drops > 0);
    }

    #[test]
    fn dense_groups_prune_less() {
        // Protocol overhead with all members < with one member.
        let mut sparse = engine(10_000);
        sparse.schedule_app(0, NodeId(4), AppEvent::Join(G));
        sparse.schedule_app(1_000, NodeId(0), AppEvent::Send { group: G, tag: 1 });
        sparse.run_to_quiescence();

        let mut dense = engine(10_000);
        for v in 1..6u32 {
            dense.schedule_app(0, NodeId(v), AppEvent::Join(G));
        }
        dense.schedule_app(1_000, NodeId(0), AppEvent::Send { group: G, tag: 1 });
        dense.run_to_quiescence();

        assert!(
            dense.stats().protocol_overhead < sparse.stats().protocol_overhead,
            "dense {} >= sparse {}",
            dense.stats().protocol_overhead,
            sparse.stats().protocol_overhead
        );
    }
}
