//! Core-Based Trees (paper ref \[5\]).
//!
//! A single bidirectional shared tree per group, rooted at an elected
//! *core* router. Joining DRs send JOIN-REQUEST hop-by-hop toward the
//! core along unicast routes; the first on-tree router (or the core)
//! answers with a JOIN-ACK that travels back down the same path,
//! instantiating forwarding state — this ack-from-the-graft-node is
//! exactly the protocol-overhead difference §IV-B measures against
//! SCMP's root-to-member BRANCH packet.
//!
//! As in the paper's simulations: the core is given (no election), and
//! ECHO keepalives are off.

use crate::common::LocalMembers;
use scmp_net::NodeId;
use scmp_sim::{AppEvent, Ctx, GroupId, Packet, Router};
use std::collections::{BTreeMap, BTreeSet};

/// CBT wire messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CbtMsg {
    /// Hop-by-hop join toward the core.
    JoinRequest,
    /// Instantiating acknowledgement from the graft point back down.
    JoinAck,
    /// Leaf quit notification to the parent.
    Quit,
    /// Payload on the shared tree.
    Data,
    /// Payload from an off-tree source, tunnelled to the core.
    EncapData,
}

/// Domain configuration for CBT.
#[derive(Clone, Copy, Debug)]
pub struct CbtConfig {
    /// The core router (§IV-A assumes it coincides with the source).
    pub core: NodeId,
}

/// Per-group forwarding state.
#[derive(Clone, Debug, Default)]
struct Entry {
    upstream: Option<NodeId>,
    children: BTreeSet<NodeId>,
    local: bool,
}

impl Entry {
    fn forwarding_set(&self) -> Vec<NodeId> {
        let mut f: Vec<NodeId> = self.children.iter().copied().collect();
        if let Some(u) = self.upstream {
            f.push(u);
        }
        f
    }
}

/// The CBT router state machine.
pub struct CbtRouter {
    me: NodeId,
    config: CbtConfig,
    members: LocalMembers,
    entries: BTreeMap<GroupId, Entry>,
    /// Transient join state: children awaiting a JOIN-ACK, plus whether
    /// our own subnet is waiting.
    pending: BTreeMap<GroupId, (BTreeSet<NodeId>, bool)>,
}

impl CbtRouter {
    /// State machine for node `me`.
    pub fn new(me: NodeId, config: CbtConfig) -> Self {
        CbtRouter {
            me,
            config,
            members: LocalMembers::new(),
            entries: BTreeMap::new(),
            pending: BTreeMap::new(),
        }
    }

    /// Forwarding entry for `group` (None = off-tree).
    pub fn on_tree(&self, group: GroupId) -> bool {
        self.is_core() || self.entries.contains_key(&group)
    }

    fn is_core(&self) -> bool {
        self.me == self.config.core
    }

    /// Entry accessor for tests.
    pub fn children(&self, group: GroupId) -> Vec<NodeId> {
        self.entries
            .get(&group)
            .map(|e| e.children.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Upstream accessor for tests.
    pub fn upstream(&self, group: GroupId) -> Option<NodeId> {
        self.entries.get(&group).and_then(|e| e.upstream)
    }

    fn start_join(&mut self, group: GroupId, ctx: &mut Ctx<'_, CbtMsg>) {
        if self.is_core() {
            self.entries.entry(group).or_default().local = true;
            return;
        }
        if let Some(e) = self.entries.get_mut(&group) {
            e.local = true;
            return;
        }
        let pending = self.pending.entry(group).or_default();
        pending.1 = true;
        // Forward a JOIN-REQUEST one hop toward the core (unless one is
        // already outstanding from this router).
        if pending.0.is_empty() && pending.1 {
            let next = ctx
                .routes()
                .next_hop(self.me, self.config.core)
                .expect("core reachable");
            ctx.send(next, Packet::control(group, CbtMsg::JoinRequest));
        }
    }

    fn handle_join_request(&mut self, from: NodeId, group: GroupId, ctx: &mut Ctx<'_, CbtMsg>) {
        if self.is_core() || self.entries.contains_key(&group) {
            // We are the graft point: ack instantiates the branch.
            if self.is_core() {
                self.entries.entry(group).or_default().children.insert(from);
            } else if let Some(e) = self.entries.get_mut(&group) {
                e.children.insert(from);
            }
            ctx.send(from, Packet::control(group, CbtMsg::JoinAck));
            return;
        }
        let pending = self.pending.entry(group).or_default();
        let had_state = !pending.0.is_empty() || pending.1;
        pending.0.insert(from);
        if !had_state {
            let next = ctx
                .routes()
                .next_hop(self.me, self.config.core)
                .expect("core reachable");
            ctx.send(next, Packet::control(group, CbtMsg::JoinRequest));
        }
    }

    fn handle_join_ack(&mut self, from: NodeId, group: GroupId, ctx: &mut Ctx<'_, CbtMsg>) {
        let Some((children, local)) = self.pending.remove(&group) else {
            return; // stale ack
        };
        let e = self.entries.entry(group).or_default();
        e.upstream = Some(from);
        e.local = e.local || local;
        for c in children {
            e.children.insert(c);
            ctx.send(c, Packet::control(group, CbtMsg::JoinAck));
        }
        // A join cancelled by a racing leave prunes itself right away.
        self.quit_if_orphan(group, ctx);
    }

    fn quit_if_orphan(&mut self, group: GroupId, ctx: &mut Ctx<'_, CbtMsg>) {
        if self.is_core() {
            return;
        }
        if let Some(e) = self.entries.get(&group) {
            if e.children.is_empty() && !e.local {
                if let Some(up) = e.upstream {
                    ctx.send(up, Packet::control(group, CbtMsg::Quit));
                }
                self.entries.remove(&group);
            }
        }
    }

    fn handle_quit(&mut self, from: NodeId, group: GroupId, ctx: &mut Ctx<'_, CbtMsg>) {
        if let Some(e) = self.entries.get_mut(&group) {
            e.children.remove(&from);
        }
        self.quit_if_orphan(group, ctx);
    }

    fn handle_leave(&mut self, group: GroupId, ctx: &mut Ctx<'_, CbtMsg>) {
        if !self.members.leave(group) {
            return;
        }
        if let Some(p) = self.pending.get_mut(&group) {
            p.1 = false;
        }
        if let Some(e) = self.entries.get_mut(&group) {
            e.local = false;
        }
        self.quit_if_orphan(group, ctx);
    }

    fn handle_send(&mut self, group: GroupId, tag: u64, ctx: &mut Ctx<'_, CbtMsg>) {
        if let Some(e) = self.entries.get(&group) {
            let pkt = Packet::data(group, tag, ctx.now(), CbtMsg::Data);
            if e.local {
                ctx.deliver_local(&pkt);
            }
            for to in e.forwarding_set() {
                ctx.send(to, pkt.clone());
            }
        } else if self.is_core() {
            // Core with no tree state: empty group.
        } else {
            let core = self.config.core;
            ctx.unicast(core, Packet::data(group, tag, ctx.now(), CbtMsg::EncapData));
        }
    }

    fn forward_data(&mut self, from: NodeId, pkt: Packet<CbtMsg>, ctx: &mut Ctx<'_, CbtMsg>) {
        let Some(e) = self.entries.get(&pkt.group) else {
            ctx.drop_packet();
            return;
        };
        let f = e.forwarding_set();
        if !f.contains(&from) {
            ctx.drop_packet();
            return;
        }
        if e.local {
            ctx.deliver_local(&pkt);
        }
        for to in f {
            if to != from {
                ctx.send(to, pkt.clone());
            }
        }
    }

    fn handle_encap(&mut self, pkt: Packet<CbtMsg>, ctx: &mut Ctx<'_, CbtMsg>) {
        if !self.is_core() {
            // Mid-path router saw a tunnelled packet (only possible if it
            // is the core's neighbour delivering); treat as misrouted.
            ctx.drop_packet();
            return;
        }
        let data = Packet {
            body: CbtMsg::Data,
            ..pkt
        };
        if let Some(e) = self.entries.get(&data.group) {
            if e.local {
                ctx.deliver_local(&data);
            }
            for to in e.children.clone() {
                ctx.send(to, data.clone());
            }
        }
    }
}

impl Router for CbtRouter {
    type Msg = CbtMsg;

    fn on_packet(&mut self, from: NodeId, pkt: Packet<CbtMsg>, ctx: &mut Ctx<'_, CbtMsg>) {
        match pkt.body {
            CbtMsg::JoinRequest => self.handle_join_request(from, pkt.group, ctx),
            CbtMsg::JoinAck => self.handle_join_ack(from, pkt.group, ctx),
            CbtMsg::Quit => self.handle_quit(from, pkt.group, ctx),
            CbtMsg::Data => self.forward_data(from, pkt, ctx),
            CbtMsg::EncapData => self.handle_encap(pkt, ctx),
        }
    }

    fn on_app(&mut self, ev: AppEvent, ctx: &mut Ctx<'_, CbtMsg>) {
        match ev {
            AppEvent::Join(g) => {
                if self.members.join(g) {
                    self.start_join(g, ctx);
                }
            }
            AppEvent::Leave(g) => self.handle_leave(g, ctx),
            AppEvent::Send { group, tag } => self.handle_send(group, tag, ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scmp_net::topology::examples::fig5;
    use scmp_sim::Engine;

    const G: GroupId = GroupId(1);

    fn engine(core: NodeId) -> Engine<CbtRouter> {
        Engine::new(fig5(), move |me, _, _| {
            CbtRouter::new(me, CbtConfig { core })
        })
    }

    #[test]
    fn join_builds_branch_to_core() {
        let mut e = engine(NodeId(0));
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.run_to_quiescence();
        // Shortest-delay path 4-1-0: node 1 becomes a forwarder.
        assert!(e.router(NodeId(1)).on_tree(G));
        assert_eq!(e.router(NodeId(1)).upstream(G), Some(NodeId(0)));
        assert_eq!(e.router(NodeId(1)).children(G), vec![NodeId(4)]);
        assert_eq!(e.router(NodeId(0)).children(G), vec![NodeId(1)]);
    }

    #[test]
    fn second_join_grafts_at_first_on_tree_router() {
        let mut e = engine(NodeId(0));
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        // Node 5 joins later; its path to core is 5-2-0.
        e.schedule_app(1_000, NodeId(5), AppEvent::Join(G));
        e.run_to_quiescence();
        assert!(e.router(NodeId(2)).on_tree(G));
        assert_eq!(e.router(NodeId(2)).children(G), vec![NodeId(5)]);
        // Protocol overhead exists (join requests + acks).
        assert!(e.stats().protocol_overhead > 0);
    }

    #[test]
    fn data_reaches_all_members_once() {
        let mut e = engine(NodeId(0));
        for (t, n) in [(0, 4u32), (1_000, 3), (2_000, 5)] {
            e.schedule_app(t, NodeId(n), AppEvent::Join(G));
        }
        e.schedule_app(10_000, NodeId(4), AppEvent::Send { group: G, tag: 1 });
        e.run_to_quiescence();
        for m in [3u32, 4, 5] {
            assert_eq!(e.stats().delivery_count(G, 1, NodeId(m)), 1, "member {m}");
        }
        assert!(!e.stats().has_duplicate_deliveries());
    }

    #[test]
    fn off_tree_source_tunnels_to_core() {
        let mut e = engine(NodeId(0));
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.schedule_app(5_000, NodeId(5), AppEvent::Send { group: G, tag: 2 });
        e.run_to_quiescence();
        assert_eq!(e.stats().delivery_count(G, 2, NodeId(4)), 1);
    }

    #[test]
    fn quit_prunes_branch() {
        let mut e = engine(NodeId(0));
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.schedule_app(1_000, NodeId(5), AppEvent::Join(G));
        e.schedule_app(5_000, NodeId(4), AppEvent::Leave(G));
        e.run_to_quiescence();
        assert!(!e.router(NodeId(4)).on_tree(G));
        assert!(!e.router(NodeId(1)).on_tree(G), "forwarder pruned");
        assert!(e.router(NodeId(2)).on_tree(G), "other branch intact");
        assert_eq!(e.router(NodeId(0)).children(G), vec![NodeId(2)]);
    }

    #[test]
    fn concurrent_joins_share_transient_state() {
        // Nodes 3 and 5 both route through 2; only one JOIN-REQUEST
        // should leave node 2 toward the core.
        let mut e = engine(NodeId(0));
        e.schedule_app(0, NodeId(3), AppEvent::Join(G));
        e.schedule_app(0, NodeId(5), AppEvent::Join(G));
        e.run_to_quiescence();
        let kids = e.router(NodeId(2)).children(G);
        // 3 joins via direct link 3-0? Its shortest-delay path is 3-0
        // (delay 2). 5 joins via 5-2-0. So 2's children = {5} only.
        assert!(kids.contains(&NodeId(5)));
        assert!(e.router(NodeId(3)).on_tree(G));
        assert!(!e.stats().has_duplicate_deliveries());
    }

    #[test]
    fn core_local_membership() {
        let mut e = engine(NodeId(0));
        e.schedule_app(0, NodeId(0), AppEvent::Join(G));
        e.schedule_app(1_000, NodeId(4), AppEvent::Join(G));
        e.schedule_app(5_000, NodeId(4), AppEvent::Send { group: G, tag: 3 });
        e.run_to_quiescence();
        assert_eq!(e.stats().delivery_count(G, 3, NodeId(0)), 1);
    }

    #[test]
    fn churn_leaves_clean_state() {
        let mut e = engine(NodeId(0));
        let mut t = 0;
        for _ in 0..3 {
            for n in [3u32, 4, 5] {
                e.schedule_app(t, NodeId(n), AppEvent::Join(G));
                t += 200;
            }
            for n in [3u32, 4, 5] {
                e.schedule_app(t, NodeId(n), AppEvent::Leave(G));
                t += 200;
            }
        }
        e.run_to_quiescence();
        for v in 1..6u32 {
            assert!(!e.router(NodeId(v)).on_tree(G), "node {v} stale");
        }
        assert!(e.router(NodeId(0)).children(G).is_empty());
    }
}
