//! # scmp-baselines — the paper's comparison protocols
//!
//! §IV-B implements SCMP "along with three existing protocols" on the
//! simulator. This crate provides those three, each as a
//! [`scmp_sim::Router`] state machine:
//!
//! * [`cbt`] — Core-Based Trees: hop-by-hop JOIN-REQUEST toward the
//!   core, JOIN-ACK instantiating the bidirectional shared tree, QUIT
//!   pruning, and unicast encapsulation for off-tree sources. As in the
//!   paper, core selection is out of scope ("we did not simulate the
//!   core selection process") and keepalive ECHO traffic is disabled.
//! * [`dvmrp`] — Distance-Vector Multicast (dense mode): reverse-path
//!   flooding of data, data-driven PRUNEs with a lifetime, GRAFTs on
//!   late joins. Prune expiry causes the periodic re-flooding the paper
//!   calls out as DVMRP's data-overhead problem.
//! * [`mospf`] — Multicast OSPF: group-membership LSAs flooded
//!   domain-wide on every membership change; data forwarded along
//!   per-source shortest-path trees computed identically at every router
//!   from the shared link-state/membership database.
//! * [`pim_sm`] — PIM Sparse Mode: the other shared-tree protocol the
//!   paper's introduction discusses; unidirectional RP tree with
//!   Register-tunnelled sources (not in the paper's figures — provided
//!   as an additional comparator, see the `extra_pimsm` experiment).
//!
//! All three share [`common::LocalMembers`] for subnet-membership edge
//! detection, mirroring what IGMP gives the DRs.

pub mod cbt;
pub mod common;
pub mod dvmrp;
pub mod mospf;
pub mod pim_sm;

pub use cbt::{CbtConfig, CbtMsg, CbtRouter};
pub use dvmrp::{DvmrpConfig, DvmrpMsg, DvmrpRouter};
pub use mospf::{MospfMsg, MospfRouter};
pub use pim_sm::{PimConfig, PimMsg, PimSmRouter};
