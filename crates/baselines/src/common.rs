//! Shared helpers for the baseline protocols.

use scmp_sim::GroupId;
use std::collections::BTreeMap;

/// Subnet membership edge detector: the baselines need the same
/// first-host-joined / last-host-left triggers IGMP gives SCMP's DRs,
/// without the full query/report machinery.
#[derive(Clone, Debug, Default)]
pub struct LocalMembers {
    counts: BTreeMap<GroupId, u32>,
}

impl LocalMembers {
    /// Empty tracker.
    pub fn new() -> Self {
        LocalMembers::default()
    }

    /// A host joined; returns `true` when it is the subnet's first
    /// member of the group.
    pub fn join(&mut self, g: GroupId) -> bool {
        let c = self.counts.entry(g).or_insert(0);
        *c += 1;
        *c == 1
    }

    /// A host left; returns `true` when it was the subnet's last member.
    pub fn leave(&mut self, g: GroupId) -> bool {
        match self.counts.get_mut(&g) {
            Some(c) if *c > 0 => {
                *c -= 1;
                if *c == 0 {
                    self.counts.remove(&g);
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    /// Does the subnet currently have members of `g`?
    pub fn has(&self, g: GroupId) -> bool {
        self.counts.get(&g).copied().unwrap_or(0) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: GroupId = GroupId(4);

    #[test]
    fn edges() {
        let mut m = LocalMembers::new();
        assert!(m.join(G));
        assert!(!m.join(G));
        assert!(!m.leave(G));
        assert!(m.leave(G));
        assert!(!m.has(G));
    }

    #[test]
    fn leave_without_join_is_noop() {
        let mut m = LocalMembers::new();
        assert!(!m.leave(G));
    }
}
