//! MOSPF — Multicast Extensions to OSPF (paper ref \[3\]).
//!
//! Every router holds the full link-state database (here: the shared
//! topology) plus a group-membership database fed by
//! *group-membership-LSAs* that DRs flood domain-wide on every first
//! join / last leave — the flooding the paper identifies as MOSPF's
//! steep protocol overhead ("whenever a group member wants to join or
//! leave the group, the DR will flood a group-membership-LSA throughout
//! the domain").
//!
//! Data travels on per-(source) shortest-delay trees: each router
//! independently computes the SPT rooted at the source from the shared
//! database and forwards to exactly those SPT children whose subtrees
//! contain members. Because every router computes over identical data
//! with identical tie-breaking, the distributed decisions agree and each
//! member receives exactly one copy at unicast delay.
//!
//! All routers of one domain share an `Arc<dyn PathProvider>` — the
//! simulation-level analogue of "every router computes over the same
//! link-state database": one memoized Dijkstra per source serves the
//! whole domain instead of one per (router, packet).

use crate::common::LocalMembers;
use scmp_net::{Metric, NodeId, PathProvider};
use scmp_sim::{AppEvent, Ctx, GroupId, Packet, Router};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// MOSPF wire messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MospfMsg {
    /// Group-membership LSA: `origin`'s subnet has (`member` = true) or
    /// no longer has (`member` = false) members of the packet's group.
    Lsa {
        origin: NodeId,
        member: bool,
        seq: u64,
    },
    /// Payload forwarded on the source-rooted SPT.
    Data { source: NodeId },
}

/// The MOSPF router state machine.
pub struct MospfRouter {
    me: NodeId,
    /// Shared source-tree provider (the link-state database's SPTs).
    paths: Arc<dyn PathProvider>,
    members: LocalMembers,
    /// Domain-wide membership database: group -> DRs with members.
    group_db: BTreeMap<GroupId, BTreeSet<NodeId>>,
    /// Flood dedup: highest LSA seq seen per origin.
    lsa_seen: BTreeMap<NodeId, u64>,
    /// Own LSA sequence counter.
    my_seq: u64,
    /// Forwarding cache: (group, source, membership-version) -> the SPT
    /// children of `me` that lead to members.
    cache: BTreeMap<(GroupId, NodeId), (u64, Vec<NodeId>, bool)>,
    /// Monotone membership version for cache invalidation.
    version: u64,
}

impl MospfRouter {
    /// State machine for node `me`. `paths` is the domain-shared
    /// source-tree provider; pass one `Arc` clone per router (see
    /// [`scmp_net::shared_provider_for`]).
    pub fn new(me: NodeId, paths: Arc<dyn PathProvider>) -> Self {
        MospfRouter {
            me,
            paths,
            members: LocalMembers::new(),
            group_db: BTreeMap::new(),
            lsa_seen: BTreeMap::new(),
            my_seq: 0,
            cache: BTreeMap::new(),
            version: 0,
        }
    }

    /// Test accessor: DRs the database lists for `group`.
    pub fn known_members(&self, group: GroupId) -> Vec<NodeId> {
        self.group_db
            .get(&group)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    fn apply_lsa(&mut self, group: GroupId, origin: NodeId, member: bool) {
        let set = self.group_db.entry(group).or_default();
        let changed = if member {
            set.insert(origin)
        } else {
            set.remove(&origin)
        };
        if changed {
            self.version += 1;
        }
    }

    fn flood_lsa(
        &mut self,
        group: GroupId,
        origin: NodeId,
        member: bool,
        seq: u64,
        exclude: Option<NodeId>,
        ctx: &mut Ctx<'_, MospfMsg>,
    ) {
        let neighbors: Vec<NodeId> = ctx.topo().neighbors(self.me).iter().map(|e| e.to).collect();
        for n in neighbors {
            if Some(n) != exclude {
                ctx.send(
                    n,
                    Packet::control(
                        group,
                        MospfMsg::Lsa {
                            origin,
                            member,
                            seq,
                        },
                    ),
                );
            }
        }
    }

    fn originate_lsa(&mut self, group: GroupId, member: bool, ctx: &mut Ctx<'_, MospfMsg>) {
        self.my_seq += 1;
        let seq = self.my_seq;
        let me = self.me;
        self.lsa_seen.insert(me, seq);
        self.apply_lsa(group, me, member);
        self.flood_lsa(group, me, member, seq, None, ctx);
    }

    /// The SPT children of `me` (for a tree rooted at `source`) whose
    /// subtrees contain group members, plus whether `me` itself is on a
    /// member path. Cached per (group, source) and membership version.
    fn forward_targets(
        &mut self,
        group: GroupId,
        source: NodeId,
        ctx: &Ctx<'_, MospfMsg>,
    ) -> (Vec<NodeId>, bool) {
        if let Some((v, targets, on_path)) = self.cache.get(&(group, source)) {
            if *v == self.version {
                return (targets.clone(), *on_path);
            }
        }
        let spt = self.paths.tree(source, Metric::Delay);
        // Mark every node on a source->member path.
        let mut needed = vec![false; ctx.topo().node_count()];
        if let Some(members) = self.group_db.get(&group) {
            for &m in members {
                let mut cur = m;
                loop {
                    if needed[cur.index()] {
                        break;
                    }
                    needed[cur.index()] = true;
                    match spt.predecessor(cur) {
                        Some(p) => cur = p,
                        None => break,
                    }
                }
            }
        }
        let on_path = needed[self.me.index()];
        // Children of me in the SPT: neighbours whose predecessor is me.
        let targets: Vec<NodeId> = ctx
            .topo()
            .neighbors(self.me)
            .iter()
            .map(|e| e.to)
            .filter(|&n| spt.predecessor(n) == Some(self.me) && needed[n.index()])
            .collect();
        self.cache
            .insert((group, source), (self.version, targets.clone(), on_path));
        (targets, on_path)
    }

    fn handle_data(
        &mut self,
        from: Option<NodeId>,
        pkt: Packet<MospfMsg>,
        ctx: &mut Ctx<'_, MospfMsg>,
    ) {
        let MospfMsg::Data { source } = pkt.body else {
            unreachable!()
        };
        if let Some(from) = from {
            // Accept only from the SPT parent (consistent databases make
            // this the only sender in practice; the check guards against
            // transients while LSAs are in flight).
            let spt_parent_ok =
                self.paths.tree(source, Metric::Delay).predecessor(self.me) == Some(from);
            if !spt_parent_ok {
                ctx.drop_packet();
                return;
            }
        }
        if self.members.has(pkt.group) {
            ctx.deliver_local(&pkt);
        }
        let (targets, _) = self.forward_targets(pkt.group, source, ctx);
        for t in targets {
            ctx.send(t, pkt.clone());
        }
    }
}

impl Router for MospfRouter {
    type Msg = MospfMsg;

    fn on_packet(&mut self, from: NodeId, pkt: Packet<MospfMsg>, ctx: &mut Ctx<'_, MospfMsg>) {
        match pkt.body {
            MospfMsg::Lsa {
                origin,
                member,
                seq,
            } => {
                let last = self.lsa_seen.get(&origin).copied().unwrap_or(0);
                if seq <= last {
                    ctx.drop_packet();
                    return;
                }
                self.lsa_seen.insert(origin, seq);
                self.apply_lsa(pkt.group, origin, member);
                self.flood_lsa(pkt.group, origin, member, seq, Some(from), ctx);
            }
            MospfMsg::Data { .. } => self.handle_data(Some(from), pkt, ctx),
        }
    }

    fn on_app(&mut self, ev: AppEvent, ctx: &mut Ctx<'_, MospfMsg>) {
        match ev {
            AppEvent::Join(g) => {
                if self.members.join(g) {
                    self.originate_lsa(g, true, ctx);
                }
            }
            AppEvent::Leave(g) => {
                if self.members.leave(g) {
                    self.originate_lsa(g, false, ctx);
                }
            }
            AppEvent::Send { group, tag } => {
                let source = self.me;
                let pkt = Packet::data(group, tag, ctx.now(), MospfMsg::Data { source });
                self.handle_data(None, pkt, ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scmp_net::topology::examples::fig5;
    use scmp_net::AllPairsPaths;
    use scmp_sim::Engine;

    const G: GroupId = GroupId(1);

    fn engine() -> Engine<MospfRouter> {
        let topo = fig5();
        let paths = scmp_net::shared_provider_for(&topo);
        Engine::new(topo, move |me, _, _| {
            MospfRouter::new(me, Arc::clone(&paths))
        })
    }

    #[test]
    fn lsa_flood_reaches_every_router() {
        let mut e = engine();
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.run_to_quiescence();
        for v in 0..6u32 {
            assert_eq!(
                e.router(NodeId(v)).known_members(G),
                vec![NodeId(4)],
                "router {v} database"
            );
        }
        // Flooding used control bandwidth on essentially every link.
        assert!(e.stats().control_hops >= 7);
    }

    #[test]
    fn members_deliver_at_unicast_delay() {
        let topo = fig5();
        let ap = AllPairsPaths::compute(&topo);
        let mut e = engine();
        for m in [3u32, 4, 5] {
            e.schedule_app(0, NodeId(m), AppEvent::Join(G));
        }
        e.schedule_app(100_000, NodeId(0), AppEvent::Send { group: G, tag: 1 });
        e.run_to_quiescence();
        for m in [3u32, 4, 5] {
            assert_eq!(e.stats().delivery_count(G, 1, NodeId(m)), 1, "member {m}");
            assert_eq!(
                e.stats().delivery_delay(G, 1, NodeId(m)),
                ap.unicast_delay(NodeId(0), NodeId(m)),
                "member {m} must get SPT delay"
            );
        }
        assert!(!e.stats().has_duplicate_deliveries());
    }

    #[test]
    fn data_from_any_source_uses_its_own_spt() {
        let mut e = engine();
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.schedule_app(0, NodeId(0), AppEvent::Join(G));
        e.schedule_app(100_000, NodeId(5), AppEvent::Send { group: G, tag: 2 });
        e.run_to_quiescence();
        assert_eq!(e.stats().delivery_count(G, 2, NodeId(4)), 1);
        assert_eq!(e.stats().delivery_count(G, 2, NodeId(0)), 1);
        // Non-members got nothing.
        assert_eq!(e.stats().delivery_count(G, 2, NodeId(3)), 0);
    }

    #[test]
    fn leave_lsa_retracts_membership() {
        let mut e = engine();
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.schedule_app(10_000, NodeId(4), AppEvent::Leave(G));
        e.run_to_quiescence();
        for v in 0..6u32 {
            assert!(
                e.router(NodeId(v)).known_members(G).is_empty(),
                "router {v}"
            );
        }
        // Data now goes nowhere.
        e.schedule_app(200_000, NodeId(0), AppEvent::Send { group: G, tag: 3 });
        e.run_to_quiescence();
        assert_eq!(e.stats().distinct_deliveries(), 0);
    }

    #[test]
    fn every_membership_change_floods() {
        let mut e = engine();
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.run_to_quiescence();
        let after_one = e.stats().control_hops;
        e.schedule_app(10_000, NodeId(3), AppEvent::Join(G));
        e.run_to_quiescence();
        let after_two = e.stats().control_hops;
        // Second join floods again: costs roughly the same as the first.
        assert!(after_two - after_one >= after_one / 2);
    }

    #[test]
    fn no_duplicate_lsa_processing() {
        let mut e = engine();
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.run_to_quiescence();
        // Each router applied the LSA once; duplicates were dropped, so
        // the flood terminated (quiescence itself proves termination;
        // drops prove dedup fired on the cyclic topology).
        assert!(e.stats().drops > 0);
    }

    #[test]
    fn source_subnet_member_hears_its_own_data() {
        let mut e = engine();
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.schedule_app(10_000, NodeId(4), AppEvent::Send { group: G, tag: 9 });
        e.run_to_quiescence();
        assert_eq!(e.stats().delivery_count(G, 9, NodeId(4)), 1);
    }
}
