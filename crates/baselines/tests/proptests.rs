//! Property-based tests for the baseline protocols: exactly-once
//! delivery and clean state over random topologies and schedules.

use proptest::prelude::*;
use rand::seq::SliceRandom;
use scmp_baselines::{CbtConfig, CbtRouter, DvmrpConfig, DvmrpRouter, MospfRouter};
use scmp_net::rng::rng_for;
use scmp_net::topology::{waxman, WaxmanConfig};
use scmp_net::{NodeId, Topology};
use scmp_sim::{AppEvent, Engine, GroupId, Router};

const G: GroupId = GroupId(1);

fn scenario(seed: u64, n: usize, group: usize) -> (Topology, Vec<NodeId>, NodeId) {
    let mut rng = rng_for("baseline-prop", seed);
    let topo = waxman(
        &WaxmanConfig {
            n,
            min_delay_one: true,
            ..WaxmanConfig::default()
        },
        &mut rng,
    );
    let mut pool: Vec<NodeId> = topo.nodes().filter(|v| v.0 != 0).collect();
    pool.shuffle(&mut rng);
    let members: Vec<NodeId> = pool.iter().copied().take(group.min(n - 1)).collect();
    let source = pool
        .iter()
        .copied()
        .find(|v| !members.contains(v))
        .unwrap_or(NodeId(0));
    (topo, members, source)
}

fn drive<R: Router>(e: &mut Engine<R>, members: &[NodeId], source: NodeId, packets: u64) {
    let mut t = 0;
    for &m in members {
        e.schedule_app(t, m, AppEvent::Join(G));
        t += 1_000;
    }
    for k in 0..packets {
        e.schedule_app(
            t + 400_000 + k * 50_000,
            source,
            AppEvent::Send {
                group: G,
                tag: k + 1,
            },
        );
    }
    e.run_to_quiescence();
}

fn assert_exactly_once<R: Router>(
    e: &Engine<R>,
    topo: &Topology,
    members: &[NodeId],
    packets: u64,
    label: &str,
) -> Result<(), TestCaseError> {
    for &m in members {
        for tag in 1..=packets {
            prop_assert_eq!(
                e.stats().delivery_count(G, tag, m),
                1,
                "{}: member {:?} tag {}",
                label,
                m,
                tag
            );
        }
    }
    for v in topo.nodes() {
        if !members.contains(&v) {
            for tag in 1..=packets {
                prop_assert_eq!(
                    e.stats().delivery_count(G, tag, v),
                    0,
                    "{}: non-member {:?} heard tag {}",
                    label,
                    v,
                    tag
                );
            }
        }
    }
    prop_assert!(!e.stats().has_duplicate_deliveries(), "{label}: duplicates");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// CBT delivers exactly once to members, never to outsiders.
    #[test]
    fn cbt_exactly_once(seed in 0u64..400, n in 8usize..30, g in 1usize..8) {
        let (topo, members, source) = scenario(seed, n, g);
        let mut e = Engine::new(topo.clone(), |me, _, _| {
            CbtRouter::new(me, CbtConfig { core: NodeId(0) })
        });
        drive(&mut e, &members, source, 3);
        assert_exactly_once(&e, &topo, &members, 3, "cbt")?;
    }

    /// DVMRP delivers exactly once despite flooding, for both short and
    /// long prune lifetimes.
    #[test]
    fn dvmrp_exactly_once(seed in 0u64..400, n in 8usize..30, g in 1usize..8, short in any::<bool>()) {
        let (topo, members, source) = scenario(seed, n, g);
        let timeout = if short { 60_000 } else { 10_000_000 };
        let mut e = Engine::new(topo.clone(), move |me, _, _| {
            DvmrpRouter::new(me, DvmrpConfig { prune_timeout: timeout })
        });
        drive(&mut e, &members, source, 3);
        assert_exactly_once(&e, &topo, &members, 3, "dvmrp")?;
    }

    /// MOSPF delivers exactly once at unicast delay.
    #[test]
    fn mospf_exactly_once(seed in 0u64..400, n in 8usize..30, g in 1usize..8) {
        let (topo, members, source) = scenario(seed, n, g);
        let provider = scmp_net::shared_provider_for(&topo);
        let mut e = Engine::new(topo.clone(), move |me, _, _| {
            MospfRouter::new(me, std::sync::Arc::clone(&provider))
        });
        drive(&mut e, &members, source, 3);
        assert_exactly_once(&e, &topo, &members, 3, "mospf")?;
        let paths = scmp_net::AllPairsPaths::compute(&topo);
        for &m in &members {
            prop_assert_eq!(
                e.stats().delivery_delay(G, 1, m),
                paths.unicast_delay(source, m),
                "mospf member {:?} delay", m
            );
        }
    }

    /// CBT churn: after all members leave and the network quiesces, no
    /// router except the core keeps tree state.
    #[test]
    fn cbt_churn_clean(seed in 0u64..300, n in 8usize..25, g in 2usize..8) {
        let (topo, members, _) = scenario(seed, n, g);
        let mut e = Engine::new(topo.clone(), |me, _, _| {
            CbtRouter::new(me, CbtConfig { core: NodeId(0) })
        });
        let mut t = 0;
        for &m in &members {
            e.schedule_app(t, m, AppEvent::Join(G));
            t += 3_000;
        }
        t += 300_000;
        for &m in &members {
            e.schedule_app(t, m, AppEvent::Leave(G));
            t += 3_000;
        }
        e.run_to_quiescence();
        for v in topo.nodes() {
            if v != NodeId(0) {
                prop_assert!(!e.router(v).on_tree(G), "stale CBT state at {:?}", v);
            }
        }
        prop_assert!(e.router(NodeId(0)).children(G).is_empty());
    }

    /// A member that joins DVMRP *after* heavy pruning still receives
    /// (graft correctness) — for any position of the late joiner.
    #[test]
    fn dvmrp_late_join_grafts(seed in 0u64..200, n in 8usize..25) {
        let (topo, _, source) = scenario(seed, n, 0);
        let candidates: Vec<NodeId> = topo
            .nodes()
            .filter(|&v| v != source && v != NodeId(0))
            .collect();
        let late = candidates[seed as usize % candidates.len()];
        let mut e = Engine::new(topo.clone(), |me, _, _| {
            DvmrpRouter::new(me, DvmrpConfig { prune_timeout: 50_000_000 })
        });
        // Prime prune state everywhere with a members-free flood.
        e.schedule_app(0, source, AppEvent::Send { group: G, tag: 1 });
        e.run_to_quiescence();
        // Late join, then another packet.
        let now = e.now() + 100_000;
        e.schedule_app(now, late, AppEvent::Join(G));
        e.schedule_app(now + 500_000, source, AppEvent::Send { group: G, tag: 2 });
        e.run_to_quiescence();
        prop_assert_eq!(e.stats().delivery_count(G, 2, late), 1, "late joiner {:?}", late);
    }
}
