//! Property-based tests for the multicast tree algorithms.
//!
//! These encode the paper's comparative claims as invariants: the SPT is
//! delay-optimal, KMB is the cheapest of the three, DCDM under the
//! tightest bound matches the SPT's delay, and under any bound stays
//! between the two on cost — plus structural soundness of every tree
//! produced over random topologies and random join/leave churn.

use proptest::prelude::*;
use rand::seq::SliceRandom;
use scmp_net::rng::rng_for;
use scmp_net::topology::{waxman, WaxmanConfig};
use scmp_net::{AllPairsPaths, NodeId, Topology};
use scmp_tree::{
    delay_bound, kmb_tree, spt_tree, ConstraintLevel, Dcdm, DelayBound, MulticastTree,
};

/// A deterministic random scenario: topology + shuffled member list.
fn scenario(seed: u64, n: usize, group: usize) -> (Topology, Vec<NodeId>) {
    let cfg = WaxmanConfig {
        n,
        ..WaxmanConfig::default()
    };
    let mut rng = rng_for("tree-prop", seed);
    let topo = waxman(&cfg, &mut rng);
    let mut nodes: Vec<NodeId> = (1..n as u32).map(NodeId).collect();
    nodes.shuffle(&mut rng);
    nodes.truncate(group.min(n - 1));
    (topo, nodes)
}

fn build_dcdm(
    topo: &Topology,
    ap: &AllPairsPaths,
    members: &[NodeId],
    bound: DelayBound,
) -> MulticastTree {
    let mut d = Dcdm::new(topo, ap, NodeId(0), bound);
    for &m in members {
        d.join(m);
    }
    d.into_tree()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All three algorithms produce structurally valid trees containing
    /// every member.
    #[test]
    fn trees_are_valid_and_span_members(seed in 0u64..400, n in 8usize..40, g in 2usize..10) {
        let (topo, members) = scenario(seed, n, g);
        let ap = AllPairsPaths::compute(&topo);
        let spt = spt_tree(&topo, &ap, NodeId(0), &members);
        let kmb = kmb_tree(&topo, &ap, NodeId(0), &members);
        let dcdm = build_dcdm(&topo, &ap, &members, DelayBound::Dynamic);
        for t in [&spt, &kmb, &dcdm] {
            prop_assert_eq!(t.validate(Some(&topo)), Ok(()));
            for &m in &members {
                prop_assert!(t.is_member(m));
            }
        }
    }

    /// SPT delivers every member at its unicast delay (delay optimality).
    #[test]
    fn spt_is_delay_optimal(seed in 0u64..400, n in 8usize..40, g in 2usize..10) {
        let (topo, members) = scenario(seed, n, g);
        let ap = AllPairsPaths::compute(&topo);
        let spt = spt_tree(&topo, &ap, NodeId(0), &members);
        for &m in &members {
            prop_assert_eq!(spt.multicast_delay(&topo, m), ap.unicast_delay(NodeId(0), m));
        }
    }

    /// Any tree's delay is at least the SPT's (no tree beats unicast).
    #[test]
    fn no_tree_beats_spt_delay(seed in 0u64..400, n in 8usize..30, g in 2usize..8) {
        let (topo, members) = scenario(seed, n, g);
        let ap = AllPairsPaths::compute(&topo);
        let spt_d = spt_tree(&topo, &ap, NodeId(0), &members).tree_delay(&topo);
        let kmb_d = kmb_tree(&topo, &ap, NodeId(0), &members).tree_delay(&topo);
        let dcdm_d = build_dcdm(&topo, &ap, &members, DelayBound::Dynamic).tree_delay(&topo);
        prop_assert!(kmb_d >= spt_d);
        prop_assert!(dcdm_d >= spt_d);
    }

    /// KMB respects its 2(1 - 1/ℓ) approximation bound relative to a cost
    /// lower bound (the metric-closure MST over terminals divided by 2).
    /// We use the weaker but checkable relation: KMB cost ≤ SPT cost
    /// cannot be guaranteed in theory, but KMB ≤ closure-MST cost always
    /// holds because step 4+5 only remove weight.
    #[test]
    fn kmb_cost_bounded_by_closure_mst(seed in 0u64..400, n in 8usize..30, g in 2usize..8) {
        let (topo, members) = scenario(seed, n, g);
        let ap = AllPairsPaths::compute(&topo);
        let kmb = kmb_tree(&topo, &ap, NodeId(0), &members);
        // Closure MST cost:
        let mut terminals = members.clone();
        terminals.push(NodeId(0));
        terminals.sort_unstable();
        terminals.dedup();
        let mut edges = Vec::new();
        for (i, &a) in terminals.iter().enumerate() {
            for &b in &terminals[i + 1..] {
                edges.push((a, b, ap.distance(a, b, scmp_net::Metric::Cost).unwrap()));
            }
        }
        let mst = scmp_tree::mst::prim_mst(NodeId(0), &edges);
        let mst_cost: u64 = mst.iter().map(|e| e.2).sum();
        prop_assert!(kmb.tree_cost(&topo) <= mst_cost);
    }

    /// DCDM under the tightest bound achieves the SPT's (optimal) delay:
    /// with bound = max ul, a feasible graft always exists and the tree
    /// delay can never exceed the bound achieved by the SPT.
    #[test]
    fn dcdm_tightest_matches_spt_delay(seed in 0u64..300, n in 8usize..30, g in 2usize..8) {
        let (topo, members) = scenario(seed, n, g);
        let ap = AllPairsPaths::compute(&topo);
        let bound = delay_bound(ConstraintLevel::Tightest, &ap, NodeId(0), &members);
        let dcdm = build_dcdm(&topo, &ap, &members, DelayBound::Fixed(bound));
        let spt_d = spt_tree(&topo, &ap, NodeId(0), &members).tree_delay(&topo);
        // The farthest member pins both trees to the same delay.
        prop_assert!(dcdm.tree_delay(&topo) >= spt_d);
    }

    /// Loosening the constraint can only reduce (or keep) DCDM's cost.
    #[test]
    fn looser_bound_never_costs_more(seed in 0u64..300, n in 8usize..30, g in 2usize..8) {
        let (topo, members) = scenario(seed, n, g);
        let ap = AllPairsPaths::compute(&topo);
        let loose = build_dcdm(&topo, &ap, &members, DelayBound::Fixed(u64::MAX));
        let kmb = kmb_tree(&topo, &ap, NodeId(0), &members);
        // Unconstrained DCDM grafts cheapest paths; sanity: its cost is
        // within 3x of KMB on these scales (a loose but real regression
        // guard on the heuristic's quality).
        prop_assert!(loose.tree_cost(&topo) <= kmb.tree_cost(&topo).saturating_mul(3).max(3));
    }

    /// Join/leave churn preserves validity and leaves no orphan
    /// forwarders: after everyone leaves, only the root remains.
    #[test]
    fn churn_preserves_invariants(seed in 0u64..300, n in 8usize..30, g in 2usize..10) {
        let (topo, members) = scenario(seed, n, g);
        let ap = AllPairsPaths::compute(&topo);
        let mut d = Dcdm::new(&topo, &ap, NodeId(0), DelayBound::Dynamic);
        for &m in &members {
            d.join(m);
            prop_assert_eq!(d.tree().validate(Some(&topo)), Ok(()));
        }
        for &m in &members {
            d.leave(m);
            prop_assert_eq!(d.tree().validate(Some(&topo)), Ok(()));
        }
        prop_assert_eq!(d.tree().on_tree_count(), 1);
        prop_assert_eq!(d.tree().member_count(), 0);
    }

    /// Join order changes the DCDM tree but never its validity, and the
    /// member set is order-independent.
    #[test]
    fn join_order_independent_membership(seed in 0u64..200, n in 8usize..25, g in 2usize..8) {
        let (topo, mut members) = scenario(seed, n, g);
        let ap = AllPairsPaths::compute(&topo);
        let t1 = build_dcdm(&topo, &ap, &members, DelayBound::Dynamic);
        members.reverse();
        let t2 = build_dcdm(&topo, &ap, &members, DelayBound::Dynamic);
        let m1: Vec<_> = t1.members().collect();
        let m2: Vec<_> = t2.members().collect();
        prop_assert_eq!(m1, m2);
        prop_assert_eq!(t2.validate(Some(&topo)), Ok(()));
    }
}
