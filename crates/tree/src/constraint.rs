//! The three delay-constraint levels of Fig. 7.
//!
//! §IV-A: "We set the delay constraint to three levels: tightest,
//! moderate and loosest. The tightest level means that the delay
//! constraint cannot be tighter, or there is no multicast tree satisfying
//! the delay constraint. The loosest level means that all possible
//! multicast trees can satisfy the delay constraint."
//!
//! The tightest feasible bound for a member set is the largest unicast
//! delay from the root to any member (`max ul`): any tree must deliver
//! the farthest member no faster than its shortest-delay path, and the
//! SPT achieves exactly that. Loosest is unbounded; moderate sits halfway
//! (we use `1.5 × tightest`, recorded in EXPERIMENTS.md).

use scmp_net::{NodeId, PathProvider};

/// Fig. 7's three delay-constraint levels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConstraintLevel {
    /// Bound = max unicast delay over members (cannot be tighter).
    Tightest,
    /// Bound = 1.5 × the tightest bound.
    Moderate,
    /// No bound (every tree satisfies it).
    Loosest,
}

impl ConstraintLevel {
    /// All three levels, in figure order.
    pub const ALL: [ConstraintLevel; 3] = [
        ConstraintLevel::Tightest,
        ConstraintLevel::Moderate,
        ConstraintLevel::Loosest,
    ];

    /// Human-readable label used by the experiment harness output.
    pub fn label(self) -> &'static str {
        match self {
            ConstraintLevel::Tightest => "tightest",
            ConstraintLevel::Moderate => "moderate",
            ConstraintLevel::Loosest => "loosest",
        }
    }
}

/// Compute the numeric delay bound for a level, member set and root.
///
/// Returns `u64::MAX` for [`ConstraintLevel::Loosest`] and for empty
/// member sets (no constraint can bind).
pub fn delay_bound(
    level: ConstraintLevel,
    paths: &dyn PathProvider,
    root: NodeId,
    members: &[NodeId],
) -> u64 {
    let tightest = members
        .iter()
        .filter_map(|&m| paths.unicast_delay(root, m))
        .max();
    let Some(tightest) = tightest else {
        return u64::MAX;
    };
    match level {
        ConstraintLevel::Tightest => tightest,
        ConstraintLevel::Moderate => tightest.saturating_mul(3) / 2,
        ConstraintLevel::Loosest => u64::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scmp_net::topology::examples::fig5;
    use scmp_net::AllPairsPaths;

    #[test]
    fn bounds_ordered() {
        let topo = fig5();
        let ap = AllPairsPaths::compute(&topo);
        let members = [NodeId(3), NodeId(4), NodeId(5)];
        let t = delay_bound(ConstraintLevel::Tightest, &ap, NodeId(0), &members);
        let m = delay_bound(ConstraintLevel::Moderate, &ap, NodeId(0), &members);
        let l = delay_bound(ConstraintLevel::Loosest, &ap, NodeId(0), &members);
        assert_eq!(t, 12); // ul(g1) = 12 dominates
        assert_eq!(m, 18);
        assert_eq!(l, u64::MAX);
        assert!(t <= m && m <= l);
    }

    #[test]
    fn empty_members_unbounded() {
        let topo = fig5();
        let ap = AllPairsPaths::compute(&topo);
        assert_eq!(
            delay_bound(ConstraintLevel::Tightest, &ap, NodeId(0), &[]),
            u64::MAX
        );
    }

    #[test]
    fn tightest_is_achievable_by_spt() {
        let topo = fig5();
        let ap = AllPairsPaths::compute(&topo);
        let members = [NodeId(3), NodeId(5)];
        let bound = delay_bound(ConstraintLevel::Tightest, &ap, NodeId(0), &members);
        let spt = crate::spt::spt_tree(&topo, &ap, NodeId(0), &members);
        assert_eq!(spt.tree_delay(&topo), bound);
    }

    #[test]
    fn labels() {
        assert_eq!(ConstraintLevel::Tightest.label(), "tightest");
        assert_eq!(ConstraintLevel::ALL.len(), 3);
    }
}
