//! # scmp-tree — multicast tree structures and construction algorithms
//!
//! The m-router of the SCMP architecture computes multicast trees
//! centrally, from complete topology and membership knowledge (§II-D).
//! This crate implements:
//!
//! * [`MulticastTree`] — a rooted shared tree with prune/graft surgery and
//!   the paper's metrics (*tree cost*, *tree delay*, per-member
//!   *multicast delay* `ml`).
//! * [`dcdm`] — the Delay-Constrained Dynamic Multicast algorithm of
//!   reference \[20\] that SCMP adopts (§III-D), including the loop
//!   elimination of the Fig. 5 walkthrough and dynamic/fixed delay bounds.
//! * [`kmb`] — the Kou–Markowsky–Berman Steiner-tree approximation \[19\],
//!   the cost-optimised baseline of Fig. 7.
//! * [`spt`] — shortest-delay-path trees, the tree shape shared by
//!   DVMRP/MOSPF/CBT under the paper's §IV-A assumption that the source
//!   coincides with the core.
//! * [`greedy`] — the online greedy Steiner heuristic of the paper's
//!   reference \[1\] (nearest on-tree node by cost), bracketing DCDM from
//!   the cost-only side.
//! * [`constraint`] — the three delay-constraint levels of Fig. 7
//!   (tightest / moderate / loosest).
//! * [`analysis`] — per-member delay stretch and link-stress reports.
//! * [`repair`] — post-failure tree assessment (broken edges, detached
//!   subtrees, orphaned members) feeding the m-router's repair scan.

pub mod analysis;
pub mod constraint;
pub mod dcdm;
pub mod greedy;
pub mod kmb;
pub mod mst;
pub mod repair;
pub mod spt;
pub mod tree;

pub use analysis::{analyze, health, link_stress, TreeHealthSample, TreeReport};
pub use constraint::{delay_bound, ConstraintLevel};
pub use dcdm::{Dcdm, DelayBound, JoinOutcome};
pub use greedy::GreedySteiner;
pub use kmb::kmb_tree;
pub use repair::{assess, TreeDamage};
pub use spt::spt_tree;
pub use tree::MulticastTree;
