//! The rooted, shared, bidirectional multicast tree.
//!
//! §III-A of the paper: every on-tree router has one *upstream* (parent)
//! and a *downstream* set (children); the root is the m-router. Group
//! members are a subset of on-tree routers (forwarders in the middle of a
//! path are on-tree but not members). The metrics mirror the paper:
//!
//! * **tree cost** — sum of link costs over all tree edges;
//! * **multicast delay** `ml(v)` — delay of the unique tree path from the
//!   root to `v`;
//! * **tree delay** — `max ml(v)` over group members.

use scmp_net::{NodeId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A rooted multicast tree over a fixed topology size.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MulticastTree {
    root: NodeId,
    n: usize,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    on_tree: Vec<bool>,
    members: BTreeSet<NodeId>,
}

impl MulticastTree {
    /// A tree containing only the root (the m-router).
    pub fn new(n: usize, root: NodeId) -> Self {
        assert!(root.index() < n, "root out of range");
        let mut t = MulticastTree {
            root,
            n,
            parent: vec![None; n],
            children: vec![Vec::new(); n],
            on_tree: vec![false; n],
            members: BTreeSet::new(),
        };
        t.on_tree[root.index()] = true;
        t
    }

    /// The root (m-router / core).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Topology size this tree indexes into.
    #[inline]
    pub fn node_capacity(&self) -> usize {
        self.n
    }

    /// True iff `v` is on the tree (member or forwarder).
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.on_tree[v.index()]
    }

    /// Parent of `v` (`None` for the root and off-tree nodes).
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// Children of `v`.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.index()]
    }

    /// The registered group members (never includes pure forwarders).
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().copied()
    }

    /// Number of group members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// True iff `v` is a group member.
    #[inline]
    pub fn is_member(&self, v: NodeId) -> bool {
        self.members.contains(&v)
    }

    /// All on-tree nodes, ascending.
    pub fn on_tree_nodes(&self) -> Vec<NodeId> {
        (0..self.n as u32)
            .map(NodeId)
            .filter(|v| self.on_tree[v.index()])
            .collect()
    }

    /// Number of on-tree nodes.
    pub fn on_tree_count(&self) -> usize {
        self.on_tree.iter().filter(|&&b| b).count()
    }

    /// Tree edges as `(parent, child)` pairs, ordered by child id.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        (0..self.n as u32)
            .map(NodeId)
            .filter_map(|c| self.parent[c.index()].map(|p| (p, c)))
            .collect()
    }

    /// Mark `v` as a group member. `v` must already be on the tree.
    pub fn add_member(&mut self, v: NodeId) {
        assert!(self.contains(v), "member {v:?} must be on the tree");
        self.members.insert(v);
    }

    /// Unmark `v` as a member (keeps it on the tree; callers decide
    /// whether to prune). Returns whether it was a member.
    pub fn remove_member(&mut self, v: NodeId) -> bool {
        self.members.remove(&v)
    }

    /// Attach `child` under `parent`. `parent` must be on the tree and
    /// `child` off it.
    pub fn attach(&mut self, parent: NodeId, child: NodeId) {
        assert!(self.contains(parent), "parent {parent:?} off tree");
        assert!(!self.contains(child), "child {child:?} already on tree");
        self.on_tree[child.index()] = true;
        self.parent[child.index()] = Some(parent);
        self.children[parent.index()].push(child);
        self.children[parent.index()].sort_unstable();
    }

    /// Re-parent the on-tree node `v` (and, implicitly, its whole subtree)
    /// under `new_parent`. Used by DCDM loop elimination, where a path
    /// segment adopts a node that is already on the tree.
    ///
    /// # Panics
    /// If either node is off-tree, or if `new_parent` lies in `v`'s
    /// subtree (which would detach the subtree from the root).
    pub fn reparent(&mut self, v: NodeId, new_parent: NodeId) {
        assert!(self.contains(v) && self.contains(new_parent));
        assert!(v != self.root, "cannot reparent the root");
        assert!(
            !self.in_subtree(new_parent, v),
            "reparenting {v:?} under its own descendant {new_parent:?}"
        );
        if let Some(old) = self.parent[v.index()] {
            self.children[old.index()].retain(|&c| c != v);
        }
        self.parent[v.index()] = Some(new_parent);
        self.children[new_parent.index()].push(v);
        self.children[new_parent.index()].sort_unstable();
    }

    /// True iff `x` lies in the subtree rooted at `r` (inclusive).
    pub fn in_subtree(&self, x: NodeId, r: NodeId) -> bool {
        let mut cur = Some(x);
        while let Some(v) = cur {
            if v == r {
                return true;
            }
            cur = self.parent[v.index()];
        }
        false
    }

    /// Detach the leaf `v` from the tree. `v` must be a childless
    /// non-root, non-member node — exactly the state in which the paper's
    /// PRUNE message removes a router.
    pub fn remove_leaf(&mut self, v: NodeId) {
        assert!(self.contains(v), "{v:?} off tree");
        assert!(v != self.root, "cannot remove the root");
        assert!(self.children[v.index()].is_empty(), "{v:?} has children");
        assert!(!self.is_member(v), "{v:?} is still a member");
        let p = self.parent[v.index()].expect("non-root has a parent");
        self.children[p.index()].retain(|&c| c != v);
        self.parent[v.index()] = None;
        self.on_tree[v.index()] = false;
    }

    /// Prune upward from `start`: repeatedly remove childless non-member
    /// non-root nodes, following parents, never touching nodes in `keep`.
    /// Returns the removed nodes in removal order. This is the paper's
    /// cascading PRUNE ("this PRUNE message will continue until it reaches
    /// a non-leaf router", §III-C; the m-router-side mirror in §III-D
    /// stops at "a group member or a node that has more than one
    /// downstream routers").
    pub fn prune_upward(&mut self, start: NodeId, keep: &BTreeSet<NodeId>) -> Vec<NodeId> {
        let mut removed = Vec::new();
        let mut cur = start;
        while self.contains(cur)
            && cur != self.root
            && !self.is_member(cur)
            && self.children[cur.index()].is_empty()
            && !keep.contains(&cur)
        {
            let p = self.parent[cur.index()].expect("non-root has a parent");
            self.remove_leaf(cur);
            removed.push(cur);
            cur = p;
        }
        removed
    }

    /// The unique tree path from the root to `v` (inclusive), or `None`
    /// if `v` is off-tree.
    pub fn path_from_root(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.contains(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(cur, self.root);
        path.reverse();
        Some(path)
    }

    /// The paper's multicast delay `ml(v)`: delay of the root→`v` tree
    /// path under `topo`.
    pub fn multicast_delay(&self, topo: &Topology, v: NodeId) -> Option<u64> {
        let p = self.path_from_root(v)?;
        Some(topo.path_weight(&p)?.delay)
    }

    /// Tree cost: sum of link costs over all tree edges.
    pub fn tree_cost(&self, topo: &Topology) -> u64 {
        self.edges()
            .iter()
            .map(|&(p, c)| topo.link(p, c).expect("tree edge is a topology link").cost)
            .sum()
    }

    /// Tree delay: `max ml(v)` over group members (0 for an empty group).
    pub fn tree_delay(&self, topo: &Topology) -> u64 {
        self.members
            .iter()
            .map(|&m| self.multicast_delay(topo, m).expect("member on tree"))
            .max()
            .unwrap_or(0)
    }

    /// Render the tree as a directed DOT graph (root at the top), for
    /// debugging and documentation. Members are filled, forwarders
    /// hollow.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph multicast_tree {\n  rankdir=TB;\n");
        for v in self.on_tree_nodes() {
            let style = if self.is_member(v) {
                " [style=filled, fillcolor=lightgreen]"
            } else if v == self.root {
                " [shape=doublecircle]"
            } else {
                ""
            };
            let _ = writeln!(out, "  n{v}{style};");
        }
        for (p, c) in self.edges() {
            let _ = writeln!(out, "  n{p} -> n{c};");
        }
        out.push_str("}\n");
        out
    }

    /// Validate every structural invariant; used by tests and after every
    /// mutating protocol step in debug builds.
    ///
    /// Checks: parent/child agreement, acyclicity, every on-tree node
    /// reaches the root, members ⊆ on-tree, and (when a topology is
    /// given) every tree edge is a real link.
    pub fn validate(&self, topo: Option<&Topology>) -> Result<(), String> {
        if !self.on_tree[self.root.index()] {
            return Err("root off tree".into());
        }
        if self.parent[self.root.index()].is_some() {
            return Err("root has a parent".into());
        }
        for v in 0..self.n as u32 {
            let v = NodeId(v);
            match (self.on_tree[v.index()], self.parent[v.index()]) {
                (false, Some(_)) => return Err(format!("{v:?} off tree but has parent")),
                (false, None) if !self.children[v.index()].is_empty() => {
                    return Err(format!("{v:?} off tree but has children"))
                }
                (true, None) if v != self.root => {
                    return Err(format!("{v:?} on tree, no parent, not root"))
                }
                _ => {}
            }
            if let Some(p) = self.parent[v.index()] {
                if !self.children[p.index()].contains(&v) {
                    return Err(format!("{p:?} does not list child {v:?}"));
                }
                if let Some(t) = topo {
                    if !t.has_link(p, v) {
                        return Err(format!("tree edge {p:?}-{v:?} is not a link"));
                    }
                }
            }
            for &c in &self.children[v.index()] {
                if self.parent[c.index()] != Some(v) {
                    return Err(format!("child {c:?} does not point back to {v:?}"));
                }
            }
        }
        // Root-reachability (also implies acyclicity together with the
        // unique-parent property).
        for v in 0..self.n as u32 {
            let v = NodeId(v);
            if !self.on_tree[v.index()] {
                continue;
            }
            let mut cur = v;
            let mut steps = 0;
            while cur != self.root {
                cur = self.parent[cur.index()].ok_or_else(|| format!("{v:?} detached"))?;
                steps += 1;
                if steps > self.n {
                    return Err(format!("cycle through {v:?}"));
                }
            }
        }
        for &m in &self.members {
            if !self.on_tree[m.index()] {
                return Err(format!("member {m:?} off tree"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scmp_net::topology::examples::fig5;

    fn sample() -> MulticastTree {
        // Tree over fig5: 0-1, 1-4, 1-2, 2-3 (the paper's tree after g2).
        let mut t = MulticastTree::new(6, NodeId(0));
        t.attach(NodeId(0), NodeId(1));
        t.attach(NodeId(1), NodeId(4));
        t.attach(NodeId(1), NodeId(2));
        t.attach(NodeId(2), NodeId(3));
        t.add_member(NodeId(4));
        t.add_member(NodeId(3));
        t
    }

    #[test]
    fn attach_contains_parents() {
        let t = sample();
        assert!(t.contains(NodeId(2)));
        assert!(!t.contains(NodeId(5)));
        assert_eq!(t.parent(NodeId(4)), Some(NodeId(1)));
        assert_eq!(t.children(NodeId(1)), &[NodeId(2), NodeId(4)]);
        assert_eq!(t.on_tree_count(), 5);
        t.validate(Some(&fig5())).unwrap();
    }

    #[test]
    fn metrics_match_paper_walkthrough() {
        let topo = fig5();
        let t = sample();
        // ml(g1=4) = 3+9 = 12, ml(g2=3) = 3+3+4 = 10 (paper numbers).
        assert_eq!(t.multicast_delay(&topo, NodeId(4)), Some(12));
        assert_eq!(t.multicast_delay(&topo, NodeId(3)), Some(10));
        assert_eq!(t.tree_delay(&topo), 12);
        // cost = 6 (0-1) + 3 (1-4) + 2 (1-2) + 1 (2-3) = 12.
        assert_eq!(t.tree_cost(&topo), 12);
    }

    #[test]
    fn path_from_root_walks_parents() {
        let t = sample();
        assert_eq!(
            t.path_from_root(NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(t.path_from_root(NodeId(5)), None);
        assert_eq!(t.path_from_root(NodeId(0)).unwrap(), vec![NodeId(0)]);
    }

    #[test]
    fn reparent_moves_subtree() {
        let topo = fig5();
        let mut t = sample();
        // Fig. 5(d): node 2 is re-parented from 1 to 0, keeping child 3.
        t.reparent(NodeId(2), NodeId(0));
        t.validate(Some(&topo)).unwrap();
        assert_eq!(t.parent(NodeId(2)), Some(NodeId(0)));
        assert_eq!(t.children(NodeId(1)), &[NodeId(4)]);
        assert_eq!(t.multicast_delay(&topo, NodeId(3)), Some(8)); // 0-2 (4) + 2-3 (4)
    }

    #[test]
    #[should_panic(expected = "descendant")]
    fn reparent_rejects_cycles() {
        let mut t = sample();
        t.reparent(NodeId(1), NodeId(3)); // 3 is in 1's subtree
    }

    #[test]
    fn prune_upward_cascades() {
        let mut t = sample();
        // Remove member 3: 3 then 2 get pruned, 1 kept (child 4 remains).
        t.remove_member(NodeId(3));
        let removed = t.prune_upward(NodeId(3), &BTreeSet::new());
        assert_eq!(removed, vec![NodeId(3), NodeId(2)]);
        assert!(!t.contains(NodeId(2)));
        assert!(t.contains(NodeId(1)));
        t.validate(None).unwrap();
    }

    #[test]
    fn prune_upward_respects_members_and_keep() {
        let mut t = sample();
        // 4 is a member: prune refuses to remove it.
        assert!(t.prune_upward(NodeId(4), &BTreeSet::new()).is_empty());
        // With member flag removed but node kept, also refuses.
        t.remove_member(NodeId(4));
        let keep: BTreeSet<_> = [NodeId(4)].into();
        assert!(t.prune_upward(NodeId(4), &keep).is_empty());
        // Now actually prune: removes 4 but stops at 1 (has child 2).
        assert_eq!(t.prune_upward(NodeId(4), &BTreeSet::new()), vec![NodeId(4)]);
        t.validate(None).unwrap();
    }

    #[test]
    fn remove_leaf_guards() {
        let mut t = sample();
        t.remove_member(NodeId(3));
        t.remove_leaf(NodeId(3));
        assert!(!t.contains(NodeId(3)));
        assert_eq!(t.children(NodeId(2)), &[] as &[NodeId]);
    }

    #[test]
    #[should_panic(expected = "has children")]
    fn remove_leaf_rejects_internal() {
        let mut t = sample();
        t.remove_leaf(NodeId(1));
    }

    #[test]
    fn validate_catches_corruption() {
        let t = MulticastTree::new(3, NodeId(0));
        t.validate(None).unwrap();
        // Tree edge that is not a topology link:
        let mut t2 = MulticastTree::new(6, NodeId(0));
        t2.attach(NodeId(0), NodeId(4)); // fig5 has no 0-4 link
        assert!(t2.validate(Some(&fig5())).is_err());
        assert!(t2.validate(None).is_ok());
    }

    #[test]
    fn empty_tree_metrics() {
        let topo = fig5();
        let t = MulticastTree::new(6, NodeId(0));
        assert_eq!(t.tree_cost(&topo), 0);
        assert_eq!(t.tree_delay(&topo), 0);
        assert_eq!(t.member_count(), 0);
        assert_eq!(t.edges(), vec![]);
    }

    #[test]
    fn dot_export_shape() {
        let t = sample();
        let dot = t.to_dot();
        assert!(dot.contains("n0 [shape=doublecircle]"));
        assert!(dot.contains("n4 [style=filled"));
        assert_eq!(dot.matches(" -> ").count(), t.edges().len());
    }

    #[test]
    fn member_bookkeeping() {
        let mut t = sample();
        assert!(t.is_member(NodeId(3)));
        assert!(t.remove_member(NodeId(3)));
        assert!(!t.remove_member(NodeId(3)));
        assert_eq!(t.member_count(), 1);
        assert_eq!(t.members().collect::<Vec<_>>(), vec![NodeId(4)]);
    }
}
