//! Greedy dynamic Steiner trees (the paper's reference \[1\],
//! Aharoni & Cohen, "Restricted dynamic Steiner trees for scalable
//! multicast in datagram networks").
//!
//! The classic online heuristic DCDM competes with: each joining member
//! grafts onto the on-tree node reachable by the cheapest path,
//! ignoring delay entirely. It is the natural "cost-only incremental"
//! counterpart to DCDM's delay-constrained search and brackets DCDM from
//! the opposite side to the SPT: cheaper trees, unbounded delay.

use crate::tree::MulticastTree;
use scmp_net::{Metric, NodeId, PathProvider, Topology};
use std::collections::BTreeSet;

/// Incremental greedy Steiner builder.
#[derive(Clone, Debug)]
pub struct GreedySteiner<'a> {
    topo: &'a Topology,
    paths: &'a dyn PathProvider,
    tree: MulticastTree,
}

impl<'a> GreedySteiner<'a> {
    /// Empty tree rooted at `root`.
    pub fn new(topo: &'a Topology, paths: &'a dyn PathProvider, root: NodeId) -> Self {
        GreedySteiner {
            topo,
            paths,
            tree: MulticastTree::new(topo.node_count(), root),
        }
    }

    /// The current tree.
    pub fn tree(&self) -> &MulticastTree {
        &self.tree
    }

    /// Consume into the tree.
    pub fn into_tree(self) -> MulticastTree {
        self.tree
    }

    /// Join `s`: graft along the least-cost path to the nearest on-tree
    /// node (ties to the lower-id graft node).
    pub fn join(&mut self, s: NodeId) {
        if self.tree.contains(s) {
            self.tree.add_member(s);
            return;
        }
        let best = self
            .tree
            .on_tree_nodes()
            .into_iter()
            .map(|r| {
                (
                    self.paths
                        .distance(s, r, Metric::Cost)
                        .expect("topology is connected"),
                    r,
                )
            })
            .min()
            .expect("tree contains at least the root");
        let mut path = self.paths.path(s, best.1, Metric::Cost).expect("connected");
        path.reverse(); // graft -> … -> s
                        // The least-cost path to the *nearest* on-tree node cannot cross
                        // another on-tree node (that node would be nearer), so plain
                        // attachment suffices — no loop elimination needed.
        let mut prev = path[0];
        for &v in &path[1..] {
            debug_assert!(!self.tree.contains(v), "nearest-node property violated");
            self.tree.attach(prev, v);
            prev = v;
        }
        self.tree.add_member(s);
        debug_assert_eq!(self.tree.validate(Some(self.topo)), Ok(()));
    }

    /// Leave `s`: unmark and prune its dead branch.
    pub fn leave(&mut self, s: NodeId) {
        if self.tree.remove_member(s) {
            self.tree.prune_upward(s, &BTreeSet::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmb::kmb_tree;
    use crate::spt::spt_tree;
    use scmp_net::topology::examples::fig5;
    use scmp_net::AllPairsPaths;

    #[test]
    fn grafts_cheapest_paths_on_fig5() {
        let topo = fig5();
        let paths = AllPairsPaths::compute(&topo);
        let mut g = GreedySteiner::new(&topo, &paths, NodeId(0));
        g.join(NodeId(3)); // cheapest to root: direct (6) ties 3-2-0 (6)
        g.join(NodeId(5)); // nearest on-tree node now 2 or 3
        let t = g.tree();
        assert!(t.is_member(NodeId(3)) && t.is_member(NodeId(5)));
        t.validate(Some(&topo)).unwrap();
        // Greedy cost never exceeds the SPT cost here.
        let spt = spt_tree(&topo, &paths, NodeId(0), &[NodeId(3), NodeId(5)]);
        assert!(t.tree_cost(&topo) <= spt.tree_cost(&topo));
    }

    #[test]
    fn tracks_kmb_closely_on_random_graphs() {
        use rand::seq::SliceRandom;
        use scmp_net::rng::rng_for;
        use scmp_net::topology::{waxman, WaxmanConfig};
        let mut greedy_total = 0u64;
        let mut kmb_total = 0u64;
        for seed in 0..5 {
            let mut rng = rng_for("greedy-test", seed);
            let topo = waxman(
                &WaxmanConfig {
                    n: 40,
                    ..WaxmanConfig::default()
                },
                &mut rng,
            );
            let paths = AllPairsPaths::compute(&topo);
            let mut pool: Vec<NodeId> = topo.nodes().filter(|v| v.0 != 0).collect();
            pool.shuffle(&mut rng);
            let members: Vec<NodeId> = pool.into_iter().take(12).collect();
            let mut g = GreedySteiner::new(&topo, &paths, NodeId(0));
            for &m in &members {
                g.join(m);
            }
            greedy_total += g.tree().tree_cost(&topo);
            kmb_total += kmb_tree(&topo, &paths, NodeId(0), &members).tree_cost(&topo);
        }
        // Online greedy is known to stay within a small factor of KMB.
        assert!(
            greedy_total < kmb_total * 3 / 2,
            "greedy {greedy_total} vs kmb {kmb_total}"
        );
    }

    #[test]
    fn leave_prunes() {
        let topo = fig5();
        let paths = AllPairsPaths::compute(&topo);
        let mut g = GreedySteiner::new(&topo, &paths, NodeId(0));
        g.join(NodeId(5));
        g.leave(NodeId(5));
        assert_eq!(g.tree().on_tree_count(), 1);
        // Leaving a non-member is a no-op.
        g.leave(NodeId(4));
        assert_eq!(g.tree().on_tree_count(), 1);
    }

    #[test]
    fn join_of_forwarder_is_trivial() {
        let topo = fig5();
        let paths = AllPairsPaths::compute(&topo);
        let mut g = GreedySteiner::new(&topo, &paths, NodeId(0));
        g.join(NodeId(5)); // path 0-2-5 or 0-3-2-5 by cost: 0-2 (5) + 2-5 (2) = 7 ✓
        assert!(g.tree().contains(NodeId(2)));
        g.join(NodeId(2)); // already a forwarder
        assert!(g.tree().is_member(NodeId(2)));
    }
}
