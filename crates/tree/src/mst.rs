//! Minimum spanning tree over an arbitrary weighted edge list.
//!
//! Shared by the two MST phases of the KMB Steiner approximation. Prim's
//! algorithm with deterministic tie-breaking on `(weight, a, b)` so that
//! repeated runs produce the same tree.

use scmp_net::NodeId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Compute an MST of the graph given by `edges` (undirected, with
/// weights), restricted to the connected component containing `start`.
///
/// Returns the chosen edges as `(a, b, w)` in discovery order. If the
/// graph is disconnected, only `start`'s component is spanned.
pub fn prim_mst(start: NodeId, edges: &[(NodeId, NodeId, u64)]) -> Vec<(NodeId, NodeId, u64)> {
    let mut adj: HashMap<NodeId, Vec<(NodeId, u64)>> = HashMap::new();
    for &(a, b, w) in edges {
        adj.entry(a).or_default().push((b, w));
        adj.entry(b).or_default().push((a, w));
    }
    for l in adj.values_mut() {
        l.sort_unstable();
    }
    let mut in_tree: HashMap<NodeId, bool> = HashMap::new();
    in_tree.insert(start, true);
    // Heap entries: (weight, from, to) — lexicographic order gives the
    // deterministic tie-break.
    let mut heap: BinaryHeap<Reverse<(u64, NodeId, NodeId)>> = BinaryHeap::new();
    for &(to, w) in adj.get(&start).map(|v| v.as_slice()).unwrap_or(&[]) {
        heap.push(Reverse((w, start, to)));
    }
    let mut out = Vec::new();
    while let Some(Reverse((w, from, to))) = heap.pop() {
        if in_tree.get(&to).copied().unwrap_or(false) {
            continue;
        }
        in_tree.insert(to, true);
        out.push((from, to, w));
        for &(next, nw) in adj.get(&to).map(|v| v.as_slice()).unwrap_or(&[]) {
            if !in_tree.get(&next).copied().unwrap_or(false) {
                heap.push(Reverse((nw, to, next)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn spans_square_with_diagonal() {
        // Square 0-1-2-3 with heavy diagonal 0-2.
        let edges = vec![
            (n(0), n(1), 1),
            (n(1), n(2), 2),
            (n(2), n(3), 1),
            (n(3), n(0), 2),
            (n(0), n(2), 10),
        ];
        let mst = prim_mst(n(0), &edges);
        assert_eq!(mst.len(), 3);
        let total: u64 = mst.iter().map(|e| e.2).sum();
        assert_eq!(total, 4);
        assert!(!mst.iter().any(|&(a, b, _)| (a, b) == (n(0), n(2))));
    }

    #[test]
    fn only_spans_start_component() {
        let edges = vec![(n(0), n(1), 1), (n(2), n(3), 1)];
        let mst = prim_mst(n(0), &edges);
        assert_eq!(mst, vec![(n(0), n(1), 1)]);
    }

    #[test]
    fn empty_graph() {
        assert!(prim_mst(n(0), &[]).is_empty());
    }

    #[test]
    fn deterministic_under_ties() {
        let edges = vec![(n(0), n(1), 5), (n(0), n(2), 5), (n(1), n(2), 5)];
        let a = prim_mst(n(0), &edges);
        let b = prim_mst(n(0), &edges);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        // Tie-break picks (5,0,1) before (5,0,2).
        assert_eq!(a[0], (n(0), n(1), 5));
    }

    #[test]
    fn parallel_edges_pick_lightest() {
        let edges = vec![(n(0), n(1), 9), (n(0), n(1), 2)];
        let mst = prim_mst(n(0), &edges);
        assert_eq!(mst, vec![(n(0), n(1), 2)]);
    }
}
