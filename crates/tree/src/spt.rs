//! Shortest-path (shortest-delay) multicast trees.
//!
//! §IV-A: "the multicast trees constructed by these three algorithms
//! (DVMRP, MOSPF and CBT) are identical because all of the trees are
//! composed of the shortest delay paths between the core/source and the
//! group members" — under the assumption that the CBT core coincides with
//! the source. [`spt_tree`] is that tree: the union of shortest-delay
//! paths from the root to every member, taken from a single Dijkstra run
//! so the union is trivially loop-free.

use crate::tree::MulticastTree;
use scmp_net::{Metric, NodeId, PathProvider, Topology};

/// Build the shortest-delay-path tree rooted at `root` spanning `members`.
pub fn spt_tree(
    topo: &Topology,
    paths: &dyn PathProvider,
    root: NodeId,
    members: &[NodeId],
) -> MulticastTree {
    let mut tree = MulticastTree::new(topo.node_count(), root);
    let spt = paths.tree(root, Metric::Delay);
    for &m in members {
        let p = spt.path_to(m).expect("topology is connected");
        for pair in p.windows(2) {
            if !tree.contains(pair[1]) {
                tree.attach(pair[0], pair[1]);
            }
        }
        tree.add_member(m);
    }
    debug_assert_eq!(tree.validate(Some(topo)), Ok(()));
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use scmp_net::topology::examples::fig5;
    use scmp_net::AllPairsPaths;

    #[test]
    fn members_get_their_unicast_delay() {
        let topo = fig5();
        let ap = AllPairsPaths::compute(&topo);
        let members = [NodeId(3), NodeId(4), NodeId(5)];
        let t = spt_tree(&topo, &ap, NodeId(0), &members);
        for m in members {
            assert_eq!(
                t.multicast_delay(&topo, m),
                ap.unicast_delay(NodeId(0), m),
                "SPT must deliver at unicast delay"
            );
        }
        // Tree delay equals max unicast delay — the optimum.
        assert_eq!(t.tree_delay(&topo), 12);
    }

    #[test]
    fn shares_common_prefixes() {
        let topo = fig5();
        let ap = AllPairsPaths::compute(&topo);
        // Members 5 and 2 share the prefix 0-2.
        let t = spt_tree(&topo, &ap, NodeId(0), &[NodeId(5), NodeId(2)]);
        assert_eq!(t.children(NodeId(0)).len(), 1);
        assert_eq!(t.parent(NodeId(5)), Some(NodeId(2)));
    }

    #[test]
    fn empty_group() {
        let topo = fig5();
        let ap = AllPairsPaths::compute(&topo);
        let t = spt_tree(&topo, &ap, NodeId(0), &[]);
        assert_eq!(t.on_tree_count(), 1);
        assert_eq!(t.tree_cost(&topo), 0);
    }

    #[test]
    fn root_membership() {
        let topo = fig5();
        let ap = AllPairsPaths::compute(&topo);
        let t = spt_tree(&topo, &ap, NodeId(0), &[NodeId(0), NodeId(4)]);
        assert!(t.is_member(NodeId(0)));
        assert_eq!(t.multicast_delay(&topo, NodeId(0)), Some(0));
    }
}
