//! Tree quality analysis — the per-member breakdown behind Fig. 7's
//! aggregate numbers.
//!
//! The paper reports only tree cost and tree delay; when comparing
//! algorithms it is often more informative to look at the *distribution*
//! of member delays (how badly KMB hurts the worst member, how much
//! slack DCDM leaves under its bound) and the *delay stretch* of each
//! member relative to its unicast optimum. This module computes both.

use crate::tree::MulticastTree;
use scmp_net::{NodeId, PathProvider, Topology};
use serde::Serialize;

/// Per-member delay record.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct MemberDelay {
    /// The member.
    pub member: NodeId,
    /// Its multicast delay `ml` on the tree.
    pub multicast_delay: u64,
    /// Its unicast delay `ul` to the root (the optimum).
    pub unicast_delay: u64,
    /// `ml / ul` (1.0 when the tree path is the shortest-delay path).
    pub stretch: f64,
}

/// Full quality report for one tree.
#[derive(Clone, Debug, Serialize)]
pub struct TreeReport {
    /// Tree cost (Σ link costs).
    pub cost: u64,
    /// Tree delay (max member `ml`).
    pub delay: u64,
    /// Number of members / on-tree routers.
    pub members: usize,
    pub routers: usize,
    /// Per-member delays, sorted by member id.
    pub member_delays: Vec<MemberDelay>,
    /// Mean and maximum delay stretch over members.
    pub mean_stretch: f64,
    pub max_stretch: f64,
}

/// Analyse `tree` against `topo`/`paths`.
pub fn analyze(topo: &Topology, paths: &dyn PathProvider, tree: &MulticastTree) -> TreeReport {
    let root = tree.root();
    let mut member_delays = Vec::new();
    let mut stretch_sum = 0.0;
    let mut max_stretch: f64 = 0.0;
    for m in tree.members() {
        let ml = tree.multicast_delay(topo, m).expect("member on tree");
        let ul = paths.unicast_delay(root, m).expect("connected");
        let stretch = if ul == 0 { 1.0 } else { ml as f64 / ul as f64 };
        stretch_sum += stretch;
        max_stretch = max_stretch.max(stretch);
        member_delays.push(MemberDelay {
            member: m,
            multicast_delay: ml,
            unicast_delay: ul,
            stretch,
        });
    }
    let count = member_delays.len();
    TreeReport {
        cost: tree.tree_cost(topo),
        delay: tree.tree_delay(topo),
        members: count,
        routers: tree.on_tree_count(),
        member_delays,
        mean_stretch: if count == 0 {
            0.0
        } else {
            stretch_sum / count as f64
        },
        max_stretch,
    }
}

/// Compact per-tree health sample — the integer projection of
/// [`TreeReport`] that rides a telemetry event (see
/// `scmp_telemetry::EventKind::TreeHealth`). Floats are scaled to
/// milli-units so the sample stays exactly comparable across runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct TreeHealthSample {
    /// Member count.
    pub members: u32,
    /// Deepest member, in tree hops from the root.
    pub depth: u32,
    /// Tree cost (Σ link costs).
    pub cost: u64,
    /// Mean member delay stretch vs unicast, in milli-units
    /// (1000 = every member rides its shortest-delay path).
    pub stretch_milli: u64,
    /// Member delay variation: max − min multicast delay (0 with fewer
    /// than two members).
    pub delay_var: u64,
}

/// Condense a tree into a [`TreeHealthSample`] against `topo`/`paths`.
pub fn health(topo: &Topology, paths: &dyn PathProvider, tree: &MulticastTree) -> TreeHealthSample {
    let r = analyze(topo, paths, tree);
    let depth = tree
        .members()
        .filter_map(|m| tree.path_from_root(m))
        .map(|p| (p.len().saturating_sub(1)) as u32)
        .max()
        .unwrap_or(0);
    let delay_var = match (
        r.member_delays.iter().map(|d| d.multicast_delay).max(),
        r.member_delays.iter().map(|d| d.multicast_delay).min(),
    ) {
        (Some(hi), Some(lo)) => hi - lo,
        _ => 0,
    };
    TreeHealthSample {
        members: r.members as u32,
        depth,
        cost: r.cost,
        stretch_milli: (r.mean_stretch * 1000.0).round() as u64,
        delay_var,
    }
}

/// Per-link usage ("stress") of a set of trees over the same topology:
/// how many trees traverse each link — the hot-link profile of a domain
/// running many groups.
pub fn link_stress(trees: &[&MulticastTree]) -> std::collections::BTreeMap<(NodeId, NodeId), u32> {
    let mut stress = std::collections::BTreeMap::new();
    for t in trees {
        for (p, c) in t.edges() {
            let key = if p < c { (p, c) } else { (c, p) };
            *stress.entry(key).or_insert(0) += 1;
        }
    }
    stress
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcdm::{Dcdm, DelayBound};
    use crate::spt::spt_tree;
    use scmp_net::topology::examples::fig5;
    use scmp_net::AllPairsPaths;

    #[test]
    fn spt_has_unit_stretch() {
        let topo = fig5();
        let paths = AllPairsPaths::compute(&topo);
        let members = [NodeId(3), NodeId(4), NodeId(5)];
        let t = spt_tree(&topo, &paths, NodeId(0), &members);
        let r = analyze(&topo, &paths, &t);
        assert_eq!(r.members, 3);
        assert!((r.mean_stretch - 1.0).abs() < 1e-12);
        assert!((r.max_stretch - 1.0).abs() < 1e-12);
        assert_eq!(r.delay, 12);
    }

    #[test]
    fn dcdm_stretch_bounded_by_dynamic_bound() {
        let topo = fig5();
        let paths = AllPairsPaths::compute(&topo);
        let mut d = Dcdm::new(&topo, &paths, NodeId(0), DelayBound::Dynamic);
        for m in [NodeId(4), NodeId(3), NodeId(5)] {
            d.join(m);
        }
        let r = analyze(&topo, &paths, d.tree());
        // g2 = node 3: ml 8 (after the Fig. 5(d) restructure), ul 2.
        let g2 = r
            .member_delays
            .iter()
            .find(|m| m.member == NodeId(3))
            .unwrap();
        assert_eq!(g2.multicast_delay, 8);
        assert_eq!(g2.unicast_delay, 2);
        assert!((g2.stretch - 4.0).abs() < 1e-12);
        assert!(r.max_stretch >= r.mean_stretch);
        assert_eq!(r.cost, 17);
    }

    #[test]
    fn empty_tree_report() {
        let topo = fig5();
        let paths = AllPairsPaths::compute(&topo);
        let t = MulticastTree::new(6, NodeId(0));
        let r = analyze(&topo, &paths, &t);
        assert_eq!(r.members, 0);
        assert_eq!(r.mean_stretch, 0.0);
        assert_eq!(r.routers, 1);
    }

    #[test]
    fn health_condenses_the_report() {
        let topo = fig5();
        let paths = AllPairsPaths::compute(&topo);
        let members = [NodeId(3), NodeId(4), NodeId(5)];
        let t = spt_tree(&topo, &paths, NodeId(0), &members);
        let h = health(&topo, &paths, &t);
        let r = analyze(&topo, &paths, &t);
        assert_eq!(h.members, 3);
        assert_eq!(h.cost, r.cost);
        assert_eq!(h.stretch_milli, 1000); // SPT: unit stretch
        assert!(h.depth >= 1);
        let delays: Vec<u64> = r.member_delays.iter().map(|d| d.multicast_delay).collect();
        let var = delays.iter().max().unwrap() - delays.iter().min().unwrap();
        assert_eq!(h.delay_var, var);
        // Empty tree: all-zero sample, no panic.
        let empty = MulticastTree::new(6, NodeId(0));
        let hz = health(&topo, &paths, &empty);
        assert_eq!(
            (hz.members, hz.depth, hz.delay_var, hz.stretch_milli),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn link_stress_counts_shared_links() {
        let topo = fig5();
        let paths = AllPairsPaths::compute(&topo);
        let t1 = spt_tree(&topo, &paths, NodeId(0), &[NodeId(4)]); // 0-1-4
        let t2 = spt_tree(&topo, &paths, NodeId(0), &[NodeId(1)]); // 0-1
        let stress = link_stress(&[&t1, &t2]);
        assert_eq!(stress[&(NodeId(0), NodeId(1))], 2);
        assert_eq!(stress[&(NodeId(1), NodeId(4))], 1);
        assert_eq!(stress.len(), 2);
    }
}
