//! The Kou–Markowsky–Berman Steiner-tree approximation (paper ref \[19\]).
//!
//! Fig. 7 uses KMB as the cost-optimised comparison point: it "achieves
//! best approximation ratio on tree cost, but it does not consider tree
//! delay". The classic five steps:
//!
//! 1. Build the metric closure over the terminals (root ∪ members) under
//!    the *least-cost* distance.
//! 2. Take an MST of that closure.
//! 3. Expand each closure edge into its underlying least-cost path,
//!    forming a subgraph of the original topology.
//! 4. Take an MST of the subgraph.
//! 5. Repeatedly delete non-terminal leaves.
//!
//! The result costs at most `2·(1 − 1/ℓ)` times the optimum.

use crate::mst::prim_mst;
use crate::tree::MulticastTree;
use scmp_net::{Metric, NodeId, PathProvider, Topology};
use std::collections::{BTreeMap, BTreeSet};

/// Build a KMB Steiner tree rooted at `root` spanning `members`.
///
/// `members` may include `root` and may be empty (yielding the trivial
/// root-only tree). Duplicate members are tolerated.
pub fn kmb_tree(
    topo: &Topology,
    paths: &dyn PathProvider,
    root: NodeId,
    members: &[NodeId],
) -> MulticastTree {
    let mut terminals: BTreeSet<NodeId> = members.iter().copied().collect();
    terminals.insert(root);
    if terminals.len() == 1 {
        let mut t = MulticastTree::new(topo.node_count(), root);
        if members.contains(&root) {
            t.add_member(root);
        }
        return t;
    }

    // Step 1+2: MST of the metric closure on terminals.
    let ts: Vec<NodeId> = terminals.iter().copied().collect();
    let mut closure = Vec::with_capacity(ts.len() * (ts.len() - 1) / 2);
    for (i, &a) in ts.iter().enumerate() {
        for &b in &ts[i + 1..] {
            let d = paths
                .distance(a, b, Metric::Cost)
                .expect("topology is connected");
            closure.push((a, b, d));
        }
    }
    let closure_mst = prim_mst(root, &closure);

    // Step 3: expand closure edges into real paths; dedupe links.
    let mut sub_edges: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
    for (a, b, _) in closure_mst {
        let p = paths.path(a, b, Metric::Cost).expect("connected");
        for pair in p.windows(2) {
            let (u, v) = (pair[0], pair[1]);
            let key = if u < v { (u, v) } else { (v, u) };
            let w = topo.link(u, v).expect("path follows links").cost;
            sub_edges.insert(key, w);
        }
    }

    // Step 4: MST of the expanded subgraph.
    let sub_list: Vec<(NodeId, NodeId, u64)> =
        sub_edges.iter().map(|(&(a, b), &w)| (a, b, w)).collect();
    let sub_mst = prim_mst(root, &sub_list);

    // Orient the MST away from the root.
    let mut children: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    let mut parent: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    for (from, to, _) in &sub_mst {
        // Prim discovery order means `from` is already connected to root.
        children.entry(*from).or_default().push(*to);
        parent.insert(*to, *from);
    }

    // Step 5: drop non-terminal leaves repeatedly.
    let mut alive: BTreeSet<NodeId> = parent.keys().copied().collect();
    alive.insert(root);
    loop {
        let leaves: Vec<NodeId> = alive
            .iter()
            .copied()
            .filter(|v| {
                *v != root
                    && !terminals.contains(v)
                    && children
                        .get(v)
                        .is_none_or(|cs| cs.iter().all(|c| !alive.contains(c)))
            })
            .collect();
        if leaves.is_empty() {
            break;
        }
        for l in leaves {
            alive.remove(&l);
        }
    }

    // Materialise as a MulticastTree (attach in root-first order).
    let mut tree = MulticastTree::new(topo.node_count(), root);
    let mut stack = vec![root];
    while let Some(v) = stack.pop() {
        if let Some(cs) = children.get(&v) {
            for &c in cs {
                if alive.contains(&c) {
                    tree.attach(v, c);
                    stack.push(c);
                }
            }
        }
    }
    for &m in members {
        tree.add_member(m);
    }
    debug_assert_eq!(tree.validate(Some(topo)), Ok(()));
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use scmp_net::graph::{LinkWeight, TopologyBuilder};
    use scmp_net::topology::examples::fig5;
    use scmp_net::AllPairsPaths;

    #[test]
    fn spans_all_members() {
        let topo = fig5();
        let ap = AllPairsPaths::compute(&topo);
        let members = [NodeId(3), NodeId(4), NodeId(5)];
        let t = kmb_tree(&topo, &ap, NodeId(0), &members);
        t.validate(Some(&topo)).unwrap();
        for m in members {
            assert!(t.is_member(m));
            assert!(t.contains(m));
        }
    }

    #[test]
    fn cost_at_most_spt_cost_on_fig5() {
        let topo = fig5();
        let ap = AllPairsPaths::compute(&topo);
        let members = [NodeId(3), NodeId(4), NodeId(5)];
        let kmb = kmb_tree(&topo, &ap, NodeId(0), &members);
        let spt = crate::spt::spt_tree(&topo, &ap, NodeId(0), &members);
        assert!(kmb.tree_cost(&topo) <= spt.tree_cost(&topo));
    }

    #[test]
    fn steiner_node_used_when_cheaper() {
        // Star around node 4 with expensive pairwise shortcuts: the
        // Steiner tree must route through hub 4.
        let mut b = TopologyBuilder::new(5);
        for leaf in 0..4u32 {
            b.add_link(NodeId(leaf), NodeId(4), LinkWeight::new(1, 1));
        }
        b.add_link(NodeId(0), NodeId(1), LinkWeight::new(1, 10));
        b.add_link(NodeId(1), NodeId(2), LinkWeight::new(1, 10));
        let topo = b.build();
        let ap = AllPairsPaths::compute(&topo);
        let t = kmb_tree(&topo, &ap, NodeId(0), &[NodeId(1), NodeId(2), NodeId(3)]);
        assert!(t.contains(NodeId(4)), "hub must be a Steiner node");
        assert_eq!(t.tree_cost(&topo), 4);
    }

    #[test]
    fn prunes_non_terminal_leaves() {
        let topo = fig5();
        let ap = AllPairsPaths::compute(&topo);
        let t = kmb_tree(&topo, &ap, NodeId(0), &[NodeId(3)]);
        // Every leaf of the final tree must be a member (or the root).
        for v in t.on_tree_nodes() {
            if t.children(v).is_empty() && v != t.root() {
                assert!(t.is_member(v), "non-terminal leaf {v:?}");
            }
        }
    }

    #[test]
    fn empty_and_root_only_groups() {
        let topo = fig5();
        let ap = AllPairsPaths::compute(&topo);
        let t = kmb_tree(&topo, &ap, NodeId(0), &[]);
        assert_eq!(t.on_tree_count(), 1);
        let t2 = kmb_tree(&topo, &ap, NodeId(0), &[NodeId(0)]);
        assert!(t2.is_member(NodeId(0)));
        assert_eq!(t2.on_tree_count(), 1);
    }

    #[test]
    fn duplicate_members_tolerated() {
        let topo = fig5();
        let ap = AllPairsPaths::compute(&topo);
        let t = kmb_tree(&topo, &ap, NodeId(0), &[NodeId(3), NodeId(3)]);
        assert_eq!(t.member_count(), 1);
        t.validate(Some(&topo)).unwrap();
    }

    #[test]
    fn deterministic() {
        let topo = fig5();
        let ap = AllPairsPaths::compute(&topo);
        let members = [NodeId(5), NodeId(4)];
        let a = kmb_tree(&topo, &ap, NodeId(0), &members);
        let b = kmb_tree(&topo, &ap, NodeId(0), &members);
        assert_eq!(a.edges(), b.edges());
    }
}
