//! Post-failure tree assessment: which part of an installed multicast
//! tree survives a set of link/node failures, and which members are
//! orphaned.
//!
//! SCMP repairs trees centrally: the m-router periodically checks every
//! mirrored tree against the domain's current liveness view (the IGP's
//! link-state database) and re-runs DCDM over the surviving topology
//! for the members it can still reach. This module provides the
//! assessment half — a pure structural walk over the mirrored tree,
//! independent of the simulator.

use crate::tree::MulticastTree;
use scmp_net::NodeId;
use std::collections::BTreeSet;

/// The result of checking a tree against a liveness view.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TreeDamage {
    /// Tree edges `(parent, child)` whose link or child endpoint is
    /// dead. Subtrees below these edges are detached from the root.
    pub broken_edges: Vec<(NodeId, NodeId)>,
    /// Every on-tree node no longer connected to the root *through the
    /// tree* (the root itself is never listed, even when dead).
    pub detached: BTreeSet<NodeId>,
    /// The subset of `detached` that are members — the receivers that
    /// stopped hearing data and need re-grafting.
    pub orphaned_members: Vec<NodeId>,
}

impl TreeDamage {
    /// True when every tree edge survived.
    pub fn is_intact(&self) -> bool {
        self.broken_edges.is_empty()
    }
}

/// Walk `tree` from the root over live edges only and report what broke.
///
/// `node_up(v)` is the liveness of router `v`; `link_up(a, b)` the
/// liveness of the (undirected) link `a`–`b`. A tree edge survives iff
/// both endpoints and the link are up; everything below a failed edge is
/// detached even if later edges are individually fine.
pub fn assess(
    tree: &MulticastTree,
    mut node_up: impl FnMut(NodeId) -> bool,
    mut link_up: impl FnMut(NodeId, NodeId) -> bool,
) -> TreeDamage {
    let mut damage = TreeDamage::default();
    let root = tree.root();
    let mut alive: BTreeSet<NodeId> = BTreeSet::new();
    if node_up(root) {
        alive.insert(root);
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            for &c in tree.children(v) {
                if node_up(c) && link_up(v, c) {
                    alive.insert(c);
                    stack.push(c);
                } else {
                    damage.broken_edges.push((v, c));
                }
            }
        }
    } else {
        // Dead root: every child edge is broken at the source.
        for &c in tree.children(root) {
            damage.broken_edges.push((root, c));
        }
    }
    for v in tree.on_tree_nodes() {
        if v != root && !alive.contains(&v) {
            damage.detached.insert(v);
            if tree.is_member(v) {
                damage.orphaned_members.push(v);
            }
        }
    }
    damage
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tree over 7 nodes: 0 -> 1 -> 3, 1 -> 4, 0 -> 2 -> 5, 5 -> 6,
    /// members {3, 4, 5, 6}.
    fn sample() -> MulticastTree {
        let mut t = MulticastTree::new(7, NodeId(0));
        t.attach(NodeId(0), NodeId(1));
        t.attach(NodeId(1), NodeId(3));
        t.attach(NodeId(1), NodeId(4));
        t.attach(NodeId(0), NodeId(2));
        t.attach(NodeId(2), NodeId(5));
        t.attach(NodeId(5), NodeId(6));
        for m in [3u32, 4, 5, 6] {
            t.add_member(NodeId(m));
        }
        t
    }

    #[test]
    fn intact_when_everything_up() {
        let d = assess(&sample(), |_| true, |_, _| true);
        assert!(d.is_intact());
        assert!(d.detached.is_empty());
        assert!(d.orphaned_members.is_empty());
    }

    #[test]
    fn cut_link_detaches_subtree() {
        let d = assess(
            &sample(),
            |_| true,
            |a, b| !(a == NodeId(0) && b == NodeId(1) || a == NodeId(1) && b == NodeId(0)),
        );
        assert_eq!(d.broken_edges, vec![(NodeId(0), NodeId(1))]);
        assert_eq!(
            d.detached,
            [NodeId(1), NodeId(3), NodeId(4)].into_iter().collect()
        );
        assert_eq!(d.orphaned_members, vec![NodeId(3), NodeId(4)]);
    }

    #[test]
    fn dead_forwarder_orphans_descendants() {
        let d = assess(&sample(), |v| v != NodeId(5), |_, _| true);
        assert_eq!(d.broken_edges, vec![(NodeId(2), NodeId(5))]);
        assert_eq!(d.detached, [NodeId(5), NodeId(6)].into_iter().collect());
        // Node 5 itself is a member and dead; 6 is a live orphan.
        assert_eq!(d.orphaned_members, vec![NodeId(5), NodeId(6)]);
    }

    #[test]
    fn off_tree_failures_do_not_matter() {
        // Links not on the tree (e.g. 3-4) and nodes not on the tree can
        // fail freely without damaging it.
        let d = assess(
            &sample(),
            |_| true,
            |a, b| !(a.0.min(b.0) == 3 && a.0.max(b.0) == 4),
        );
        assert!(d.is_intact());
    }

    #[test]
    fn dead_root_detaches_everyone() {
        let d = assess(&sample(), |v| v != NodeId(0), |_, _| true);
        assert_eq!(d.broken_edges.len(), 2);
        assert_eq!(d.detached.len(), 6);
        assert_eq!(d.orphaned_members.len(), 4);
    }

    #[test]
    fn deep_break_only_detaches_below() {
        let d = assess(
            &sample(),
            |_| true,
            |a, b| !(a.0.min(b.0) == 5 && a.0.max(b.0) == 6),
        );
        assert_eq!(d.broken_edges, vec![(NodeId(5), NodeId(6))]);
        assert_eq!(d.detached, [NodeId(6)].into_iter().collect());
        assert_eq!(d.orphaned_members, vec![NodeId(6)]);
    }
}
