//! DCDM — Delay-Constrained Dynamic Multicast tree construction.
//!
//! This is the algorithm of the paper's reference \[20\] (Yang & Yang,
//! ICCCN 2005) as summarised in §III-D and walked through in Fig. 5:
//!
//! * When a member `s` joins, consider the `2m` precomputed paths
//!   (`P_lc` and `P_sl` from `s` to each of the `m` on-tree routers);
//!   among those whose resulting *multicast delay* `ml(s)` stays within
//!   the delay bound, graft the one with the least cost.
//! * Under the **dynamic** bound (the paper's formulation), the bound is
//!   the current tree delay; a joiner whose unicast delay exceeds it is
//!   connected by its shortest-delay path to the m-router and raises the
//!   bound to its own `ul`.
//! * When an added path crosses a router that is already on the tree, the
//!   old upstream branch of that router is pruned (Fig. 5(c)→(d)) so the
//!   structure stays a tree.
//! * When a member leaves, its branch is pruned upward until a member or
//!   a branching router is reached.

use crate::tree::MulticastTree;
use scmp_net::{Metric, NodeId, PathProvider, Topology};
use std::collections::BTreeSet;

/// The delay bound regime for DCDM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelayBound {
    /// The paper's dynamic bound: the longest unicast delay seen so far
    /// (equivalently, the current tree delay).
    Dynamic,
    /// A fixed end-to-end delay constraint (used for the Fig. 7
    /// tightest/moderate/loosest sweeps).
    Fixed(u64),
}

/// What a join did to the tree — the SCMP m-router uses this to decide
/// between a BRANCH packet (simple graft) and a full TREE packet rebuild
/// (loop elimination restructured the tree).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinOutcome {
    /// The on-tree router the new path was grafted at.
    pub graft: NodeId,
    /// The added path, from the graft node to the new member.
    pub path: Vec<NodeId>,
    /// On-tree routers whose upstream changed (loop eliminations).
    pub reparented: Vec<NodeId>,
    /// Routers pruned off the tree while breaking loops.
    pub pruned: Vec<NodeId>,
    /// True when no candidate satisfied a fixed bound and the algorithm
    /// fell back to the shortest-delay path from the root.
    pub violated_bound: bool,
}

impl JoinOutcome {
    /// True iff the join only appended new routers (no restructuring) —
    /// the case a BRANCH packet can describe.
    pub fn is_simple_graft(&self) -> bool {
        self.reparented.is_empty() && self.pruned.is_empty()
    }
}

/// Incremental DCDM tree builder, owned by the m-router.
#[derive(Clone, Debug)]
pub struct Dcdm<'a> {
    topo: &'a Topology,
    paths: &'a dyn PathProvider,
    tree: MulticastTree,
    bound: DelayBound,
    /// Which precomputed path families feed the candidate search.
    /// The paper uses both (`P_lc` and `P_sl`, "2m paths"); the
    /// `ablation_paths` bench restricts this to quantify the design
    /// choice.
    candidate_metrics: Vec<Metric>,
}

impl<'a> Dcdm<'a> {
    /// Start with an empty tree rooted at the m-router.
    pub fn new(
        topo: &'a Topology,
        paths: &'a dyn PathProvider,
        root: NodeId,
        bound: DelayBound,
    ) -> Self {
        Dcdm {
            topo,
            paths,
            tree: MulticastTree::new(topo.node_count(), root),
            bound,
            candidate_metrics: vec![Metric::Cost, Metric::Delay],
        }
    }

    /// Restrict the candidate path families (ablation hook). Passing
    /// both metrics restores the paper's behaviour.
    ///
    /// # Panics
    /// If `metrics` is empty.
    pub fn set_candidate_metrics(&mut self, metrics: &[Metric]) {
        assert!(!metrics.is_empty(), "need at least one path family");
        self.candidate_metrics = metrics.to_vec();
    }

    /// Resume DCDM from an existing tree (the SCMP m-router stores one
    /// [`MulticastTree`] per group and reconstitutes the builder per
    /// membership change).
    ///
    /// # Panics
    /// If the tree's node capacity does not match the topology.
    pub fn with_tree(
        topo: &'a Topology,
        paths: &'a dyn PathProvider,
        tree: MulticastTree,
        bound: DelayBound,
    ) -> Self {
        assert_eq!(
            tree.node_capacity(),
            topo.node_count(),
            "tree/topology mismatch"
        );
        Dcdm {
            topo,
            paths,
            tree,
            bound,
            candidate_metrics: vec![Metric::Cost, Metric::Delay],
        }
    }

    /// The current tree.
    pub fn tree(&self) -> &MulticastTree {
        &self.tree
    }

    /// The configured bound regime.
    pub fn bound(&self) -> DelayBound {
        self.bound
    }

    /// Consume the builder, returning the tree.
    pub fn into_tree(self) -> MulticastTree {
        self.tree
    }

    /// Join member `s`, returning what changed.
    pub fn join(&mut self, s: NodeId) -> JoinOutcome {
        let _span = scmp_telemetry::TimedScope::new(scmp_telemetry::Span::DcdmBuild);
        if self.tree.contains(s) {
            // Already a forwarder (or the root itself): just mark it.
            self.tree.add_member(s);
            return JoinOutcome {
                graft: s,
                path: vec![s],
                reparented: Vec::new(),
                pruned: Vec::new(),
                violated_bound: false,
            };
        }
        let root = self.tree.root();
        let ul = self
            .paths
            .unicast_delay(s, root)
            .expect("topology is connected");
        let (limit, force_shortest) = match self.bound {
            DelayBound::Dynamic => {
                let l = self.tree.tree_delay(self.topo);
                if ul > l {
                    (ul, true)
                } else {
                    (l, false)
                }
            }
            DelayBound::Fixed(b) => (b, false),
        };

        let (path_to_graft, violated) = if force_shortest {
            (
                self.paths.path(s, root, Metric::Delay).expect("connected"),
                false,
            )
        } else {
            match self.best_candidate(s, limit) {
                Some(p) => (p, false),
                None => (
                    // No feasible graft under a fixed bound tighter than
                    // ul(s): fall back to the best achievable delay.
                    self.paths.path(s, root, Metric::Delay).expect("connected"),
                    true,
                ),
            }
        };

        // path_to_graft runs s -> … -> graft; attach walking graft -> s.
        let mut path = path_to_graft;
        path.reverse();
        let mut outcome = self.attach_path(&path);
        outcome.violated_bound = violated;
        self.tree.add_member(s);
        debug_assert_eq!(self.tree.validate(Some(self.topo)), Ok(()));
        outcome
    }

    /// Member `s` leaves: unmark and prune its branch. Returns the pruned
    /// routers (empty when `s` stays as a forwarder).
    pub fn leave(&mut self, s: NodeId) -> Vec<NodeId> {
        let _span = scmp_telemetry::TimedScope::new(scmp_telemetry::Span::DcdmBuild);
        if !self.tree.remove_member(s) {
            return Vec::new();
        }
        let pruned = self.tree.prune_upward(s, &BTreeSet::new());
        debug_assert_eq!(self.tree.validate(Some(self.topo)), Ok(()));
        pruned
    }

    /// Evaluate the `2m` candidate paths and return the cheapest feasible
    /// one (as a path `s -> … -> graft`), or `None` if none satisfies
    /// `ml(s) ≤ limit`.
    ///
    /// Ties are broken by (cost, resulting delay, graft id) so the result
    /// is deterministic.
    fn best_candidate(&self, s: NodeId, limit: u64) -> Option<Vec<NodeId>> {
        let mut best: Option<(u64, u64, NodeId, Vec<NodeId>)> = None;
        for r in self.tree.on_tree_nodes() {
            let ml_r = self
                .tree
                .multicast_delay(self.topo, r)
                .expect("on-tree node");
            for &metric in &self.candidate_metrics {
                let p = self.paths.path(s, r, metric).expect("connected");
                let w = self.topo.path_weight(&p).expect("valid path");
                let ml_s = ml_r + w.delay;
                if ml_s > limit {
                    continue;
                }
                let key = (w.cost, ml_s, r);
                let better = match &best {
                    None => true,
                    Some((bc, bd, br, _)) => key < (*bc, *bd, *br),
                };
                if better {
                    best = Some((w.cost, ml_s, r, p));
                }
            }
        }
        best.map(|(_, _, _, p)| p)
    }

    /// Attach `path` (`graft -> … -> new member`) to the tree, performing
    /// the paper's loop elimination whenever the path crosses an on-tree
    /// router.
    fn attach_path(&mut self, path: &[NodeId]) -> JoinOutcome {
        debug_assert!(self.tree.contains(path[0]), "graft node must be on tree");
        let keep: BTreeSet<NodeId> = path.iter().copied().collect();
        let mut reparented = Vec::new();
        let mut pruned = Vec::new();
        let mut prev = path[0];
        for &v in &path[1..] {
            if !self.tree.contains(v) {
                self.tree.attach(prev, v);
                prev = v;
                continue;
            }
            // `v` is already on the tree: break the loop by pruning its
            // old upstream branch and adopting it under `prev`
            // (Fig. 5(c) -> (d)).
            if self.tree.in_subtree(prev, v) {
                // Degenerate case: `prev` already hangs below `v`
                // (the path climbed back over its own attachment point).
                // Reparenting would detach the subtree from the root, so
                // instead restart the graft at `v` and garbage-collect
                // the dead-end stub we just built.
                let stub = self.tree.prune_upward(prev, &BTreeSet::new());
                pruned.extend(stub);
                prev = v;
                continue;
            }
            let old_parent = self.tree.parent(v);
            self.tree.reparent(v, prev);
            reparented.push(v);
            if let Some(op) = old_parent {
                pruned.extend(self.tree.prune_upward(op, &keep));
            }
            prev = v;
        }
        JoinOutcome {
            graft: path[0],
            path: path.to_vec(),
            reparented,
            pruned,
            violated_bound: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scmp_net::topology::examples::fig5;
    use scmp_net::AllPairsPaths;

    fn setup(topo: &Topology) -> AllPairsPaths {
        AllPairsPaths::compute(topo)
    }

    /// The complete Fig. 5 walkthrough: joins of g1, g2, g3 reproduce the
    /// paper's trees (b), (d) including the loop elimination.
    #[test]
    fn fig5_walkthrough() {
        let topo = fig5();
        let ap = setup(&topo);
        let mut d = Dcdm::new(&topo, &ap, NodeId(0), DelayBound::Dynamic);

        // g1 = node 4: first member, shortest-delay path 0-1-4 (delay 12).
        let o1 = d.join(NodeId(4));
        assert_eq!(o1.path, vec![NodeId(0), NodeId(1), NodeId(4)]);
        assert!(o1.is_simple_graft());
        assert_eq!(d.tree().tree_delay(&topo), 12);

        // g2 = node 3: grafts at node 1 via 1-2-3 (cost +3, ml = 10).
        let o2 = d.join(NodeId(3));
        assert_eq!(o2.graft, NodeId(1));
        assert_eq!(o2.path, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert!(o2.is_simple_graft());
        assert_eq!(d.tree().tree_delay(&topo), 12);
        assert_eq!(d.tree().tree_cost(&topo), 12);

        // g3 = node 5: only node 0 is a feasible graft; the added path
        // 0-2-5 crosses on-tree node 2, triggering loop elimination that
        // reparents 2 under 0 (paper: "prunes the tree upstream from
        // node 2 until it reaches node 1").
        let o3 = d.join(NodeId(5));
        assert_eq!(o3.graft, NodeId(0));
        assert_eq!(o3.path, vec![NodeId(0), NodeId(2), NodeId(5)]);
        assert_eq!(o3.reparented, vec![NodeId(2)]);
        assert!(o3.pruned.is_empty()); // node 1 keeps child 4
        let mut edges = d.tree().edges();
        edges.sort();
        assert_eq!(
            edges,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(1), NodeId(4)),
                (NodeId(2), NodeId(3)),
                (NodeId(2), NodeId(5)),
            ]
        );
        assert_eq!(d.tree().tree_delay(&topo), 12);
        assert_eq!(d.tree().tree_cost(&topo), 17);
    }

    #[test]
    fn leave_prunes_branch() {
        let topo = fig5();
        let ap = setup(&topo);
        let mut d = Dcdm::new(&topo, &ap, NodeId(0), DelayBound::Dynamic);
        d.join(NodeId(4));
        d.join(NodeId(3));
        // g1 leaves: branch 4, then 1? No — 1 still forwards to 2-3.
        let pruned = d.leave(NodeId(4));
        assert_eq!(pruned, vec![NodeId(4)]);
        assert!(d.tree().contains(NodeId(1)));
        // g2 leaves: everything but the root goes.
        let pruned = d.leave(NodeId(3));
        assert_eq!(pruned, vec![NodeId(3), NodeId(2), NodeId(1)]);
        assert_eq!(d.tree().on_tree_count(), 1);
    }

    #[test]
    fn leave_of_forwarding_member_keeps_node() {
        let topo = fig5();
        let ap = setup(&topo);
        let mut d = Dcdm::new(&topo, &ap, NodeId(0), DelayBound::Dynamic);
        d.join(NodeId(4)); // tree 0-1-4
        d.join(NodeId(1)); // node 1 already a forwarder: becomes member
        assert!(d.tree().is_member(NodeId(1)));
        let pruned = d.leave(NodeId(1));
        assert!(pruned.is_empty(), "still forwards toward 4");
        assert!(d.tree().contains(NodeId(1)));
    }

    #[test]
    fn rejoin_after_leave_is_clean() {
        let topo = fig5();
        let ap = setup(&topo);
        let mut d = Dcdm::new(&topo, &ap, NodeId(0), DelayBound::Dynamic);
        d.join(NodeId(5));
        d.leave(NodeId(5));
        assert_eq!(d.tree().on_tree_count(), 1);
        let o = d.join(NodeId(5));
        assert!(o.is_simple_graft());
        assert_eq!(d.tree().tree_delay(&topo), 11);
    }

    #[test]
    fn fixed_bound_steers_graft_choice() {
        let topo = fig5();
        let ap = setup(&topo);
        // Bound 10: g2 can still graft via node 1 (ml = 10).
        let mut d = Dcdm::new(&topo, &ap, NodeId(0), DelayBound::Fixed(10));
        d.join(NodeId(4)); // ul = 12 > 10: fallback is NOT taken — the
                           // candidate search runs and finds none ≤ 10.
        let t = d.tree();
        assert!(t.contains(NodeId(4)));
        assert_eq!(t.tree_delay(&topo), 12); // best achievable

        // Bound 5: g2 must take the direct (2,6) link, not the cheap path.
        let mut d2 = Dcdm::new(&topo, &ap, NodeId(0), DelayBound::Fixed(5));
        let o = d2.join(NodeId(3));
        assert_eq!(o.path, vec![NodeId(0), NodeId(3)]);
        assert!(!o.violated_bound);
        assert_eq!(d2.tree().tree_delay(&topo), 2);
    }

    #[test]
    fn fixed_bound_fallback_flags_violation() {
        let topo = fig5();
        let ap = setup(&topo);
        let mut d = Dcdm::new(&topo, &ap, NodeId(0), DelayBound::Fixed(1));
        let o = d.join(NodeId(4)); // ul(4) = 12 > 1: impossible bound
        assert!(o.violated_bound);
        assert_eq!(d.tree().tree_delay(&topo), 12);
    }

    #[test]
    fn loose_bound_tracks_kmb_like_cost() {
        // With an infinite bound the algorithm always takes the cheapest
        // graft; verify it beats the pure shortest-path tree on cost.
        let topo = fig5();
        let ap = setup(&topo);
        let mut loose = Dcdm::new(&topo, &ap, NodeId(0), DelayBound::Fixed(u64::MAX));
        for m in [NodeId(4), NodeId(3), NodeId(5)] {
            loose.join(m);
        }
        let spt = crate::spt::spt_tree(&topo, &ap, NodeId(0), &[NodeId(4), NodeId(3), NodeId(5)]);
        assert!(loose.tree().tree_cost(&topo) <= spt.tree_cost(&topo));
    }

    #[test]
    fn joining_the_root_is_trivial() {
        let topo = fig5();
        let ap = setup(&topo);
        let mut d = Dcdm::new(&topo, &ap, NodeId(0), DelayBound::Dynamic);
        let o = d.join(NodeId(0));
        assert_eq!(o.path, vec![NodeId(0)]);
        assert!(d.tree().is_member(NodeId(0)));
        assert_eq!(d.tree().tree_delay(&topo), 0);
    }

    #[test]
    fn dynamic_bound_never_increases_delay_beyond_max_ul() {
        let topo = fig5();
        let ap = setup(&topo);
        let mut d = Dcdm::new(&topo, &ap, NodeId(0), DelayBound::Dynamic);
        let members = [NodeId(3), NodeId(5), NodeId(4), NodeId(1)];
        for m in members {
            d.join(m);
        }
        let max_ul = members
            .iter()
            .map(|&m| ap.unicast_delay(m, NodeId(0)).unwrap())
            .max()
            .unwrap();
        assert!(d.tree().tree_delay(&topo) >= max_ul); // tree delay is at least the diameter member
                                                       // Every join kept the invariant: delay grows only when a
                                                       // larger-ul member arrives, so the final delay is bounded by the
                                                       // max unicast delay plus nothing.
        assert_eq!(d.tree().tree_delay(&topo), max_ul);
    }
}
