//! Property-based tests for the network substrate.

use proptest::prelude::*;
use scmp_net::rng::rng_for;
use scmp_net::topology::{gt_itm_flat, transit_stub, waxman, GtItmConfig, WaxmanConfig};
use scmp_net::{
    dijkstra, AllPairsPaths, Metric, NodeId, OnDemandPaths, PathProvider, RoutingTables,
};

fn small_waxman(seed: u64, n: usize) -> scmp_net::Topology {
    let cfg = WaxmanConfig {
        n,
        ..WaxmanConfig::default()
    };
    waxman(&cfg, &mut rng_for("prop-waxman", seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generators always produce connected graphs.
    #[test]
    fn generated_graphs_connected(seed in 0u64..1000, n in 2usize..40) {
        let t = small_waxman(seed, n);
        prop_assert!(t.is_connected());
        prop_assert_eq!(t.node_count(), n);
    }

    /// Dijkstra distances satisfy the triangle inequality over links.
    #[test]
    fn dijkstra_triangle_inequality(seed in 0u64..500, n in 3usize..25) {
        let t = small_waxman(seed, n);
        for metric in [Metric::Delay, Metric::Cost] {
            let spt = dijkstra(&t, NodeId(0), metric);
            for &(a, b, w) in t.edges() {
                let da = spt.distance(a).unwrap();
                let db = spt.distance(b).unwrap();
                let w = metric.of(w);
                prop_assert!(da <= db + w);
                prop_assert!(db <= da + w);
            }
        }
    }

    /// Reconstructed shortest paths actually have the reported distance.
    #[test]
    fn path_weight_matches_distance(seed in 0u64..500, n in 2usize..25) {
        let t = small_waxman(seed, n);
        let ap = AllPairsPaths::compute(&t);
        for src in t.nodes() {
            for dst in t.nodes() {
                for metric in [Metric::Delay, Metric::Cost] {
                    let p = ap.path(src, dst, metric).unwrap();
                    let w = t.path_weight(&p).unwrap();
                    prop_assert_eq!(metric.of(w), ap.distance(src, dst, metric).unwrap());
                }
            }
        }
    }

    /// Distances are symmetric because links are.
    #[test]
    fn distances_symmetric(seed in 0u64..500, n in 2usize..25) {
        let t = small_waxman(seed, n);
        let ap = AllPairsPaths::compute(&t);
        for a in t.nodes() {
            for b in t.nodes() {
                for m in [Metric::Delay, Metric::Cost] {
                    prop_assert_eq!(ap.distance(a, b, m), ap.distance(b, a, m));
                }
            }
        }
    }

    /// Hop-by-hop unicast routes terminate and realise the shortest delay.
    #[test]
    fn routing_tables_sound(seed in 0u64..500, n in 2usize..20) {
        let t = small_waxman(seed, n);
        let rt = RoutingTables::compute(&t);
        let ap = AllPairsPaths::compute(&t);
        for src in t.nodes() {
            for dst in t.nodes() {
                let route = rt.route(src, dst).unwrap();
                prop_assert_eq!(route.first().copied(), Some(src));
                prop_assert_eq!(route.last().copied(), Some(dst));
                let w = t.path_weight(&route).unwrap();
                prop_assert_eq!(Some(w.delay), ap.unicast_delay(src, dst));
            }
        }
    }

    /// GT-ITM generator hits its size and stays connected for odd params.
    #[test]
    fn gt_itm_connected(seed in 0u64..200, n in 2usize..30, deg in 1u32..6) {
        let cfg = GtItmConfig { n, average_degree: deg as f64, grid: 1000 };
        let t = gt_itm_flat(&cfg, &mut rng_for("prop-gtitm", seed));
        prop_assert!(t.is_connected());
        prop_assert_eq!(t.node_count(), n);
    }
}

/// A small transit–stub instance (node count is quantised by the
/// generator's `t·(1 + s·k)` shape).
fn small_transit_stub(seed: u64, stub_size: usize) -> scmp_net::Topology {
    transit_stub(3, 2, stub_size, 1000, &mut rng_for("prop-ts", seed))
}

/// The on-demand provider must be observationally identical to the
/// eager tables: same trees, distances, paths, and next hops — with a
/// tiny cache so eviction-and-recompute is exercised, and again after
/// an explicit `invalidate`.
fn assert_provider_matches(topo: &scmp_net::Topology) -> Result<(), TestCaseError> {
    let ap = AllPairsPaths::compute(topo);
    let od = OnDemandPaths::with_capacity(std::sync::Arc::new(topo.clone()), 2);
    for round in 0..2 {
        if round == 1 {
            PathProvider::invalidate(&od);
        }
        for src in topo.nodes() {
            for m in [Metric::Delay, Metric::Cost] {
                let et = PathProvider::tree(&ap, src, m);
                let lt = od.tree(src, m);
                for v in topo.nodes() {
                    prop_assert_eq!(et.distance(v), lt.distance(v));
                    prop_assert_eq!(et.predecessor(v), lt.predecessor(v));
                }
            }
            for dst in topo.nodes() {
                for m in [Metric::Delay, Metric::Cost] {
                    prop_assert_eq!(ap.distance(src, dst, m), od.distance(src, dst, m));
                    prop_assert_eq!(ap.path(src, dst, m), od.path(src, dst, m));
                }
                prop_assert_eq!(
                    ap.next_hop_by_delay(src, dst),
                    od.next_hop_by_delay(src, dst)
                );
            }
        }
    }
    let stats = od.stats();
    prop_assert!(stats.evictions > 0 || topo.node_count() <= 1);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On-demand ≡ all-pairs on Waxman graphs, across evictions and an
    /// invalidate-and-requery cycle.
    #[test]
    fn on_demand_matches_all_pairs_waxman(seed in 0u64..500, n in 2usize..20) {
        let t = small_waxman(seed, n);
        assert_provider_matches(&t)?;
    }

    /// Same equivalence on hierarchical transit–stub graphs.
    #[test]
    fn on_demand_matches_all_pairs_transit_stub(seed in 0u64..500, stub in 1usize..4) {
        let t = small_transit_stub(seed, stub);
        assert_provider_matches(&t)?;
    }
}
