//! Undirected weighted topology model.
//!
//! Routers are identified by dense [`NodeId`]s; links are undirected and
//! symmetric, carrying the paper's two parameters per link: *delay* and
//! *cost* (§III-A). Delay feeds end-to-end latency accounting; cost feeds
//! the data/protocol overhead metrics of §IV-B ("a packet going through
//! one link contributes `lc` units to the overhead").

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a router (node) in the topology. Dense, `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// The `(delay, cost)` pair attached to every link.
///
/// Both are unsigned integers: in the paper's Waxman experiments the cost
/// is a Manhattan distance on a 32767×32767 grid and the delay a uniform
/// integer in `[0, cost]`, so `u64` path sums never overflow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkWeight {
    /// Perceived queueing + transmission + propagation delay of the link.
    pub delay: u64,
    /// Utilization-derived cost of using the link.
    pub cost: u64,
}

impl LinkWeight {
    /// Convenience constructor.
    #[inline]
    pub const fn new(delay: u64, cost: u64) -> Self {
        LinkWeight { delay, cost }
    }
}

/// A half-edge as stored in the adjacency list: the neighbour plus the
/// link weight (identical in both directions — links are symmetric).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeRef {
    /// Neighbour on the other end of the link.
    pub to: NodeId,
    /// Link weight (same for both directions).
    pub weight: LinkWeight,
}

/// An undirected network topology with symmetric `(delay, cost)` links.
///
/// The structure is immutable once built (via [`TopologyBuilder`]); all
/// algorithms in the workspace treat it as read-only shared state, which
/// lets the benchmark harness fan seeds out across threads without locks.
///
/// Adjacency is stored in CSR (compressed sparse row) form — one flat
/// offset array plus one flat half-edge array — instead of a `Vec` per
/// node. At the paper's 50-node scale the difference is noise; at the
/// 10k-node scenarios of the `scale` bench it removes `n` separate heap
/// allocations and their per-`Vec` capacity overhead, and keeps each
/// node's neighbour slice contiguous for the Dijkstra scans that
/// dominate the path layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Topology {
    /// CSR offsets: node `v`'s half-edges live at
    /// `adj_edges[adj_off[v] .. adj_off[v + 1]]`. Length `n + 1`.
    adj_off: Vec<u32>,
    /// CSR half-edge array, sorted by neighbour id within each node.
    adj_edges: Vec<EdgeRef>,
    /// Canonical edge list with `a < b`, in insertion order.
    edges: Vec<(NodeId, NodeId, LinkWeight)>,
    /// Optional planar coordinates (set by the Waxman / GT-ITM generators,
    /// used by the placement heuristics and for reporting).
    coords: Option<Vec<(i64, i64)>>,
}

impl Topology {
    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj_off.len() - 1
    }

    /// Number of undirected links.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids, `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Neighbours (with weights) of `node`, sorted by neighbour id.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[EdgeRef] {
        let lo = self.adj_off[node.index()] as usize;
        let hi = self.adj_off[node.index() + 1] as usize;
        &self.adj_edges[lo..hi]
    }

    /// Degree of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        (self.adj_off[node.index() + 1] - self.adj_off[node.index()]) as usize
    }

    /// Average node degree `2m / n`.
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            return 0.0;
        }
        2.0 * self.edges.len() as f64 / self.node_count() as f64
    }

    /// Approximate heap footprint of the topology itself (CSR arrays,
    /// edge list, coordinates) — the denominator of the `scale` bench's
    /// path-state accounting.
    pub fn resident_bytes(&self) -> usize {
        self.adj_off.len() * std::mem::size_of::<u32>()
            + self.adj_edges.len() * std::mem::size_of::<EdgeRef>()
            + self.edges.len() * std::mem::size_of::<(NodeId, NodeId, LinkWeight)>()
            + self
                .coords
                .as_ref()
                .map_or(0, |c| c.len() * std::mem::size_of::<(i64, i64)>())
    }

    /// Canonical undirected edge list (`a < b`).
    #[inline]
    pub fn edges(&self) -> &[(NodeId, NodeId, LinkWeight)] {
        &self.edges
    }

    /// Weight of the link `a—b`, if the link exists. Binary search over
    /// the sorted neighbour slice — `O(log deg)`.
    pub fn link(&self, a: NodeId, b: NodeId) -> Option<LinkWeight> {
        let ns = self.neighbors(a);
        ns.binary_search_by_key(&b, |e| e.to)
            .ok()
            .map(|i| ns[i].weight)
    }

    /// True iff nodes `a` and `b` are directly linked.
    #[inline]
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        self.link(a, b).is_some()
    }

    /// Planar coordinates of `node` if the generator recorded them.
    pub fn coords(&self, node: NodeId) -> Option<(i64, i64)> {
        self.coords.as_ref().map(|c| c[node.index()])
    }

    /// True iff every node can reach every other node.
    ///
    /// All generators in [`crate::topology`] guarantee connectivity (they
    /// augment disconnected samples), and the protocols assume it; this is
    /// the invariant checked by the property tests.
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for e in self.neighbors(v) {
                if !seen[e.to.index()] {
                    seen[e.to.index()] = true;
                    count += 1;
                    stack.push(e.to);
                }
            }
        }
        count == n
    }

    /// Total delay and cost of a node path, or `None` if the path does not
    /// follow existing links.
    pub fn path_weight(&self, path: &[NodeId]) -> Option<LinkWeight> {
        let mut total = LinkWeight::new(0, 0);
        for pair in path.windows(2) {
            let w = self.link(pair[0], pair[1])?;
            total.delay += w.delay;
            total.cost += w.cost;
        }
        Some(total)
    }

    /// A copy of this topology with every link of `node` removed (the
    /// node id itself stays, isolated). Used by the hot-standby
    /// m-router to plan trees around the failed primary.
    pub fn without_node(&self, node: NodeId) -> Topology {
        let mut b = TopologyBuilder::new(self.node_count());
        if let Some(coords) = &self.coords {
            b = b.with_coords(coords.clone());
        }
        for &(a, bb, w) in &self.edges {
            if a != node && bb != node {
                b.add_link(a, bb, w);
            }
        }
        b.build()
    }

    /// A copy of this topology keeping only links whose endpoints both
    /// satisfy `keep_node` and which themselves satisfy `keep_link`.
    /// Node ids are preserved (excluded nodes stay, isolated), so
    /// routing state indexed by [`NodeId`] keeps working. This is the
    /// "surviving topology" used by failure-injection experiments: the
    /// m-router re-plans trees over `subtopology(node_up, link_up)`.
    pub fn subtopology(
        &self,
        mut keep_node: impl FnMut(NodeId) -> bool,
        mut keep_link: impl FnMut(NodeId, NodeId) -> bool,
    ) -> Topology {
        let mut b = TopologyBuilder::new(self.node_count());
        if let Some(coords) = &self.coords {
            b = b.with_coords(coords.clone());
        }
        for &(a, bb, w) in &self.edges {
            if keep_node(a) && keep_node(bb) && keep_link(a, bb) {
                b.add_link(a, bb, w);
            }
        }
        b.build()
    }

    /// Connected components, each a sorted list of nodes. Used by the
    /// generators to augment disconnected samples.
    pub fn components(&self) -> Vec<Vec<NodeId>> {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![NodeId(start as u32)];
            seen[start] = true;
            while let Some(v) = stack.pop() {
                comp.push(v);
                for e in self.neighbors(v) {
                    if !seen[e.to.index()] {
                        seen[e.to.index()] = true;
                        stack.push(e.to);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }
}

/// Builder for [`Topology`]. Rejects self-loops and duplicate links.
#[derive(Clone, Debug, Default)]
pub struct TopologyBuilder {
    adj: Vec<Vec<EdgeRef>>,
    edges: Vec<(NodeId, NodeId, LinkWeight)>,
    coords: Option<Vec<(i64, i64)>>,
}

impl TopologyBuilder {
    /// Start a builder with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        TopologyBuilder {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
            coords: None,
        }
    }

    /// Attach planar coordinates (one per node) for placement heuristics.
    ///
    /// # Panics
    /// If `coords.len()` differs from the node count.
    pub fn with_coords(mut self, coords: Vec<(i64, i64)>) -> Self {
        assert_eq!(coords.len(), self.adj.len(), "one coordinate per node");
        self.coords = Some(coords);
        self
    }

    /// Number of nodes the builder was created with.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// True iff the link `a—b` has already been added.
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        self.adj[a.index()].iter().any(|e| e.to == b)
    }

    /// Add the undirected link `a—b` with weight `w`.
    ///
    /// # Panics
    /// On self-loops, out-of-range endpoints, or duplicate links.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, w: LinkWeight) -> &mut Self {
        assert_ne!(a, b, "self-loop {a:?}");
        assert!(a.index() < self.adj.len(), "node {a:?} out of range");
        assert!(b.index() < self.adj.len(), "node {b:?} out of range");
        assert!(!self.has_link(a, b), "duplicate link {a:?}-{b:?}");
        self.adj[a.index()].push(EdgeRef { to: b, weight: w });
        self.adj[b.index()].push(EdgeRef { to: a, weight: w });
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        self.edges.push((lo, hi, w));
        self
    }

    /// Finish building. Adjacency lists are sorted by neighbour id so that
    /// every algorithm downstream is deterministic regardless of insertion
    /// order, then flattened into the CSR arrays.
    pub fn build(mut self) -> Topology {
        let mut adj_off = Vec::with_capacity(self.adj.len() + 1);
        let mut adj_edges = Vec::with_capacity(2 * self.edges.len());
        adj_off.push(0u32);
        for l in &mut self.adj {
            l.sort_unstable_by_key(|e| e.to);
            adj_edges.extend_from_slice(l);
            adj_off.push(adj_edges.len() as u32);
        }
        self.edges.sort_unstable_by_key(|&(a, b, _)| (a, b));
        Topology {
            adj_off,
            adj_edges,
            edges: self.edges,
            coords: self.coords,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        let mut b = TopologyBuilder::new(3);
        b.add_link(NodeId(0), NodeId(1), LinkWeight::new(1, 10));
        b.add_link(NodeId(1), NodeId(2), LinkWeight::new(2, 20));
        b.add_link(NodeId(2), NodeId(0), LinkWeight::new(3, 30));
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let t = triangle();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.edge_count(), 3);
        assert_eq!(t.degree(NodeId(0)), 2);
        assert!((t.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn links_are_symmetric() {
        let t = triangle();
        assert_eq!(t.link(NodeId(0), NodeId(1)), t.link(NodeId(1), NodeId(0)));
        assert_eq!(t.link(NodeId(0), NodeId(1)), Some(LinkWeight::new(1, 10)));
        assert_eq!(t.link(NodeId(0), NodeId(2)), Some(LinkWeight::new(3, 30)));
    }

    #[test]
    fn missing_link_is_none() {
        let mut b = TopologyBuilder::new(3);
        b.add_link(NodeId(0), NodeId(1), LinkWeight::new(1, 1));
        let t = b.build();
        assert_eq!(t.link(NodeId(0), NodeId(2)), None);
        assert!(!t.has_link(NodeId(1), NodeId(2)));
    }

    #[test]
    fn path_weight_sums_links() {
        let t = triangle();
        let w = t.path_weight(&[NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(w, LinkWeight::new(3, 30));
        // Non-adjacent hop in path => None.
        let mut b = TopologyBuilder::new(4);
        b.add_link(NodeId(0), NodeId(1), LinkWeight::new(1, 1));
        let t2 = b.build();
        assert_eq!(t2.path_weight(&[NodeId(0), NodeId(1), NodeId(3)]), None);
    }

    #[test]
    fn empty_path_has_zero_weight() {
        let t = triangle();
        assert_eq!(t.path_weight(&[NodeId(1)]), Some(LinkWeight::new(0, 0)));
        assert_eq!(t.path_weight(&[]), Some(LinkWeight::new(0, 0)));
    }

    #[test]
    fn connectivity() {
        assert!(triangle().is_connected());
        let b = TopologyBuilder::new(2);
        assert!(!b.build().is_connected());
        assert!(TopologyBuilder::new(0).build().is_connected());
        assert!(TopologyBuilder::new(1).build().is_connected());
    }

    #[test]
    fn components_split() {
        let mut b = TopologyBuilder::new(5);
        b.add_link(NodeId(0), NodeId(1), LinkWeight::new(1, 1));
        b.add_link(NodeId(2), NodeId(3), LinkWeight::new(1, 1));
        let t = b.build();
        let comps = t.components();
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(1)]);
        assert_eq!(comps[1], vec![NodeId(2), NodeId(3)]);
        assert_eq!(comps[2], vec![NodeId(4)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let mut b = TopologyBuilder::new(2);
        b.add_link(NodeId(0), NodeId(0), LinkWeight::new(1, 1));
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn rejects_duplicate_links() {
        let mut b = TopologyBuilder::new(2);
        b.add_link(NodeId(0), NodeId(1), LinkWeight::new(1, 1));
        b.add_link(NodeId(1), NodeId(0), LinkWeight::new(2, 2));
    }

    #[test]
    fn adjacency_sorted_after_build() {
        let mut b = TopologyBuilder::new(4);
        b.add_link(NodeId(0), NodeId(3), LinkWeight::new(1, 1));
        b.add_link(NodeId(0), NodeId(1), LinkWeight::new(1, 1));
        b.add_link(NodeId(0), NodeId(2), LinkWeight::new(1, 1));
        let t = b.build();
        let ns: Vec<_> = t.neighbors(NodeId(0)).iter().map(|e| e.to).collect();
        assert_eq!(ns, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn without_node_drops_its_links() {
        let t = triangle().without_node(NodeId(1));
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.edge_count(), 1);
        assert!(t.has_link(NodeId(0), NodeId(2)));
        assert_eq!(t.degree(NodeId(1)), 0);
    }

    #[test]
    fn coords_roundtrip() {
        let mut b = TopologyBuilder::new(2).with_coords(vec![(0, 0), (3, 4)]);
        b.add_link(NodeId(0), NodeId(1), LinkWeight::new(1, 7));
        let t = b.build();
        assert_eq!(t.coords(NodeId(1)), Some((3, 4)));
        assert_eq!(triangle().coords(NodeId(0)), None);
    }
}
