//! On-demand path provision — the abstraction over `P_sl`/`P_lc`.
//!
//! The paper precomputes all-pairs path tables at the m-router
//! (§III-D), which is `O(n²)` memory and `2n` Dijkstra runs up front —
//! fine at 50 nodes, fatal at 10k. [`PathProvider`] is the seam that
//! hides the choice: [`crate::AllPairsPaths`] stays the eager
//! implementation for paper-scale graphs, while [`OnDemandPaths`]
//! computes source trees lazily, memoizes them in a bounded LRU, and
//! exposes explicit invalidation for fault/repair-driven topology
//! changes. Both produce bit-identical trees (same Dijkstra, same
//! tie-breaking), so swapping implementations never perturbs a golden
//! trace.
//!
//! Every algorithm that used to take `&AllPairsPaths` now takes
//! `&dyn PathProvider`; the workloads those algorithms generate touch
//! only a handful of sources (the m-router plus the joining members),
//! which is exactly what makes the lazy provider `O(n·cached)` instead
//! of `O(n²)`.

use crate::dijkstra::{dijkstra_with, DijkstraScratch, Metric, ShortestPathTree};
use crate::graph::{NodeId, Topology};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A source of shortest-path trees under either link metric.
///
/// The trait is object-safe; algorithms take `&dyn PathProvider` so one
/// compiled body serves both implementations. Trees are returned as
/// `Arc`s — the provider may share them with its cache (or with other
/// routers: MOSPF's per-source SPTs are one shared provider), and a
/// caller doing many queries against one source should hold the `Arc`
/// rather than re-asking per query.
pub trait PathProvider: fmt::Debug + Send + Sync {
    /// Number of nodes paths are provided for.
    fn node_count(&self) -> usize;

    /// The Dijkstra tree rooted at `src` for `metric`.
    fn tree(&self, src: NodeId, metric: Metric) -> Arc<ShortestPathTree>;

    /// Drop memoized state. After a call, queries recompute from the
    /// provider's topology. Invalidation contract: implementations whose
    /// answers derive from an immutable snapshot ([`crate::AllPairsPaths`])
    /// may no-op; caching implementations must forget every tree.
    fn invalidate(&self) {}

    /// Bytes of resident path state (cached or precomputed trees) —
    /// the quantity the `scale` bench tracks to prove the
    /// `O(n²) → O(n·cached)` claim.
    fn resident_path_bytes(&self) -> usize;

    /// Shortest distance from `src` to `dst` under `metric` (`None` if
    /// disconnected).
    fn distance(&self, src: NodeId, dst: NodeId, metric: Metric) -> Option<u64> {
        self.tree(src, metric).distance(dst)
    }

    /// The paper's unicast delay `ul`: delay of the shortest-delay path.
    fn unicast_delay(&self, src: NodeId, dst: NodeId) -> Option<u64> {
        self.distance(src, dst, Metric::Delay)
    }

    /// The path `src -> … -> dst` optimal under `metric`.
    fn path(&self, src: NodeId, dst: NodeId, metric: Metric) -> Option<Vec<NodeId>> {
        self.tree(src, metric).path_to(dst)
    }

    /// Next hop from `src` toward `dst` along the shortest-delay path —
    /// what a unicast routing table would return. `None` when
    /// `src == dst` or unreachable.
    fn next_hop_by_delay(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        if src == dst {
            return None;
        }
        let tree = self.tree(src, Metric::Delay);
        let mut cur = dst;
        loop {
            let pred = tree.predecessor(cur)?;
            if pred == src {
                return Some(cur);
            }
            cur = pred;
        }
    }
}

// `Box<dyn PathProvider>` (what `provider_for` hands out) is itself a
// provider, so `&boxed` coerces to `&dyn PathProvider` at call sites.
impl<P: PathProvider + ?Sized> PathProvider for Box<P> {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    fn tree(&self, src: NodeId, metric: Metric) -> Arc<ShortestPathTree> {
        (**self).tree(src, metric)
    }

    fn invalidate(&self) {
        (**self).invalidate()
    }

    fn resident_path_bytes(&self) -> usize {
        (**self).resident_path_bytes()
    }
}

/// Cache observability counters for [`OnDemandPaths`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Tree queries answered from the LRU.
    pub hits: u64,
    /// Tree queries that ran Dijkstra.
    pub misses: u64,
    /// Trees evicted to respect the capacity bound.
    pub evictions: u64,
    /// Trees currently resident.
    pub resident: usize,
}

struct Slot {
    tree: Arc<ShortestPathTree>,
    last_used: u64,
}

struct OnDemandState {
    cache: HashMap<(u32, Metric), Slot>,
    scratch: DijkstraScratch,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Lazy, memoized source-tree provider with a bounded LRU of interned
/// trees.
///
/// * A `tree(src, metric)` miss runs one Dijkstra (reusing scratch
///   buffers across runs) and caches the result; a hit is a hash lookup.
/// * The cache holds at most `capacity` trees; the least-recently-used
///   entry is evicted (ties broken toward the smaller key so eviction
///   order is deterministic). Evicted trees that nothing else still
///   references donate their buffers back to the scratch pool.
/// * [`OnDemandPaths::set_topology`] swaps in a new topology view and
///   invalidates — the hook the m-router's repair scan uses when links
///   die or heal. Plain [`PathProvider::invalidate`] keeps the topology
///   and drops the memoized trees.
///
/// Interior state sits behind a `Mutex`, so a provider can be shared
/// (`Arc<OnDemandPaths>`) by every router of a simulated domain; with
/// single-threaded access the lock is uncontended.
pub struct OnDemandPaths {
    topo: Arc<Topology>,
    capacity: usize,
    state: Mutex<OnDemandState>,
}

impl fmt::Debug for OnDemandPaths {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("OnDemandPaths")
            .field("nodes", &self.topo.node_count())
            .field("capacity", &self.capacity)
            .field("stats", &stats)
            .finish()
    }
}

/// Default LRU capacity: enough for every workload in the workspace
/// (m-router + members of the active groups) while bounding resident
/// path state to `O(n · DEFAULT_TREE_CAPACITY)`.
pub const DEFAULT_TREE_CAPACITY: usize = 128;

impl OnDemandPaths {
    /// Provider over `topo` with the default cache capacity.
    pub fn new(topo: Arc<Topology>) -> Self {
        OnDemandPaths::with_capacity(topo, DEFAULT_TREE_CAPACITY)
    }

    /// Provider over a borrowed topology (clones it; the CSR arrays are
    /// a few MB even at 10k nodes).
    pub fn from_topology(topo: &Topology) -> Self {
        OnDemandPaths::new(Arc::new(topo.clone()))
    }

    /// Provider with an explicit LRU capacity (≥ 1).
    pub fn with_capacity(topo: Arc<Topology>, capacity: usize) -> Self {
        assert!(capacity >= 1, "cache must hold at least one tree");
        OnDemandPaths {
            topo,
            capacity,
            state: Mutex::new(OnDemandState {
                cache: HashMap::new(),
                scratch: DijkstraScratch::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// The topology paths are provided over.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// Swap in a new topology (fault/repair reconvergence) and drop
    /// every memoized tree. The Dijkstra scratch pool survives, so
    /// re-population after a repair scan reuses the old allocations.
    pub fn set_topology(&mut self, topo: Arc<Topology>) {
        self.topo = topo;
        self.invalidate();
    }

    /// Cache counters (hits/misses/evictions/resident).
    pub fn stats(&self) -> CacheStats {
        let st = self.state.lock().expect("provider lock");
        CacheStats {
            hits: st.hits,
            misses: st.misses,
            evictions: st.evictions,
            resident: st.cache.len(),
        }
    }
}

impl PathProvider for OnDemandPaths {
    fn node_count(&self) -> usize {
        self.topo.node_count()
    }

    fn tree(&self, src: NodeId, metric: Metric) -> Arc<ShortestPathTree> {
        let st = &mut *self.state.lock().expect("provider lock");
        st.tick += 1;
        let tick = st.tick;
        if let Some(slot) = st.cache.get_mut(&(src.0, metric)) {
            slot.last_used = tick;
            st.hits += 1;
            return Arc::clone(&slot.tree);
        }
        st.misses += 1;
        if st.cache.len() >= self.capacity {
            // Evict the LRU entry; tie-break toward the smaller key so
            // eviction (and thus the scratch pool state) is
            // deterministic for identical query sequences.
            let victim = st
                .cache
                .iter()
                .min_by_key(|(&(id, m), slot)| (slot.last_used, id, m as u8))
                .map(|(&k, _)| k)
                .expect("cache non-empty");
            let slot = st.cache.remove(&victim).expect("victim present");
            st.evictions += 1;
            if let Ok(tree) = Arc::try_unwrap(slot.tree) {
                st.scratch.recycle(tree);
            }
        }
        let tree = Arc::new(dijkstra_with(&self.topo, src, metric, &mut st.scratch));
        st.cache.insert(
            (src.0, metric),
            Slot {
                tree: Arc::clone(&tree),
                last_used: tick,
            },
        );
        tree
    }

    fn invalidate(&self) {
        let st = &mut *self.state.lock().expect("provider lock");
        let slots: Vec<Slot> = st.cache.drain().map(|(_, s)| s).collect();
        for slot in slots {
            if let Ok(tree) = Arc::try_unwrap(slot.tree) {
                st.scratch.recycle(tree);
            }
        }
    }

    fn resident_path_bytes(&self) -> usize {
        let st = self.state.lock().expect("provider lock");
        st.cache
            .values()
            .map(|s| s.tree.resident_bytes())
            .sum::<usize>()
    }
}

/// Node count at or below which the eager all-pairs tables stay the
/// better trade (tiny graphs, every source queried repeatedly). Above
/// it, [`provider_for`] returns an [`OnDemandPaths`].
pub const ALL_PAIRS_MAX_NODES: usize = 256;

/// Pick a provider implementation for `topo` by size: eager
/// [`crate::AllPairsPaths`] at paper scale, [`OnDemandPaths`] beyond
/// [`ALL_PAIRS_MAX_NODES`]. Both yield identical answers; only memory
/// and compute scheduling differ.
pub fn provider_for(topo: &Topology) -> Box<dyn PathProvider> {
    if topo.node_count() <= ALL_PAIRS_MAX_NODES {
        Box::new(crate::AllPairsPaths::compute(topo))
    } else {
        Box::new(OnDemandPaths::from_topology(topo))
    }
}

/// [`provider_for`], shareable: routers of one simulated domain hold
/// clones of the same `Arc` so source trees are computed once per domain
/// rather than once per router (MOSPF's per-source SPTs, notably).
pub fn shared_provider_for(topo: &Topology) -> Arc<dyn PathProvider> {
    if topo.node_count() <= ALL_PAIRS_MAX_NODES {
        Arc::new(crate::AllPairsPaths::compute(topo))
    } else {
        Arc::new(OnDemandPaths::from_topology(topo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LinkWeight, TopologyBuilder};
    use crate::paths::AllPairsPaths;
    use crate::topology::examples::fig5;

    fn on_demand(topo: &Topology, cap: usize) -> OnDemandPaths {
        OnDemandPaths::with_capacity(Arc::new(topo.clone()), cap)
    }

    #[test]
    fn matches_all_pairs_on_fig5() {
        let topo = fig5();
        let ap = AllPairsPaths::compute(&topo);
        let od = on_demand(&topo, 3); // force evictions
        for s in topo.nodes() {
            for d in topo.nodes() {
                for m in [Metric::Delay, Metric::Cost] {
                    assert_eq!(od.distance(s, d, m), ap.distance(s, d, m));
                    assert_eq!(od.path(s, d, m), ap.path(s, d, m));
                }
                assert_eq!(od.next_hop_by_delay(s, d), ap.next_hop_by_delay(s, d));
            }
        }
        let st = od.stats();
        assert!(st.evictions > 0, "capacity 3 must evict");
        assert_eq!(st.resident, 3);
    }

    #[test]
    fn cache_hits_are_counted_and_shared() {
        let topo = fig5();
        let od = on_demand(&topo, 8);
        let a = od.tree(NodeId(0), Metric::Delay);
        let b = od.tree(NodeId(0), Metric::Delay);
        assert!(Arc::ptr_eq(&a, &b), "hit must return the interned tree");
        let st = od.stats();
        assert_eq!((st.hits, st.misses), (1, 1));
    }

    #[test]
    fn invalidate_then_requery_is_consistent() {
        let topo = fig5();
        let od = on_demand(&topo, 8);
        let before = od.tree(NodeId(2), Metric::Cost).distance(NodeId(4));
        od.invalidate();
        assert_eq!(od.stats().resident, 0);
        assert_eq!(od.resident_path_bytes(), 0);
        let after = od.tree(NodeId(2), Metric::Cost).distance(NodeId(4));
        assert_eq!(before, after);
        assert_eq!(od.stats().misses, 2, "requery recomputes");
    }

    #[test]
    fn set_topology_switches_the_answers() {
        let topo = fig5();
        let mut od = on_demand(&topo, 8);
        let full = od.unicast_delay(NodeId(0), NodeId(4));
        assert!(full.is_some());
        // Cut node 1 out: 0-1-4 dies, the detour via 2 takes over.
        let cut = topo.without_node(NodeId(1));
        let expect = AllPairsPaths::compute(&cut).unicast_delay(NodeId(0), NodeId(4));
        od.set_topology(Arc::new(cut));
        assert_eq!(od.unicast_delay(NodeId(0), NodeId(4)), expect);
        assert_ne!(od.unicast_delay(NodeId(0), NodeId(4)), full);
    }

    #[test]
    fn resident_bytes_bounded_by_capacity() {
        let topo = fig5();
        let od = on_demand(&topo, 2);
        for s in topo.nodes() {
            od.tree(s, Metric::Delay);
        }
        let per_tree = od.tree(NodeId(0), Metric::Delay).resident_bytes();
        assert!(od.resident_path_bytes() <= 2 * per_tree);
    }

    #[test]
    fn provider_for_picks_by_size() {
        let small = fig5();
        assert_eq!(provider_for(&small).node_count(), 6);
        let mut b = TopologyBuilder::new(ALL_PAIRS_MAX_NODES + 2);
        for i in 0..(ALL_PAIRS_MAX_NODES as u32 + 1) {
            b.add_link(NodeId(i), NodeId(i + 1), LinkWeight::new(1, 1));
        }
        let big = b.build();
        let p = provider_for(&big);
        assert_eq!(p.node_count(), ALL_PAIRS_MAX_NODES + 2);
        // A line graph: distance across the chain is its length.
        assert_eq!(
            p.distance(
                NodeId(0),
                NodeId(ALL_PAIRS_MAX_NODES as u32 + 1),
                Metric::Delay
            ),
            Some(ALL_PAIRS_MAX_NODES as u64 + 1)
        );
        // Resident path state stays O(cached), not O(n²).
        assert!(p.resident_path_bytes() <= DEFAULT_TREE_CAPACITY * big.node_count() * 17);
    }

    #[test]
    fn unreachable_and_self_queries() {
        let mut b = TopologyBuilder::new(4);
        b.add_link(NodeId(0), NodeId(1), LinkWeight::new(1, 1));
        let topo = b.build();
        let od = on_demand(&topo, 4);
        assert_eq!(od.distance(NodeId(0), NodeId(3), Metric::Delay), None);
        assert_eq!(od.path(NodeId(0), NodeId(3), Metric::Cost), None);
        assert_eq!(od.next_hop_by_delay(NodeId(1), NodeId(1)), None);
        assert_eq!(od.next_hop_by_delay(NodeId(0), NodeId(3)), None);
    }
}
