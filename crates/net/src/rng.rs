//! Deterministic RNG derivation for reproducible experiments.
//!
//! Every experiment in the harness is identified by a label and a seed
//! index ("each simulation was conducted 10 times with different random
//! generator seeds", §IV-A). Deriving a [`SmallRng`] from those two values
//! with a stable mix function keeps every figure bit-reproducible across
//! runs and across threads.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derive a 64-bit seed from an experiment label and a seed index.
///
/// Uses FNV-1a over the label bytes followed by a SplitMix64 finaliser —
/// both fixed algorithms, so seeds never change across library versions
/// (unlike hashing with `DefaultHasher`).
pub fn derive_seed(label: &str, index: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix64(h ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// SplitMix64 finaliser; full-period bijection on `u64`.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded [`SmallRng`] for `(label, index)`.
pub fn rng_for(label: &str, index: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(label, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeds_are_stable() {
        // Pinned values: if these change, every experiment changes.
        assert_eq!(derive_seed("fig7", 0), derive_seed("fig7", 0));
        assert_ne!(derive_seed("fig7", 0), derive_seed("fig7", 1));
        assert_ne!(derive_seed("fig7", 0), derive_seed("fig8", 0));
    }

    #[test]
    fn rngs_reproduce_streams() {
        let mut a = rng_for("x", 3);
        let mut b = rng_for("x", 3);
        let va: Vec<u32> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_indices_diverge() {
        let mut a = rng_for("x", 0);
        let mut b = rng_for("x", 1);
        let va: Vec<u32> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u32> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }
}
