//! Topology statistics — used by the experiment reports to characterise
//! generated graphs (the paper reports its topologies by size and
//! average node degree; these helpers add the rest of the standard
//! profile).

use crate::dijkstra::{dijkstra, Metric};
use crate::graph::Topology;

/// Summary statistics of a topology under a metric.
#[derive(Clone, Debug, PartialEq)]
pub struct TopologyProfile {
    /// Node count.
    pub nodes: usize,
    /// Undirected link count.
    pub links: usize,
    /// Average node degree `2m/n`.
    pub average_degree: f64,
    /// Minimum / maximum degree.
    pub degree_range: (usize, usize),
    /// Largest pairwise shortest distance (the diameter).
    pub diameter: u64,
    /// Mean pairwise shortest distance.
    pub average_distance: f64,
    /// Mean hop count of shortest paths.
    pub average_hops: f64,
}

/// Profile `topo` under `metric`.
///
/// # Panics
/// If the topology is empty or disconnected (all generators guarantee
/// connectivity).
pub fn profile(topo: &Topology, metric: Metric) -> TopologyProfile {
    let n = topo.node_count();
    assert!(n > 0, "empty topology");
    let mut diameter = 0u64;
    let mut dist_sum = 0u128;
    let mut hop_sum = 0u128;
    let mut pairs = 0u64;
    for src in topo.nodes() {
        let spt = dijkstra(topo, src, metric);
        for dst in topo.nodes() {
            if dst <= src {
                continue;
            }
            let d = spt.distance(dst).expect("connected topology");
            diameter = diameter.max(d);
            dist_sum += d as u128;
            hop_sum += (spt.path_to(dst).expect("connected").len() - 1) as u128;
            pairs += 1;
        }
    }
    let (dmin, dmax) = topo
        .nodes()
        .map(|v| topo.degree(v))
        .fold((usize::MAX, 0), |(lo, hi), d| (lo.min(d), hi.max(d)));
    TopologyProfile {
        nodes: n,
        links: topo.edge_count(),
        average_degree: topo.average_degree(),
        degree_range: if n == 0 { (0, 0) } else { (dmin, dmax) },
        diameter,
        average_distance: if pairs == 0 {
            0.0
        } else {
            dist_sum as f64 / pairs as f64
        },
        average_hops: if pairs == 0 {
            0.0
        } else {
            hop_sum as f64 / pairs as f64
        },
    }
}

/// Nodes reachable from `src` over the topology's links, as a dense
/// membership vector (`out[v] == true` iff `v` is connected to `src`).
/// On a surviving (post-failure) topology this is the set of routers a
/// repair can still serve; everything else is partitioned away.
pub fn reachable_set(topo: &Topology, src: crate::graph::NodeId) -> Vec<bool> {
    let n = topo.node_count();
    let mut seen = vec![false; n];
    if src.index() >= n {
        return seen;
    }
    let mut stack = vec![src];
    seen[src.index()] = true;
    while let Some(v) = stack.pop() {
        for e in topo.neighbors(v) {
            if !seen[e.to.index()] {
                seen[e.to.index()] = true;
                stack.push(e.to);
            }
        }
    }
    seen
}

/// How many nodes `src` can reach (including itself).
pub fn reachable_count(topo: &Topology, src: crate::graph::NodeId) -> usize {
    reachable_set(topo, src).iter().filter(|&&r| r).count()
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(topo: &Topology) -> Vec<usize> {
    let max = topo.nodes().map(|v| topo.degree(v)).max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for v in topo.nodes() {
        hist[topo.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LinkWeight;
    use crate::topology::regular::{line, ring, star};

    #[test]
    fn line_profile() {
        let t = line(5, LinkWeight::new(2, 3));
        let p = profile(&t, Metric::Delay);
        assert_eq!(p.nodes, 5);
        assert_eq!(p.links, 4);
        assert_eq!(p.diameter, 8);
        assert_eq!(p.degree_range, (1, 2));
        // Pairwise hop counts on a 5-line: Σ = 20 over 10 pairs → 2.0.
        assert!((p.average_hops - 2.0).abs() < 1e-9);
        assert!((p.average_distance - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ring_diameter() {
        let t = ring(6, LinkWeight::new(1, 1));
        let p = profile(&t, Metric::Cost);
        assert_eq!(p.diameter, 3);
        assert_eq!(p.degree_range, (2, 2));
    }

    #[test]
    fn star_histogram() {
        let t = star(6, LinkWeight::new(1, 1));
        let h = degree_histogram(&t);
        assert_eq!(h[1], 5); // five leaves
        assert_eq!(h[5], 1); // one hub
        assert_eq!(h.iter().sum::<usize>(), 6);
    }

    #[test]
    fn reachability_splits_on_cut() {
        use crate::graph::NodeId;
        let t = line(5, LinkWeight::new(1, 1));
        assert_eq!(reachable_count(&t, NodeId(0)), 5);
        // Remove the middle link: two components of 3 and 2.
        let cut = t.subtopology(|_| true, |a, b| !(a == NodeId(2) && b == NodeId(3)));
        let from0 = reachable_set(&cut, NodeId(0));
        assert_eq!(from0, vec![true, true, true, false, false]);
        assert_eq!(reachable_count(&cut, NodeId(4)), 2);
        // Killing a node isolates it and splits the line.
        let dead2 = t.subtopology(|v| v != NodeId(2), |_, _| true);
        assert_eq!(reachable_count(&dead2, NodeId(2)), 1);
        assert_eq!(reachable_count(&dead2, NodeId(0)), 2);
    }

    #[test]
    fn single_node() {
        let t = line(1, LinkWeight::new(1, 1));
        let p = profile(&t, Metric::Delay);
        assert_eq!(p.diameter, 0);
        assert_eq!(p.average_distance, 0.0);
        assert_eq!(degree_histogram(&t), vec![1]);
    }
}
