//! Unicast next-hop routing tables.
//!
//! The paper assumes every domain "also runs a unicast routing protocol"
//! (link-state, §II-D); SCMP and the baselines use it to carry JOIN
//! messages to the m-router/core and to tunnel data packets from off-tree
//! sources. This module materialises those tables.
//!
//! Implementation note: the next hop from `src` toward `dst` is derived
//! from the shortest-delay tree rooted at **`dst`** (links are symmetric,
//! so the reversed tree path is a shortest `src → dst` path). Hop-by-hop
//! forwarding then walks a single predecessor chain of one tree, which is
//! loop-free *by construction* even in the presence of zero-delay links
//! and equal-cost ties — unlike stitching together per-source trees.

use crate::dijkstra::{dijkstra, Metric};
use crate::graph::{NodeId, Topology};

/// Dense `n × n` next-hop table: `next_hop[src][dst]`.
#[derive(Clone, Debug)]
pub struct RoutingTables {
    n: usize,
    /// Flattened `src * n + dst`; `u32::MAX` encodes "none".
    next: Vec<u32>,
}

const NONE: u32 = u32::MAX;

impl RoutingTables {
    /// Build next-hop tables for the whole topology (n Dijkstra runs by
    /// delay, matching a link-state IGP with delay as the metric).
    pub fn compute(topo: &Topology) -> Self {
        let n = topo.node_count();
        let mut next = vec![NONE; n * n];
        for dst in topo.nodes() {
            let tree = dijkstra(topo, dst, Metric::Delay);
            for src in topo.nodes() {
                if src == dst {
                    continue;
                }
                // First hop of src->dst = predecessor of src in the tree
                // rooted at dst (path reversal under symmetric links).
                if let Some(p) = tree.predecessor(src) {
                    next[src.index() * n + dst.index()] = p.0;
                }
            }
        }
        RoutingTables { n, next }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Next hop on the unicast route from `src` to `dst`.
    ///
    /// `None` when `src == dst` or `dst` is unreachable.
    #[inline]
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        let v = self.next[src.index() * self.n + dst.index()];
        (v != NONE).then_some(NodeId(v))
    }

    /// Materialise the full hop-by-hop route `src -> … -> dst`.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        if src == dst {
            return Some(vec![src]);
        }
        let mut out = vec![src];
        let mut cur = src;
        while cur != dst {
            cur = self.next_hop(cur, dst)?;
            out.push(cur);
            if out.len() > self.n {
                unreachable!("routing loop from {src:?} to {dst:?}");
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LinkWeight, TopologyBuilder};
    use crate::paths::AllPairsPaths;
    use crate::topology::examples::fig5;

    #[test]
    fn routes_are_shortest_delay_paths() {
        let t = fig5();
        let rt = RoutingTables::compute(&t);
        let ap = AllPairsPaths::compute(&t);
        for src in t.nodes() {
            for dst in t.nodes() {
                let route = rt.route(src, dst).expect("connected");
                let w = t.path_weight(&route).expect("valid path");
                assert_eq!(
                    Some(w.delay),
                    ap.unicast_delay(src, dst),
                    "{src:?}->{dst:?}"
                );
            }
        }
    }

    #[test]
    fn self_route_is_trivial() {
        let t = fig5();
        let rt = RoutingTables::compute(&t);
        assert_eq!(rt.next_hop(NodeId(2), NodeId(2)), None);
        assert_eq!(rt.route(NodeId(2), NodeId(2)), Some(vec![NodeId(2)]));
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = TopologyBuilder::new(3);
        b.add_link(NodeId(0), NodeId(1), LinkWeight::new(1, 1));
        let rt = RoutingTables::compute(&b.build());
        assert_eq!(rt.next_hop(NodeId(0), NodeId(2)), None);
        assert_eq!(rt.route(NodeId(0), NodeId(2)), None);
    }

    #[test]
    fn zero_delay_links_cannot_loop() {
        // A cycle of zero-delay links: hop-by-hop forwarding must still
        // terminate because all hops follow the destination-rooted tree.
        let mut b = TopologyBuilder::new(4);
        b.add_link(NodeId(0), NodeId(1), LinkWeight::new(0, 1));
        b.add_link(NodeId(1), NodeId(2), LinkWeight::new(0, 1));
        b.add_link(NodeId(2), NodeId(3), LinkWeight::new(0, 1));
        b.add_link(NodeId(3), NodeId(0), LinkWeight::new(0, 1));
        let rt = RoutingTables::compute(&b.build());
        for src in 0..4u32 {
            for dst in 0..4u32 {
                assert!(rt.route(NodeId(src), NodeId(dst)).is_some());
            }
        }
    }

    #[test]
    fn next_hop_is_a_neighbor() {
        let t = fig5();
        let rt = RoutingTables::compute(&t);
        for src in t.nodes() {
            for dst in t.nodes() {
                if let Some(nh) = rt.next_hop(src, dst) {
                    assert!(t.has_link(src, nh), "{src:?}->{dst:?} via {nh:?}");
                }
            }
        }
    }
}
