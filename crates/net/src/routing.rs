//! Unicast next-hop routing tables.
//!
//! The paper assumes every domain "also runs a unicast routing protocol"
//! (link-state, §II-D); SCMP and the baselines use it to carry JOIN
//! messages to the m-router/core and to tunnel data packets from off-tree
//! sources. This module materialises those tables.
//!
//! Implementation note: the next hop from `src` toward `dst` is derived
//! from the shortest-delay tree rooted at **`dst`** (links are symmetric,
//! so the reversed tree path is a shortest `src → dst` path). Hop-by-hop
//! forwarding then walks a single predecessor chain of one tree, which is
//! loop-free *by construction* even in the presence of zero-delay links
//! and equal-cost ties — unlike stitching together per-source trees.
//!
//! Two representations sit behind one API:
//!
//! * **Dense** — the historical `n × n` flat table, `n` Dijkstra runs up
//!   front, `O(1)` lock-free lookups. Used up to [`DENSE_MAX_NODES`]
//!   nodes so small-simulation hot paths (and golden traces) are
//!   untouched.
//! * **Lazy** — per-destination rows computed on first query and cached.
//!   A 10k-node domain where traffic touches 40 destinations holds 40
//!   rows (1.6 MB), not a 400 MB matrix; fault reconvergence rebuilds
//!   only the rows that are actually re-queried.
//!
//! Because each row is a pure function of (topology, dst), lazy tables
//! return byte-identical routes regardless of query order.

use crate::dijkstra::{dijkstra_with, DijkstraScratch, Metric};
use crate::graph::{NodeId, Topology};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

const NONE: u32 = u32::MAX;

/// Node count at or below which [`RoutingTables::compute`] builds the
/// dense matrix (16 MB of `u32` at 2048 nodes is the knee; the paper's
/// topologies are far below it).
pub const DENSE_MAX_NODES: usize = 1024;

/// Per-node unicast next-hop tables (`next_hop[src][dst]` semantics).
#[derive(Debug)]
pub struct RoutingTables {
    repr: Repr,
}

#[derive(Debug)]
enum Repr {
    Dense {
        n: usize,
        /// Flattened `src * n + dst`; `u32::MAX` encodes "none".
        next: Vec<u32>,
    },
    Lazy {
        topo: Arc<Topology>,
        state: Mutex<LazyState>,
    },
}

#[derive(Debug)]
struct LazyState {
    /// dst -> row where `row[src]` is the next hop from src toward dst.
    rows: HashMap<u32, Arc<Vec<u32>>>,
    scratch: DijkstraScratch,
}

impl Clone for RoutingTables {
    fn clone(&self) -> Self {
        let repr = match &self.repr {
            Repr::Dense { n, next } => Repr::Dense {
                n: *n,
                next: next.clone(),
            },
            Repr::Lazy { topo, state } => {
                let st = state.lock().expect("routing lock");
                Repr::Lazy {
                    topo: Arc::clone(topo),
                    state: Mutex::new(LazyState {
                        rows: st.rows.clone(),
                        scratch: DijkstraScratch::new(),
                    }),
                }
            }
        };
        RoutingTables { repr }
    }
}

impl RoutingTables {
    /// Build next-hop tables for the whole topology. Dense (n Dijkstra
    /// runs by delay, matching a link-state IGP with delay as the metric)
    /// up to [`DENSE_MAX_NODES`]; lazy per-destination rows above.
    pub fn compute(topo: &Topology) -> Self {
        if topo.node_count() <= DENSE_MAX_NODES {
            RoutingTables::compute_dense(topo)
        } else {
            RoutingTables::lazy(Arc::new(topo.clone()))
        }
    }

    /// Force the dense `n × n` representation regardless of size.
    pub fn compute_dense(topo: &Topology) -> Self {
        let n = topo.node_count();
        let mut next = vec![NONE; n * n];
        let mut scratch = DijkstraScratch::new();
        for dst in topo.nodes() {
            let tree = dijkstra_with(topo, dst, Metric::Delay, &mut scratch);
            for src in topo.nodes() {
                if src == dst {
                    continue;
                }
                // First hop of src->dst = predecessor of src in the tree
                // rooted at dst (path reversal under symmetric links).
                if let Some(p) = tree.predecessor(src) {
                    next[src.index() * n + dst.index()] = p.0;
                }
            }
            scratch.recycle(tree);
        }
        RoutingTables {
            repr: Repr::Dense { n, next },
        }
    }

    /// Lazy tables over `topo`: rows materialise on first query toward a
    /// destination.
    pub fn lazy(topo: Arc<Topology>) -> Self {
        RoutingTables {
            repr: Repr::Lazy {
                topo,
                state: Mutex::new(LazyState {
                    rows: HashMap::new(),
                    scratch: DijkstraScratch::new(),
                }),
            },
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        match &self.repr {
            Repr::Dense { n, .. } => *n,
            Repr::Lazy { topo, .. } => topo.node_count(),
        }
    }

    /// Heap bytes of resident routing state (the full matrix when dense,
    /// only the touched rows when lazy).
    pub fn resident_bytes(&self) -> usize {
        match &self.repr {
            Repr::Dense { next, .. } => next.len() * std::mem::size_of::<u32>(),
            Repr::Lazy { state, .. } => {
                let st = state.lock().expect("routing lock");
                st.rows
                    .values()
                    .map(|r| r.len() * std::mem::size_of::<u32>())
                    .sum()
            }
        }
    }

    fn lazy_row(topo: &Topology, state: &Mutex<LazyState>, dst: NodeId) -> Arc<Vec<u32>> {
        let st = &mut *state.lock().expect("routing lock");
        if let Some(row) = st.rows.get(&dst.0) {
            return Arc::clone(row);
        }
        let tree = dijkstra_with(topo, dst, Metric::Delay, &mut st.scratch);
        let row: Vec<u32> = topo
            .nodes()
            .map(|src| {
                if src == dst {
                    NONE
                } else {
                    tree.predecessor(src).map_or(NONE, |p| p.0)
                }
            })
            .collect();
        st.scratch.recycle(tree);
        let row = Arc::new(row);
        st.rows.insert(dst.0, Arc::clone(&row));
        row
    }

    /// Next hop on the unicast route from `src` to `dst`.
    ///
    /// `None` when `src == dst` or `dst` is unreachable.
    #[inline]
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        let v = match &self.repr {
            Repr::Dense { n, next } => next[src.index() * n + dst.index()],
            Repr::Lazy { topo, state } => RoutingTables::lazy_row(topo, state, dst)[src.index()],
        };
        (v != NONE).then_some(NodeId(v))
    }

    /// Materialise the full hop-by-hop route `src -> … -> dst`.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        if src == dst {
            return Some(vec![src]);
        }
        let n = self.node_count();
        let mut out = vec![src];
        let mut cur = src;
        while cur != dst {
            cur = self.next_hop(cur, dst)?;
            out.push(cur);
            if out.len() > n {
                unreachable!("routing loop from {src:?} to {dst:?}");
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LinkWeight, TopologyBuilder};
    use crate::paths::AllPairsPaths;
    use crate::topology::examples::fig5;

    #[test]
    fn routes_are_shortest_delay_paths() {
        let t = fig5();
        let rt = RoutingTables::compute(&t);
        let ap = AllPairsPaths::compute(&t);
        for src in t.nodes() {
            for dst in t.nodes() {
                let route = rt.route(src, dst).expect("connected");
                let w = t.path_weight(&route).expect("valid path");
                assert_eq!(
                    Some(w.delay),
                    ap.unicast_delay(src, dst),
                    "{src:?}->{dst:?}"
                );
            }
        }
    }

    #[test]
    fn lazy_matches_dense() {
        let t = fig5();
        let dense = RoutingTables::compute_dense(&t);
        let lazy = RoutingTables::lazy(Arc::new(t.clone()));
        for src in t.nodes() {
            for dst in t.nodes() {
                assert_eq!(lazy.next_hop(src, dst), dense.next_hop(src, dst));
                assert_eq!(lazy.route(src, dst), dense.route(src, dst));
            }
        }
        // Only the queried destinations are resident.
        assert_eq!(
            lazy.resident_bytes(),
            t.node_count() * t.node_count() * std::mem::size_of::<u32>()
        );
    }

    #[test]
    fn lazy_rows_materialise_on_demand() {
        let t = fig5();
        let lazy = RoutingTables::lazy(Arc::new(t.clone()));
        assert_eq!(lazy.resident_bytes(), 0);
        lazy.next_hop(NodeId(0), NodeId(4));
        assert_eq!(
            lazy.resident_bytes(),
            t.node_count() * std::mem::size_of::<u32>()
        );
        // A clone carries the cached rows.
        let cloned = lazy.clone();
        assert_eq!(cloned.resident_bytes(), lazy.resident_bytes());
    }

    #[test]
    fn self_route_is_trivial() {
        let t = fig5();
        let rt = RoutingTables::compute(&t);
        assert_eq!(rt.next_hop(NodeId(2), NodeId(2)), None);
        assert_eq!(rt.route(NodeId(2), NodeId(2)), Some(vec![NodeId(2)]));
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = TopologyBuilder::new(3);
        b.add_link(NodeId(0), NodeId(1), LinkWeight::new(1, 1));
        let rt = RoutingTables::compute(&b.build());
        assert_eq!(rt.next_hop(NodeId(0), NodeId(2)), None);
        assert_eq!(rt.route(NodeId(0), NodeId(2)), None);
    }

    #[test]
    fn zero_delay_links_cannot_loop() {
        // A cycle of zero-delay links: hop-by-hop forwarding must still
        // terminate because all hops follow the destination-rooted tree.
        let mut b = TopologyBuilder::new(4);
        b.add_link(NodeId(0), NodeId(1), LinkWeight::new(0, 1));
        b.add_link(NodeId(1), NodeId(2), LinkWeight::new(0, 1));
        b.add_link(NodeId(2), NodeId(3), LinkWeight::new(0, 1));
        b.add_link(NodeId(3), NodeId(0), LinkWeight::new(0, 1));
        let rt = RoutingTables::compute(&b.build());
        for src in 0..4u32 {
            for dst in 0..4u32 {
                assert!(rt.route(NodeId(src), NodeId(dst)).is_some());
            }
        }
    }

    #[test]
    fn next_hop_is_a_neighbor() {
        let t = fig5();
        let rt = RoutingTables::compute(&t);
        for src in t.nodes() {
            for dst in t.nodes() {
                if let Some(nh) = rt.next_hop(src, dst) {
                    assert!(t.has_link(src, nh), "{src:?}->{dst:?} via {nh:?}");
                }
            }
        }
    }
}
