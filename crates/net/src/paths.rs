//! Precomputed all-pairs `P_sl` / `P_lc` path tables.
//!
//! §III-D of the paper: *"For each router on the tree, there are two
//! paths, `P_lc` and `P_sl`, connecting `s` to the router which were
//! computed in advance."* The m-router computes these once per topology
//! (it has the full link-state database) and the DCDM algorithm then
//! evaluates candidate grafts in `O(1)` per path.

use crate::dijkstra::{dijkstra_with, DijkstraScratch, Metric, ShortestPathTree};
use crate::graph::{NodeId, Topology};
use crate::provider::PathProvider;
use std::sync::Arc;

/// All-pairs shortest-delay and least-cost path tables.
///
/// Stores one [`ShortestPathTree`] per (source, metric); memory is
/// `O(n²)` which is trivial at the paper's scales (n ≤ a few hundred).
/// For larger graphs use [`crate::OnDemandPaths`] — both implement
/// [`PathProvider`] and return identical answers.
#[derive(Clone, Debug)]
pub struct AllPairsPaths {
    by_delay: Vec<Arc<ShortestPathTree>>,
    by_cost: Vec<Arc<ShortestPathTree>>,
}

impl AllPairsPaths {
    /// Precompute both tables for `topo` (2n Dijkstra runs sharing one
    /// scratch).
    pub fn compute(topo: &Topology) -> Self {
        let mut scratch = DijkstraScratch::new();
        let by_delay = topo
            .nodes()
            .map(|s| Arc::new(dijkstra_with(topo, s, Metric::Delay, &mut scratch)))
            .collect();
        let by_cost = topo
            .nodes()
            .map(|s| Arc::new(dijkstra_with(topo, s, Metric::Cost, &mut scratch)))
            .collect();
        AllPairsPaths { by_delay, by_cost }
    }

    /// Number of nodes the tables were computed for.
    pub fn node_count(&self) -> usize {
        self.by_delay.len()
    }

    /// The Dijkstra tree rooted at `src` for `metric`.
    pub fn tree(&self, src: NodeId, metric: Metric) -> &ShortestPathTree {
        match metric {
            Metric::Delay => &self.by_delay[src.index()],
            Metric::Cost => &self.by_cost[src.index()],
        }
    }

    /// Shortest distance from `src` to `dst` under `metric` (`None` if
    /// disconnected).
    pub fn distance(&self, src: NodeId, dst: NodeId, metric: Metric) -> Option<u64> {
        self.tree(src, metric).distance(dst)
    }

    /// The paper's unicast delay `ul`: delay of the shortest-delay path.
    pub fn unicast_delay(&self, src: NodeId, dst: NodeId) -> Option<u64> {
        self.distance(src, dst, Metric::Delay)
    }

    /// The path `src -> … -> dst` optimal under `metric`.
    pub fn path(&self, src: NodeId, dst: NodeId, metric: Metric) -> Option<Vec<NodeId>> {
        self.tree(src, metric).path_to(dst)
    }

    /// Next hop from `src` toward `dst` along the shortest-delay path —
    /// what a unicast routing table would return. `None` when `src == dst`
    /// or unreachable.
    pub fn next_hop_by_delay(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        if src == dst {
            return None;
        }
        // Walk dst's predecessor chain in the tree rooted at src.
        let tree = &self.by_delay[src.index()];
        let mut cur = dst;
        loop {
            let pred = tree.predecessor(cur)?;
            if pred == src {
                return Some(cur);
            }
            cur = pred;
        }
    }
}

impl PathProvider for AllPairsPaths {
    fn node_count(&self) -> usize {
        AllPairsPaths::node_count(self)
    }

    fn tree(&self, src: NodeId, metric: Metric) -> Arc<ShortestPathTree> {
        let arc = match metric {
            Metric::Delay => &self.by_delay[src.index()],
            Metric::Cost => &self.by_cost[src.index()],
        };
        Arc::clone(arc)
    }

    // invalidate(): default no-op — the tables are a snapshot of the
    // topology they were computed from and are rebuilt wholesale on
    // reconvergence.

    fn resident_path_bytes(&self) -> usize {
        self.by_delay
            .iter()
            .chain(self.by_cost.iter())
            .map(|t| t.resident_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use crate::graph::{LinkWeight, TopologyBuilder};
    use crate::topology::examples::fig5;

    #[test]
    fn tables_agree_with_direct_dijkstra() {
        let t = fig5();
        let ap = AllPairsPaths::compute(&t);
        for s in t.nodes() {
            for metric in [Metric::Delay, Metric::Cost] {
                let direct = dijkstra(&t, s, metric);
                for v in t.nodes() {
                    assert_eq!(ap.distance(s, v, metric), direct.distance(v));
                }
            }
        }
    }

    #[test]
    fn unicast_delay_is_symmetric() {
        // Links are symmetric, so shortest-delay *distances* must be too
        // (the chosen paths may differ under ties, the values cannot).
        let t = fig5();
        let ap = AllPairsPaths::compute(&t);
        for a in t.nodes() {
            for b in t.nodes() {
                assert_eq!(ap.unicast_delay(a, b), ap.unicast_delay(b, a));
            }
        }
    }

    #[test]
    fn path_endpoints_and_weights() {
        let t = fig5();
        let ap = AllPairsPaths::compute(&t);
        let p = ap.path(NodeId(5), NodeId(0), Metric::Cost).unwrap();
        assert_eq!(p.first(), Some(&NodeId(5)));
        assert_eq!(p.last(), Some(&NodeId(0)));
        assert_eq!(t.path_weight(&p).unwrap().cost, 7); // 5-2-0
    }

    #[test]
    fn next_hop_walks_shortest_delay_path() {
        let t = fig5();
        let ap = AllPairsPaths::compute(&t);
        // From g1 (node 4) toward the m-router (node 0): 4-1-0.
        assert_eq!(ap.next_hop_by_delay(NodeId(4), NodeId(0)), Some(NodeId(1)));
        assert_eq!(ap.next_hop_by_delay(NodeId(1), NodeId(0)), Some(NodeId(0)));
        assert_eq!(ap.next_hop_by_delay(NodeId(0), NodeId(0)), None);
    }

    #[test]
    fn next_hop_chain_terminates_at_destination() {
        let t = fig5();
        let ap = AllPairsPaths::compute(&t);
        for src in t.nodes() {
            for dst in t.nodes() {
                let mut cur = src;
                let mut hops = 0;
                while cur != dst {
                    cur = ap.next_hop_by_delay(cur, dst).expect("connected");
                    hops += 1;
                    assert!(hops <= t.node_count(), "routing loop {src:?}->{dst:?}");
                }
            }
        }
    }

    #[test]
    fn disconnected_pairs_return_none() {
        let mut b = TopologyBuilder::new(4);
        b.add_link(NodeId(0), NodeId(1), LinkWeight::new(1, 1));
        b.add_link(NodeId(2), NodeId(3), LinkWeight::new(1, 1));
        let ap = AllPairsPaths::compute(&b.build());
        assert_eq!(ap.distance(NodeId(0), NodeId(2), Metric::Delay), None);
        assert_eq!(ap.path(NodeId(0), NodeId(3), Metric::Cost), None);
        assert_eq!(ap.next_hop_by_delay(NodeId(1), NodeId(2)), None);
    }
}
