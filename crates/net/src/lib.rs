//! # scmp-net — network substrate for the SCMP reproduction
//!
//! This crate models the intra-domain network that the Service-Centric
//! Multicast Protocol (SCMP, Yang/Wang/Yang, ICPP 2006) runs over:
//!
//! * [`Topology`] — an undirected graph of routers connected by symmetric
//!   links, each link carrying a *(delay, cost)* pair exactly as in the
//!   paper (§III-A: "each link has two parameters: link delay and link
//!   cost ... links are symmetric").
//! * [`mod@dijkstra`] — single-source shortest paths under either metric.
//! * [`PathProvider`] — the path-table abstraction the tree algorithms
//!   consume. [`AllPairsPaths`] is the paper's eager `P_sl`/`P_lc`
//!   precomputation ("for each router on the tree, there are two paths,
//!   P_lc and P_sl, ... which were computed in advance");
//!   [`OnDemandPaths`] computes source trees lazily behind a bounded LRU
//!   so 10k-node domains don't pay `O(n²)` memory. [`provider_for`]
//!   picks by size.
//! * [`RoutingTables`] — per-node unicast next-hop tables derived from the
//!   shortest-delay paths; the link-state unicast routing protocol the
//!   paper assumes is running in the domain. Dense matrix at paper
//!   scale, lazy per-destination rows beyond
//!   [`routing::DENSE_MAX_NODES`].
//! * [`topology`] — generators: the paper's Waxman model (§IV-A), a
//!   GT-ITM-like flat random model with target average degree (§IV-B),
//!   a transit–stub model, the classic ARPANET map, and regular test
//!   topologies (line, ring, star, grid).

pub mod dijkstra;
pub mod export;
pub mod graph;
pub mod metrics;
pub mod paths;
pub mod provider;
pub mod rng;
pub mod routing;
pub mod topology;

pub use dijkstra::{dijkstra, dijkstra_with, DijkstraScratch, Metric, ShortestPathTree};
pub use graph::{EdgeRef, LinkWeight, NodeId, Topology, TopologyBuilder};
pub use paths::AllPairsPaths;
pub use provider::{provider_for, shared_provider_for, CacheStats, OnDemandPaths, PathProvider};
pub use routing::RoutingTables;
