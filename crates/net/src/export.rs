//! Graphviz (DOT) export for topologies — handy for eyeballing the
//! generated Waxman/GT-ITM graphs and for documentation figures.

use crate::graph::{NodeId, Topology};
use std::fmt::Write;

/// Render `topo` as an undirected DOT graph. Edge labels are
/// `delay/cost`; nodes in `highlight` are drawn filled (the harness uses
/// this for group members and the m-router).
pub fn to_dot(topo: &Topology, highlight: &[NodeId]) -> String {
    let mut out = String::from("graph topology {\n  node [shape=circle];\n");
    for v in topo.nodes() {
        if highlight.contains(&v) {
            let _ = writeln!(out, "  n{v} [style=filled, fillcolor=lightblue];");
        } else {
            let _ = writeln!(out, "  n{v};");
        }
    }
    for &(a, b, w) in topo.edges() {
        let _ = writeln!(out, "  n{a} -- n{b} [label=\"{}/{}\"];", w.delay, w.cost);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::examples::fig5;

    #[test]
    fn dot_contains_every_node_and_edge() {
        let topo = fig5();
        let dot = to_dot(&topo, &[NodeId(0)]);
        assert!(dot.starts_with("graph topology {"));
        assert!(dot.trim_end().ends_with('}'));
        for v in topo.nodes() {
            assert!(dot.contains(&format!("n{v}")), "{v:?} missing");
        }
        assert_eq!(dot.matches(" -- ").count(), topo.edge_count());
        // The m-router is highlighted; weights are labelled.
        assert!(dot.contains("n0 [style=filled"));
        assert!(dot.contains("label=\"3/6\""));
    }

    #[test]
    fn empty_topology() {
        let topo = crate::graph::TopologyBuilder::new(0).build();
        let dot = to_dot(&topo, &[]);
        assert!(dot.contains("graph topology"));
        assert!(!dot.contains(" -- "));
    }
}
