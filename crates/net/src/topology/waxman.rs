//! The Waxman random-topology model exactly as parameterised in §IV-A.
//!
//! > "Nodes in the graph are placed randomly in a rectangular coordinate
//! > grid ... The size of the rectangular is 32,767 by 32,767. ... the
//! > probability that there exists an edge connecting u and v is
//! > P(u,v) = β·e^(−d(u,v)/(αL)) where d(u,v) is the Manhattan distance
//! > ... L is the maximum Manhattan distance between any two nodes, which
//! > is 2·32,767. ... The link cost value of an edge is equal to the
//! > Manhattan distance between the two nodes, and the link delay value
//! > ... an uniformly distributed random variable between 0 and the link
//! > cost value."

use crate::graph::{LinkWeight, NodeId, Topology, TopologyBuilder};
use rand::Rng;

/// Parameters of the Waxman model. Defaults are the paper's §IV-A values
/// (`n = 100`, `α = 0.25`, `β = 0.2`).
#[derive(Clone, Copy, Debug)]
pub struct WaxmanConfig {
    /// Number of nodes.
    pub n: usize,
    /// Long-edge likelihood parameter (paper: 0.25).
    pub alpha: f64,
    /// Overall edge-density parameter (paper: 0.2).
    pub beta: f64,
    /// Grid side length (paper: 32 767).
    pub grid: i64,
    /// Guarantee delay ≥ 1 on every link (the paper draws `U[0, cost]`;
    /// the discrete-event simulator needs strictly positive propagation
    /// delays, so the §IV-B experiments set this).
    pub min_delay_one: bool,
}

impl Default for WaxmanConfig {
    fn default() -> Self {
        WaxmanConfig {
            n: 100,
            alpha: 0.25,
            beta: 0.2,
            grid: 32_767,
            min_delay_one: false,
        }
    }
}

/// Generate a connected Waxman topology.
///
/// Disconnected samples are augmented by linking closest component pairs
/// (cost = Manhattan distance, delay drawn like any other link), so the
/// result is always connected without resampling — keeping the node
/// coordinate stream aligned with the seed.
pub fn waxman(cfg: &WaxmanConfig, rng: &mut impl Rng) -> Topology {
    assert!(cfg.n >= 1, "need at least one node");
    assert!(
        cfg.alpha > 0.0 && cfg.beta > 0.0,
        "alpha/beta must be positive"
    );
    let coords: Vec<(i64, i64)> = (0..cfg.n)
        .map(|_| (rng.gen_range(0..=cfg.grid), rng.gen_range(0..=cfg.grid)))
        .collect();
    let l = (2 * cfg.grid) as f64;
    let mut b = TopologyBuilder::new(cfg.n).with_coords(coords.clone());
    for u in 0..cfg.n {
        for v in (u + 1)..cfg.n {
            let d = (coords[u].0 - coords[v].0).abs() + (coords[u].1 - coords[v].1).abs();
            if d == 0 {
                // Coincident nodes: treat as distance 1 so the link, if
                // drawn, has a positive cost.
                continue;
            }
            let p = cfg.beta * (-(d as f64) / (cfg.alpha * l)).exp();
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                let w = draw_weight(d as u64, cfg.min_delay_one, rng);
                b.add_link(NodeId(u as u32), NodeId(v as u32), w);
            }
        }
    }
    let b = super::connect_components(b, &coords, |d| {
        draw_weight(d as u64, cfg.min_delay_one, rng)
    });
    b.build()
}

fn draw_weight(cost: u64, min_delay_one: bool, rng: &mut impl Rng) -> LinkWeight {
    let cost = cost.max(1);
    let delay = rng.gen_range(0..=cost);
    let delay = if min_delay_one { delay.max(1) } else { delay };
    LinkWeight { delay, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_for;

    #[test]
    fn paper_parameters_produce_connected_graph() {
        for seed in 0..5 {
            let mut rng = rng_for("waxman-test", seed);
            let t = waxman(&WaxmanConfig::default(), &mut rng);
            assert_eq!(t.node_count(), 100);
            assert!(t.is_connected());
            // β=0.2, α=0.25 on 100 nodes is reasonably dense.
            assert!(t.average_degree() > 2.0, "degree {}", t.average_degree());
        }
    }

    #[test]
    fn weights_follow_model() {
        let mut rng = rng_for("waxman-weights", 0);
        let t = waxman(&WaxmanConfig::default(), &mut rng);
        for &(a, b, w) in t.edges() {
            assert!(w.cost >= 1);
            assert!(w.delay <= w.cost, "delay {} > cost {}", w.delay, w.cost);
            // Cost equals Manhattan distance of endpoints.
            let (ax, ay) = t.coords(a).unwrap();
            let (bx, by) = t.coords(b).unwrap();
            let d = ((ax - bx).abs() + (ay - by).abs()).max(1) as u64;
            assert_eq!(w.cost, d);
        }
    }

    #[test]
    fn min_delay_one_clamps() {
        let cfg = WaxmanConfig {
            min_delay_one: true,
            ..WaxmanConfig::default()
        };
        let mut rng = rng_for("waxman-clamp", 0);
        let t = waxman(&cfg, &mut rng);
        assert!(t.edges().iter().all(|&(_, _, w)| w.delay >= 1));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = waxman(&WaxmanConfig::default(), &mut rng_for("w", 7));
        let b = waxman(&WaxmanConfig::default(), &mut rng_for("w", 7));
        assert_eq!(a.edges(), b.edges());
        let c = waxman(&WaxmanConfig::default(), &mut rng_for("w", 8));
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn tiny_graphs_work() {
        let cfg = WaxmanConfig {
            n: 1,
            ..WaxmanConfig::default()
        };
        let t = waxman(&cfg, &mut rng_for("tiny", 0));
        assert_eq!(t.node_count(), 1);
        assert!(t.is_connected());

        let cfg2 = WaxmanConfig {
            n: 2,
            beta: 1e-9, // essentially never draws an edge: augmentation kicks in
            ..WaxmanConfig::default()
        };
        let t2 = waxman(&cfg2, &mut rng_for("tiny", 1));
        assert!(t2.is_connected());
        assert_eq!(t2.edge_count(), 1);
    }

    #[test]
    fn alpha_increases_long_edges() {
        // Higher α admits more long edges => more edges overall.
        let lo = WaxmanConfig {
            alpha: 0.05,
            ..WaxmanConfig::default()
        };
        let hi = WaxmanConfig {
            alpha: 0.8,
            ..WaxmanConfig::default()
        };
        let mut e_lo = 0;
        let mut e_hi = 0;
        for seed in 0..5 {
            e_lo += waxman(&lo, &mut rng_for("alpha", seed)).edge_count();
            e_hi += waxman(&hi, &mut rng_for("alpha", seed)).edge_count();
        }
        assert!(e_hi > e_lo, "hi {e_hi} <= lo {e_lo}");
    }
}
