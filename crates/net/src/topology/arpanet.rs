//! The ARPANET topology used as the first §IV-B evaluation network.
//!
//! We encode the classic 20-node / 32-link ARPANET map as commonly
//! reproduced in the multicast-routing literature (average node degree
//! 3.2). The paper assigns link weights randomly per experiment seed, so
//! only the *shape* is fixed; [`arpanet`] draws weights the same way as
//! the other generators (cost uniform, delay uniform in `[1, cost]`).

use crate::graph::{LinkWeight, NodeId, Topology, TopologyBuilder};
use rand::Rng;

/// Number of nodes in the ARPANET map.
pub const ARPANET_NODES: usize = 20;

/// The 32 undirected links of the ARPANET map.
pub const ARPANET_EDGES: [(u32, u32); 32] = [
    (0, 1),
    (0, 3),
    (1, 2),
    (1, 12),
    (2, 4),
    (2, 5),
    (3, 4),
    (3, 6),
    (4, 5),
    (4, 7),
    (5, 8),
    (6, 7),
    (6, 9),
    (7, 8),
    (7, 10),
    (8, 11),
    (9, 10),
    (9, 13),
    (10, 11),
    (10, 14),
    (11, 15),
    (12, 13),
    (12, 16),
    (13, 14),
    (13, 17),
    (14, 15),
    (14, 18),
    (15, 19),
    (16, 17),
    (16, 19),
    (17, 18),
    (18, 19),
];

/// Build the ARPANET with randomly drawn link weights: cost uniform in
/// `[10, 100]`, delay uniform in `[1, cost]` (same convention as the
/// random topologies, so overhead units are comparable across Fig. 8's
/// three panels).
pub fn arpanet(rng: &mut impl Rng) -> Topology {
    let mut b = TopologyBuilder::new(ARPANET_NODES);
    for &(u, v) in &ARPANET_EDGES {
        let cost = rng.gen_range(10..=100u64);
        let delay = rng.gen_range(1..=cost);
        b.add_link(NodeId(u), NodeId(v), LinkWeight { delay, cost });
    }
    b.build()
}

/// The ARPANET with every link weighted `(1, 1)` — handy for tests that
/// reason about hop counts.
pub fn arpanet_unit() -> Topology {
    let mut b = TopologyBuilder::new(ARPANET_NODES);
    for &(u, v) in &ARPANET_EDGES {
        b.add_link(NodeId(u), NodeId(v), LinkWeight::new(1, 1));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_for;

    #[test]
    fn shape_invariants() {
        let t = arpanet_unit();
        assert_eq!(t.node_count(), 20);
        assert_eq!(t.edge_count(), 32);
        assert!(t.is_connected());
        assert!((t.average_degree() - 3.2).abs() < 1e-9);
        // Historic ARPANET had no high-degree hubs.
        for v in t.nodes() {
            assert!(t.degree(v) >= 2 && t.degree(v) <= 4, "{v:?}");
        }
    }

    #[test]
    fn weighted_variant_keeps_shape() {
        let t = arpanet(&mut rng_for("arpa", 0));
        let u = arpanet_unit();
        assert_eq!(t.edge_count(), u.edge_count());
        for &(a, b, _) in t.edges() {
            assert!(u.has_link(a, b));
        }
        for &(_, _, w) in t.edges() {
            assert!((10..=100).contains(&w.cost));
            assert!(w.delay >= 1 && w.delay <= w.cost);
        }
    }

    #[test]
    fn weights_deterministic_per_seed() {
        let a = arpanet(&mut rng_for("arpa-det", 5));
        let b = arpanet(&mut rng_for("arpa-det", 5));
        assert_eq!(a.edges(), b.edges());
    }
}
