//! Deterministic regular topologies for unit and property tests.

use crate::graph::{LinkWeight, NodeId, Topology, TopologyBuilder};

/// A path `0 - 1 - … - (n-1)` with uniform weight `w`.
pub fn line(n: usize, w: LinkWeight) -> Topology {
    let mut b = TopologyBuilder::new(n);
    for i in 1..n {
        b.add_link(NodeId(i as u32 - 1), NodeId(i as u32), w);
    }
    b.build()
}

/// A cycle of `n ≥ 3` nodes with uniform weight `w`.
pub fn ring(n: usize, w: LinkWeight) -> Topology {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let mut b = TopologyBuilder::new(n);
    for i in 0..n {
        b.add_link(NodeId(i as u32), NodeId(((i + 1) % n) as u32), w);
    }
    b.build()
}

/// A star: node 0 is the hub, nodes `1..n` are leaves.
pub fn star(n: usize, w: LinkWeight) -> Topology {
    assert!(n >= 2, "star needs a hub and a leaf");
    let mut b = TopologyBuilder::new(n);
    for i in 1..n {
        b.add_link(NodeId(0), NodeId(i as u32), w);
    }
    b.build()
}

/// A `rows × cols` grid; node `(r, c)` is `r * cols + c`.
pub fn grid(rows: usize, cols: usize, w: LinkWeight) -> Topology {
    assert!(rows >= 1 && cols >= 1);
    let mut b = TopologyBuilder::new(rows * cols);
    let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_link(id(r, c), id(r, c + 1), w);
            }
            if r + 1 < rows {
                b.add_link(id(r, c), id(r + 1, c), w);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::{dijkstra, Metric};

    const W: LinkWeight = LinkWeight::new(2, 3);

    #[test]
    fn line_shape() {
        let t = line(5, W);
        assert_eq!(t.edge_count(), 4);
        assert!(t.is_connected());
        let spt = dijkstra(&t, NodeId(0), Metric::Delay);
        assert_eq!(spt.distance(NodeId(4)), Some(8));
    }

    #[test]
    fn ring_shape() {
        let t = ring(6, W);
        assert_eq!(t.edge_count(), 6);
        // Opposite node reachable both ways in 3 hops.
        let spt = dijkstra(&t, NodeId(0), Metric::Delay);
        assert_eq!(spt.distance(NodeId(3)), Some(6));
    }

    #[test]
    fn star_shape() {
        let t = star(5, W);
        assert_eq!(t.degree(NodeId(0)), 4);
        for i in 1..5u32 {
            assert_eq!(t.degree(NodeId(i)), 1);
        }
    }

    #[test]
    fn grid_shape() {
        let t = grid(3, 4, W);
        assert_eq!(t.node_count(), 12);
        assert_eq!(t.edge_count(), 3 * 3 + 2 * 4); // 17
        let spt = dijkstra(&t, NodeId(0), Metric::Cost);
        // Corner to corner: (3-1)+(4-1) = 5 hops.
        assert_eq!(spt.distance(NodeId(11)), Some(5 * 3));
    }

    #[test]
    fn degenerate_grids() {
        assert_eq!(grid(1, 1, W).edge_count(), 0);
        assert_eq!(grid(1, 4, W).edge_count(), 3);
        assert!(line(1, W).is_connected());
    }
}
