//! Worked-example topologies from the paper, reconstructed from the text.

use crate::graph::{LinkWeight, NodeId, Topology, TopologyBuilder};

/// The 6-node topology of the paper's Fig. 5 (DCDM walkthrough).
///
/// Link labels are `(delay, cost)`. Node 0 is the m-router; nodes 4, 3
/// and 5 are the group members `g1`, `g2`, `g3`. The edge set is fully
/// determined by the numbers in the §III-D walkthrough:
///
/// * `g1` joins over the shortest-delay path `0-1-4` with delay
///   `3 + 9 = 12` ⇒ links `0-1 = (3,6)`, `1-4 = (9,3)`.
/// * `g2 = 3` has unicast delay 2 and grafting at node 0 adds cost 6
///   ⇒ direct link `0-3 = (2,6)`.
/// * Grafting `g2` at node 1 gives multicast delay `3+3+4 = 10` with
///   cost increase 3 ⇒ `1-2 = (3,2)`, `2-3 = (4,1)`.
/// * `g3 = 5` has unicast delay `4+7 = 11` and grafting at node 2 would
///   give `3+3+7 = 13` ⇒ `0-2 = (4,5)`, `2-5 = (7,2)`.
pub fn fig5() -> Topology {
    let mut b = TopologyBuilder::new(6);
    b.add_link(NodeId(0), NodeId(1), LinkWeight::new(3, 6));
    b.add_link(NodeId(0), NodeId(2), LinkWeight::new(4, 5));
    b.add_link(NodeId(0), NodeId(3), LinkWeight::new(2, 6));
    b.add_link(NodeId(1), NodeId(2), LinkWeight::new(3, 2));
    b.add_link(NodeId(1), NodeId(4), LinkWeight::new(9, 3));
    b.add_link(NodeId(2), NodeId(3), LinkWeight::new(4, 1));
    b.add_link(NodeId(2), NodeId(5), LinkWeight::new(7, 2));
    b.build()
}

/// The multicast subtree of the paper's Fig. 6 (TREE-packet walkthrough),
/// rooted at node 2, expressed as `(parent, child)` pairs:
///
/// ```text
///          2
///        / | \
///       4  5  6
///         / \  \
///        7   8  9
/// ```
///
/// Node 10 (the BRANCH-packet example joiner) hangs off node 4.
pub fn fig6_tree_edges() -> Vec<(NodeId, NodeId)> {
    vec![
        (NodeId(2), NodeId(4)),
        (NodeId(2), NodeId(5)),
        (NodeId(2), NodeId(6)),
        (NodeId(5), NodeId(7)),
        (NodeId(5), NodeId(8)),
        (NodeId(6), NodeId(9)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::{dijkstra, Metric};

    #[test]
    fn fig5_matches_paper_unicast_delays() {
        let t = fig5();
        let spt = dijkstra(&t, NodeId(0), Metric::Delay);
        // ul(g1)=12 via 0-1-4, ul(g2)=2 direct, ul(g3)=11 via 0-2-5.
        assert_eq!(spt.distance(NodeId(4)), Some(12));
        assert_eq!(
            spt.path_to(NodeId(4)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(4)]
        );
        assert_eq!(spt.distance(NodeId(3)), Some(2));
        assert_eq!(spt.distance(NodeId(5)), Some(11));
        assert_eq!(
            spt.path_to(NodeId(5)).unwrap(),
            vec![NodeId(0), NodeId(2), NodeId(5)]
        );
    }

    #[test]
    fn fig5_is_connected_and_symmetric() {
        let t = fig5();
        assert!(t.is_connected());
        assert_eq!(t.edge_count(), 7);
        for &(a, b, w) in t.edges() {
            assert_eq!(t.link(a, b), Some(w));
            assert_eq!(t.link(b, a), Some(w));
        }
    }

    #[test]
    fn fig6_tree_is_a_tree() {
        let edges = fig6_tree_edges();
        // 6 edges, 7 distinct non-root children, root 2.
        assert_eq!(edges.len(), 6);
        let mut children: Vec<_> = edges.iter().map(|&(_, c)| c).collect();
        children.sort_unstable();
        children.dedup();
        assert_eq!(children.len(), 6);
        assert!(!children.contains(&NodeId(2)));
    }
}
