//! Barabási–Albert preferential-attachment topologies.
//!
//! Not used by the paper's own evaluation (which predates the
//! scale-free-Internet literature becoming standard in multicast
//! papers), but provided for the harness's sensitivity studies: BA
//! graphs have the heavy-tailed degree distribution of real AS-level
//! maps, which stresses the placement heuristics (rule 2 finds a real
//! hub) and the concentration experiments (hubs are natural hotspots).

use crate::graph::{LinkWeight, NodeId, Topology, TopologyBuilder};
use rand::Rng;

/// Generate a Barabási–Albert graph: start from a small clique, then
/// each new node attaches to `m` distinct existing nodes chosen with
/// probability proportional to their degree.
///
/// Link weights follow the workspace convention (cost uniform in
/// `[10, 100]`, delay uniform in `[1, cost]`).
///
/// # Panics
/// If `n < m + 1` or `m == 0`.
pub fn barabasi_albert(n: usize, m: usize, rng: &mut impl Rng) -> Topology {
    assert!(m >= 1, "need at least one edge per new node");
    assert!(n > m, "need more nodes than the attachment count");
    let mut b = TopologyBuilder::new(n);
    let draw = |rng: &mut dyn rand::RngCore| {
        let cost = rng.gen_range(10..=100u64);
        LinkWeight {
            delay: rng.gen_range(1..=cost),
            cost,
        }
    };
    // Seed clique over the first m+1 nodes.
    for i in 0..=m {
        for j in (i + 1)..=m {
            b.add_link(NodeId(i as u32), NodeId(j as u32), draw(rng));
        }
    }
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportional to degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(4 * n * m);
    for i in 0..=m {
        for _ in 0..m {
            endpoints.push(i as u32);
        }
    }
    for v in (m + 1)..n {
        let mut targets = Vec::with_capacity(m);
        while targets.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v as u32 && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_link(NodeId(v as u32), NodeId(t), draw(rng));
            endpoints.push(t);
            endpoints.push(v as u32);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_for;

    #[test]
    fn shape_and_connectivity() {
        let t = barabasi_albert(60, 2, &mut rng_for("ba", 0));
        assert_eq!(t.node_count(), 60);
        assert!(t.is_connected());
        // clique(3) + 57 nodes × 2 edges = 3 + 114.
        assert_eq!(t.edge_count(), 3 + 57 * 2);
    }

    #[test]
    fn heavy_tail_emerges() {
        // The max degree of a BA graph dwarfs the mean; a flat random
        // graph of the same density does not produce such hubs.
        let t = barabasi_albert(200, 2, &mut rng_for("ba-tail", 1));
        let max_deg = t.nodes().map(|v| t.degree(v)).max().unwrap();
        let mean = t.average_degree();
        assert!(
            max_deg as f64 > mean * 4.0,
            "expected a hub: max {max_deg}, mean {mean:.1}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = barabasi_albert(40, 3, &mut rng_for("ba-det", 2));
        let b = barabasi_albert(40, 3, &mut rng_for("ba-det", 2));
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn minimal_sizes() {
        let t = barabasi_albert(3, 1, &mut rng_for("ba-min", 0));
        assert!(t.is_connected());
        assert_eq!(t.edge_count(), 2); // clique(2)=1 edge + 1 new node
    }

    #[test]
    #[should_panic(expected = "more nodes")]
    fn rejects_tiny_n() {
        barabasi_albert(2, 2, &mut rng_for("ba-bad", 0));
    }
}
