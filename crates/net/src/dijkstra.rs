//! Single-source shortest paths under either link metric.
//!
//! The paper distinguishes the *shortest-delay* path `P_sl` from the
//! *least-cost* path `P_lc` between every node pair (§III-A). Both are
//! produced by the same Dijkstra run parameterised by [`Metric`].
//!
//! Determinism: ties are broken toward the smaller predecessor node id, so
//! repeated runs over the same [`Topology`] yield identical trees — a
//! requirement for the reproducible experiment harness.

use crate::graph::{NodeId, Topology};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which link parameter to minimise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Minimise summed link delay (the paper's `P_sl`).
    Delay,
    /// Minimise summed link cost (the paper's `P_lc`).
    Cost,
}

impl Metric {
    /// Extract this metric's component from a link weight.
    #[inline]
    pub fn of(self, w: crate::graph::LinkWeight) -> u64 {
        match self {
            Metric::Delay => w.delay,
            Metric::Cost => w.cost,
        }
    }
}

/// Result of a Dijkstra run: distances and predecessor pointers from one
/// source to every reachable node.
#[derive(Clone, Debug)]
pub struct ShortestPathTree {
    source: NodeId,
    metric: Metric,
    dist: Vec<u64>,
    pred: Vec<Option<NodeId>>,
}

impl ShortestPathTree {
    /// The source this tree is rooted at.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The metric that was minimised.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Distance from the source to `node` under the tree's metric, or
    /// `None` if unreachable.
    pub fn distance(&self, node: NodeId) -> Option<u64> {
        let d = self.dist[node.index()];
        (d != u64::MAX).then_some(d)
    }

    /// Predecessor of `node` on its shortest path (None for the source or
    /// unreachable nodes).
    pub fn predecessor(&self, node: NodeId) -> Option<NodeId> {
        self.pred[node.index()]
    }

    /// Full path `source -> … -> node`, or `None` if unreachable.
    pub fn path_to(&self, node: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[node.index()] == u64::MAX {
            return None;
        }
        let mut path = vec![node];
        let mut cur = node;
        while let Some(p) = self.pred[cur.index()] {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(cur, self.source);
        path.reverse();
        Some(path)
    }

    /// Heap footprint of the tree's distance and predecessor arrays —
    /// what one cached source tree costs a [`crate::OnDemandPaths`].
    pub fn resident_bytes(&self) -> usize {
        self.dist.len() * std::mem::size_of::<u64>()
            + self.pred.len() * std::mem::size_of::<Option<NodeId>>()
    }
}

/// Reusable working memory for [`dijkstra_with`].
///
/// A Dijkstra run needs four growable buffers: the heap, the visited
/// set, and the output `dist`/`pred` arrays. The first two are pure
/// scratch and are reused across runs directly; the output arrays must
/// be owned by the returned [`ShortestPathTree`], so the scratch keeps a
/// recycle pool fed by [`DijkstraScratch::recycle`] (the on-demand path
/// provider returns evicted trees here). With a warm scratch a run
/// allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct DijkstraScratch {
    heap: BinaryHeap<Reverse<(u64, NodeId)>>,
    done: Vec<bool>,
    dist_pool: Vec<Vec<u64>>,
    pred_pool: Vec<Vec<Option<NodeId>>>,
}

impl DijkstraScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        DijkstraScratch::default()
    }

    /// Return a no-longer-needed tree's buffers to the recycle pool so
    /// the next [`dijkstra_with`] run can reuse them.
    pub fn recycle(&mut self, tree: ShortestPathTree) {
        self.dist_pool.push(tree.dist);
        self.pred_pool.push(tree.pred);
    }

    /// Take (or allocate) an output buffer pair sized and reset for `n`
    /// nodes.
    fn take_bufs(&mut self, n: usize) -> (Vec<u64>, Vec<Option<NodeId>>) {
        let mut dist = self.dist_pool.pop().unwrap_or_default();
        dist.clear();
        dist.resize(n, u64::MAX);
        let mut pred = self.pred_pool.pop().unwrap_or_default();
        pred.clear();
        pred.resize(n, None);
        (dist, pred)
    }
}

/// Dijkstra from `source` over `topo`, minimising `metric`.
///
/// Runs in `O(m log n)`; zero-weight links are allowed (the Waxman model
/// can draw delay 0). Allocates fresh working memory per call — hot
/// paths (the on-demand path provider, [`crate::RoutingTables`]) use
/// [`dijkstra_with`] and a shared [`DijkstraScratch`] instead.
pub fn dijkstra(topo: &Topology, source: NodeId, metric: Metric) -> ShortestPathTree {
    dijkstra_with(topo, source, metric, &mut DijkstraScratch::new())
}

/// [`dijkstra`] with caller-provided working memory. Byte-identical
/// results to the allocating version — the scratch only changes where
/// the intermediate state lives.
pub fn dijkstra_with(
    topo: &Topology,
    source: NodeId,
    metric: Metric,
    scratch: &mut DijkstraScratch,
) -> ShortestPathTree {
    let n = topo.node_count();
    let (mut dist, mut pred) = scratch.take_bufs(n);
    let done = &mut scratch.done;
    done.clear();
    done.resize(n, false);
    let heap = &mut scratch.heap;
    heap.clear();
    dist[source.index()] = 0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if done[v.index()] {
            continue;
        }
        done[v.index()] = true;
        for e in topo.neighbors(v) {
            let nd = d + metric.of(e.weight);
            let slot = &mut dist[e.to.index()];
            // Strict improvement, or equal distance via a smaller-id
            // predecessor: keeps tie-breaking deterministic and canonical.
            if nd < *slot
                || (nd == *slot && !done[e.to.index()] && pred[e.to.index()].is_some_and(|p| v < p))
            {
                *slot = nd;
                pred[e.to.index()] = Some(v);
                heap.push(Reverse((nd, e.to)));
            }
        }
    }
    ShortestPathTree {
        source,
        metric,
        dist,
        pred,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LinkWeight, TopologyBuilder};

    use crate::topology::examples::fig5;

    #[test]
    fn delay_distances_on_fig5() {
        let t = fig5();
        let spt = dijkstra(&t, NodeId(0), Metric::Delay);
        assert_eq!(spt.distance(NodeId(0)), Some(0));
        assert_eq!(spt.distance(NodeId(1)), Some(3));
        assert_eq!(spt.distance(NodeId(2)), Some(4));
        assert_eq!(spt.distance(NodeId(3)), Some(2)); // direct, the paper's ul(g2)
        assert_eq!(spt.distance(NodeId(4)), Some(12)); // 0-1-4, ul(g1)
        assert_eq!(spt.distance(NodeId(5)), Some(11)); // 0-2-5, ul(g3)
    }

    #[test]
    fn cost_distances_differ_from_delay() {
        let t = fig5();
        let by_cost = dijkstra(&t, NodeId(0), Metric::Cost);
        // Least-cost to node 4: 0-1-4 = 6+3 = 9.
        assert_eq!(by_cost.distance(NodeId(4)), Some(9));
        // Least-cost to node 5: 0-2-5 = 5+2 = 7.
        assert_eq!(by_cost.distance(NodeId(5)), Some(7));
        // Node 3: direct (6) ties with 0-2-3 (5+1).
        assert_eq!(by_cost.distance(NodeId(3)), Some(6));
    }

    #[test]
    fn path_reconstruction_follows_links() {
        let t = fig5();
        for metric in [Metric::Delay, Metric::Cost] {
            let spt = dijkstra(&t, NodeId(0), metric);
            for v in t.nodes() {
                let p = spt.path_to(v).expect("connected");
                assert_eq!(p.first().copied(), Some(NodeId(0)));
                assert_eq!(p.last().copied(), Some(v));
                let w = t.path_weight(&p).expect("path follows links");
                assert_eq!(metric.of(w), spt.distance(v).unwrap());
            }
        }
    }

    #[test]
    fn unreachable_nodes_are_none() {
        let mut b = TopologyBuilder::new(3);
        b.add_link(NodeId(0), NodeId(1), LinkWeight::new(1, 1));
        let t = b.build();
        let spt = dijkstra(&t, NodeId(0), Metric::Delay);
        assert_eq!(spt.distance(NodeId(2)), None);
        assert_eq!(spt.path_to(NodeId(2)), None);
        assert_eq!(spt.predecessor(NodeId(2)), None);
    }

    #[test]
    fn source_path_is_singleton() {
        let t = fig5();
        let spt = dijkstra(&t, NodeId(3), Metric::Cost);
        assert_eq!(spt.path_to(NodeId(3)), Some(vec![NodeId(3)]));
        assert_eq!(spt.source(), NodeId(3));
        assert_eq!(spt.metric(), Metric::Cost);
    }

    #[test]
    fn zero_weight_links_supported() {
        let mut b = TopologyBuilder::new(3);
        b.add_link(NodeId(0), NodeId(1), LinkWeight::new(0, 0));
        b.add_link(NodeId(1), NodeId(2), LinkWeight::new(0, 5));
        let t = b.build();
        let spt = dijkstra(&t, NodeId(0), Metric::Delay);
        assert_eq!(spt.distance(NodeId(2)), Some(0));
    }

    #[test]
    fn deterministic_tie_break_prefers_small_predecessor() {
        // Two equal-delay paths to node 3: via 1 and via 2.
        let mut b = TopologyBuilder::new(4);
        b.add_link(NodeId(0), NodeId(1), LinkWeight::new(1, 1));
        b.add_link(NodeId(0), NodeId(2), LinkWeight::new(1, 1));
        b.add_link(NodeId(1), NodeId(3), LinkWeight::new(1, 1));
        b.add_link(NodeId(2), NodeId(3), LinkWeight::new(1, 1));
        let t = b.build();
        let spt = dijkstra(&t, NodeId(0), Metric::Delay);
        assert_eq!(spt.predecessor(NodeId(3)), Some(NodeId(1)));
    }
}
