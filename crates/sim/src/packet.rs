//! The simulator's packet model.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Multicast group identifier (the paper's `gid`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub u32);

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Overhead class of a packet, matching the §IV-B metric split:
/// "Data overhead: the network bandwidth used by the data packets.
///  Protocol overhead: the network bandwidth used by the protocol
///  packets."
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketClass {
    /// Multicast payload (including payloads encapsulated in unicast on
    /// their way to the m-router/core — still user data on the wire).
    Data,
    /// Control traffic: JOIN/LEAVE/PRUNE/GRAFT, TREE/BRANCH packets,
    /// LSAs, acks.
    Control,
}

/// A packet in flight. Generic over the protocol message body `M` so
/// that every protocol crate defines its own message enum without the
/// simulator knowing about any of them.
#[derive(Clone, Debug)]
pub struct Packet<M> {
    /// Overhead accounting class.
    pub class: PacketClass,
    /// Group this packet belongs to.
    pub group: GroupId,
    /// Data-packet sequence tag (unique per injected payload); control
    /// packets use 0. Used to track deliveries and end-to-end delay.
    pub tag: u64,
    /// Simulation time the payload entered the network at its source.
    pub created_at: u64,
    /// Protocol-specific body.
    pub body: M,
}

impl<M> Packet<M> {
    /// Construct a control packet (tag 0, creation time irrelevant).
    pub fn control(group: GroupId, body: M) -> Self {
        Packet {
            class: PacketClass::Control,
            group,
            tag: 0,
            created_at: 0,
            body,
        }
    }

    /// Construct a data packet carrying payload `tag`, created at `now`.
    pub fn data(group: GroupId, tag: u64, now: u64, body: M) -> Self {
        Packet {
            class: PacketClass::Data,
            group,
            tag,
            created_at: now,
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_class() {
        let c: Packet<&str> = Packet::control(GroupId(1), "join");
        assert_eq!(c.class, PacketClass::Control);
        assert_eq!(c.tag, 0);
        let d: Packet<&str> = Packet::data(GroupId(1), 7, 100, "payload");
        assert_eq!(d.class, PacketClass::Data);
        assert_eq!(d.created_at, 100);
        assert_eq!(d.tag, 7);
    }

    #[test]
    fn group_debug_format() {
        assert_eq!(format!("{:?}", GroupId(3)), "g3");
    }
}
