//! The simulator's packet model.

use scmp_net::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Sentinel origin for a packet not yet stamped by the transport: the
/// first [`Ctx::send`](crate::Ctx::send)/unicast sets the real origin.
pub const ORIGIN_UNSET: NodeId = NodeId(u32::MAX);

/// Multicast group identifier (the paper's `gid`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub u32);

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Overhead class of a packet, matching the §IV-B metric split:
/// "Data overhead: the network bandwidth used by the data packets.
///  Protocol overhead: the network bandwidth used by the protocol
///  packets."
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketClass {
    /// Multicast payload (including payloads encapsulated in unicast on
    /// their way to the m-router/core — still user data on the wire).
    Data,
    /// Control traffic: JOIN/LEAVE/PRUNE/GRAFT, TREE/BRANCH packets,
    /// LSAs, acks.
    Control,
}

/// A packet in flight. Generic over the protocol message body `M` so
/// that every protocol crate defines its own message enum without the
/// simulator knowing about any of them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet<M> {
    /// Overhead accounting class.
    pub class: PacketClass,
    /// Group this packet belongs to.
    pub group: GroupId,
    /// Correlation tag: a data payload's sequence number (unique per
    /// injected payload), or a packed control-transaction trace key
    /// ([`scmp_telemetry::trace_key`] — high bit set). Plain control
    /// packets outside any tracked transaction use 0.
    pub tag: u64,
    /// Simulation time the payload entered the network at its source.
    pub created_at: u64,
    /// The node that first transmitted the packet. Stamped by the
    /// transport on first send ([`ORIGIN_UNSET`] until then) and
    /// preserved across relays/decapsulation, so the (group, origin,
    /// tag) correlation key survives the whole path.
    pub origin: NodeId,
    /// Protocol-specific body.
    pub body: M,
}

impl<M> Packet<M> {
    /// Construct a control packet (tag 0, creation time irrelevant).
    pub fn control(group: GroupId, body: M) -> Self {
        Packet {
            class: PacketClass::Control,
            group,
            tag: 0,
            created_at: 0,
            origin: ORIGIN_UNSET,
            body,
        }
    }

    /// Construct a control packet stamped with a causal transaction
    /// `tag` (a packed trace key, or an inherited upstream tag) so the
    /// whole control cascade correlates in telemetry.
    pub fn control_keyed(group: GroupId, tag: u64, body: M) -> Self {
        Packet {
            class: PacketClass::Control,
            group,
            tag,
            created_at: 0,
            origin: ORIGIN_UNSET,
            body,
        }
    }

    /// Construct a data packet carrying payload `tag`, created at `now`.
    pub fn data(group: GroupId, tag: u64, now: u64, body: M) -> Self {
        Packet {
            class: PacketClass::Data,
            group,
            tag,
            created_at: now,
            origin: ORIGIN_UNSET,
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_class() {
        let c: Packet<&str> = Packet::control(GroupId(1), "join");
        assert_eq!(c.class, PacketClass::Control);
        assert_eq!(c.tag, 0);
        assert_eq!(c.origin, ORIGIN_UNSET);
        let k: Packet<&str> = Packet::control_keyed(GroupId(1), 42, "join");
        assert_eq!(k.class, PacketClass::Control);
        assert_eq!(k.tag, 42);
        let d: Packet<&str> = Packet::data(GroupId(1), 7, 100, "payload");
        assert_eq!(d.class, PacketClass::Data);
        assert_eq!(d.created_at, 100);
        assert_eq!(d.tag, 7);
        assert_eq!(d.origin, ORIGIN_UNSET);
    }

    #[test]
    fn group_debug_format() {
        assert_eq!(format!("{:?}", GroupId(3)), "g3");
    }
}
