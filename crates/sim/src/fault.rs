//! Deterministic fault injection: scheduled link and router failures.
//!
//! The paper motivates SCMP's centralized tree management partly by how
//! cheaply the m-router can react to failures (§V: the hot-standby
//! m-router, JOIN retransmission, session teardown). This module gives
//! the simulator a first-class failure vocabulary so robustness
//! experiments are declarative and replayable:
//!
//! * [`FaultEvent`] — the engine-level event: link down/up, router
//!   crash/recover. Faults ride the same `(time, seq)`-ordered event
//!   queue as packets and timers, so a seeded scenario with faults
//!   replays bit-for-bit.
//! * [`FaultSpec`] / [`FaultPlan`] — the serialisable scenario form
//!   consumed by JSON scenario files and the test harness.
//!
//! Semantics (see `Engine::schedule_fault`):
//!
//! * `LinkDown` removes a link from service in both directions; packets
//!   in flight on it were already committed and still arrive, packets
//!   sent afterwards drop. The domain's unicast IGP reconverges
//!   immediately.
//! * `RouterCrash` takes a node out of service *and wipes its protocol
//!   state* — on recovery the router is rebuilt from the engine's
//!   factory exactly as at simulation start (a cold restart), and its
//!   `on_start` hook runs again. Volatile state such as multicast
//!   routing entries does not survive a crash; recovering it is the
//!   protocol's job.

use scmp_net::{NodeId, Topology};
use serde::{Deserialize, Serialize};

/// An engine-level fault, addressed by [`NodeId`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Take the undirected link `a`–`b` out of service.
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Restore the link `a`–`b`.
    LinkUp {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Crash a router: the node goes down and loses all protocol state.
    RouterCrash {
        /// The crashing node.
        node: NodeId,
    },
    /// Bring a crashed router back with freshly-initialised state.
    RouterRecover {
        /// The recovering node.
        node: NodeId,
    },
}

impl FaultEvent {
    /// The node the fault is attributed to in traces (for links, the
    /// lower endpoint).
    pub fn primary_node(&self) -> NodeId {
        match *self {
            FaultEvent::LinkDown { a, b } | FaultEvent::LinkUp { a, b } => a.min(b),
            FaultEvent::RouterCrash { node } | FaultEvent::RouterRecover { node } => node,
        }
    }

    /// True for the degrading half of the vocabulary (`LinkDown`,
    /// `RouterCrash`) — the events counted as injected faults and used
    /// as the starting point of repair-latency measurements.
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            FaultEvent::LinkDown { .. } | FaultEvent::RouterCrash { .. }
        )
    }

    /// Short label for traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultEvent::LinkDown { .. } => "LINK-DOWN",
            FaultEvent::LinkUp { .. } => "LINK-UP",
            FaultEvent::RouterCrash { .. } => "CRASH",
            FaultEvent::RouterRecover { .. } => "RECOVER",
        }
    }
}

/// The serialisable form of a [`FaultEvent`], node ids as plain `u32`.
#[derive(Clone, Debug, PartialEq, Eq, Deserialize, Serialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FaultKind {
    /// Cut link `a`–`b`.
    LinkDown {
        /// One endpoint.
        a: u32,
        /// The other endpoint.
        b: u32,
    },
    /// Restore link `a`–`b`.
    LinkUp {
        /// One endpoint.
        a: u32,
        /// The other endpoint.
        b: u32,
    },
    /// Crash router `node`.
    RouterCrash {
        /// The crashing node.
        node: u32,
    },
    /// Recover router `node`.
    RouterRecover {
        /// The recovering node.
        node: u32,
    },
}

/// One scheduled fault in a scenario file.
#[derive(Clone, Debug, PartialEq, Eq, Deserialize, Serialize)]
pub struct FaultSpec {
    /// Absolute simulation time the fault fires at.
    pub time: u64,
    /// What fails (or recovers).
    pub fault: FaultKind,
}

impl FaultSpec {
    /// Convert to the engine-level event.
    pub fn to_event(&self) -> FaultEvent {
        match self.fault {
            FaultKind::LinkDown { a, b } => FaultEvent::LinkDown {
                a: NodeId(a),
                b: NodeId(b),
            },
            FaultKind::LinkUp { a, b } => FaultEvent::LinkUp {
                a: NodeId(a),
                b: NodeId(b),
            },
            FaultKind::RouterCrash { node } => FaultEvent::RouterCrash { node: NodeId(node) },
            FaultKind::RouterRecover { node } => FaultEvent::RouterRecover { node: NodeId(node) },
        }
    }
}

/// A complete failure schedule for one scenario.
#[derive(Clone, Debug, Default, PartialEq, Eq, Deserialize, Serialize)]
pub struct FaultPlan {
    /// Faults in scenario order (the engine orders by time anyway).
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Append a fault.
    pub fn at(mut self, time: u64, fault: FaultKind) -> Self {
        self.faults.push(FaultSpec { time, fault });
        self
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Check every fault against `topo`: link faults must name existing
    /// links, router faults existing nodes. Errors name the offending
    /// entry by index (`fault[2]: link 7-9 not in topology`) so a typo
    /// in a long scenario schedule is found without bisecting the file.
    pub fn validate(&self, topo: &Topology) -> Result<(), String> {
        let n = topo.node_count();
        for (i, spec) in self.faults.iter().enumerate() {
            match spec.fault {
                FaultKind::LinkDown { a, b } | FaultKind::LinkUp { a, b } => {
                    if a as usize >= n || b as usize >= n {
                        return Err(format!(
                            "fault[{i}]: link {a}-{b} names a node out of range (topology has {n} nodes)"
                        ));
                    }
                    if !topo.has_link(NodeId(a), NodeId(b)) {
                        return Err(format!("fault[{i}]: link {a}-{b} not in topology"));
                    }
                }
                FaultKind::RouterCrash { node } | FaultKind::RouterRecover { node } => {
                    if node as usize >= n {
                        return Err(format!(
                            "fault[{i}]: node {node} out of range (topology has {n} nodes)"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl From<Vec<FaultSpec>> for FaultPlan {
    fn from(faults: Vec<FaultSpec>) -> Self {
        FaultPlan { faults }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scmp_net::graph::LinkWeight;
    use scmp_net::topology::regular::line;

    #[test]
    fn spec_converts_to_event() {
        let s = FaultSpec {
            time: 5,
            fault: FaultKind::LinkDown { a: 1, b: 2 },
        };
        assert_eq!(
            s.to_event(),
            FaultEvent::LinkDown {
                a: NodeId(1),
                b: NodeId(2)
            }
        );
        assert!(s.to_event().is_failure());
        assert_eq!(s.to_event().primary_node(), NodeId(1));
        let r = FaultSpec {
            time: 9,
            fault: FaultKind::RouterRecover { node: 3 },
        };
        assert!(!r.to_event().is_failure());
        assert_eq!(r.to_event().label(), "RECOVER");
    }

    #[test]
    fn plan_builder_and_validation() {
        let topo = line(4, LinkWeight::new(1, 1));
        let good = FaultPlan::new()
            .at(10, FaultKind::LinkDown { a: 1, b: 2 })
            .at(20, FaultKind::RouterCrash { node: 3 })
            .at(30, FaultKind::LinkUp { a: 2, b: 1 });
        assert_eq!(good.faults.len(), 3);
        assert!(good.validate(&topo).is_ok());

        let no_such_link = FaultPlan::new()
            .at(0, FaultKind::RouterCrash { node: 3 })
            .at(0, FaultKind::LinkDown { a: 0, b: 3 });
        assert_eq!(
            no_such_link.validate(&topo).unwrap_err(),
            "fault[1]: link 0-3 not in topology",
            "the error names the offending entry by index"
        );
        let bad_node = FaultPlan::new().at(0, FaultKind::RouterCrash { node: 9 });
        assert_eq!(
            bad_node.validate(&topo).unwrap_err(),
            "fault[0]: node 9 out of range (topology has 4 nodes)"
        );
        let bad_endpoint = FaultPlan::new().at(0, FaultKind::LinkUp { a: 0, b: 99 });
        assert_eq!(
            bad_endpoint.validate(&topo).unwrap_err(),
            "fault[0]: link 0-99 names a node out of range (topology has 4 nodes)"
        );
    }

    #[test]
    fn json_roundtrip() {
        let plan = FaultPlan::new()
            .at(1_000, FaultKind::LinkDown { a: 0, b: 3 })
            .at(2_000, FaultKind::RouterCrash { node: 2 })
            .at(3_000, FaultKind::RouterRecover { node: 2 })
            .at(4_000, FaultKind::LinkUp { a: 0, b: 3 });
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn json_format_is_tagged_snake_case() {
        let json = r#"{ "faults": [
            { "time": 7, "fault": { "kind": "link_down", "a": 1, "b": 4 } },
            { "time": 8, "fault": { "kind": "router_crash", "node": 2 } }
        ]}"#;
        let plan: FaultPlan = serde_json::from_str(json).unwrap();
        assert_eq!(plan.faults[0].fault, FaultKind::LinkDown { a: 1, b: 4 });
        assert_eq!(plan.faults[1].fault, FaultKind::RouterCrash { node: 2 });
    }

    #[test]
    fn empty_plan_is_valid_everywhere() {
        let topo = line(2, LinkWeight::new(1, 1));
        assert!(FaultPlan::new().is_empty());
        assert!(FaultPlan::new().validate(&topo).is_ok());
    }
}
