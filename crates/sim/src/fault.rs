//! Deterministic fault injection: scheduled link and router failures.
//!
//! The paper motivates SCMP's centralized tree management partly by how
//! cheaply the m-router can react to failures (§V: the hot-standby
//! m-router, JOIN retransmission, session teardown). This module gives
//! the simulator a first-class failure vocabulary so robustness
//! experiments are declarative and replayable:
//!
//! * [`FaultEvent`] — the engine-level event: link down/up, router
//!   crash/recover. Faults ride the same `(time, seq)`-ordered event
//!   queue as packets and timers, so a seeded scenario with faults
//!   replays bit-for-bit.
//! * [`FaultSpec`] / [`FaultPlan`] — the serialisable scenario form
//!   consumed by JSON scenario files and the test harness.
//!
//! Semantics (see `Engine::schedule_fault`):
//!
//! * `LinkDown` removes a link from service in both directions; packets
//!   in flight on it were already committed and still arrive, packets
//!   sent afterwards drop. The domain's unicast IGP reconverges
//!   immediately.
//! * `RouterCrash` takes a node out of service *and wipes its protocol
//!   state* — on recovery the router is rebuilt from the engine's
//!   factory exactly as at simulation start (a cold restart), and its
//!   `on_start` hook runs again. Volatile state such as multicast
//!   routing entries does not survive a crash; recovering it is the
//!   protocol's job.
//!
//! Beyond the four primitives, the vocabulary has *correlated fault
//! families* — `Partition`, `RegionalOutage`, `FlapStorm` — that expand
//! deterministically (a pure seeded hash, no RNG stream) into primitive
//! link events via [`FaultPlan::expand`]. A `Partition` computes a
//! seeded graph cut whose two sides are disconnected by construction
//! (see [`partition_cut`]); a `RegionalOutage` takes down a
//! locality-correlated link neighbourhood; a `FlapStorm` cycles such a
//! neighbourhood down/up repeatedly. Families are scenario-level sugar:
//! the engine only ever schedules the expanded primitives, so replay is
//! bit-for-bit identical to writing the link events out by hand.

use scmp_net::{NodeId, Topology};
use serde::{Deserialize, Serialize};

/// An engine-level fault, addressed by [`NodeId`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Take the undirected link `a`–`b` out of service.
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Restore the link `a`–`b`.
    LinkUp {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Crash a router: the node goes down and loses all protocol state.
    RouterCrash {
        /// The crashing node.
        node: NodeId,
    },
    /// Bring a crashed router back with freshly-initialised state.
    RouterRecover {
        /// The recovering node.
        node: NodeId,
    },
}

impl FaultEvent {
    /// The node the fault is attributed to in traces (for links, the
    /// lower endpoint).
    pub fn primary_node(&self) -> NodeId {
        match *self {
            FaultEvent::LinkDown { a, b } | FaultEvent::LinkUp { a, b } => a.min(b),
            FaultEvent::RouterCrash { node } | FaultEvent::RouterRecover { node } => node,
        }
    }

    /// True for the degrading half of the vocabulary (`LinkDown`,
    /// `RouterCrash`) — the events counted as injected faults and used
    /// as the starting point of repair-latency measurements.
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            FaultEvent::LinkDown { .. } | FaultEvent::RouterCrash { .. }
        )
    }

    /// Short label for traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultEvent::LinkDown { .. } => "LINK-DOWN",
            FaultEvent::LinkUp { .. } => "LINK-UP",
            FaultEvent::RouterCrash { .. } => "CRASH",
            FaultEvent::RouterRecover { .. } => "RECOVER",
        }
    }
}

/// The serialisable form of a [`FaultEvent`], node ids as plain `u32`.
#[derive(Clone, Debug, PartialEq, Eq, Deserialize, Serialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FaultKind {
    /// Cut link `a`–`b`.
    LinkDown {
        /// One endpoint.
        a: u32,
        /// The other endpoint.
        b: u32,
    },
    /// Restore link `a`–`b`.
    LinkUp {
        /// One endpoint.
        a: u32,
        /// The other endpoint.
        b: u32,
    },
    /// Crash router `node`.
    RouterCrash {
        /// The crashing node.
        node: u32,
    },
    /// Recover router `node`.
    RouterRecover {
        /// The recovering node.
        node: u32,
    },
    /// Correlated family: cut a seeded graph partition (every link
    /// crossing the cut goes down at the spec's time) and heal it — all
    /// cut links restored — at `heal_at`. The two sides are disconnected
    /// by construction; see [`partition_cut`].
    Partition {
        /// Seed of the deterministic cut.
        seed: u64,
        /// Absolute time every cut link is restored.
        heal_at: u64,
    },
    /// Correlated family: a regional outage — the `links` topologically
    /// closest links around a seeded epicentre go down together at the
    /// spec's time and are restored together at `restore_at`.
    RegionalOutage {
        /// Seed picking the epicentre.
        seed: u64,
        /// How many correlated links fail.
        links: u32,
        /// Absolute time the region is restored.
        restore_at: u64,
    },
    /// Correlated family: a flap storm — the `links` closest links
    /// around a seeded epicentre cycle down (for half a `period`) and
    /// back up, `cycles` times, starting at the spec's time.
    FlapStorm {
        /// Seed picking the epicentre.
        seed: u64,
        /// How many correlated links flap.
        links: u32,
        /// Down/up cycles per link.
        cycles: u32,
        /// Cycle length; links are down for the first half.
        period: u64,
    },
}

impl FaultKind {
    /// True for the correlated families that must be expanded into
    /// primitive link events before the engine can schedule them.
    pub fn is_family(&self) -> bool {
        matches!(
            self,
            FaultKind::Partition { .. }
                | FaultKind::RegionalOutage { .. }
                | FaultKind::FlapStorm { .. }
        )
    }
}

/// One scheduled fault in a scenario file.
#[derive(Clone, Debug, PartialEq, Eq, Deserialize, Serialize)]
pub struct FaultSpec {
    /// Absolute simulation time the fault fires at.
    pub time: u64,
    /// What fails (or recovers).
    pub fault: FaultKind,
}

impl FaultSpec {
    /// Convert to the engine-level event. Family kinds have no single
    /// engine event — expand the plan first ([`FaultPlan::expand`]).
    pub fn to_event(&self) -> FaultEvent {
        match self.fault {
            FaultKind::LinkDown { a, b } => FaultEvent::LinkDown {
                a: NodeId(a),
                b: NodeId(b),
            },
            FaultKind::LinkUp { a, b } => FaultEvent::LinkUp {
                a: NodeId(a),
                b: NodeId(b),
            },
            FaultKind::RouterCrash { node } => FaultEvent::RouterCrash { node: NodeId(node) },
            FaultKind::RouterRecover { node } => FaultEvent::RouterRecover { node: NodeId(node) },
            FaultKind::Partition { .. }
            | FaultKind::RegionalOutage { .. }
            | FaultKind::FlapStorm { .. } => {
                panic!("family fault must be expanded before scheduling")
            }
        }
    }
}

/// splitmix64 finalizer — the same pure-hash idiom the reliability
/// tier's jitter uses, so family expansion is a function of its inputs
/// and never consumes an RNG stream.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded graph cut: `side_a` is grown by breadth-first search from a
/// seeded start node until it holds half the nodes, `side_b` is the
/// rest, and `cut` is every topology link with one endpoint on each
/// side (endpoints normalised `a < b`, sorted). Removing exactly the
/// `cut` links leaves no path between the sides — disconnection holds
/// by construction, and the proptests pin it on random topologies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionCut {
    /// The grown region containing the seeded start node.
    pub side_a: Vec<NodeId>,
    /// Everything else.
    pub side_b: Vec<NodeId>,
    /// Every link crossing the cut.
    pub cut: Vec<(NodeId, NodeId)>,
}

/// Compute the deterministic partition cut for (`topo`, `seed`).
/// Errors when the topology is too small to split (fewer than 2 nodes).
pub fn partition_cut(topo: &Topology, seed: u64) -> Result<PartitionCut, String> {
    let n = topo.node_count();
    if n < 2 {
        return Err(format!(
            "partition needs at least 2 nodes, topology has {n}"
        ));
    }
    let start = NodeId((mix(seed ^ 0x9e37_79b9_7f4a_7c15) % n as u64) as u32);
    let target = (n / 2).max(1);
    let mut in_a = vec![false; n];
    let mut side_a = Vec::with_capacity(target);
    let mut frontier = std::collections::VecDeque::new();
    in_a[start.index()] = true;
    side_a.push(start);
    frontier.push_back(start);
    // Deterministic BFS: neighbours visit in ascending node order (the
    // CSR adjacency is sorted by construction).
    while side_a.len() < target {
        let Some(v) = frontier.pop_front() else {
            break; // start's component exhausted: the cut is the
                   // component boundary (already disconnected beyond it)
        };
        for e in topo.neighbors(v) {
            if side_a.len() >= target {
                break;
            }
            if !in_a[e.to.index()] {
                in_a[e.to.index()] = true;
                side_a.push(e.to);
                frontier.push_back(e.to);
            }
        }
    }
    let side_b: Vec<NodeId> = topo.nodes().filter(|v| !in_a[v.index()]).collect();
    let mut cut = Vec::new();
    for &v in &side_a {
        for e in topo.neighbors(v) {
            if !in_a[e.to.index()] {
                cut.push((v.min(e.to), v.max(e.to)));
            }
        }
    }
    cut.sort_unstable_by_key(|&(a, b)| (a.0, b.0));
    cut.dedup();
    Ok(PartitionCut {
        side_a,
        side_b,
        cut,
    })
}

/// The `links` topologically closest links around a seeded epicentre:
/// breadth-first edge-discovery order from the epicentre, truncated.
/// Used by `RegionalOutage` and `FlapStorm`; `label` salts the hash so
/// the two families pick independent epicentres for the same seed.
fn regional_links(topo: &Topology, seed: u64, label: u64, links: u32) -> Vec<(NodeId, NodeId)> {
    let n = topo.node_count();
    let start = NodeId((mix(seed ^ label) % n.max(1) as u64) as u32);
    let mut seen_node = vec![false; n];
    let mut seen_link = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    let mut frontier = std::collections::VecDeque::new();
    seen_node[start.index()] = true;
    frontier.push_back(start);
    'bfs: while let Some(v) = frontier.pop_front() {
        for e in topo.neighbors(v) {
            let key = (v.min(e.to), v.max(e.to));
            if seen_link.insert(key) {
                out.push(key);
                if out.len() >= links as usize {
                    break 'bfs;
                }
            }
            if !seen_node[e.to.index()] {
                seen_node[e.to.index()] = true;
                frontier.push_back(e.to);
            }
        }
    }
    out
}

/// A complete failure schedule for one scenario.
#[derive(Clone, Debug, Default, PartialEq, Eq, Deserialize, Serialize)]
pub struct FaultPlan {
    /// Faults in scenario order (the engine orders by time anyway).
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Append a fault.
    pub fn at(mut self, time: u64, fault: FaultKind) -> Self {
        self.faults.push(FaultSpec { time, fault });
        self
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Check every fault against `topo`: link faults must name existing
    /// links, router faults existing nodes. Errors name the offending
    /// entry by index (`fault[2]: link 7-9 not in topology`) so a typo
    /// in a long scenario schedule is found without bisecting the file.
    pub fn validate(&self, topo: &Topology) -> Result<(), String> {
        let n = topo.node_count();
        for (i, spec) in self.faults.iter().enumerate() {
            match spec.fault {
                FaultKind::LinkDown { a, b } | FaultKind::LinkUp { a, b } => {
                    if a as usize >= n || b as usize >= n {
                        return Err(format!(
                            "fault[{i}]: link {a}-{b} names a node out of range (topology has {n} nodes)"
                        ));
                    }
                    if !topo.has_link(NodeId(a), NodeId(b)) {
                        return Err(format!("fault[{i}]: link {a}-{b} not in topology"));
                    }
                }
                FaultKind::RouterCrash { node } | FaultKind::RouterRecover { node } => {
                    if node as usize >= n {
                        return Err(format!(
                            "fault[{i}]: node {node} out of range (topology has {n} nodes)"
                        ));
                    }
                }
                FaultKind::Partition { seed, heal_at } => {
                    if heal_at <= spec.time {
                        return Err(format!(
                            "fault[{i}]: partition heal_at {heal_at} must be after the cut at {}",
                            spec.time
                        ));
                    }
                    partition_cut(topo, seed).map_err(|e| format!("fault[{i}]: {e}"))?;
                }
                FaultKind::RegionalOutage {
                    links, restore_at, ..
                } => {
                    if links == 0 {
                        return Err(format!("fault[{i}]: regional outage needs links >= 1"));
                    }
                    if restore_at <= spec.time {
                        return Err(format!(
                            "fault[{i}]: regional outage restore_at {restore_at} must be after the outage at {}",
                            spec.time
                        ));
                    }
                }
                FaultKind::FlapStorm {
                    links,
                    cycles,
                    period,
                    ..
                } => {
                    if links == 0 || cycles == 0 {
                        return Err(format!(
                            "fault[{i}]: flap storm needs links >= 1 and cycles >= 1"
                        ));
                    }
                    if period < 2 {
                        return Err(format!(
                            "fault[{i}]: flap storm period {period} too short (down half would be empty)"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Expand every correlated family into its primitive link events,
    /// passing primitives through unchanged. The expansion is a pure
    /// function of (plan, topology): scheduling the result is
    /// bit-for-bit identical to writing the primitives out by hand.
    /// Validates the plan first, so errors carry the `fault[i]` index.
    pub fn expand(&self, topo: &Topology) -> Result<Vec<FaultSpec>, String> {
        self.validate(topo)?;
        let mut out = Vec::new();
        for spec in &self.faults {
            match spec.fault {
                FaultKind::LinkDown { .. }
                | FaultKind::LinkUp { .. }
                | FaultKind::RouterCrash { .. }
                | FaultKind::RouterRecover { .. } => out.push(spec.clone()),
                FaultKind::Partition { seed, heal_at } => {
                    let cut = partition_cut(topo, seed).expect("validated above");
                    for &(a, b) in &cut.cut {
                        out.push(FaultSpec {
                            time: spec.time,
                            fault: FaultKind::LinkDown { a: a.0, b: b.0 },
                        });
                    }
                    for &(a, b) in &cut.cut {
                        out.push(FaultSpec {
                            time: heal_at,
                            fault: FaultKind::LinkUp { a: a.0, b: b.0 },
                        });
                    }
                }
                FaultKind::RegionalOutage {
                    seed,
                    links,
                    restore_at,
                } => {
                    let region = regional_links(topo, seed, 0x5e71_04a6_u64, links);
                    for &(a, b) in &region {
                        out.push(FaultSpec {
                            time: spec.time,
                            fault: FaultKind::LinkDown { a: a.0, b: b.0 },
                        });
                    }
                    for &(a, b) in &region {
                        out.push(FaultSpec {
                            time: restore_at,
                            fault: FaultKind::LinkUp { a: a.0, b: b.0 },
                        });
                    }
                }
                FaultKind::FlapStorm {
                    seed,
                    links,
                    cycles,
                    period,
                } => {
                    let region = regional_links(topo, seed, 0xf1a9_5707_u64, links);
                    for c in 0..cycles as u64 {
                        let down_at = spec.time + c * period;
                        let up_at = down_at + period / 2;
                        for &(a, b) in &region {
                            out.push(FaultSpec {
                                time: down_at,
                                fault: FaultKind::LinkDown { a: a.0, b: b.0 },
                            });
                        }
                        for &(a, b) in &region {
                            out.push(FaultSpec {
                                time: up_at,
                                fault: FaultKind::LinkUp { a: a.0, b: b.0 },
                            });
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

impl From<Vec<FaultSpec>> for FaultPlan {
    fn from(faults: Vec<FaultSpec>) -> Self {
        FaultPlan { faults }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scmp_net::graph::LinkWeight;
    use scmp_net::topology::regular::line;

    #[test]
    fn spec_converts_to_event() {
        let s = FaultSpec {
            time: 5,
            fault: FaultKind::LinkDown { a: 1, b: 2 },
        };
        assert_eq!(
            s.to_event(),
            FaultEvent::LinkDown {
                a: NodeId(1),
                b: NodeId(2)
            }
        );
        assert!(s.to_event().is_failure());
        assert_eq!(s.to_event().primary_node(), NodeId(1));
        let r = FaultSpec {
            time: 9,
            fault: FaultKind::RouterRecover { node: 3 },
        };
        assert!(!r.to_event().is_failure());
        assert_eq!(r.to_event().label(), "RECOVER");
    }

    #[test]
    fn plan_builder_and_validation() {
        let topo = line(4, LinkWeight::new(1, 1));
        let good = FaultPlan::new()
            .at(10, FaultKind::LinkDown { a: 1, b: 2 })
            .at(20, FaultKind::RouterCrash { node: 3 })
            .at(30, FaultKind::LinkUp { a: 2, b: 1 });
        assert_eq!(good.faults.len(), 3);
        assert!(good.validate(&topo).is_ok());

        let no_such_link = FaultPlan::new()
            .at(0, FaultKind::RouterCrash { node: 3 })
            .at(0, FaultKind::LinkDown { a: 0, b: 3 });
        assert_eq!(
            no_such_link.validate(&topo).unwrap_err(),
            "fault[1]: link 0-3 not in topology",
            "the error names the offending entry by index"
        );
        let bad_node = FaultPlan::new().at(0, FaultKind::RouterCrash { node: 9 });
        assert_eq!(
            bad_node.validate(&topo).unwrap_err(),
            "fault[0]: node 9 out of range (topology has 4 nodes)"
        );
        let bad_endpoint = FaultPlan::new().at(0, FaultKind::LinkUp { a: 0, b: 99 });
        assert_eq!(
            bad_endpoint.validate(&topo).unwrap_err(),
            "fault[0]: link 0-99 names a node out of range (topology has 4 nodes)"
        );
    }

    #[test]
    fn json_roundtrip() {
        let plan = FaultPlan::new()
            .at(1_000, FaultKind::LinkDown { a: 0, b: 3 })
            .at(2_000, FaultKind::RouterCrash { node: 2 })
            .at(3_000, FaultKind::RouterRecover { node: 2 })
            .at(4_000, FaultKind::LinkUp { a: 0, b: 3 });
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn json_format_is_tagged_snake_case() {
        let json = r#"{ "faults": [
            { "time": 7, "fault": { "kind": "link_down", "a": 1, "b": 4 } },
            { "time": 8, "fault": { "kind": "router_crash", "node": 2 } }
        ]}"#;
        let plan: FaultPlan = serde_json::from_str(json).unwrap();
        assert_eq!(plan.faults[0].fault, FaultKind::LinkDown { a: 1, b: 4 });
        assert_eq!(plan.faults[1].fault, FaultKind::RouterCrash { node: 2 });
    }

    #[test]
    fn empty_plan_is_valid_everywhere() {
        let topo = line(2, LinkWeight::new(1, 1));
        assert!(FaultPlan::new().is_empty());
        assert!(FaultPlan::new().validate(&topo).is_ok());
    }

    #[test]
    fn partition_cut_disconnects_a_line() {
        let topo = line(6, LinkWeight::new(1, 1));
        for seed in 0..8 {
            let cut = partition_cut(&topo, seed).unwrap();
            assert_eq!(cut.side_a.len(), 3, "half the nodes on side A");
            assert_eq!(cut.side_b.len(), 3);
            assert!(!cut.cut.is_empty(), "a connected line always cuts");
            // No surviving link crosses the cut.
            let in_a: std::collections::BTreeSet<_> = cut.side_a.iter().collect();
            let removed: std::collections::BTreeSet<_> = cut.cut.iter().collect();
            for v in topo.nodes() {
                for e in topo.neighbors(v) {
                    let key = (v.min(e.to), v.max(e.to));
                    if removed.contains(&key) {
                        continue;
                    }
                    assert_eq!(
                        in_a.contains(&v),
                        in_a.contains(&e.to),
                        "surviving link {key:?} crosses the cut"
                    );
                }
            }
            // Deterministic: same seed, same cut.
            assert_eq!(partition_cut(&topo, seed).unwrap(), cut);
        }
        assert!(partition_cut(&line(1, LinkWeight::new(1, 1)), 0).is_err());
    }

    #[test]
    fn partition_family_expands_to_cut_and_heal() {
        let topo = line(4, LinkWeight::new(1, 1));
        let plan = FaultPlan::new().at(
            1_000,
            FaultKind::Partition {
                seed: 3,
                heal_at: 5_000,
            },
        );
        let expanded = plan.expand(&topo).unwrap();
        let cut = partition_cut(&topo, 3).unwrap();
        assert_eq!(expanded.len(), 2 * cut.cut.len());
        let downs: Vec<_> = expanded
            .iter()
            .filter(|s| matches!(s.fault, FaultKind::LinkDown { .. }))
            .collect();
        let ups: Vec<_> = expanded
            .iter()
            .filter(|s| matches!(s.fault, FaultKind::LinkUp { .. }))
            .collect();
        assert!(downs.iter().all(|s| s.time == 1_000));
        assert!(ups.iter().all(|s| s.time == 5_000));
        assert_eq!(downs.len(), ups.len());
        // Expansion is pure: same inputs, same schedule.
        assert_eq!(plan.expand(&topo).unwrap(), expanded);
    }

    #[test]
    fn family_validation_errors_name_the_entry() {
        let topo = line(4, LinkWeight::new(1, 1));
        let bad_heal = FaultPlan::new().at(
            2_000,
            FaultKind::Partition {
                seed: 1,
                heal_at: 2_000,
            },
        );
        assert!(bad_heal
            .validate(&topo)
            .unwrap_err()
            .starts_with("fault[0]: partition heal_at"));
        let no_links = FaultPlan::new().at(
            0,
            FaultKind::RegionalOutage {
                seed: 1,
                links: 0,
                restore_at: 10,
            },
        );
        assert!(no_links.validate(&topo).unwrap_err().contains("links >= 1"));
        let short_period = FaultPlan::new().at(
            0,
            FaultKind::FlapStorm {
                seed: 1,
                links: 1,
                cycles: 2,
                period: 1,
            },
        );
        assert!(short_period
            .validate(&topo)
            .unwrap_err()
            .contains("period 1 too short"));
    }

    #[test]
    fn outage_and_flapstorm_expand_deterministically() {
        let topo = line(8, LinkWeight::new(1, 1));
        let plan = FaultPlan::new()
            .at(
                100,
                FaultKind::RegionalOutage {
                    seed: 7,
                    links: 3,
                    restore_at: 900,
                },
            )
            .at(
                1_000,
                FaultKind::FlapStorm {
                    seed: 7,
                    links: 2,
                    cycles: 3,
                    period: 200,
                },
            );
        let a = plan.expand(&topo).unwrap();
        assert_eq!(a, plan.expand(&topo).unwrap());
        // Outage: 3 downs at 100, 3 ups at 900.
        assert_eq!(
            a.iter()
                .filter(|s| s.time == 100 && matches!(s.fault, FaultKind::LinkDown { .. }))
                .count(),
            3
        );
        assert_eq!(
            a.iter()
                .filter(|s| s.time == 900 && matches!(s.fault, FaultKind::LinkUp { .. }))
                .count(),
            3
        );
        // Storm: 3 cycles × 2 links, downs at 1000/1200/1400, ups +100.
        for c in 0..3u64 {
            assert_eq!(
                a.iter()
                    .filter(|s| s.time == 1_000 + c * 200
                        && matches!(s.fault, FaultKind::LinkDown { .. }))
                    .count(),
                2
            );
            assert_eq!(
                a.iter()
                    .filter(|s| s.time == 1_100 + c * 200
                        && matches!(s.fault, FaultKind::LinkUp { .. }))
                    .count(),
                2
            );
        }
        // Every expanded primitive is schedulable.
        assert!(a.iter().all(|s| !s.fault.is_family()));
        let reval = FaultPlan::from(a);
        assert!(reval.validate(&topo).is_ok());
    }

    #[test]
    fn family_json_roundtrip() {
        let plan = FaultPlan::new()
            .at(
                1_000,
                FaultKind::Partition {
                    seed: 9,
                    heal_at: 8_000,
                },
            )
            .at(
                2_000,
                FaultKind::RegionalOutage {
                    seed: 2,
                    links: 4,
                    restore_at: 6_000,
                },
            )
            .at(
                3_000,
                FaultKind::FlapStorm {
                    seed: 3,
                    links: 2,
                    cycles: 5,
                    period: 400,
                },
            );
        let json = serde_json::to_string(&plan).unwrap();
        assert!(json.contains("\"kind\":\"partition\""));
        assert!(json.contains("\"kind\":\"regional_outage\""));
        assert!(json.contains("\"kind\":\"flap_storm\""));
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        assert!(back.faults.iter().all(|s| s.fault.is_family()));
    }
}
