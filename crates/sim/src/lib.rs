//! # scmp-sim — deterministic discrete-event network simulator
//!
//! The paper evaluates SCMP against DVMRP, MOSPF and CBT on NS-2
//! (§IV-B). This crate is the NS-2 stand-in: a packet-level,
//! deterministic discrete-event engine over a [`scmp_net::Topology`].
//!
//! * Every router runs a protocol state machine implementing [`Router`];
//!   the engine delivers packets after the link's propagation delay and
//!   fires protocol timers.
//! * The paper's §IV-B metrics are accounted natively: a packet crossing
//!   a link adds the link's *cost* to the data or protocol overhead
//!   depending on its [`PacketClass`]; data deliveries record end-to-end
//!   delay for the "maximum end-to-end delay" figure.
//! * Unicast tunnelling (JOIN messages to the m-router, encapsulated data
//!   from off-tree sources, …) is modelled by [`Ctx::unicast`], which
//!   forwards along the domain's unicast routing tables, charging every
//!   hop.
//! * Failure injection (node/link down) supports the hot-standby
//!   m-router experiments.
//!
//! Determinism: events are ordered by `(time, sequence-number)`, and no
//! wall-clock or unseeded randomness exists anywhere in the engine, so a
//! scenario replays identically across runs and machines.
//!
//! The engine is layered (see [`engine`]): an arena-backed event queue
//! (`engine::queue`) keeps heap entries small, the link-liveness and
//! capacity arithmetic lives in [`Transport`] (`engine::transport`,
//! unit-testable without an engine), protocols talk to the network
//! through [`Ctx`] (`engine::ctx`), and the event loop itself is
//! `engine::core`. [`EngineRunner`] erases `Engine<R>` so heterogeneous
//! scenario drivers can hold any protocol's engine behind one vtable.

pub mod channel;
pub mod engine;
pub mod fault;
pub mod packet;
pub mod stats;

pub use channel::{ChannelLinkSpec, ChannelModel, ChannelOutcome, ChannelPlan, ChannelSpec};
pub use engine::{
    AppEvent, CapacityModel, Ctx, Engine, EngineRunner, LinkSlot, Router, SimTime, TraceKind,
    TraceRecord, Transport,
};
pub use fault::{partition_cut, FaultEvent, FaultKind, FaultPlan, FaultSpec, PartitionCut};
pub use packet::{GroupId, Packet, PacketClass};
pub use stats::SimStats;

// Re-export the telemetry vocabulary protocols and drivers interact
// with, so downstream crates need no direct `scmp-telemetry` dependency
// just to install a sink or read events back.
pub use scmp_telemetry::{
    Event as TelemetryEvent, EventKind as TelemetryEventKind, GaugeSample, Histogram, JsonlSink,
    NullSink, RingSink, Sink,
};
