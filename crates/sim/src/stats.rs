//! Simulation metrics — the three §IV-B measurements plus correctness
//! counters used by the integration tests.

use crate::packet::GroupId;
use scmp_net::NodeId;
use scmp_telemetry::Histogram;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Aggregated statistics of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Σ link-cost of every data-class packet hop ("data overhead").
    pub data_overhead: u64,
    /// Σ link-cost of every control-class packet hop ("protocol
    /// overhead").
    pub protocol_overhead: u64,
    /// Number of data-class packet hops.
    pub data_hops: u64,
    /// Number of control-class packet hops.
    pub control_hops: u64,
    /// Packets dropped (dead link/node, queue overflow, or protocol
    /// decision).
    pub drops: u64,
    /// Subset of `drops` caused by link-queue overflow (congestion).
    pub queue_drops: u64,
    /// Subset of `drops` lost by the channel model on the wire.
    pub channel_dropped: u64,
    /// Packets the channel model delivered twice.
    pub channel_duplicated: u64,
    /// Packets the channel model delayed by a reorder jitter.
    pub channel_reordered: u64,
    /// Subset of `drops` that arrived corrupted and failed the
    /// receiver's checksum.
    pub channel_corrupted: u64,
    /// Control-plane retransmissions (JOIN/LEAVE/TREE/BRANCH retries).
    pub retransmissions: u64,
    /// Standby promotions to m-router (spurious ones included).
    pub takeovers: u64,
    /// Total ticks packets spent waiting in link queues.
    pub queueing_delay_total: u64,
    /// Largest single queueing wait observed.
    pub max_queueing_delay: u64,
    /// Per (group, tag, receiver): delivery count (detects duplicates)
    /// and first-delivery end-to-end delay.
    deliveries: HashMap<(GroupId, u64, NodeId), (u64, u64)>,
    /// Maximum end-to-end delay seen over all deliveries.
    pub max_end_to_end_delay: u64,
    /// Failure events injected (LinkDown / RouterCrash).
    pub faults_injected: u64,
    /// Time of the most recent injected failure, if any.
    pub last_fault_at: Option<u64>,
    /// Portion of `data_overhead` accrued while the network was degraded
    /// (any node or link down).
    pub data_overhead_during_failure: u64,
    /// Portion of `protocol_overhead` accrued while degraded — the
    /// "control overhead during failure" robustness metric.
    pub control_overhead_during_failure: u64,
    /// Tree repairs completed by the m-router's repair scan.
    pub repairs: u64,
    /// Σ over repairs of (repair time − most recent failure time).
    pub repair_latency_total: u64,
    /// Largest single repair latency observed.
    pub max_repair_latency: u64,
    /// Distribution of first-delivery end-to-end delays.
    pub e2e_delay_hist: Histogram,
    /// Distribution of per-reservation link-queue waits.
    pub queueing_hist: Histogram,
    /// Distribution of repair latencies.
    pub repair_hist: Histogram,
    /// NACKs originated by receivers on the reliability tier.
    pub nacks_sent: u64,
    /// NACKs absorbed by a pending-request entry at some router
    /// (duplicate-NACK suppression).
    pub nacks_suppressed: u64,
    /// NACKs forwarded upstream after a repair-cache miss.
    pub nacks_forwarded: u64,
    /// NACKs answered from a router's local repair cache.
    pub repair_cache_hits: u64,
    /// NACKs that missed the local repair cache.
    pub repair_cache_misses: u64,
    /// Cache entries evicted by the byte cap.
    pub repair_cache_evictions: u64,
    /// Data gaps closed at receivers via the reliability tier.
    pub recoveries: u64,
    /// Valid frames carrying a message kind this build does not
    /// implement, counted and skipped at decode.
    pub unknown_kind_drops: u64,
    /// Distribution of gap-recovery latencies (gap detected → closed).
    pub recovery_hist: Histogram,
    /// Repair-scan passes the m-router served in partition-degraded
    /// mode (part of the domain unreachable, reachable side still
    /// served).
    pub partition_degraded_ticks: u64,
    /// Post-heal reconciliations completed (stranded members readopted
    /// under an epoch-guarded tree merge).
    pub reconciliations: u64,
}

impl SimStats {
    /// Record a data payload reaching a member host.
    pub fn record_delivery(&mut self, group: GroupId, tag: u64, node: NodeId, delay: u64) {
        let entry = self
            .deliveries
            .entry((group, tag, node))
            .or_insert((0, delay));
        entry.0 += 1;
        if entry.0 == 1 {
            entry.1 = delay;
            self.max_end_to_end_delay = self.max_end_to_end_delay.max(delay);
            self.e2e_delay_hist.record(delay);
        }
    }

    /// Record one link-queue wait (engine-internal).
    pub fn record_queue_wait(&mut self, waited: u64) {
        self.queueing_delay_total += waited;
        self.max_queueing_delay = self.max_queueing_delay.max(waited);
        self.queueing_hist.record(waited);
    }

    /// How many times `(group, tag)` was delivered to `node`.
    pub fn delivery_count(&self, group: GroupId, tag: u64, node: NodeId) -> u64 {
        self.deliveries.get(&(group, tag, node)).map_or(0, |e| e.0)
    }

    /// First-delivery delay of `(group, tag)` at `node`, if delivered.
    pub fn delivery_delay(&self, group: GroupId, tag: u64, node: NodeId) -> Option<u64> {
        self.deliveries.get(&(group, tag, node)).map(|e| e.1)
    }

    /// Total number of distinct `(group, tag, node)` deliveries.
    pub fn distinct_deliveries(&self) -> usize {
        self.deliveries.len()
    }

    /// True iff any `(group, tag)` reached some node more than once —
    /// a forwarding-loop symptom the integration tests assert against.
    pub fn has_duplicate_deliveries(&self) -> bool {
        self.deliveries.values().any(|e| e.0 > 1)
    }

    /// Every `(group, tag, node)` delivered more than once, sorted so
    /// two identical runs report duplicates in the same order. The
    /// stress oracle pins these in failure signatures.
    pub fn duplicate_deliveries(&self) -> Vec<(GroupId, u64, NodeId)> {
        let mut dups: Vec<(GroupId, u64, NodeId)> = self
            .deliveries
            .iter()
            .filter(|(_, e)| e.0 > 1)
            .map(|(&k, _)| k)
            .collect();
        dups.sort_unstable_by_key(|&(g, t, v)| (g.0, t, v.0));
        dups
    }

    /// Every `expected` `(group, tag, receiver)` triple that never
    /// arrived, in the expectation's own order — the oracle-facing
    /// complement of [`SimStats::delivery_ratio`].
    pub fn undelivered<I>(&self, expected: I) -> Vec<(GroupId, u64, NodeId)>
    where
        I: IntoIterator<Item = (GroupId, u64, NodeId)>,
    {
        expected
            .into_iter()
            .filter(|key| self.deliveries.get(key).is_none_or(|e| e.0 == 0))
            .collect()
    }

    /// Total overhead (data + protocol).
    pub fn total_overhead(&self) -> u64 {
        self.data_overhead + self.protocol_overhead
    }

    /// Record an injected failure (engine-internal).
    pub fn note_fault(&mut self, now: u64) {
        self.faults_injected += 1;
        self.last_fault_at = Some(now);
    }

    /// Record a completed tree repair; latency is measured against the
    /// most recent injected failure. Returns the latency sample, `None`
    /// when no failure was ever injected.
    pub fn record_repair(&mut self, now: u64) -> Option<u64> {
        self.repairs += 1;
        let t0 = self.last_fault_at?;
        let latency = now.saturating_sub(t0);
        self.repair_latency_total += latency;
        self.max_repair_latency = self.max_repair_latency.max(latency);
        self.repair_hist.record(latency);
        Some(latency)
    }

    /// Record a data gap closing at a receiver, `latency` ticks after
    /// the gap was first observed.
    pub fn record_recovery(&mut self, latency: u64) {
        self.recoveries += 1;
        self.recovery_hist.record(latency);
    }

    /// Repair-cache hit rate over all NACK lookups, or 0.0 when the
    /// reliability tier never answered one.
    pub fn repair_cache_hit_rate(&self) -> f64 {
        let total = self.repair_cache_hits + self.repair_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.repair_cache_hits as f64 / total as f64
        }
    }

    /// Mean repair latency over all repairs, or 0.0 when none happened.
    pub fn mean_repair_latency(&self) -> f64 {
        if self.repairs == 0 {
            0.0
        } else {
            self.repair_latency_total as f64 / self.repairs as f64
        }
    }

    /// Fraction of `expected` `(group, tag, receiver)` triples that were
    /// delivered at least once. An empty expectation yields 1.0 — a run
    /// that offered nothing lost nothing.
    pub fn delivery_ratio<I>(&self, expected: I) -> f64
    where
        I: IntoIterator<Item = (GroupId, u64, NodeId)>,
    {
        let mut total = 0u64;
        let mut delivered = 0u64;
        for key in expected {
            total += 1;
            if self.deliveries.get(&key).is_some_and(|e| e.0 > 0) {
                delivered += 1;
            }
        }
        if total == 0 {
            1.0
        } else {
            delivered as f64 / total as f64
        }
    }

    /// A deterministic text report of the run: counters, latency
    /// quantiles, and the delivery map sorted by `(group, tag, node)` so
    /// two identical runs produce byte-identical reports regardless of
    /// `HashMap` iteration order.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "overhead: data={} ({} hops) protocol={} ({} hops) total={}",
            self.data_overhead,
            self.data_hops,
            self.protocol_overhead,
            self.control_hops,
            self.total_overhead()
        );
        let _ = writeln!(
            out,
            "drops: total={} queue={} | faults={} repairs={} max_repair_latency={}",
            self.drops,
            self.queue_drops,
            self.faults_injected,
            self.repairs,
            self.max_repair_latency
        );
        let _ = writeln!(
            out,
            "channel: dropped={} duplicated={} reordered={} corrupted={} | retransmissions={} takeovers={}",
            self.channel_dropped,
            self.channel_duplicated,
            self.channel_reordered,
            self.channel_corrupted,
            self.retransmissions,
            self.takeovers
        );
        let _ = writeln!(
            out,
            "e2e delay: p50={} p90={} p99={} max={}",
            self.e2e_delay_hist.p50(),
            self.e2e_delay_hist.p90(),
            self.e2e_delay_hist.p99(),
            self.max_end_to_end_delay
        );
        let _ = writeln!(
            out,
            "queueing: total={} p99={} max={}",
            self.queueing_delay_total,
            self.queueing_hist.p99(),
            self.max_queueing_delay
        );
        // Reliability-tier lines appear only when the tier did anything,
        // so reliability-off runs keep their golden reports byte-stable.
        if self.nacks_sent + self.nacks_suppressed + self.nacks_forwarded > 0 {
            let _ = writeln!(
                out,
                "nacks: sent={} suppressed={} forwarded={}",
                self.nacks_sent, self.nacks_suppressed, self.nacks_forwarded
            );
        }
        if self.repair_cache_hits + self.repair_cache_misses + self.repair_cache_evictions > 0 {
            let _ = writeln!(
                out,
                "repair cache: hits={} misses={} evictions={}",
                self.repair_cache_hits, self.repair_cache_misses, self.repair_cache_evictions
            );
        }
        if self.recoveries > 0 {
            let _ = writeln!(
                out,
                "recoveries: {} p50={} p99={} max={}",
                self.recoveries,
                self.recovery_hist.p50(),
                self.recovery_hist.p99(),
                self.recovery_hist.max()
            );
        }
        if self.unknown_kind_drops > 0 {
            let _ = writeln!(out, "unknown-kind frames: {}", self.unknown_kind_drops);
        }
        // Partition lines appear only when a partition was ever seen, so
        // partition-free runs keep their golden reports byte-stable.
        if self.partition_degraded_ticks + self.reconciliations > 0 {
            let _ = writeln!(
                out,
                "partition: degraded_ticks={} reconciliations={}",
                self.partition_degraded_ticks, self.reconciliations
            );
        }
        let mut keys: Vec<_> = self.deliveries.iter().collect();
        keys.sort_by_key(|&(&(g, tag, n), _)| (g.0, tag, n.0));
        let _ = writeln!(out, "deliveries: {} distinct", keys.len());
        for (&(g, tag, n), &(count, delay)) in keys {
            let _ = writeln!(
                out,
                "  g{} tag {} -> n{}: x{count} delay={delay}",
                g.0, tag, n.0
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_tracking() {
        let mut s = SimStats::default();
        s.record_delivery(GroupId(1), 5, NodeId(2), 30);
        s.record_delivery(GroupId(1), 5, NodeId(3), 70);
        assert_eq!(s.delivery_count(GroupId(1), 5, NodeId(2)), 1);
        assert_eq!(s.delivery_delay(GroupId(1), 5, NodeId(3)), Some(70));
        assert_eq!(s.max_end_to_end_delay, 70);
        assert_eq!(s.distinct_deliveries(), 2);
        assert!(!s.has_duplicate_deliveries());
    }

    #[test]
    fn duplicates_detected_and_delay_kept_first() {
        let mut s = SimStats::default();
        s.record_delivery(GroupId(1), 5, NodeId(2), 30);
        s.record_delivery(GroupId(1), 5, NodeId(2), 90);
        assert!(s.has_duplicate_deliveries());
        assert_eq!(s.delivery_count(GroupId(1), 5, NodeId(2)), 2);
        assert_eq!(s.delivery_delay(GroupId(1), 5, NodeId(2)), Some(30));
        // Duplicate delivery does not inflate the max-delay metric.
        assert_eq!(s.max_end_to_end_delay, 30);
    }

    #[test]
    fn fault_and_repair_accounting() {
        let mut s = SimStats::default();
        assert_eq!(s.mean_repair_latency(), 0.0);
        s.note_fault(1_000);
        s.note_fault(2_000);
        assert_eq!(s.faults_injected, 2);
        assert_eq!(s.last_fault_at, Some(2_000));
        s.record_repair(2_700);
        assert_eq!(s.repairs, 1);
        assert_eq!(s.repair_latency_total, 700);
        assert_eq!(s.max_repair_latency, 700);
        s.record_repair(2_900);
        assert_eq!(s.repair_latency_total, 700 + 900);
        assert_eq!(s.max_repair_latency, 900);
        assert!((s.mean_repair_latency() - 800.0).abs() < 1e-9);
    }

    #[test]
    fn delivery_ratio_over_expected_triples() {
        let mut s = SimStats::default();
        s.record_delivery(GroupId(1), 0, NodeId(2), 10);
        s.record_delivery(GroupId(1), 1, NodeId(2), 10);
        // Expected: both delivered plus one the run never saw.
        let expected = vec![
            (GroupId(1), 0, NodeId(2)),
            (GroupId(1), 1, NodeId(2)),
            (GroupId(1), 1, NodeId(3)),
        ];
        let r = s.delivery_ratio(expected);
        assert!((r - 2.0 / 3.0).abs() < 1e-9);
        // Nothing expected → perfect ratio by convention.
        assert_eq!(s.delivery_ratio(std::iter::empty()), 1.0);
    }

    #[test]
    fn repair_returns_latency_and_feeds_histogram() {
        let mut s = SimStats::default();
        assert_eq!(s.record_repair(500), None, "no fault injected yet");
        assert_eq!(s.repairs, 1);
        s.note_fault(1_000);
        assert_eq!(s.record_repair(1_800), Some(800));
        assert_eq!(s.repair_hist.count(), 1);
        assert_eq!(s.repair_hist.max(), 800);
    }

    #[test]
    fn histograms_follow_the_counters() {
        let mut s = SimStats::default();
        s.record_delivery(GroupId(1), 1, NodeId(2), 30);
        s.record_delivery(GroupId(1), 1, NodeId(2), 90); // duplicate: not re-recorded
        s.record_queue_wait(0);
        s.record_queue_wait(12);
        assert_eq!(s.e2e_delay_hist.count(), 1);
        assert_eq!(s.e2e_delay_hist.max(), 30);
        assert_eq!(s.queueing_hist.count(), 2);
        assert_eq!(s.queueing_delay_total, 12);
        assert_eq!(s.max_queueing_delay, 12);
    }

    #[test]
    fn report_is_sorted_and_deterministic() {
        let mut s = SimStats::default();
        // Inserted out of order on purpose: the report must sort.
        s.record_delivery(GroupId(2), 1, NodeId(5), 10);
        s.record_delivery(GroupId(1), 9, NodeId(3), 20);
        s.record_delivery(GroupId(1), 2, NodeId(4), 30);
        let r = s.report();
        assert_eq!(r, s.report());
        let a = r.find("g1 tag 2 -> n4").expect("first key");
        let b = r.find("g1 tag 9 -> n3").expect("second key");
        let c = r.find("g2 tag 1 -> n5").expect("third key");
        assert!(a < b && b < c, "delivery map sorted by (group, tag, node)");
        assert!(r.contains("e2e delay: p50="));
    }

    #[test]
    fn reliability_lines_appear_only_when_the_tier_ran() {
        let quiet = SimStats::default();
        let r = quiet.report();
        assert!(!r.contains("nacks:"), "{r}");
        assert!(!r.contains("repair cache:"), "{r}");
        assert!(!r.contains("recoveries:"), "{r}");
        assert!(!r.contains("unknown-kind"), "{r}");

        let mut s = SimStats {
            nacks_sent: 3,
            nacks_suppressed: 1,
            repair_cache_hits: 2,
            repair_cache_misses: 1,
            unknown_kind_drops: 1,
            ..Default::default()
        };
        s.record_recovery(700);
        s.record_recovery(300);
        assert_eq!(s.recoveries, 2);
        assert_eq!(s.recovery_hist.max(), 700);
        assert!((s.repair_cache_hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        let r = s.report();
        assert!(r.contains("nacks: sent=3 suppressed=1 forwarded=0"), "{r}");
        assert!(
            r.contains("repair cache: hits=2 misses=1 evictions=0"),
            "{r}"
        );
        assert!(r.contains("recoveries: 2"), "{r}");
        assert!(r.contains("unknown-kind frames: 1"), "{r}");
    }

    #[test]
    fn totals() {
        let s = SimStats {
            data_overhead: 10,
            protocol_overhead: 5,
            ..Default::default()
        };
        assert_eq!(s.total_overhead(), 15);
        assert_eq!(s.delivery_count(GroupId(9), 9, NodeId(9)), 0);
        assert_eq!(s.delivery_delay(GroupId(9), 9, NodeId(9)), None);
    }
}
