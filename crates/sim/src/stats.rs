//! Simulation metrics — the three §IV-B measurements plus correctness
//! counters used by the integration tests.

use crate::packet::GroupId;
use scmp_net::NodeId;
use std::collections::HashMap;

/// Aggregated statistics of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Σ link-cost of every data-class packet hop ("data overhead").
    pub data_overhead: u64,
    /// Σ link-cost of every control-class packet hop ("protocol
    /// overhead").
    pub protocol_overhead: u64,
    /// Number of data-class packet hops.
    pub data_hops: u64,
    /// Number of control-class packet hops.
    pub control_hops: u64,
    /// Packets dropped (dead link/node, queue overflow, or protocol
    /// decision).
    pub drops: u64,
    /// Subset of `drops` caused by link-queue overflow (congestion).
    pub queue_drops: u64,
    /// Total ticks packets spent waiting in link queues.
    pub queueing_delay_total: u64,
    /// Largest single queueing wait observed.
    pub max_queueing_delay: u64,
    /// Per (group, tag, receiver): delivery count (detects duplicates)
    /// and first-delivery end-to-end delay.
    deliveries: HashMap<(GroupId, u64, NodeId), (u64, u64)>,
    /// Maximum end-to-end delay seen over all deliveries.
    pub max_end_to_end_delay: u64,
}

impl SimStats {
    /// Record a data payload reaching a member host.
    pub fn record_delivery(&mut self, group: GroupId, tag: u64, node: NodeId, delay: u64) {
        let entry = self.deliveries.entry((group, tag, node)).or_insert((0, delay));
        entry.0 += 1;
        if entry.0 == 1 {
            entry.1 = delay;
            self.max_end_to_end_delay = self.max_end_to_end_delay.max(delay);
        }
    }

    /// How many times `(group, tag)` was delivered to `node`.
    pub fn delivery_count(&self, group: GroupId, tag: u64, node: NodeId) -> u64 {
        self.deliveries.get(&(group, tag, node)).map_or(0, |e| e.0)
    }

    /// First-delivery delay of `(group, tag)` at `node`, if delivered.
    pub fn delivery_delay(&self, group: GroupId, tag: u64, node: NodeId) -> Option<u64> {
        self.deliveries.get(&(group, tag, node)).map(|e| e.1)
    }

    /// Total number of distinct `(group, tag, node)` deliveries.
    pub fn distinct_deliveries(&self) -> usize {
        self.deliveries.len()
    }

    /// True iff any `(group, tag)` reached some node more than once —
    /// a forwarding-loop symptom the integration tests assert against.
    pub fn has_duplicate_deliveries(&self) -> bool {
        self.deliveries.values().any(|e| e.0 > 1)
    }

    /// Total overhead (data + protocol).
    pub fn total_overhead(&self) -> u64 {
        self.data_overhead + self.protocol_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_tracking() {
        let mut s = SimStats::default();
        s.record_delivery(GroupId(1), 5, NodeId(2), 30);
        s.record_delivery(GroupId(1), 5, NodeId(3), 70);
        assert_eq!(s.delivery_count(GroupId(1), 5, NodeId(2)), 1);
        assert_eq!(s.delivery_delay(GroupId(1), 5, NodeId(3)), Some(70));
        assert_eq!(s.max_end_to_end_delay, 70);
        assert_eq!(s.distinct_deliveries(), 2);
        assert!(!s.has_duplicate_deliveries());
    }

    #[test]
    fn duplicates_detected_and_delay_kept_first() {
        let mut s = SimStats::default();
        s.record_delivery(GroupId(1), 5, NodeId(2), 30);
        s.record_delivery(GroupId(1), 5, NodeId(2), 90);
        assert!(s.has_duplicate_deliveries());
        assert_eq!(s.delivery_count(GroupId(1), 5, NodeId(2)), 2);
        assert_eq!(s.delivery_delay(GroupId(1), 5, NodeId(2)), Some(30));
        // Duplicate delivery does not inflate the max-delay metric.
        assert_eq!(s.max_end_to_end_delay, 30);
    }

    #[test]
    fn totals() {
        let s = SimStats {
            data_overhead: 10,
            protocol_overhead: 5,
            ..Default::default()
        };
        assert_eq!(s.total_overhead(), 15);
        assert_eq!(s.delivery_count(GroupId(9), 9, NodeId(9)), 0);
        assert_eq!(s.delivery_delay(GroupId(9), 9, NodeId(9)), None);
    }
}
