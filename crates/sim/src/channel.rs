//! Seeded, deterministic per-link channel impairments.
//!
//! PR 1's faults are fail-stop: a link is either perfect or cut. Real
//! multicast evaluations (Helmy's STRESS work, §IV of the paper's
//! methodology lineage) stress protocols with *lossy* channels — drops,
//! duplicates, reordering and corruption on links that stay up. This
//! module models those impairments at the transport layer.
//!
//! Determinism contract:
//! * Every directed link draws from its **own** RNG stream, seeded as
//!   `derive_seed("channel/<a>-><b>", plan_seed)`. Traffic on one link
//!   can never perturb the loss pattern of another, so adding a flow in
//!   one corner of the topology leaves the channel behaviour elsewhere
//!   bit-identical.
//! * A link whose effective [`ChannelSpec`] is a no-op never creates a
//!   stream and never draws — a zero-impairment channel is therefore
//!   byte-identical to having no channel model at all.
//! * For a non-no-op spec the number of draws per packet is fixed (one
//!   per *active* impairment field, in declaration order), so a run
//!   replays bit-for-bit.

use rand::rngs::SmallRng;
use rand::Rng;
use scmp_net::{rng::rng_for, NodeId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Impairment probabilities for one link (or the whole-plan default).
/// All fields default to zero, i.e. a perfect channel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ChannelSpec {
    /// Probability a packet on the link is lost.
    #[serde(default)]
    pub drop: f64,
    /// Probability a packet is delivered twice (same arrival tick; the
    /// copy is enqueued immediately after the original).
    #[serde(default)]
    pub duplicate: f64,
    /// Probability a packet arrives corrupted. Receivers checksum and
    /// discard, so corruption is a counted drop at the *receiver*.
    #[serde(default)]
    pub corrupt: f64,
    /// Maximum extra delivery delay in ticks, drawn uniformly from
    /// `0..=reorder_window`. Later packets can overtake jittered ones.
    #[serde(default)]
    pub reorder_window: u64,
}

impl ChannelSpec {
    /// True when the spec impairs nothing (and must cost zero RNG draws).
    pub fn is_noop(&self) -> bool {
        self.drop <= 0.0 && self.duplicate <= 0.0 && self.corrupt <= 0.0 && self.reorder_window == 0
    }

    /// Probability fields out of `[0, 1]`, by name (for validation).
    fn bad_probability(&self) -> Option<(&'static str, f64)> {
        [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("corrupt", self.corrupt),
        ]
        .into_iter()
        .find(|&(_, p)| !(0.0..=1.0).contains(&p) || p.is_nan())
    }
}

/// A per-link override in a [`ChannelPlan`]: the link's endpoints plus
/// the spec fields inline (endpoint order irrelevant — impairments are
/// per undirected link, though each direction draws its own stream).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ChannelLinkSpec {
    /// One endpoint of the link.
    pub a: u32,
    /// The other endpoint.
    pub b: u32,
    /// See [`ChannelSpec::drop`].
    #[serde(default)]
    pub drop: f64,
    /// See [`ChannelSpec::duplicate`].
    #[serde(default)]
    pub duplicate: f64,
    /// See [`ChannelSpec::corrupt`].
    #[serde(default)]
    pub corrupt: f64,
    /// See [`ChannelSpec::reorder_window`].
    #[serde(default)]
    pub reorder_window: u64,
}

impl ChannelLinkSpec {
    /// The impairment spec carried by this override.
    pub fn spec(&self) -> ChannelSpec {
        ChannelSpec {
            drop: self.drop,
            duplicate: self.duplicate,
            corrupt: self.corrupt,
            reorder_window: self.reorder_window,
        }
    }
}

/// A declarative channel-impairment plan: a seed, an optional default
/// spec applied to every link, and per-link overrides.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ChannelPlan {
    /// Seed mixed into every per-link stream (sweep over this to get
    /// independent loss realisations of the same scenario).
    #[serde(default)]
    pub seed: u64,
    /// Impairments applied to every link not named in `links`.
    #[serde(default)]
    pub default: Option<ChannelSpec>,
    /// Per-link overrides (replace the default entirely for that link).
    #[serde(default)]
    pub links: Vec<ChannelLinkSpec>,
}

impl ChannelPlan {
    /// True when the plan impairs nothing at all.
    pub fn is_noop(&self) -> bool {
        self.default.is_none_or(|d| d.is_noop()) && self.links.iter().all(|l| l.spec().is_noop())
    }

    /// Check the plan against a topology: probabilities must be in
    /// `[0, 1]`, every override must name an existing link, and no link
    /// may be overridden twice. Errors are named and indexed
    /// (`channel.links[2]: link 7-9 not in topology`), never silent.
    pub fn validate(&self, topo: &Topology) -> Result<(), String> {
        if let Some(d) = &self.default {
            if let Some((field, p)) = d.bad_probability() {
                return Err(format!(
                    "channel.default: {field} probability {p} not in [0, 1]"
                ));
            }
        }
        let mut seen = HashMap::new();
        for (i, l) in self.links.iter().enumerate() {
            if let Some((field, p)) = l.spec().bad_probability() {
                return Err(format!(
                    "channel.links[{i}]: {field} probability {p} not in [0, 1]"
                ));
            }
            let n = topo.node_count() as u32;
            if l.a >= n || l.b >= n {
                return Err(format!(
                    "channel.links[{i}]: link {}-{} names a node out of range",
                    l.a, l.b
                ));
            }
            if !topo.has_link(NodeId(l.a), NodeId(l.b)) {
                return Err(format!(
                    "channel.links[{i}]: link {}-{} not in topology",
                    l.a, l.b
                ));
            }
            let key = undirected(NodeId(l.a), NodeId(l.b));
            if let Some(prev) = seen.insert(key, i) {
                return Err(format!(
                    "channel.links[{i}]: link {}-{} already configured by channel.links[{prev}]",
                    l.a, l.b
                ));
            }
        }
        Ok(())
    }
}

/// What the channel decided for one packet on one directed link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelOutcome {
    /// Lose the packet on the wire.
    pub drop: bool,
    /// Deliver a second copy at the same arrival tick.
    pub duplicate: bool,
    /// Deliver the packet flagged corrupt (receiver checksums and drops).
    pub corrupt: bool,
    /// Extra delivery delay in ticks.
    pub jitter: u64,
}

fn undirected(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The runtime impairment model installed on the transport: the plan's
/// specs plus one lazily-created RNG stream per *directed* link.
pub struct ChannelModel {
    seed: u64,
    default: ChannelSpec,
    overrides: HashMap<(NodeId, NodeId), ChannelSpec>,
    streams: HashMap<(NodeId, NodeId), SmallRng>,
}

impl ChannelModel {
    /// Build the runtime model from a validated plan. Returns `None`
    /// when the plan is a complete no-op, so callers install nothing and
    /// the transport hot path stays on the channel-free branch.
    pub fn from_plan(plan: &ChannelPlan) -> Option<Self> {
        if plan.is_noop() {
            return None;
        }
        let overrides = plan
            .links
            .iter()
            .map(|l| (undirected(NodeId(l.a), NodeId(l.b)), l.spec()))
            .collect();
        Some(ChannelModel {
            seed: plan.seed,
            default: plan.default.unwrap_or_default(),
            overrides,
            streams: HashMap::new(),
        })
    }

    /// A uniform loss-only channel on every link (the chaos sweep's
    /// workhorse).
    pub fn uniform_loss(drop: f64, seed: u64) -> Self {
        ChannelModel {
            seed,
            default: ChannelSpec {
                drop,
                ..ChannelSpec::default()
            },
            overrides: HashMap::new(),
            streams: HashMap::new(),
        }
    }

    fn spec_for(&self, a: NodeId, b: NodeId) -> ChannelSpec {
        self.overrides
            .get(&undirected(a, b))
            .copied()
            .unwrap_or(self.default)
    }

    /// Roll the channel for one packet on the directed link `a -> b`.
    /// A no-op spec returns the default outcome without touching (or
    /// creating) the link's stream — the zero-impairment identity.
    pub fn roll(&mut self, a: NodeId, b: NodeId) -> ChannelOutcome {
        let spec = self.spec_for(a, b);
        if spec.is_noop() {
            return ChannelOutcome::default();
        }
        let seed = self.seed;
        let rng = self
            .streams
            .entry((a, b))
            .or_insert_with(|| rng_for(&format!("channel/{}->{}", a.0, b.0), seed));
        // One draw per active field, in fixed declaration order, so a
        // link's stream position depends only on how many packets it has
        // carried — never on earlier outcomes.
        let mut out = ChannelOutcome::default();
        if spec.drop > 0.0 {
            out.drop = rng.gen::<f64>() < spec.drop;
        }
        if spec.duplicate > 0.0 {
            out.duplicate = rng.gen::<f64>() < spec.duplicate;
        }
        if spec.corrupt > 0.0 {
            out.corrupt = rng.gen::<f64>() < spec.corrupt;
        }
        if spec.reorder_window > 0 {
            out.jitter = rng.gen_range(0..=spec.reorder_window);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scmp_net::graph::TopologyBuilder;
    use scmp_net::LinkWeight;

    fn line3() -> Topology {
        let mut b = TopologyBuilder::new(3);
        b.add_link(NodeId(0), NodeId(1), LinkWeight { delay: 1, cost: 1 });
        b.add_link(NodeId(1), NodeId(2), LinkWeight { delay: 1, cost: 1 });
        b.build()
    }

    #[test]
    fn noop_plans_build_no_model() {
        assert!(ChannelPlan::default().is_noop());
        assert!(ChannelModel::from_plan(&ChannelPlan::default()).is_none());
        let zeroed = ChannelPlan {
            default: Some(ChannelSpec::default()),
            links: vec![ChannelLinkSpec {
                a: 0,
                b: 1,
                ..ChannelLinkSpec::default()
            }],
            ..ChannelPlan::default()
        };
        assert!(zeroed.is_noop());
        assert!(ChannelModel::from_plan(&zeroed).is_none());
    }

    #[test]
    fn noop_links_never_draw() {
        let plan = ChannelPlan {
            seed: 7,
            default: None,
            links: vec![ChannelLinkSpec {
                a: 0,
                b: 1,
                drop: 0.5,
                ..ChannelLinkSpec::default()
            }],
        };
        let mut m = ChannelModel::from_plan(&plan).expect("not a noop");
        // The un-overridden link 1-2 falls back to the (noop) default:
        // no stream is ever created for it.
        for _ in 0..16 {
            assert_eq!(m.roll(NodeId(1), NodeId(2)), ChannelOutcome::default());
        }
        assert!(m.streams.is_empty());
    }

    #[test]
    fn rolls_replay_bit_for_bit_and_directions_are_independent() {
        let mk = || ChannelModel::uniform_loss(0.3, 42);
        let (mut x, mut y) = (mk(), mk());
        let fwd: Vec<ChannelOutcome> = (0..64).map(|_| x.roll(NodeId(0), NodeId(1))).collect();
        assert_eq!(
            fwd,
            (0..64)
                .map(|_| y.roll(NodeId(0), NodeId(1)))
                .collect::<Vec<_>>(),
            "same seed, same link, same stream"
        );
        // The reverse direction draws from its own stream: interleaving
        // reverse traffic must not perturb the forward outcomes.
        let mut z = mk();
        let interleaved: Vec<ChannelOutcome> = (0..64)
            .map(|_| {
                z.roll(NodeId(1), NodeId(0));
                z.roll(NodeId(0), NodeId(1))
            })
            .collect();
        assert_eq!(fwd, interleaved);
    }

    #[test]
    fn loss_rate_is_roughly_the_configured_probability() {
        let mut m = ChannelModel::uniform_loss(0.2, 1);
        let dropped = (0..10_000)
            .filter(|_| m.roll(NodeId(0), NodeId(1)).drop)
            .count();
        assert!((1_500..2_500).contains(&dropped), "got {dropped}/10000");
    }

    #[test]
    fn jitter_stays_in_window() {
        let plan = ChannelPlan {
            seed: 3,
            default: Some(ChannelSpec {
                reorder_window: 5,
                ..ChannelSpec::default()
            }),
            links: vec![],
        };
        let mut m = ChannelModel::from_plan(&plan).expect("not a noop");
        let mut seen_nonzero = false;
        for _ in 0..256 {
            let out = m.roll(NodeId(0), NodeId(1));
            assert!(out.jitter <= 5);
            assert!(!out.drop && !out.duplicate && !out.corrupt);
            seen_nonzero |= out.jitter > 0;
        }
        assert!(seen_nonzero, "a 0..=5 window should jitter sometimes");
    }

    #[test]
    fn validation_names_and_indexes_errors() {
        let topo = line3();
        let bad_prob = ChannelPlan {
            default: Some(ChannelSpec {
                drop: 1.5,
                ..ChannelSpec::default()
            }),
            ..ChannelPlan::default()
        };
        let err = bad_prob.validate(&topo).unwrap_err();
        assert!(err.contains("channel.default"), "{err}");
        assert!(err.contains("not in [0, 1]"), "{err}");

        let missing_link = ChannelPlan {
            links: vec![
                ChannelLinkSpec {
                    a: 0,
                    b: 1,
                    drop: 0.1,
                    ..ChannelLinkSpec::default()
                },
                ChannelLinkSpec {
                    a: 0,
                    b: 2,
                    drop: 0.1,
                    ..ChannelLinkSpec::default()
                },
            ],
            ..ChannelPlan::default()
        };
        let err = missing_link.validate(&topo).unwrap_err();
        assert!(err.contains("channel.links[1]"), "{err}");
        assert!(err.contains("link 0-2 not in topology"), "{err}");

        let out_of_range = ChannelPlan {
            links: vec![ChannelLinkSpec {
                a: 7,
                b: 9,
                ..ChannelLinkSpec::default()
            }],
            ..ChannelPlan::default()
        };
        let err = out_of_range.validate(&topo).unwrap_err();
        assert!(err.contains("channel.links[0]"), "{err}");
        assert!(err.contains("link 7-9"), "{err}");

        let duped = ChannelPlan {
            links: vec![
                ChannelLinkSpec {
                    a: 0,
                    b: 1,
                    ..ChannelLinkSpec::default()
                },
                ChannelLinkSpec {
                    a: 1,
                    b: 0,
                    ..ChannelLinkSpec::default()
                },
            ],
            ..ChannelPlan::default()
        };
        let err = duped.validate(&topo).unwrap_err();
        assert!(
            err.contains("already configured by channel.links[0]"),
            "{err}"
        );
    }
}
