//! The discrete-event engine.

use crate::fault::{FaultEvent, FaultPlan};
use crate::packet::{Packet, PacketClass};
use crate::stats::SimStats;
use scmp_net::{NodeId, RoutingTables, Topology};
use std::collections::BinaryHeap;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Simulation time in abstract ticks (the same unit as link delays).
pub type SimTime = u64;

/// Finite link-capacity model (off by default).
///
/// With capacities enabled, each link direction is a FIFO server: a
/// packet sent at `t` starts transmitting when the link is free,
/// occupies it for the sender's transmission time, and then propagates
/// for the link delay. A bounded queue drops packets that would wait for
/// more than `queue_limit` earlier transmissions — the §I "traffic
/// concentration around the core ... packet loss and longer
/// communication delay" failure mode. Per-node overrides model the
/// m-router's "specially designed powerful" line cards (§V).
#[derive(Clone, Debug)]
pub struct CapacityModel {
    /// Ticks to serialise one packet onto a link.
    pub link_tx: u64,
    /// Maximum packets waiting per link direction before tail drop.
    pub queue_limit: u64,
    /// Per-node transmission-time override (e.g. the m-router's ports);
    /// `None` uses `link_tx`.
    pub node_tx: HashMap<NodeId, u64>,
}

impl CapacityModel {
    /// Uniform capacity: every node serialises a packet in `link_tx`
    /// ticks, with `queue_limit` queue slots per link direction.
    pub fn uniform(link_tx: u64, queue_limit: u64) -> Self {
        assert!(link_tx > 0, "transmission time must be positive");
        CapacityModel {
            link_tx,
            queue_limit,
            node_tx: HashMap::new(),
        }
    }

    /// Give `node` faster ports (smaller transmission time).
    pub fn with_node_tx(mut self, node: NodeId, tx: u64) -> Self {
        assert!(tx > 0);
        self.node_tx.insert(node, tx);
        self
    }

    fn tx_of(&self, sender: NodeId) -> u64 {
        self.node_tx.get(&sender).copied().unwrap_or(self.link_tx)
    }
}

/// One record of the (optional) event trace — enough to reconstruct the
/// protocol conversation without holding message bodies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event fired.
    pub time: SimTime,
    /// The router that handled it.
    pub node: NodeId,
    /// What happened.
    pub kind: TraceKind,
}

/// Kind of traced event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A packet was handed to the router.
    Deliver {
        /// Sender (neighbour or tunnel tail).
        from: NodeId,
        /// Overhead class.
        class: PacketClass,
        /// Group the packet belongs to.
        group: crate::packet::GroupId,
        /// Data tag (0 for control).
        tag: u64,
    },
    /// A timer fired.
    Timer {
        /// Protocol-defined token.
        token: u64,
    },
    /// A host/subnet event was injected.
    App(AppEvent),
    /// A scheduled fault fired (link cut/restore, router crash/recover).
    Fault(FaultEvent),
}

/// Scenario-injected application events: what the attached hosts/subnets
/// ask their designated router to do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AppEvent {
    /// A host on this router's subnet joined `group` (the IGMP report
    /// already aggregated — see `scmp-core::igmp` for the host-level
    /// model).
    Join(crate::packet::GroupId),
    /// The last host on this router's subnet left `group`.
    Leave(crate::packet::GroupId),
    /// A local host sends one data payload (`tag`) to `group`.
    Send {
        group: crate::packet::GroupId,
        tag: u64,
    },
}

/// A protocol state machine running on one router.
///
/// One value of the implementing type exists per node; the engine owns
/// them all and dispatches events. `Msg` is the protocol's wire-message
/// enum.
pub trait Router {
    /// Protocol message body carried by [`Packet`].
    type Msg: Clone + fmt::Debug;

    /// Called once before the first event fires.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// A packet arrived from neighbour (or tunnel tail) `from`.
    fn on_packet(&mut self, from: NodeId, pkt: Packet<Self::Msg>, ctx: &mut Ctx<'_, Self::Msg>);

    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = (token, ctx);
    }

    /// An application event occurred on this router's subnet.
    fn on_app(&mut self, ev: AppEvent, ctx: &mut Ctx<'_, Self::Msg>);
}

enum EventKind<M> {
    Deliver { from: NodeId, pkt: Packet<M> },
    Timer { token: u64 },
    App(AppEvent),
    Fault(FaultEvent),
}

struct Entry<M> {
    time: SimTime,
    seq: u64,
    node: NodeId,
    kind: EventKind<M>,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Entry<M> {}
impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: reverse so earlier (time, seq) pops
        // first. seq uniqueness makes the order total and deterministic.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The per-dispatch context handed to [`Router`] callbacks: the only way
/// protocols interact with the network.
pub struct Ctx<'a, M> {
    now: SimTime,
    node: NodeId,
    topo: &'a Topology,
    routes: &'a RoutingTables,
    queue: &'a mut BinaryHeap<Entry<M>>,
    seq: &'a mut u64,
    stats: &'a mut SimStats,
    node_down: &'a [bool],
    link_down: &'a HashSet<(NodeId, NodeId)>,
    capacity: Option<&'a CapacityModel>,
    link_busy: &'a mut HashMap<(NodeId, NodeId), SimTime>,
    /// True while any link or node is down: overhead charged in this
    /// window also accumulates into the during-failure counters.
    degraded: bool,
}

impl<'a, M: Clone + fmt::Debug> Ctx<'a, M> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The router being executed.
    pub fn me(&self) -> NodeId {
        self.node
    }

    /// The topology (read-only).
    pub fn topo(&self) -> &Topology {
        self.topo
    }

    /// The domain's unicast routing tables (read-only).
    pub fn routes(&self) -> &RoutingTables {
        self.routes
    }

    fn push(&mut self, time: SimTime, node: NodeId, kind: EventKind<M>) {
        let seq = *self.seq;
        *self.seq += 1;
        self.queue.push(Entry {
            time,
            seq,
            node,
            kind,
        });
    }

    fn link_alive(&self, a: NodeId, b: NodeId) -> bool {
        let key = if a < b { (a, b) } else { (b, a) };
        !self.link_down.contains(&key) && !self.node_down[a.index()] && !self.node_down[b.index()]
    }

    /// Is the link `a`–`b` (and both endpoints) currently in service?
    /// Models the domain's link-state IGP view, which every router —
    /// and in particular the m-router's repair scan — can consult.
    pub fn link_up(&self, a: NodeId, b: NodeId) -> bool {
        self.link_alive(a, b)
    }

    /// Is router `v` currently in service (per the IGP view)?
    pub fn node_up(&self, v: NodeId) -> bool {
        !self.node_down[v.index()]
    }

    /// The topology restricted to live nodes and links — what a repair
    /// algorithm should plan over. Node ids are preserved.
    pub fn surviving_topology(&self) -> Topology {
        self.topo.subtopology(
            |v| !self.node_down[v.index()],
            |a, b| {
                let key = if a < b { (a, b) } else { (b, a) };
                !self.link_down.contains(&key)
            },
        )
    }

    /// Record a completed tree repair: the elapsed time since the most
    /// recent fault becomes a repair-latency sample.
    pub fn record_repair(&mut self) {
        let now = self.now;
        self.stats.record_repair(now);
    }

    /// Send `pkt` to the directly-connected neighbour `to`. Charges the
    /// link cost against the packet's overhead class and delivers after
    /// the link delay. Dead links/nodes drop the packet.
    ///
    /// # Panics
    /// If `to` is not a neighbour of the current node.
    pub fn send(&mut self, to: NodeId, pkt: Packet<M>) {
        let w = self
            .topo
            .link(self.node, to)
            .unwrap_or_else(|| panic!("{:?} is not a neighbour of {:?}", to, self.node));
        if !self.link_alive(self.node, to) {
            self.stats.drops += 1;
            return;
        }
        let Some(depart) = self.reserve_link(self.node, to, self.now) else {
            // Queue overflow: the congestion loss of §I.
            self.stats.drops += 1;
            self.stats.queue_drops += 1;
            return;
        };
        self.charge(pkt.class, w.cost);
        let t = depart + w.delay;
        self.push(t, to, EventKind::Deliver {
            from: self.node,
            pkt,
        });
    }

    /// Reserve transmission time on the directed link `a -> b` starting
    /// no earlier than `ready`. Returns the serialisation-complete time,
    /// or `None` when the queue is full. Free (no-capacity) mode departs
    /// immediately.
    fn reserve_link(&mut self, a: NodeId, b: NodeId, ready: SimTime) -> Option<SimTime> {
        let Some(cap) = self.capacity else {
            return Some(ready);
        };
        let tx = cap.tx_of(a);
        let busy = self.link_busy.entry((a, b)).or_insert(0);
        let start = (*busy).max(ready);
        // Packets already waiting = backlog / tx.
        if (start - ready) / tx > cap.queue_limit {
            return None;
        }
        let done = start + tx;
        *busy = done;
        let waited = start - ready;
        self.stats.queueing_delay_total += waited;
        self.stats.max_queueing_delay = self.stats.max_queueing_delay.max(waited);
        Some(done)
    }

    /// Send `pkt` to an arbitrary router via the domain's unicast routing
    /// (hop-by-hop along shortest-delay paths, every hop charged). This
    /// models IP tunnelling: intermediate routers forward without the
    /// multicast protocol seeing the packet. The receiver observes
    /// `from` = the last hop on the path.
    ///
    /// The packet is dropped (and partially charged, like a real packet
    /// making it partway) if the path crosses a dead link or node.
    pub fn unicast(&mut self, dst: NodeId, pkt: Packet<M>) {
        if dst == self.node {
            let t = self.now;
            self.push(t, dst, EventKind::Deliver {
                from: self.node,
                pkt,
            });
            return;
        }
        let Some(route) = self.routes.route(self.node, dst) else {
            self.stats.drops += 1;
            return;
        };
        let mut at = self.now;
        for hop in route.windows(2) {
            let (a, b) = (hop[0], hop[1]);
            if !self.link_alive(a, b) {
                self.stats.drops += 1;
                return;
            }
            let Some(depart) = self.reserve_link(a, b, at) else {
                self.stats.drops += 1;
                self.stats.queue_drops += 1;
                return;
            };
            let w = self.topo.link(a, b).expect("route follows links");
            self.charge(pkt.class, w.cost);
            at = depart + w.delay;
        }
        let from = route[route.len() - 2];
        self.push(at, dst, EventKind::Deliver { from, pkt });
    }

    /// Arm a timer that fires `delay` ticks from now with `token`.
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        let t = self.now + delay;
        let node = self.node;
        self.push(t, node, EventKind::Timer { token });
    }

    /// Record delivery of a data payload to the member hosts attached to
    /// this router (the end of the multicast path).
    pub fn deliver_local(&mut self, pkt: &Packet<M>) {
        debug_assert_eq!(pkt.class, PacketClass::Data, "only data is delivered to hosts");
        let delay = self.now.saturating_sub(pkt.created_at);
        self.stats
            .record_delivery(pkt.group, pkt.tag, self.node, delay);
    }

    /// Record a protocol-decision drop (e.g. a packet arriving from a
    /// router outside the forwarding set, §III-F).
    pub fn drop_packet(&mut self) {
        self.stats.drops += 1;
    }

    fn charge(&mut self, class: PacketClass, cost: u64) {
        match class {
            PacketClass::Data => {
                self.stats.data_overhead += cost;
                self.stats.data_hops += 1;
                if self.degraded {
                    self.stats.data_overhead_during_failure += cost;
                }
            }
            PacketClass::Control => {
                self.stats.protocol_overhead += cost;
                self.stats.control_hops += 1;
                if self.degraded {
                    self.stats.control_overhead_during_failure += cost;
                }
            }
        }
    }
}

/// The simulation engine: owns the topology, routing tables, per-node
/// protocol state and the event queue.
pub struct Engine<R: Router> {
    topo: Topology,
    routes: RoutingTables,
    routers: Vec<R>,
    /// The router factory, kept so a crashed router can be cold-restarted
    /// with factory-fresh state (see [`FaultEvent::RouterCrash`]).
    make: Box<dyn FnMut(NodeId, &Topology, &RoutingTables) -> R>,
    queue: BinaryHeap<Entry<R::Msg>>,
    seq: u64,
    now: SimTime,
    stats: SimStats,
    node_down: Vec<bool>,
    /// Count of `true` entries in `node_down` (kept in sync so the
    /// degraded-window test is O(1) per event).
    down_nodes: usize,
    link_down: HashSet<(NodeId, NodeId)>,
    started: bool,
    event_limit: u64,
    events_processed: u64,
    trace: Option<Vec<TraceRecord>>,
    capacity: Option<CapacityModel>,
    link_busy: HashMap<(NodeId, NodeId), SimTime>,
}

impl<R: Router> Engine<R> {
    /// Build an engine; `make` constructs the protocol state for each
    /// router (it receives the topology and unicast tables so protocols
    /// can precompute). The factory is retained: a
    /// [`FaultEvent::RouterCrash`] wipes the node's state and a later
    /// recovery rebuilds it through the same factory.
    pub fn new(
        topo: Topology,
        mut make: impl FnMut(NodeId, &Topology, &RoutingTables) -> R + 'static,
    ) -> Self {
        let routes = RoutingTables::compute(&topo);
        let routers = topo.nodes().map(|v| make(v, &topo, &routes)).collect();
        let n = topo.node_count();
        Engine {
            topo,
            routes,
            routers,
            make: Box::new(make),
            queue: BinaryHeap::new(),
            seq: 0,
            now: 0,
            stats: SimStats::default(),
            node_down: vec![false; n],
            down_nodes: 0,
            link_down: HashSet::new(),
            started: false,
            event_limit: 50_000_000,
            events_processed: 0,
            trace: None,
            capacity: None,
            link_busy: HashMap::new(),
        }
    }

    /// Enable the finite link-capacity model (default: infinite
    /// bandwidth, zero queueing).
    pub fn set_capacity(&mut self, model: CapacityModel) {
        self.capacity = Some(model);
    }

    /// Enable event tracing (disabled by default; the trace grows with
    /// every dispatched event, so enable it only for small scenarios or
    /// debugging sessions).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded trace (empty slice when tracing is disabled).
    pub fn trace(&self) -> &[TraceRecord] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology being simulated.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Collected statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Read a router's protocol state (for assertions and reporting).
    pub fn router(&self, node: NodeId) -> &R {
        &self.routers[node.index()]
    }

    /// Override the runaway-protection event limit (default 50M).
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Inject an application event at absolute time `time`.
    pub fn schedule_app(&mut self, time: SimTime, node: NodeId, ev: AppEvent) {
        assert!(time >= self.now, "cannot schedule in the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry {
            time,
            seq,
            node,
            kind: EventKind::App(ev),
        });
    }

    /// Mark a node up/down. Packets, timers and app events addressed to a
    /// down node are discarded when they fire. The unicast routing
    /// tables reconverge immediately (modelling the domain's link-state
    /// IGP reacting to the failure).
    pub fn set_node_down(&mut self, node: NodeId, down: bool) {
        let cur = &mut self.node_down[node.index()];
        if *cur != down {
            *cur = down;
            if down {
                self.down_nodes += 1;
            } else {
                self.down_nodes -= 1;
            }
        }
        self.reconverge_routes();
    }

    /// True while any node or link is out of service — the failure
    /// window for the during-failure overhead counters.
    pub fn degraded(&self) -> bool {
        self.down_nodes > 0 || !self.link_down.is_empty()
    }

    /// Schedule a fault at absolute time `time`. Faults share the event
    /// queue with packets and timers, so a seeded scenario replays
    /// identically. Link faults must name an existing link.
    pub fn schedule_fault(&mut self, time: SimTime, fault: FaultEvent) {
        assert!(time >= self.now, "cannot schedule in the past");
        match fault {
            FaultEvent::LinkDown { a, b } | FaultEvent::LinkUp { a, b } => {
                assert!(self.topo.has_link(a, b), "no such link {a:?}-{b:?}");
            }
            FaultEvent::RouterCrash { node } | FaultEvent::RouterRecover { node } => {
                assert!(node.index() < self.topo.node_count(), "no such node {node:?}");
            }
        }
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry {
            time,
            seq,
            node: fault.primary_node(),
            kind: EventKind::Fault(fault),
        });
    }

    /// Schedule every fault of a [`FaultPlan`].
    ///
    /// # Panics
    /// If the plan does not validate against the engine's topology; call
    /// [`FaultPlan::validate`] first for a `Result`.
    pub fn schedule_fault_plan(&mut self, plan: &FaultPlan) {
        for spec in &plan.faults {
            self.schedule_fault(spec.time, spec.to_event());
        }
    }

    /// Apply a fault that fired: flip liveness, reconverge the IGP, and
    /// cold-restart crashed routers. Recovery re-runs `on_start` on the
    /// rebuilt state machine.
    fn apply_fault(&mut self, fault: FaultEvent) {
        if fault.is_failure() {
            self.stats.note_fault(self.now);
        }
        match fault {
            FaultEvent::LinkDown { a, b } => self.set_link_down(a, b, true),
            FaultEvent::LinkUp { a, b } => self.set_link_down(a, b, false),
            FaultEvent::RouterCrash { node } => {
                // Wipe the protocol state now; the node stays down (all
                // events addressed to it are discarded) until recovery.
                self.routers[node.index()] = (self.make)(node, &self.topo, &self.routes);
                self.set_node_down(node, true);
            }
            FaultEvent::RouterRecover { node } => {
                self.set_node_down(node, false);
                let degraded = self.degraded();
                let mut ctx = Ctx {
                    now: self.now,
                    node,
                    topo: &self.topo,
                    routes: &self.routes,
                    queue: &mut self.queue,
                    seq: &mut self.seq,
                    stats: &mut self.stats,
                    node_down: &self.node_down,
                    link_down: &self.link_down,
                    capacity: self.capacity.as_ref(),
                    link_busy: &mut self.link_busy,
                    degraded,
                };
                self.routers[node.index()].on_start(&mut ctx);
            }
        }
    }

    /// Mark a link up/down (both directions); the unicast routing tables
    /// reconverge immediately.
    pub fn set_link_down(&mut self, a: NodeId, b: NodeId, down: bool) {
        assert!(self.topo.has_link(a, b), "no such link {a:?}-{b:?}");
        let key = if a < b { (a, b) } else { (b, a) };
        if down {
            self.link_down.insert(key);
        } else {
            self.link_down.remove(&key);
        }
        self.reconverge_routes();
    }

    /// Recompute the unicast next-hop tables over the surviving links.
    fn reconverge_routes(&mut self) {
        use scmp_net::graph::TopologyBuilder;
        let mut b = TopologyBuilder::new(self.topo.node_count());
        for &(a, bb, w) in self.topo.edges() {
            let key = (a, bb);
            if !self.link_down.contains(&key)
                && !self.node_down[a.index()]
                && !self.node_down[bb.index()]
            {
                b.add_link(a, bb, w);
            }
        }
        self.routes = RoutingTables::compute(&b.build());
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let degraded = self.degraded();
        for i in 0..self.routers.len() {
            let node = NodeId(i as u32);
            let mut ctx = Ctx {
                now: self.now,
                node,
                topo: &self.topo,
                routes: &self.routes,
                queue: &mut self.queue,
                seq: &mut self.seq,
                stats: &mut self.stats,
                node_down: &self.node_down,
                link_down: &self.link_down,
                capacity: self.capacity.as_ref(),
                link_busy: &mut self.link_busy,
                degraded,
            };
            self.routers[i].on_start(&mut ctx);
        }
    }

    /// Run until the queue drains or the next event is later than
    /// `deadline`. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.start_if_needed();
        let mut processed = 0;
        while let Some(top) = self.queue.peek() {
            if top.time > deadline {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            self.events_processed += 1;
            processed += 1;
            assert!(
                self.events_processed <= self.event_limit,
                "event limit exceeded: protocol livelock?"
            );
            let node = ev.node;
            // Faults are infrastructure events: they fire regardless of
            // the target's liveness (a crashed node can still recover).
            if let EventKind::Fault(fault) = ev.kind {
                if let Some(trace) = &mut self.trace {
                    trace.push(TraceRecord {
                        time: self.now,
                        node,
                        kind: TraceKind::Fault(fault),
                    });
                }
                self.apply_fault(fault);
                continue;
            }
            if self.node_down[node.index()] {
                if matches!(ev.kind, EventKind::Deliver { .. }) {
                    self.stats.drops += 1;
                }
                continue;
            }
            let degraded = self.degraded();
            let mut ctx = Ctx {
                now: self.now,
                node,
                topo: &self.topo,
                routes: &self.routes,
                queue: &mut self.queue,
                seq: &mut self.seq,
                stats: &mut self.stats,
                node_down: &self.node_down,
                link_down: &self.link_down,
                capacity: self.capacity.as_ref(),
                link_busy: &mut self.link_busy,
                degraded,
            };
            if let Some(trace) = &mut self.trace {
                let kind = match &ev.kind {
                    EventKind::Deliver { from, pkt } => TraceKind::Deliver {
                        from: *from,
                        class: pkt.class,
                        group: pkt.group,
                        tag: pkt.tag,
                    },
                    EventKind::Timer { token } => TraceKind::Timer { token: *token },
                    EventKind::App(app) => TraceKind::App(app.clone()),
                    EventKind::Fault(_) => unreachable!("handled above"),
                };
                trace.push(TraceRecord {
                    time: self.now,
                    node,
                    kind,
                });
            }
            match ev.kind {
                EventKind::Deliver { from, pkt } => {
                    self.routers[node.index()].on_packet(from, pkt, &mut ctx)
                }
                EventKind::Timer { token } => self.routers[node.index()].on_timer(token, &mut ctx),
                EventKind::App(app) => self.routers[node.index()].on_app(app, &mut ctx),
                EventKind::Fault(_) => unreachable!("handled above"),
            }
        }
        processed
    }

    /// Run until the event queue is completely drained.
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{GroupId, Packet};
    use scmp_net::graph::LinkWeight;
    use scmp_net::topology::regular::line;

    /// A toy protocol: floods data to all neighbours except the one it
    /// came from; delivers locally everywhere; answers a Join app event
    /// by unicasting a control packet to node 0.
    struct Flood {
        me: NodeId,
        seen: std::collections::HashSet<u64>,
    }

    #[derive(Clone, Debug)]
    enum Msg {
        Payload,
        Hello,
    }

    impl Router for Flood {
        type Msg = Msg;

        fn on_packet(&mut self, from: NodeId, pkt: Packet<Msg>, ctx: &mut Ctx<'_, Msg>) {
            match pkt.body {
                Msg::Payload => {
                    if !self.seen.insert(pkt.tag) {
                        ctx.drop_packet();
                        return;
                    }
                    ctx.deliver_local(&pkt);
                    let neighbors: Vec<NodeId> =
                        ctx.topo().neighbors(self.me).iter().map(|e| e.to).collect();
                    for n in neighbors {
                        if n != from {
                            ctx.send(n, pkt.clone());
                        }
                    }
                }
                Msg::Hello => {}
            }
        }

        fn on_app(&mut self, ev: AppEvent, ctx: &mut Ctx<'_, Msg>) {
            match ev {
                AppEvent::Send { group, tag } => {
                    self.seen.insert(tag);
                    let pkt = Packet::data(group, tag, ctx.now(), Msg::Payload);
                    ctx.deliver_local(&pkt);
                    let neighbors: Vec<NodeId> =
                        ctx.topo().neighbors(self.me).iter().map(|e| e.to).collect();
                    for n in neighbors {
                        ctx.send(n, pkt.clone());
                    }
                }
                AppEvent::Join(g) => {
                    ctx.unicast(NodeId(0), Packet::control(g, Msg::Hello));
                }
                AppEvent::Leave(_) => {}
            }
        }

        fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, Msg>) {
            // Re-flood with a tag derived from the token.
            self.on_app(
                AppEvent::Send {
                    group: GroupId(0),
                    tag: token,
                },
                ctx,
            );
        }
    }

    fn engine(n: usize) -> Engine<Flood> {
        let topo = line(n, LinkWeight::new(2, 3));
        Engine::new(topo, |me, _, _| Flood {
            me,
            seen: Default::default(),
        })
    }

    #[test]
    fn flood_reaches_everyone_once() {
        let mut e = engine(5);
        e.schedule_app(0, NodeId(0), AppEvent::Send {
            group: GroupId(1),
            tag: 42,
        });
        e.run_to_quiescence();
        for v in 0..5u32 {
            assert_eq!(e.stats().delivery_count(GroupId(1), 42, NodeId(v)), 1);
        }
        assert!(!e.stats().has_duplicate_deliveries());
        // Line of 4 links, delay 2 each: farthest delivery at delay 8.
        assert_eq!(e.stats().max_end_to_end_delay, 8);
        // 4 data hops each costing 3.
        assert_eq!(e.stats().data_overhead, 12);
        assert_eq!(e.stats().protocol_overhead, 0);
    }

    #[test]
    fn unicast_charges_full_path() {
        let mut e = engine(4);
        e.schedule_app(5, NodeId(3), AppEvent::Join(GroupId(1)));
        e.run_to_quiescence();
        // 3 hops at cost 3 = 9 units of protocol overhead.
        assert_eq!(e.stats().protocol_overhead, 9);
        assert_eq!(e.stats().control_hops, 3);
        assert_eq!(e.stats().data_overhead, 0);
    }

    #[test]
    fn dead_link_drops_flood() {
        let mut e = engine(5);
        e.set_link_down(NodeId(2), NodeId(3), true);
        e.schedule_app(0, NodeId(0), AppEvent::Send {
            group: GroupId(1),
            tag: 1,
        });
        e.run_to_quiescence();
        assert_eq!(e.stats().delivery_count(GroupId(1), 1, NodeId(2)), 1);
        assert_eq!(e.stats().delivery_count(GroupId(1), 1, NodeId(3)), 0);
        assert!(e.stats().drops > 0);
    }

    #[test]
    fn dead_node_swallows_deliveries() {
        let mut e = engine(5);
        e.set_node_down(NodeId(2), true);
        e.schedule_app(0, NodeId(0), AppEvent::Send {
            group: GroupId(1),
            tag: 1,
        });
        e.run_to_quiescence();
        assert_eq!(e.stats().delivery_count(GroupId(1), 1, NodeId(1)), 1);
        assert_eq!(e.stats().delivery_count(GroupId(1), 1, NodeId(4)), 0);
    }

    #[test]
    fn node_recovery_allows_later_traffic() {
        let mut e = engine(3);
        e.set_node_down(NodeId(1), true);
        e.schedule_app(0, NodeId(0), AppEvent::Send {
            group: GroupId(1),
            tag: 1,
        });
        e.run_until(100);
        assert_eq!(e.stats().delivery_count(GroupId(1), 1, NodeId(2)), 0);
        e.set_node_down(NodeId(1), false);
        e.schedule_app(200, NodeId(0), AppEvent::Send {
            group: GroupId(1),
            tag: 2,
        });
        e.run_to_quiescence();
        assert_eq!(e.stats().delivery_count(GroupId(1), 2, NodeId(2)), 1);
    }

    #[test]
    fn timers_fire_in_order() {
        let mut e = engine(2);
        // Two app events at the same time keep injection order (seq).
        e.schedule_app(10, NodeId(0), AppEvent::Send {
            group: GroupId(0),
            tag: 1,
        });
        e.schedule_app(10, NodeId(0), AppEvent::Send {
            group: GroupId(0),
            tag: 2,
        });
        let processed = e.run_until(9);
        assert_eq!(processed, 0);
        e.run_to_quiescence();
        assert_eq!(e.stats().delivery_count(GroupId(0), 1, NodeId(1)), 1);
        assert_eq!(e.stats().delivery_count(GroupId(0), 2, NodeId(1)), 1);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut e = engine(5);
        e.schedule_app(100, NodeId(0), AppEvent::Send {
            group: GroupId(0),
            tag: 9,
        });
        e.run_until(99);
        assert_eq!(e.stats().distinct_deliveries(), 0);
        e.run_until(101);
        // Send processed at 100; first-hop deliveries at 102 still queued.
        assert_eq!(e.stats().delivery_count(GroupId(0), 9, NodeId(0)), 1);
        assert_eq!(e.stats().delivery_count(GroupId(0), 9, NodeId(1)), 0);
        e.run_to_quiescence();
        assert_eq!(e.stats().delivery_count(GroupId(0), 9, NodeId(4)), 1);
    }

    #[test]
    #[should_panic(expected = "not a neighbour")]
    fn send_to_non_neighbor_panics() {
        struct Bad;
        #[derive(Clone, Debug)]
        struct M;
        impl Router for Bad {
            type Msg = M;
            fn on_packet(&mut self, _: NodeId, _: Packet<M>, _: &mut Ctx<'_, M>) {}
            fn on_app(&mut self, _: AppEvent, ctx: &mut Ctx<'_, M>) {
                ctx.send(NodeId(3), Packet::control(GroupId(0), M));
            }
        }
        let topo = line(4, LinkWeight::new(1, 1));
        let mut e: Engine<Bad> = Engine::new(topo, |_, _, _| Bad);
        e.schedule_app(0, NodeId(0), AppEvent::Leave(GroupId(0)));
        e.run_to_quiescence();
    }

    #[test]
    fn capacity_serialises_back_to_back_sends() {
        // Two packets on the same link: the second waits for the first's
        // transmission (tx = 10), so its delivery is 10 ticks later.
        let mut e = engine(2);
        e.set_capacity(CapacityModel::uniform(10, 100));
        e.schedule_app(0, NodeId(0), AppEvent::Send {
            group: GroupId(0),
            tag: 1,
        });
        e.schedule_app(0, NodeId(0), AppEvent::Send {
            group: GroupId(0),
            tag: 2,
        });
        e.run_to_quiescence();
        // Link delay 2, tx 10: first arrives at 12, second at 22.
        assert_eq!(e.stats().delivery_delay(GroupId(0), 1, NodeId(1)), Some(12));
        assert_eq!(e.stats().delivery_delay(GroupId(0), 2, NodeId(1)), Some(22));
        assert_eq!(e.stats().max_queueing_delay, 10);
        assert_eq!(e.stats().queue_drops, 0);
    }

    #[test]
    fn capacity_queue_overflow_drops() {
        let mut e = engine(2);
        e.set_capacity(CapacityModel::uniform(10, 2)); // 2 queue slots
        for tag in 0..10 {
            e.schedule_app(0, NodeId(0), AppEvent::Send {
                group: GroupId(0),
                tag,
            });
        }
        e.run_to_quiescence();
        assert!(e.stats().queue_drops > 0, "overloaded link must drop");
        let delivered = (0..10)
            .filter(|&t| e.stats().delivery_count(GroupId(0), t, NodeId(1)) == 1)
            .count();
        assert!(delivered < 10);
        assert!(delivered >= 3, "head of queue still flows: {delivered}");
    }

    #[test]
    fn node_tx_override_speeds_up_sender() {
        let mut slow = engine(2);
        slow.set_capacity(CapacityModel::uniform(50, 100));
        let mut fast = engine(2);
        fast.set_capacity(CapacityModel::uniform(50, 100).with_node_tx(NodeId(0), 1));
        for e in [&mut slow, &mut fast] {
            for tag in 0..5 {
                e.schedule_app(0, NodeId(0), AppEvent::Send {
                    group: GroupId(0),
                    tag,
                });
            }
            e.run_to_quiescence();
        }
        assert!(
            fast.stats().max_end_to_end_delay < slow.stats().max_end_to_end_delay,
            "fast {} vs slow {}",
            fast.stats().max_end_to_end_delay,
            slow.stats().max_end_to_end_delay
        );
    }

    #[test]
    fn no_capacity_means_no_queueing() {
        let mut e = engine(2);
        for tag in 0..50 {
            e.schedule_app(0, NodeId(0), AppEvent::Send {
                group: GroupId(0),
                tag,
            });
        }
        e.run_to_quiescence();
        assert_eq!(e.stats().queueing_delay_total, 0);
        assert_eq!(e.stats().queue_drops, 0);
        assert_eq!(e.stats().max_end_to_end_delay, 2);
    }

    #[test]
    fn trace_records_dispatches() {
        let mut e = engine(3);
        e.enable_trace();
        e.schedule_app(5, NodeId(0), AppEvent::Send {
            group: GroupId(2),
            tag: 7,
        });
        e.run_to_quiescence();
        let trace = e.trace();
        assert!(!trace.is_empty());
        assert_eq!(trace[0].time, 5);
        assert_eq!(trace[0].node, NodeId(0));
        assert!(matches!(trace[0].kind, TraceKind::App(AppEvent::Send { .. })));
        // Flood deliveries appear with class/group/tag metadata.
        assert!(trace.iter().any(|r| matches!(
            r.kind,
            TraceKind::Deliver {
                class: PacketClass::Data,
                group: GroupId(2),
                tag: 7,
                ..
            }
        )));
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut e = engine(2);
        e.schedule_app(0, NodeId(0), AppEvent::Send {
            group: GroupId(0),
            tag: 1,
        });
        e.run_to_quiescence();
        assert!(e.trace().is_empty());
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_livelock() {
        // A protocol that reschedules itself forever.
        struct Loopy;
        #[derive(Clone, Debug)]
        struct M;
        impl Router for Loopy {
            type Msg = M;
            fn on_packet(&mut self, _: NodeId, _: Packet<M>, _: &mut Ctx<'_, M>) {}
            fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, M>) {
                ctx.set_timer(1, token);
            }
            fn on_app(&mut self, _: AppEvent, ctx: &mut Ctx<'_, M>) {
                ctx.set_timer(1, 0);
            }
        }
        let topo = line(2, LinkWeight::new(1, 1));
        let mut e: Engine<Loopy> = Engine::new(topo, |_, _, _| Loopy);
        e.set_event_limit(1000);
        e.schedule_app(0, NodeId(0), AppEvent::Leave(GroupId(0)));
        e.run_to_quiescence();
    }

    #[test]
    fn scheduled_link_faults_cut_and_restore() {
        let mut e = engine(5);
        e.schedule_fault(50, FaultEvent::LinkDown {
            a: NodeId(2),
            b: NodeId(3),
        });
        e.schedule_fault(300, FaultEvent::LinkUp {
            a: NodeId(3),
            b: NodeId(2), // endpoint order must not matter
        });
        // Before the cut: full line reachable.
        e.schedule_app(0, NodeId(0), AppEvent::Send {
            group: GroupId(1),
            tag: 1,
        });
        // During the cut: flood stops at node 2.
        e.schedule_app(100, NodeId(0), AppEvent::Send {
            group: GroupId(1),
            tag: 2,
        });
        // After restoration: full line reachable again.
        e.schedule_app(400, NodeId(0), AppEvent::Send {
            group: GroupId(1),
            tag: 3,
        });
        e.run_to_quiescence();
        assert_eq!(e.stats().delivery_count(GroupId(1), 1, NodeId(4)), 1);
        assert_eq!(e.stats().delivery_count(GroupId(1), 2, NodeId(2)), 1);
        assert_eq!(e.stats().delivery_count(GroupId(1), 2, NodeId(3)), 0);
        assert_eq!(e.stats().delivery_count(GroupId(1), 3, NodeId(4)), 1);
        // Only the LinkDown counts as a failure.
        assert_eq!(e.stats().faults_injected, 1);
        assert_eq!(e.stats().last_fault_at, Some(50));
        assert!(!e.degraded());
    }

    #[test]
    fn router_crash_wipes_protocol_state() {
        // Flood dedups on `seen`; a crash must cold-restart that state,
        // so a post-recovery replay of the same tag is accepted again.
        let mut e = engine(3);
        e.schedule_app(0, NodeId(0), AppEvent::Send {
            group: GroupId(1),
            tag: 7,
        });
        e.schedule_fault(100, FaultEvent::RouterCrash { node: NodeId(1) });
        e.schedule_fault(200, FaultEvent::RouterRecover { node: NodeId(1) });
        e.schedule_app(300, NodeId(0), AppEvent::Send {
            group: GroupId(1),
            tag: 7, // same tag — a survivor would dedup it
        });
        e.run_to_quiescence();
        // Node 1 delivered tag 7 twice (fresh `seen` after the crash);
        // node 2 kept its state and deduped the replay.
        assert_eq!(e.stats().delivery_count(GroupId(1), 7, NodeId(1)), 2);
        assert_eq!(e.stats().delivery_count(GroupId(1), 7, NodeId(2)), 1);
        assert_eq!(e.stats().faults_injected, 1);
    }

    #[test]
    fn crash_window_swallows_traffic() {
        let mut e = engine(3);
        e.schedule_fault(10, FaultEvent::RouterCrash { node: NodeId(1) });
        e.schedule_app(20, NodeId(0), AppEvent::Send {
            group: GroupId(1),
            tag: 1,
        });
        e.schedule_fault(100, FaultEvent::RouterRecover { node: NodeId(1) });
        e.schedule_app(200, NodeId(0), AppEvent::Send {
            group: GroupId(1),
            tag: 2,
        });
        e.run_to_quiescence();
        // During the crash nothing passes node 1; afterwards it flows.
        assert_eq!(e.stats().delivery_count(GroupId(1), 1, NodeId(2)), 0);
        assert_eq!(e.stats().delivery_count(GroupId(1), 2, NodeId(2)), 1);
    }

    #[test]
    fn degraded_window_charges_failure_overhead() {
        let mut e = engine(5);
        e.schedule_app(0, NodeId(0), AppEvent::Send {
            group: GroupId(1),
            tag: 1,
        });
        // Cut an edge-of-line link so most of the flood still flows.
        e.schedule_fault(50, FaultEvent::LinkDown {
            a: NodeId(3),
            b: NodeId(4),
        });
        e.schedule_app(100, NodeId(0), AppEvent::Send {
            group: GroupId(1),
            tag: 2,
        });
        e.schedule_fault(300, FaultEvent::LinkUp {
            a: NodeId(3),
            b: NodeId(4),
        });
        e.schedule_app(400, NodeId(0), AppEvent::Send {
            group: GroupId(1),
            tag: 3,
        });
        e.run_to_quiescence();
        // Healthy sends cross 4 links at cost 3 each; the degraded send
        // crosses the surviving 3. Only the latter lands in the
        // during-failure bucket.
        assert_eq!(e.stats().data_overhead, 12 + 9 + 12);
        assert_eq!(e.stats().data_overhead_during_failure, 9);
        assert_eq!(e.stats().control_overhead_during_failure, 0);
    }

    #[test]
    fn fault_plan_schedules_and_traces() {
        use crate::fault::{FaultKind, FaultPlan};
        let plan = FaultPlan::new()
            .at(50, FaultKind::LinkDown { a: 1, b: 2 })
            .at(150, FaultKind::LinkUp { a: 1, b: 2 });
        let mut e = engine(3);
        e.enable_trace();
        e.schedule_fault_plan(&plan);
        e.schedule_app(100, NodeId(0), AppEvent::Send {
            group: GroupId(1),
            tag: 1,
        });
        e.run_to_quiescence();
        assert_eq!(e.stats().delivery_count(GroupId(1), 1, NodeId(2)), 0);
        let faults: Vec<_> = e
            .trace()
            .iter()
            .filter_map(|r| match r.kind {
                TraceKind::Fault(f) => Some((r.time, f)),
                _ => None,
            })
            .collect();
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].0, 50);
        assert!(matches!(faults[0].1, FaultEvent::LinkDown { .. }));
        assert_eq!(faults[1].0, 150);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        use crate::fault::FaultKind;
        let run = || {
            let mut e = engine(5);
            e.enable_trace();
            let plan = FaultPlan::new()
                .at(40, FaultKind::RouterCrash { node: 2 })
                .at(90, FaultKind::RouterRecover { node: 2 })
                .at(120, FaultKind::LinkDown { a: 0, b: 1 })
                .at(180, FaultKind::LinkUp { a: 0, b: 1 });
            e.schedule_fault_plan(&plan);
            for tag in 0..6 {
                e.schedule_app(tag * 35, NodeId(0), AppEvent::Send {
                    group: GroupId(1),
                    tag,
                });
            }
            e.run_to_quiescence();
            let trace: Vec<String> = e
                .trace()
                .iter()
                .map(|r| format!("{} n{} {:?}", r.time, r.node.0, r.kind))
                .collect();
            (trace, e.stats().clone())
        };
        let (t1, s1) = run();
        let (t2, s2) = run();
        assert_eq!(t1, t2, "same plan + same seed must replay bit-for-bit");
        assert_eq!(s1.data_overhead, s2.data_overhead);
        assert_eq!(s1.drops, s2.drops);
        assert_eq!(s1.faults_injected, s2.faults_injected);
        assert!(!t1.is_empty());
    }

    #[test]
    #[should_panic(expected = "no such link")]
    fn fault_on_missing_link_panics() {
        let mut e = engine(3);
        e.schedule_fault(10, FaultEvent::LinkDown {
            a: NodeId(0),
            b: NodeId(2), // line(3) has no 0-2 link
        });
    }

    #[test]
    fn surviving_topology_reflects_faults() {
        struct Probe;
        #[derive(Clone, Debug)]
        struct M;
        impl Router for Probe {
            type Msg = M;
            fn on_packet(&mut self, _: NodeId, _: Packet<M>, _: &mut Ctx<'_, M>) {}
            fn on_app(&mut self, _: AppEvent, ctx: &mut Ctx<'_, M>) {
                let surv = ctx.surviving_topology();
                // Node 2 crashed, link 0-1 cut: only 3-4 remains.
                assert_eq!(surv.edge_count(), 1);
                assert!(surv.has_link(NodeId(3), NodeId(4)));
                assert!(!ctx.node_up(NodeId(2)));
                assert!(!ctx.link_up(NodeId(0), NodeId(1)));
            }
        }
        let topo = line(5, LinkWeight::new(1, 1));
        let mut e: Engine<Probe> = Engine::new(topo, |_, _, _| Probe);
        e.schedule_fault(5, FaultEvent::RouterCrash { node: NodeId(2) });
        e.schedule_fault(5, FaultEvent::LinkDown {
            a: NodeId(0),
            b: NodeId(1),
        });
        e.schedule_app(10, NodeId(0), AppEvent::Leave(GroupId(0)));
        e.run_to_quiescence();
        assert!(e.degraded());
    }
}
