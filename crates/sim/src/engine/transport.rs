//! Link liveness and the finite-capacity link model.
//!
//! [`Transport`] owns everything the engine knows about the physical
//! network's current condition: which nodes and links are in service,
//! and — when a [`CapacityModel`] is installed — how long each directed
//! link stays busy serialising earlier packets. It holds no reference to
//! the engine, the event queue or the statistics, so its arithmetic is
//! unit-testable in isolation (see the tests at the bottom).

use super::SimTime;
use crate::channel::{ChannelModel, ChannelOutcome};
use scmp_net::NodeId;
use std::collections::{HashMap, HashSet};

/// Finite link-capacity model (off by default).
///
/// With capacities enabled, each link direction is a FIFO server: a
/// packet sent at `t` starts transmitting when the link is free,
/// occupies it for the sender's transmission time, and then propagates
/// for the link delay. A bounded queue drops packets that would wait for
/// more than `queue_limit` earlier transmissions — the §I "traffic
/// concentration around the core ... packet loss and longer
/// communication delay" failure mode. Per-node overrides model the
/// m-router's "specially designed powerful" line cards (§V).
#[derive(Clone, Debug)]
pub struct CapacityModel {
    /// Ticks to serialise one packet onto a link.
    pub link_tx: u64,
    /// Maximum packets waiting per link direction before tail drop.
    pub queue_limit: u64,
    /// Per-node transmission-time override (e.g. the m-router's ports);
    /// `None` uses `link_tx`.
    pub node_tx: HashMap<NodeId, u64>,
}

impl CapacityModel {
    /// Uniform capacity: every node serialises a packet in `link_tx`
    /// ticks, with `queue_limit` queue slots per link direction.
    pub fn uniform(link_tx: u64, queue_limit: u64) -> Self {
        assert!(link_tx > 0, "transmission time must be positive");
        CapacityModel {
            link_tx,
            queue_limit,
            node_tx: HashMap::new(),
        }
    }

    /// Give `node` faster ports (smaller transmission time).
    pub fn with_node_tx(mut self, node: NodeId, tx: u64) -> Self {
        assert!(tx > 0);
        self.node_tx.insert(node, tx);
        self
    }

    fn tx_of(&self, sender: NodeId) -> u64 {
        self.node_tx.get(&sender).copied().unwrap_or(self.link_tx)
    }
}

/// A granted transmission slot on a directed link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkSlot {
    /// When serialisation completes (propagation starts here).
    pub depart: SimTime,
    /// Ticks spent queued behind earlier transmissions.
    pub waited: SimTime,
}

/// The network's physical condition: node/link liveness plus the
/// per-link busy horizon of the capacity model.
pub struct Transport {
    node_down: Vec<bool>,
    /// Count of `true` entries in `node_down` (kept in sync so the
    /// degraded-window test is O(1) per event).
    down_nodes: usize,
    link_down: HashSet<(NodeId, NodeId)>,
    capacity: Option<CapacityModel>,
    channel: Option<ChannelModel>,
    link_busy: HashMap<(NodeId, NodeId), SimTime>,
}

impl Transport {
    /// A fully-up transport over `nodes` routers, infinite bandwidth.
    pub fn new(nodes: usize) -> Self {
        Transport {
            node_down: vec![false; nodes],
            down_nodes: 0,
            link_down: HashSet::new(),
            capacity: None,
            channel: None,
            link_busy: HashMap::new(),
        }
    }

    /// Enable the finite link-capacity model (default: infinite
    /// bandwidth, zero queueing).
    pub fn set_capacity(&mut self, model: CapacityModel) {
        self.capacity = Some(model);
    }

    /// Install a channel impairment model (default: perfect channels).
    pub fn set_channel(&mut self, model: ChannelModel) {
        self.channel = Some(model);
    }

    /// Roll the channel for one packet on the directed link `a -> b`.
    /// Without a model (or for a link whose spec is a no-op) this is the
    /// perfect-channel outcome and costs no RNG draws.
    pub fn channel_roll(&mut self, a: NodeId, b: NodeId) -> ChannelOutcome {
        match &mut self.channel {
            Some(ch) => ch.roll(a, b),
            None => ChannelOutcome::default(),
        }
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a < b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Mark a node up/down.
    pub fn set_node_down(&mut self, node: NodeId, down: bool) {
        let cur = &mut self.node_down[node.index()];
        if *cur != down {
            *cur = down;
            if down {
                self.down_nodes += 1;
            } else {
                self.down_nodes -= 1;
            }
        }
    }

    /// Mark a link up/down (both directions; endpoint order irrelevant).
    pub fn set_link_down(&mut self, a: NodeId, b: NodeId, down: bool) {
        let key = Self::key(a, b);
        if down {
            self.link_down.insert(key);
        } else {
            self.link_down.remove(&key);
        }
    }

    /// Is router `v` currently in service?
    pub fn node_up(&self, v: NodeId) -> bool {
        !self.node_down[v.index()]
    }

    /// Is the link itself cut (ignoring endpoint liveness)?
    pub fn link_cut(&self, a: NodeId, b: NodeId) -> bool {
        self.link_down.contains(&Self::key(a, b))
    }

    /// Is the link `a`–`b` (and both endpoints) currently usable?
    pub fn link_alive(&self, a: NodeId, b: NodeId) -> bool {
        !self.link_cut(a, b) && self.node_up(a) && self.node_up(b)
    }

    /// True while any node or link is out of service — the failure
    /// window for the during-failure overhead counters.
    pub fn degraded(&self) -> bool {
        self.down_nodes > 0 || !self.link_down.is_empty()
    }

    /// Number of links currently administratively down (gauge metric).
    pub fn down_link_count(&self) -> usize {
        self.link_down.len()
    }

    /// Number of routers currently down (gauge metric).
    pub fn down_node_count(&self) -> usize {
        self.down_nodes
    }

    /// Reserve transmission time on the directed link `a -> b` starting
    /// no earlier than `ready`. Returns the slot (serialisation-complete
    /// time plus the queueing wait), or `None` when the bounded queue is
    /// full. Free (no-capacity) mode departs immediately.
    pub fn reserve_link(&mut self, a: NodeId, b: NodeId, ready: SimTime) -> Option<LinkSlot> {
        let Some(cap) = &self.capacity else {
            return Some(LinkSlot {
                depart: ready,
                waited: 0,
            });
        };
        let tx = cap.tx_of(a);
        let busy = self.link_busy.entry((a, b)).or_insert(0);
        let start = (*busy).max(ready);
        // Packets already waiting = backlog / tx.
        if (start - ready) / tx > cap.queue_limit {
            return None;
        }
        let done = start + tx;
        *busy = done;
        Some(LinkSlot {
            depart: done,
            waited: start - ready,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: NodeId = NodeId(0);
    const B: NodeId = NodeId(1);

    #[test]
    fn free_mode_departs_immediately() {
        let mut t = Transport::new(2);
        for ready in [0, 5, 3] {
            // No capacity model: no serialisation, no queue, no state.
            assert_eq!(
                t.reserve_link(A, B, ready),
                Some(LinkSlot {
                    depart: ready,
                    waited: 0
                })
            );
        }
    }

    #[test]
    fn backlog_at_start_equals_ready_is_zero() {
        let mut t = Transport::new(2);
        t.set_capacity(CapacityModel::uniform(10, 0));
        // queue_limit 0: only a packet that starts the instant it is
        // ready (start == ready, backlog 0/tx = 0) is accepted.
        let first = t.reserve_link(A, B, 0).expect("idle link accepts");
        assert_eq!(
            first,
            LinkSlot {
                depart: 10,
                waited: 0
            }
        );
        // Ready exactly when the link frees: start == ready again.
        let second = t
            .reserve_link(A, B, 10)
            .expect("start == ready is not queued");
        assert_eq!(
            second,
            LinkSlot {
                depart: 20,
                waited: 0
            }
        );
        // Ready one tick earlier: backlog 9/10 = 0 still within limit 0
        // (a partially-serialised predecessor is not a queued packet).
        let third = t
            .reserve_link(A, B, 19)
            .expect("sub-tx backlog rounds to zero");
        assert_eq!(
            third,
            LinkSlot {
                depart: 30,
                waited: 1
            }
        );
        // A full transmission time of backlog exceeds limit 0.
        assert_eq!(t.reserve_link(A, B, 20), None);
    }

    #[test]
    fn queue_limit_boundary_is_inclusive() {
        let mut t = Transport::new(2);
        t.set_capacity(CapacityModel::uniform(10, 2));
        // All ready at 0: backlogs are 0, 10, 20, 30 ticks = 0, 1, 2, 3
        // waiting packets. Exactly queue_limit (2) is accepted; one more
        // is tail-dropped.
        assert_eq!(t.reserve_link(A, B, 0).unwrap().waited, 0);
        assert_eq!(t.reserve_link(A, B, 0).unwrap().waited, 10);
        assert_eq!(t.reserve_link(A, B, 0).unwrap().waited, 20);
        assert_eq!(t.reserve_link(A, B, 0), None, "limit+1 must drop");
        // The drop reserved nothing: the link frees at 30, so a packet
        // ready then still flows.
        assert_eq!(
            t.reserve_link(A, B, 30),
            Some(LinkSlot {
                depart: 40,
                waited: 0
            })
        );
    }

    #[test]
    fn per_node_tx_override_applies_to_sender_only() {
        let mut t = Transport::new(2);
        t.set_capacity(CapacityModel::uniform(10, 100).with_node_tx(A, 2));
        // A's fast ports serialise in 2 ticks...
        assert_eq!(t.reserve_link(A, B, 0).unwrap().depart, 2);
        assert_eq!(t.reserve_link(A, B, 0).unwrap().depart, 4);
        // ...while B still takes the uniform 10, on its own direction.
        assert_eq!(t.reserve_link(B, A, 0).unwrap().depart, 10);
        // The override also scales the queue: with tx 2 a 100-limit
        // queue holds 100 packets of 2 ticks each.
        let mut last = 0;
        for _ in 0..50 {
            last = t.reserve_link(A, B, 0).unwrap().depart;
        }
        assert_eq!(last, 104);
    }

    #[test]
    fn directions_queue_independently() {
        let mut t = Transport::new(2);
        t.set_capacity(CapacityModel::uniform(10, 1));
        assert_eq!(t.reserve_link(A, B, 0).unwrap().depart, 10);
        // The reverse direction is a separate FIFO server.
        assert_eq!(t.reserve_link(B, A, 0).unwrap().depart, 10);
    }

    #[test]
    fn liveness_bookkeeping() {
        let mut t = Transport::new(3);
        assert!(t.link_alive(A, B));
        assert!(!t.degraded());
        t.set_link_down(B, A, true); // endpoint order must not matter
        assert!(t.link_cut(A, B));
        assert!(!t.link_alive(A, B));
        assert!(t.degraded());
        t.set_link_down(A, B, false);
        assert!(!t.degraded());
        t.set_node_down(NodeId(2), true);
        t.set_node_down(NodeId(2), true); // idempotent: counted once
        assert!(t.degraded());
        assert!(!t.node_up(NodeId(2)));
        t.set_node_down(NodeId(2), false);
        assert!(!t.degraded());
    }
}
