//! The arena-backed event queue.
//!
//! The binary heap orders only small `Copy` keys — `(time, seq, slot)` —
//! while the packet/event payloads are parked in a slab-style arena, so
//! every heap sift moves 20 bytes instead of a whole `Packet<M>`. Freed
//! arena slots are chained on an intrusive free list and reused, so a
//! steady-state simulation stops allocating once the queue has reached
//! its high-water mark.
//!
//! Ordering is identical to the previous `BinaryHeap<Entry<M>>`: total
//! on `(time, seq)` with `seq` assigned at push, so same-time events
//! fire in insertion order and every run replays deterministically.

use super::{AppEvent, SimTime};
use crate::fault::FaultEvent;
use crate::packet::Packet;
use scmp_net::NodeId;
use std::collections::BinaryHeap;

/// What a queued event does when it fires.
pub(crate) enum EventKind<M> {
    Deliver {
        from: NodeId,
        /// Flipped by the channel model: the receiver's checksum will
        /// reject the packet (a counted drop, never dispatched).
        corrupted: bool,
        pkt: Packet<M>,
    },
    Timer {
        token: u64,
    },
    App(AppEvent),
    Fault(FaultEvent),
}

/// Heap entry. Only `(time, seq)` participate in ordering; `slot` tags
/// along to locate the parked payload.
#[derive(Clone, Copy)]
struct HeapKey {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapKey {}
impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: reverse so earlier (time, seq) pops
        // first. seq uniqueness makes the order total and deterministic.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

enum Slot<M> {
    Occupied { node: NodeId, kind: EventKind<M> },
    Free { next: u32 },
}

/// Free-list terminator.
const NIL: u32 = u32::MAX;

/// The event queue: a heap of keys over an arena of payloads.
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<HeapKey>,
    arena: Vec<Slot<M>>,
    free_head: u32,
    seq: u64,
}

impl<M> EventQueue<M> {
    pub(crate) fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            arena: Vec::new(),
            free_head: NIL,
            seq: 0,
        }
    }

    /// Events currently scheduled.
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    /// Park `kind` in the arena and schedule it at `time`. The next
    /// sequence number is assigned here, so same-time events keep their
    /// push order.
    pub(crate) fn push(&mut self, time: SimTime, node: NodeId, kind: EventKind<M>) {
        let slot = if self.free_head == NIL {
            let slot = u32::try_from(self.arena.len()).expect("event arena overflow");
            self.arena.push(Slot::Occupied { node, kind });
            slot
        } else {
            let slot = self.free_head;
            match self.arena[slot as usize] {
                Slot::Free { next } => self.free_head = next,
                Slot::Occupied { .. } => unreachable!("free list points at an occupied slot"),
            }
            self.arena[slot as usize] = Slot::Occupied { node, kind };
            slot
        };
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapKey { time, seq, slot });
    }

    /// Fire time of the next event, without dispatching it.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|k| k.time)
    }

    /// Pop the earliest event; its arena slot goes back on the free list.
    pub(crate) fn pop(&mut self) -> Option<(SimTime, NodeId, EventKind<M>)> {
        let key = self.heap.pop()?;
        let taken = std::mem::replace(
            &mut self.arena[key.slot as usize],
            Slot::Free {
                next: self.free_head,
            },
        );
        self.free_head = key.slot;
        match taken {
            Slot::Occupied { node, kind } => Some((key.time, node, kind)),
            Slot::Free { .. } => unreachable!("heap key points at a free slot"),
        }
    }

    /// Arena slots ever allocated (tests assert reuse, not growth).
    #[cfg(test)]
    fn arena_len(&self) -> usize {
        self.arena.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::GroupId;

    fn app(g: u32) -> EventKind<()> {
        EventKind::App(AppEvent::Join(GroupId(g)))
    }

    fn group_of(kind: EventKind<()>) -> u32 {
        match kind {
            EventKind::App(AppEvent::Join(g)) => g.0,
            _ => panic!("expected app event"),
        }
    }

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.push(20, NodeId(0), app(1));
        q.push(10, NodeId(0), app(2));
        q.push(10, NodeId(0), app(3));
        q.push(5, NodeId(0), app(4));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, _, k)| group_of(k))
            .collect();
        assert_eq!(order, vec![4, 2, 3, 1]);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(7, NodeId(1), app(0));
        q.push(3, NodeId(2), app(0));
        assert_eq!(q.peek_time(), Some(3));
        let (t, node, _) = q.pop().unwrap();
        assert_eq!((t, node), (3, NodeId(2)));
        assert_eq!(q.peek_time(), Some(7));
    }

    #[test]
    fn slots_are_reused_after_pop() {
        let mut q: EventQueue<()> = EventQueue::new();
        for i in 0..4 {
            q.push(i, NodeId(0), app(i as u32));
        }
        assert_eq!(q.arena_len(), 4);
        while q.pop().is_some() {}
        for i in 0..4 {
            q.push(100 + i, NodeId(0), app(i as u32));
        }
        assert_eq!(
            q.arena_len(),
            4,
            "freed slots must be reused, not grown past"
        );
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn interleaved_push_pop_preserves_order_and_arena() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.push(1, NodeId(0), app(1));
        q.push(3, NodeId(0), app(3));
        assert_eq!(group_of(q.pop().unwrap().2), 1);
        q.push(2, NodeId(0), app(2));
        assert_eq!(group_of(q.pop().unwrap().2), 2);
        assert_eq!(group_of(q.pop().unwrap().2), 3);
        assert!(q.pop().is_none());
        assert_eq!(q.arena_len(), 2);
    }
}
