//! The simulation engine proper: the event loop, fault application,
//! IGP reconvergence and tracing.

use super::queue::{EventKind, EventQueue};
use super::telemetry::Telemetry;
use super::transport::{CapacityModel, Transport};
use super::{AppEvent, Ctx, Router, SimTime, TraceKind, TraceRecord};
use crate::channel::ChannelModel;
use crate::fault::{FaultEvent, FaultPlan};
use crate::packet::{GroupId, PacketClass};
use crate::stats::SimStats;
use scmp_net::{NodeId, RoutingTables, Topology};
use scmp_telemetry::{
    DropReason, Event, EventKind as TeleKind, GaugeSample, RingSink, Sink, Span, TimedScope,
    TrafficClass,
};

/// The router factory signature: constructs one node's protocol state.
/// `Send` so a whole engine can be handed to a sweep worker thread.
type RouterFactory<R> = Box<dyn FnMut(NodeId, &Topology, &RoutingTables) -> R + Send>;

/// The simulation engine: owns the topology, routing tables, per-node
/// protocol state, the transport condition and the event queue.
pub struct Engine<R: Router> {
    topo: Topology,
    routes: RoutingTables,
    routers: Vec<R>,
    /// The router factory, kept so a crashed router can be cold-restarted
    /// with factory-fresh state (see [`FaultEvent::RouterCrash`]).
    make: RouterFactory<R>,
    queue: EventQueue<R::Msg>,
    now: SimTime,
    stats: SimStats,
    transport: Transport,
    started: bool,
    event_limit: u64,
    events_processed: u64,
    peak_queue: usize,
    tele: Telemetry,
}

/// Map a structured telemetry event back onto the legacy trace
/// vocabulary. Kinds the old trace never carried (local deliveries,
/// non-legacy drops, repairs, gauges) map to `None`, which keeps
/// pre-telemetry golden traces byte-identical.
fn legacy_record(ev: &Event) -> Option<TraceRecord> {
    let node = NodeId(ev.node);
    let kind = match ev.kind {
        TeleKind::Join { group } => TraceKind::App(AppEvent::Join(GroupId(group))),
        TeleKind::Leave { group } => TraceKind::App(AppEvent::Leave(GroupId(group))),
        TeleKind::Send { group, tag } => TraceKind::App(AppEvent::Send {
            group: GroupId(group),
            tag,
        }),
        TeleKind::Deliver {
            from,
            class,
            group,
            tag,
            ..
        } => TraceKind::Deliver {
            from: NodeId(from),
            class: match class {
                TrafficClass::Data => PacketClass::Data,
                TrafficClass::Control => PacketClass::Control,
            },
            group: GroupId(group),
            tag,
        },
        TeleKind::Timer { token } => TraceKind::Timer { token },
        TeleKind::LinkDown { a, b } => TraceKind::Fault(FaultEvent::LinkDown {
            a: NodeId(a),
            b: NodeId(b),
        }),
        TeleKind::LinkUp { a, b } => TraceKind::Fault(FaultEvent::LinkUp {
            a: NodeId(a),
            b: NodeId(b),
        }),
        TeleKind::RouterCrash => TraceKind::Fault(FaultEvent::RouterCrash { node }),
        TeleKind::RouterRecover => TraceKind::Fault(FaultEvent::RouterRecover { node }),
        TeleKind::Drop {
            reason: DropReason::NonNeighbour,
            to: Some(to),
            ..
        } => TraceKind::NonNeighbourDrop { to: NodeId(to) },
        _ => return None,
    };
    Some(TraceRecord {
        time: ev.time,
        node,
        kind,
    })
}

/// The structured form of a scheduled fault.
fn fault_event_kind(fault: &FaultEvent) -> TeleKind {
    match *fault {
        FaultEvent::LinkDown { a, b } => TeleKind::LinkDown { a: a.0, b: b.0 },
        FaultEvent::LinkUp { a, b } => TeleKind::LinkUp { a: a.0, b: b.0 },
        FaultEvent::RouterCrash { .. } => TeleKind::RouterCrash,
        FaultEvent::RouterRecover { .. } => TeleKind::RouterRecover,
    }
}

impl<R: Router> Engine<R> {
    /// Build an engine; `make` constructs the protocol state for each
    /// router (it receives the topology and unicast tables so protocols
    /// can precompute). The factory is retained: a
    /// [`FaultEvent::RouterCrash`] wipes the node's state and a later
    /// recovery rebuilds it through the same factory.
    pub fn new(
        topo: Topology,
        mut make: impl FnMut(NodeId, &Topology, &RoutingTables) -> R + Send + 'static,
    ) -> Self {
        let routes = RoutingTables::compute(&topo);
        let routers = topo.nodes().map(|v| make(v, &topo, &routes)).collect();
        let n = topo.node_count();
        Engine {
            topo,
            routes,
            routers,
            make: Box::new(make),
            queue: EventQueue::new(),
            now: 0,
            stats: SimStats::default(),
            transport: Transport::new(n),
            started: false,
            event_limit: 50_000_000,
            events_processed: 0,
            peak_queue: 0,
            tele: Telemetry::new(),
        }
    }

    /// Enable the finite link-capacity model (default: infinite
    /// bandwidth, zero queueing).
    pub fn set_capacity(&mut self, model: CapacityModel) {
        self.transport.set_capacity(model);
    }

    /// Install a channel impairment model (default: perfect channels).
    pub fn set_channel(&mut self, model: ChannelModel) {
        self.transport.set_channel(model);
    }

    /// Enable event tracing into a bounded in-memory ring (disabled by
    /// default). This is the compatibility shim over [`Engine::set_sink`]:
    /// it installs a [`RingSink`] large enough for every debugging-scale
    /// scenario, and [`Engine::trace`] projects its events back onto the
    /// legacy [`TraceRecord`] vocabulary.
    pub fn enable_trace(&mut self) {
        self.set_sink(Box::new(RingSink::new(1 << 20)));
    }

    /// Install a telemetry sink. The sink's enable flag is cached, so a
    /// [`scmp_telemetry::NullSink`] keeps the hot path at one branch per
    /// would-be event.
    pub fn set_sink(&mut self, sink: Box<dyn Sink + Send>) {
        self.tele.set_sink(sink);
    }

    /// Sample the engine gauges (queue depth, down links/nodes,
    /// cumulative deliveries) every `interval` ticks; `0` disables.
    pub fn set_gauge_interval(&mut self, interval: SimTime) {
        self.tele.set_gauge_interval(interval);
    }

    /// The gauge time series sampled so far.
    pub fn gauges(&self) -> &[GaugeSample] {
        self.tele.gauges()
    }

    /// The tree-health samples recorded so far (empty unless a sink is
    /// enabled — health probes are gated on telemetry being on).
    pub fn health_events(&self) -> &[Event] {
        self.tele.health()
    }

    /// The sink's in-memory event snapshot (empty for the default
    /// [`scmp_telemetry::NullSink`] and for streaming sinks, whose
    /// events already left the process).
    pub fn events(&self) -> Vec<Event> {
        self.tele.snapshot_events()
    }

    /// Flush the telemetry sink (streaming sinks buffer).
    pub fn flush_telemetry(&mut self) {
        self.tele.flush();
    }

    /// The recorded trace in the legacy vocabulary (empty when tracing
    /// is disabled). Telemetry-only event kinds are omitted.
    pub fn trace(&self) -> Vec<TraceRecord> {
        self.tele
            .snapshot_events()
            .iter()
            .filter_map(legacy_record)
            .collect()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology being simulated.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Collected statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Read a router's protocol state (for assertions and reporting).
    pub fn router(&self, node: NodeId) -> &R {
        &self.routers[node.index()]
    }

    /// True while `node` is in service (not crashed / marked down).
    /// [`Engine::router`] still answers for a down node — a crash wipes
    /// its state to factory-fresh, which for a configured m-router
    /// *claims the role* — so post-run probes (the stress oracle's
    /// split-brain check among them) must filter on liveness.
    pub fn node_is_up(&self, node: NodeId) -> bool {
        self.transport.node_up(node)
    }

    /// Override the runaway-protection event limit (default 50M).
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Deepest the event queue has been, sampled once per dispatched
    /// event (the hot-path benchmark's memory-pressure proxy).
    pub fn peak_queue_depth(&self) -> usize {
        self.peak_queue
    }

    /// Inject an application event at absolute time `time`.
    pub fn schedule_app(&mut self, time: SimTime, node: NodeId, ev: AppEvent) {
        assert!(time >= self.now, "cannot schedule in the past");
        self.queue.push(time, node, EventKind::App(ev));
    }

    /// Mark a node up/down. Packets, timers and app events addressed to a
    /// down node are discarded when they fire. The unicast routing
    /// tables reconverge immediately (modelling the domain's link-state
    /// IGP reacting to the failure).
    pub fn set_node_down(&mut self, node: NodeId, down: bool) {
        self.transport.set_node_down(node, down);
        self.reconverge_routes();
    }

    /// True while any node or link is out of service — the failure
    /// window for the during-failure overhead counters.
    pub fn degraded(&self) -> bool {
        self.transport.degraded()
    }

    /// Schedule a fault at absolute time `time`. Faults share the event
    /// queue with packets and timers, so a seeded scenario replays
    /// identically. Link faults must name an existing link.
    pub fn schedule_fault(&mut self, time: SimTime, fault: FaultEvent) {
        assert!(time >= self.now, "cannot schedule in the past");
        match fault {
            FaultEvent::LinkDown { a, b } | FaultEvent::LinkUp { a, b } => {
                assert!(self.topo.has_link(a, b), "no such link {a:?}-{b:?}");
            }
            FaultEvent::RouterCrash { node } | FaultEvent::RouterRecover { node } => {
                assert!(
                    node.index() < self.topo.node_count(),
                    "no such node {node:?}"
                );
            }
        }
        self.queue
            .push(time, fault.primary_node(), EventKind::Fault(fault));
    }

    /// Schedule every fault of a [`FaultPlan`], expanding correlated
    /// fault families (partition, regional outage, flap storm) into
    /// their primitive link events first.
    ///
    /// # Panics
    /// If the plan does not validate against the engine's topology; call
    /// [`FaultPlan::validate`] first for a `Result`.
    pub fn schedule_fault_plan(&mut self, plan: &FaultPlan) {
        let specs = plan
            .expand(&self.topo)
            .expect("fault plan invalid for this topology");
        for spec in &specs {
            self.schedule_fault(spec.time, spec.to_event());
        }
    }

    /// Apply a fault that fired: flip liveness, reconverge the IGP, and
    /// cold-restart crashed routers. Recovery re-runs `on_start` on the
    /// rebuilt state machine.
    fn apply_fault(&mut self, fault: FaultEvent) {
        if fault.is_failure() {
            self.stats.note_fault(self.now);
        }
        match fault {
            FaultEvent::LinkDown { a, b } => self.set_link_down(a, b, true),
            FaultEvent::LinkUp { a, b } => self.set_link_down(a, b, false),
            FaultEvent::RouterCrash { node } => {
                // Wipe the protocol state now; the node stays down (all
                // events addressed to it are discarded) until recovery.
                self.routers[node.index()] = (self.make)(node, &self.topo, &self.routes);
                self.set_node_down(node, true);
            }
            FaultEvent::RouterRecover { node } => {
                self.set_node_down(node, false);
                let degraded = self.transport.degraded();
                let mut ctx = Ctx {
                    now: self.now,
                    node,
                    topo: &self.topo,
                    routes: &self.routes,
                    queue: &mut self.queue,
                    stats: &mut self.stats,
                    transport: &mut self.transport,
                    tele: &mut self.tele,
                    degraded,
                };
                self.routers[node.index()].on_start(&mut ctx);
            }
        }
    }

    /// Mark a link up/down (both directions); the unicast routing tables
    /// reconverge immediately.
    pub fn set_link_down(&mut self, a: NodeId, b: NodeId, down: bool) {
        assert!(self.topo.has_link(a, b), "no such link {a:?}-{b:?}");
        self.transport.set_link_down(a, b, down);
        self.reconverge_routes();
    }

    /// Recompute the unicast next-hop tables over the surviving links.
    fn reconverge_routes(&mut self) {
        use scmp_net::graph::TopologyBuilder;
        let mut b = TopologyBuilder::new(self.topo.node_count());
        for &(a, bb, w) in self.topo.edges() {
            if self.transport.link_alive(a, bb) {
                b.add_link(a, bb, w);
            }
        }
        self.routes = RoutingTables::compute(&b.build());
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let degraded = self.transport.degraded();
        for i in 0..self.routers.len() {
            let node = NodeId(i as u32);
            let mut ctx = Ctx {
                now: self.now,
                node,
                topo: &self.topo,
                routes: &self.routes,
                queue: &mut self.queue,
                stats: &mut self.stats,
                transport: &mut self.transport,
                tele: &mut self.tele,
                degraded,
            };
            self.routers[i].on_start(&mut ctx);
        }
    }

    /// Run until the queue drains or the next event is later than
    /// `deadline`. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.start_if_needed();
        let _batch = TimedScope::new(Span::DispatchBatch);
        let mut processed = 0;
        while let Some(top) = self.queue.peek_time() {
            if top > deadline {
                break;
            }
            self.peak_queue = self.peak_queue.max(self.queue.len());
            let (time, node, kind) = self.queue.pop().expect("peeked");
            debug_assert!(time >= self.now, "time went backwards");
            self.now = time;
            self.events_processed += 1;
            processed += 1;
            assert!(
                self.events_processed <= self.event_limit,
                "event limit exceeded: protocol livelock?"
            );
            self.tele.maybe_sample(
                self.now,
                self.queue.len(),
                &self.transport,
                self.stats.distinct_deliveries() as u64,
            );
            // Faults are infrastructure events: they fire regardless of
            // the target's liveness (a crashed node can still recover).
            if let EventKind::Fault(fault) = kind {
                if self.tele.on() {
                    self.tele.emit(self.now, node, fault_event_kind(&fault));
                }
                self.apply_fault(fault);
                continue;
            }
            if !self.transport.node_up(node) {
                if let EventKind::Deliver { pkt, .. } = &kind {
                    self.stats.drops += 1;
                    if self.tele.on() {
                        self.tele.emit(
                            self.now,
                            node,
                            TeleKind::Drop {
                                reason: DropReason::DeadNode,
                                to: None,
                                group: Some(pkt.group.0),
                                tag: Some(pkt.tag),
                            },
                        );
                    }
                }
                continue;
            }
            // A corrupted arrival fails the receiver's checksum: counted
            // and traced as a drop, never dispatched to the protocol.
            if let EventKind::Deliver {
                corrupted: true,
                ref pkt,
                ..
            } = kind
            {
                self.stats.drops += 1;
                self.stats.channel_corrupted += 1;
                if self.tele.on() {
                    self.tele.emit(
                        self.now,
                        node,
                        TeleKind::Drop {
                            reason: DropReason::Corrupt,
                            to: None,
                            group: Some(pkt.group.0),
                            tag: Some(pkt.tag),
                        },
                    );
                }
                continue;
            }
            if self.tele.on() {
                let tk = match &kind {
                    EventKind::Deliver { from, pkt, .. } => TeleKind::Deliver {
                        from: from.0,
                        class: match pkt.class {
                            PacketClass::Data => TrafficClass::Data,
                            PacketClass::Control => TrafficClass::Control,
                        },
                        group: pkt.group.0,
                        tag: pkt.tag,
                        ctl: R::classify(&pkt.body),
                    },
                    EventKind::Timer { token } => TeleKind::Timer { token: *token },
                    EventKind::App(AppEvent::Join(g)) => TeleKind::Join { group: g.0 },
                    EventKind::App(AppEvent::Leave(g)) => TeleKind::Leave { group: g.0 },
                    EventKind::App(AppEvent::Send { group, tag }) => TeleKind::Send {
                        group: group.0,
                        tag: *tag,
                    },
                    EventKind::Fault(_) => unreachable!("handled above"),
                };
                self.tele.emit(self.now, node, tk);
            }
            let degraded = self.transport.degraded();
            let mut ctx = Ctx {
                now: self.now,
                node,
                topo: &self.topo,
                routes: &self.routes,
                queue: &mut self.queue,
                stats: &mut self.stats,
                transport: &mut self.transport,
                tele: &mut self.tele,
                degraded,
            };
            match kind {
                EventKind::Deliver { from, pkt, .. } => {
                    self.routers[node.index()].on_packet(from, pkt, &mut ctx)
                }
                EventKind::Timer { token } => self.routers[node.index()].on_timer(token, &mut ctx),
                EventKind::App(app) => self.routers[node.index()].on_app(app, &mut ctx),
                EventKind::Fault(_) => unreachable!("handled above"),
            }
        }
        processed
    }

    /// Run until the event queue is completely drained.
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }
}
