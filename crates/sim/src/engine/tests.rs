//! Engine-level behaviour tests: flooding, unicast, faults, capacity,
//! tracing and determinism, driven through the public API.

use super::*;
use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::packet::{GroupId, Packet, PacketClass};
use scmp_net::graph::LinkWeight;
use scmp_net::topology::regular::line;
use scmp_net::NodeId;

/// A toy protocol: floods data to all neighbours except the one it
/// came from; delivers locally everywhere; answers a Join app event
/// by unicasting a control packet to node 0.
struct Flood {
    me: NodeId,
    seen: std::collections::HashSet<u64>,
}

#[derive(Clone, Debug)]
enum Msg {
    Payload,
    Hello,
}

impl Router for Flood {
    type Msg = Msg;

    fn on_packet(&mut self, from: NodeId, pkt: Packet<Msg>, ctx: &mut Ctx<'_, Msg>) {
        match pkt.body {
            Msg::Payload => {
                if !self.seen.insert(pkt.tag) {
                    ctx.drop_packet();
                    return;
                }
                ctx.deliver_local(&pkt);
                let neighbors: Vec<NodeId> =
                    ctx.topo().neighbors(self.me).iter().map(|e| e.to).collect();
                for n in neighbors {
                    if n != from {
                        ctx.send(n, pkt.clone());
                    }
                }
            }
            Msg::Hello => {}
        }
    }

    fn on_app(&mut self, ev: AppEvent, ctx: &mut Ctx<'_, Msg>) {
        match ev {
            AppEvent::Send { group, tag } => {
                self.seen.insert(tag);
                let pkt = Packet::data(group, tag, ctx.now(), Msg::Payload);
                ctx.deliver_local(&pkt);
                let neighbors: Vec<NodeId> =
                    ctx.topo().neighbors(self.me).iter().map(|e| e.to).collect();
                for n in neighbors {
                    ctx.send(n, pkt.clone());
                }
            }
            AppEvent::Join(g) => {
                ctx.unicast(NodeId(0), Packet::control(g, Msg::Hello));
            }
            AppEvent::Leave(_) => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, Msg>) {
        // Re-flood with a tag derived from the token.
        self.on_app(
            AppEvent::Send {
                group: GroupId(0),
                tag: token,
            },
            ctx,
        );
    }
}

fn engine(n: usize) -> Engine<Flood> {
    let topo = line(n, LinkWeight::new(2, 3));
    Engine::new(topo, |me, _, _| Flood {
        me,
        seen: Default::default(),
    })
}

#[test]
fn flood_reaches_everyone_once() {
    let mut e = engine(5);
    e.schedule_app(
        0,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(1),
            tag: 42,
        },
    );
    e.run_to_quiescence();
    for v in 0..5u32 {
        assert_eq!(e.stats().delivery_count(GroupId(1), 42, NodeId(v)), 1);
    }
    assert!(!e.stats().has_duplicate_deliveries());
    // Line of 4 links, delay 2 each: farthest delivery at delay 8.
    assert_eq!(e.stats().max_end_to_end_delay, 8);
    // 4 data hops each costing 3.
    assert_eq!(e.stats().data_overhead, 12);
    assert_eq!(e.stats().protocol_overhead, 0);
}

#[test]
fn unicast_charges_full_path() {
    let mut e = engine(4);
    e.schedule_app(5, NodeId(3), AppEvent::Join(GroupId(1)));
    e.run_to_quiescence();
    // 3 hops at cost 3 = 9 units of protocol overhead.
    assert_eq!(e.stats().protocol_overhead, 9);
    assert_eq!(e.stats().control_hops, 3);
    assert_eq!(e.stats().data_overhead, 0);
}

#[test]
fn dead_link_drops_flood() {
    let mut e = engine(5);
    e.set_link_down(NodeId(2), NodeId(3), true);
    e.schedule_app(
        0,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(1),
            tag: 1,
        },
    );
    e.run_to_quiescence();
    assert_eq!(e.stats().delivery_count(GroupId(1), 1, NodeId(2)), 1);
    assert_eq!(e.stats().delivery_count(GroupId(1), 1, NodeId(3)), 0);
    assert!(e.stats().drops > 0);
}

#[test]
fn dead_node_swallows_deliveries() {
    let mut e = engine(5);
    e.set_node_down(NodeId(2), true);
    e.schedule_app(
        0,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(1),
            tag: 1,
        },
    );
    e.run_to_quiescence();
    assert_eq!(e.stats().delivery_count(GroupId(1), 1, NodeId(1)), 1);
    assert_eq!(e.stats().delivery_count(GroupId(1), 1, NodeId(4)), 0);
}

#[test]
fn node_recovery_allows_later_traffic() {
    let mut e = engine(3);
    e.set_node_down(NodeId(1), true);
    e.schedule_app(
        0,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(1),
            tag: 1,
        },
    );
    e.run_until(100);
    assert_eq!(e.stats().delivery_count(GroupId(1), 1, NodeId(2)), 0);
    e.set_node_down(NodeId(1), false);
    e.schedule_app(
        200,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(1),
            tag: 2,
        },
    );
    e.run_to_quiescence();
    assert_eq!(e.stats().delivery_count(GroupId(1), 2, NodeId(2)), 1);
}

#[test]
fn timers_fire_in_order() {
    let mut e = engine(2);
    // Two app events at the same time keep injection order (seq).
    e.schedule_app(
        10,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(0),
            tag: 1,
        },
    );
    e.schedule_app(
        10,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(0),
            tag: 2,
        },
    );
    let processed = e.run_until(9);
    assert_eq!(processed, 0);
    e.run_to_quiescence();
    assert_eq!(e.stats().delivery_count(GroupId(0), 1, NodeId(1)), 1);
    assert_eq!(e.stats().delivery_count(GroupId(0), 2, NodeId(1)), 1);
}

#[test]
fn run_until_respects_deadline() {
    let mut e = engine(5);
    e.schedule_app(
        100,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(0),
            tag: 9,
        },
    );
    e.run_until(99);
    assert_eq!(e.stats().distinct_deliveries(), 0);
    e.run_until(101);
    // Send processed at 100; first-hop deliveries at 102 still queued.
    assert_eq!(e.stats().delivery_count(GroupId(0), 9, NodeId(0)), 1);
    assert_eq!(e.stats().delivery_count(GroupId(0), 9, NodeId(1)), 0);
    e.run_to_quiescence();
    assert_eq!(e.stats().delivery_count(GroupId(0), 9, NodeId(4)), 1);
}

#[test]
#[cfg_attr(debug_assertions, should_panic(expected = "not a neighbour"))]
fn send_to_non_neighbor_asserts_in_debug() {
    struct Bad;
    #[derive(Clone, Debug)]
    struct M;
    impl Router for Bad {
        type Msg = M;
        fn on_packet(&mut self, _: NodeId, _: Packet<M>, _: &mut Ctx<'_, M>) {}
        fn on_app(&mut self, _: AppEvent, ctx: &mut Ctx<'_, M>) {
            ctx.send(NodeId(3), Packet::control(GroupId(0), M));
        }
    }
    let topo = line(4, LinkWeight::new(1, 1));
    let mut e: Engine<Bad> = Engine::new(topo, |_, _, _| Bad);
    e.enable_trace();
    e.schedule_app(0, NodeId(0), AppEvent::Leave(GroupId(0)));
    e.run_to_quiescence();
    // Release builds reach here: the bad send is a counted, traced drop.
    assert_eq!(e.stats().drops, 1);
    assert!(e
        .trace()
        .iter()
        .any(|r| r.kind == TraceKind::NonNeighbourDrop { to: NodeId(3) }));
}

#[test]
fn capacity_serialises_back_to_back_sends() {
    // Two packets on the same link: the second waits for the first's
    // transmission (tx = 10), so its delivery is 10 ticks later.
    let mut e = engine(2);
    e.set_capacity(CapacityModel::uniform(10, 100));
    e.schedule_app(
        0,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(0),
            tag: 1,
        },
    );
    e.schedule_app(
        0,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(0),
            tag: 2,
        },
    );
    e.run_to_quiescence();
    // Link delay 2, tx 10: first arrives at 12, second at 22.
    assert_eq!(e.stats().delivery_delay(GroupId(0), 1, NodeId(1)), Some(12));
    assert_eq!(e.stats().delivery_delay(GroupId(0), 2, NodeId(1)), Some(22));
    assert_eq!(e.stats().max_queueing_delay, 10);
    assert_eq!(e.stats().queue_drops, 0);
}

#[test]
fn capacity_queue_overflow_drops() {
    let mut e = engine(2);
    e.set_capacity(CapacityModel::uniform(10, 2)); // 2 queue slots
    for tag in 0..10 {
        e.schedule_app(
            0,
            NodeId(0),
            AppEvent::Send {
                group: GroupId(0),
                tag,
            },
        );
    }
    e.run_to_quiescence();
    assert!(e.stats().queue_drops > 0, "overloaded link must drop");
    let delivered = (0..10)
        .filter(|&t| e.stats().delivery_count(GroupId(0), t, NodeId(1)) == 1)
        .count();
    assert!(delivered < 10);
    assert!(delivered >= 3, "head of queue still flows: {delivered}");
}

#[test]
fn node_tx_override_speeds_up_sender() {
    let mut slow = engine(2);
    slow.set_capacity(CapacityModel::uniform(50, 100));
    let mut fast = engine(2);
    fast.set_capacity(CapacityModel::uniform(50, 100).with_node_tx(NodeId(0), 1));
    for e in [&mut slow, &mut fast] {
        for tag in 0..5 {
            e.schedule_app(
                0,
                NodeId(0),
                AppEvent::Send {
                    group: GroupId(0),
                    tag,
                },
            );
        }
        e.run_to_quiescence();
    }
    assert!(
        fast.stats().max_end_to_end_delay < slow.stats().max_end_to_end_delay,
        "fast {} vs slow {}",
        fast.stats().max_end_to_end_delay,
        slow.stats().max_end_to_end_delay
    );
}

#[test]
fn no_capacity_means_no_queueing() {
    let mut e = engine(2);
    for tag in 0..50 {
        e.schedule_app(
            0,
            NodeId(0),
            AppEvent::Send {
                group: GroupId(0),
                tag,
            },
        );
    }
    e.run_to_quiescence();
    assert_eq!(e.stats().queueing_delay_total, 0);
    assert_eq!(e.stats().queue_drops, 0);
    assert_eq!(e.stats().max_end_to_end_delay, 2);
}

#[test]
fn trace_records_dispatches() {
    let mut e = engine(3);
    e.enable_trace();
    e.schedule_app(
        5,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(2),
            tag: 7,
        },
    );
    e.run_to_quiescence();
    let trace = e.trace();
    assert!(!trace.is_empty());
    assert_eq!(trace[0].time, 5);
    assert_eq!(trace[0].node, NodeId(0));
    assert!(matches!(
        trace[0].kind,
        TraceKind::App(AppEvent::Send { .. })
    ));
    // Flood deliveries appear with class/group/tag metadata.
    assert!(trace.iter().any(|r| matches!(
        r.kind,
        TraceKind::Deliver {
            class: PacketClass::Data,
            group: GroupId(2),
            tag: 7,
            ..
        }
    )));
}

#[test]
fn trace_disabled_by_default() {
    let mut e = engine(2);
    e.schedule_app(
        0,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(0),
            tag: 1,
        },
    );
    e.run_to_quiescence();
    assert!(e.trace().is_empty());
}

#[test]
#[should_panic(expected = "event limit")]
fn event_limit_catches_livelock() {
    // A protocol that reschedules itself forever.
    struct Loopy;
    #[derive(Clone, Debug)]
    struct M;
    impl Router for Loopy {
        type Msg = M;
        fn on_packet(&mut self, _: NodeId, _: Packet<M>, _: &mut Ctx<'_, M>) {}
        fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, M>) {
            ctx.set_timer(1, token);
        }
        fn on_app(&mut self, _: AppEvent, ctx: &mut Ctx<'_, M>) {
            ctx.set_timer(1, 0);
        }
    }
    let topo = line(2, LinkWeight::new(1, 1));
    let mut e: Engine<Loopy> = Engine::new(topo, |_, _, _| Loopy);
    e.set_event_limit(1000);
    e.schedule_app(0, NodeId(0), AppEvent::Leave(GroupId(0)));
    e.run_to_quiescence();
}

#[test]
fn scheduled_link_faults_cut_and_restore() {
    let mut e = engine(5);
    e.schedule_fault(
        50,
        FaultEvent::LinkDown {
            a: NodeId(2),
            b: NodeId(3),
        },
    );
    e.schedule_fault(
        300,
        FaultEvent::LinkUp {
            a: NodeId(3),
            b: NodeId(2), // endpoint order must not matter
        },
    );
    // Before the cut: full line reachable.
    e.schedule_app(
        0,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(1),
            tag: 1,
        },
    );
    // During the cut: flood stops at node 2.
    e.schedule_app(
        100,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(1),
            tag: 2,
        },
    );
    // After restoration: full line reachable again.
    e.schedule_app(
        400,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(1),
            tag: 3,
        },
    );
    e.run_to_quiescence();
    assert_eq!(e.stats().delivery_count(GroupId(1), 1, NodeId(4)), 1);
    assert_eq!(e.stats().delivery_count(GroupId(1), 2, NodeId(2)), 1);
    assert_eq!(e.stats().delivery_count(GroupId(1), 2, NodeId(3)), 0);
    assert_eq!(e.stats().delivery_count(GroupId(1), 3, NodeId(4)), 1);
    // Only the LinkDown counts as a failure.
    assert_eq!(e.stats().faults_injected, 1);
    assert_eq!(e.stats().last_fault_at, Some(50));
    assert!(!e.degraded());
}

#[test]
fn router_crash_wipes_protocol_state() {
    // Flood dedups on `seen`; a crash must cold-restart that state,
    // so a post-recovery replay of the same tag is accepted again.
    let mut e = engine(3);
    e.schedule_app(
        0,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(1),
            tag: 7,
        },
    );
    e.schedule_fault(100, FaultEvent::RouterCrash { node: NodeId(1) });
    e.schedule_fault(200, FaultEvent::RouterRecover { node: NodeId(1) });
    e.schedule_app(
        300,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(1),
            tag: 7, // same tag — a survivor would dedup it
        },
    );
    e.run_to_quiescence();
    // Node 1 delivered tag 7 twice (fresh `seen` after the crash);
    // node 2 kept its state and deduped the replay.
    assert_eq!(e.stats().delivery_count(GroupId(1), 7, NodeId(1)), 2);
    assert_eq!(e.stats().delivery_count(GroupId(1), 7, NodeId(2)), 1);
    assert_eq!(e.stats().faults_injected, 1);
}

#[test]
fn crash_window_swallows_traffic() {
    let mut e = engine(3);
    e.schedule_fault(10, FaultEvent::RouterCrash { node: NodeId(1) });
    e.schedule_app(
        20,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(1),
            tag: 1,
        },
    );
    e.schedule_fault(100, FaultEvent::RouterRecover { node: NodeId(1) });
    e.schedule_app(
        200,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(1),
            tag: 2,
        },
    );
    e.run_to_quiescence();
    // During the crash nothing passes node 1; afterwards it flows.
    assert_eq!(e.stats().delivery_count(GroupId(1), 1, NodeId(2)), 0);
    assert_eq!(e.stats().delivery_count(GroupId(1), 2, NodeId(2)), 1);
}

#[test]
fn degraded_window_charges_failure_overhead() {
    let mut e = engine(5);
    e.schedule_app(
        0,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(1),
            tag: 1,
        },
    );
    // Cut an edge-of-line link so most of the flood still flows.
    e.schedule_fault(
        50,
        FaultEvent::LinkDown {
            a: NodeId(3),
            b: NodeId(4),
        },
    );
    e.schedule_app(
        100,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(1),
            tag: 2,
        },
    );
    e.schedule_fault(
        300,
        FaultEvent::LinkUp {
            a: NodeId(3),
            b: NodeId(4),
        },
    );
    e.schedule_app(
        400,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(1),
            tag: 3,
        },
    );
    e.run_to_quiescence();
    // Healthy sends cross 4 links at cost 3 each; the degraded send
    // crosses the surviving 3. Only the latter lands in the
    // during-failure bucket.
    assert_eq!(e.stats().data_overhead, 12 + 9 + 12);
    assert_eq!(e.stats().data_overhead_during_failure, 9);
    assert_eq!(e.stats().control_overhead_during_failure, 0);
}

#[test]
fn fault_plan_schedules_and_traces() {
    let plan = FaultPlan::new()
        .at(50, FaultKind::LinkDown { a: 1, b: 2 })
        .at(150, FaultKind::LinkUp { a: 1, b: 2 });
    let mut e = engine(3);
    e.enable_trace();
    e.schedule_fault_plan(&plan);
    e.schedule_app(
        100,
        NodeId(0),
        AppEvent::Send {
            group: GroupId(1),
            tag: 1,
        },
    );
    e.run_to_quiescence();
    assert_eq!(e.stats().delivery_count(GroupId(1), 1, NodeId(2)), 0);
    let faults: Vec<_> = e
        .trace()
        .iter()
        .filter_map(|r| match r.kind {
            TraceKind::Fault(f) => Some((r.time, f)),
            _ => None,
        })
        .collect();
    assert_eq!(faults.len(), 2);
    assert_eq!(faults[0].0, 50);
    assert!(matches!(faults[0].1, FaultEvent::LinkDown { .. }));
    assert_eq!(faults[1].0, 150);
}

#[test]
fn fault_runs_are_deterministic() {
    let run = || {
        let mut e = engine(5);
        e.enable_trace();
        let plan = FaultPlan::new()
            .at(40, FaultKind::RouterCrash { node: 2 })
            .at(90, FaultKind::RouterRecover { node: 2 })
            .at(120, FaultKind::LinkDown { a: 0, b: 1 })
            .at(180, FaultKind::LinkUp { a: 0, b: 1 });
        e.schedule_fault_plan(&plan);
        for tag in 0..6 {
            e.schedule_app(
                tag * 35,
                NodeId(0),
                AppEvent::Send {
                    group: GroupId(1),
                    tag,
                },
            );
        }
        e.run_to_quiescence();
        let trace: Vec<String> = e
            .trace()
            .iter()
            .map(|r| format!("{} n{} {:?}", r.time, r.node.0, r.kind))
            .collect();
        (trace, e.stats().clone())
    };
    let (t1, s1) = run();
    let (t2, s2) = run();
    assert_eq!(t1, t2, "same plan + same seed must replay bit-for-bit");
    assert_eq!(s1.data_overhead, s2.data_overhead);
    assert_eq!(s1.drops, s2.drops);
    assert_eq!(s1.faults_injected, s2.faults_injected);
    assert!(!t1.is_empty());
}

#[test]
#[should_panic(expected = "no such link")]
fn fault_on_missing_link_panics() {
    let mut e = engine(3);
    e.schedule_fault(
        10,
        FaultEvent::LinkDown {
            a: NodeId(0),
            b: NodeId(2), // line(3) has no 0-2 link
        },
    );
}

#[test]
fn surviving_topology_reflects_faults() {
    struct Probe;
    #[derive(Clone, Debug)]
    struct M;
    impl Router for Probe {
        type Msg = M;
        fn on_packet(&mut self, _: NodeId, _: Packet<M>, _: &mut Ctx<'_, M>) {}
        fn on_app(&mut self, _: AppEvent, ctx: &mut Ctx<'_, M>) {
            let surv = ctx.surviving_topology();
            // Node 2 crashed, link 0-1 cut: only 3-4 remains.
            assert_eq!(surv.edge_count(), 1);
            assert!(surv.has_link(NodeId(3), NodeId(4)));
            assert!(!ctx.node_up(NodeId(2)));
            assert!(!ctx.link_up(NodeId(0), NodeId(1)));
        }
    }
    let topo = line(5, LinkWeight::new(1, 1));
    let mut e: Engine<Probe> = Engine::new(topo, |_, _, _| Probe);
    e.schedule_fault(5, FaultEvent::RouterCrash { node: NodeId(2) });
    e.schedule_fault(
        5,
        FaultEvent::LinkDown {
            a: NodeId(0),
            b: NodeId(1),
        },
    );
    e.schedule_app(10, NodeId(0), AppEvent::Leave(GroupId(0)));
    e.run_to_quiescence();
    assert!(e.degraded());
}

#[test]
fn erased_runner_drives_like_the_concrete_engine() {
    let mut concrete = engine(5);
    let mut erased: Box<dyn EngineRunner> = Box::new(engine(5));
    for e in [&mut concrete as &mut dyn EngineRunner, erased.as_mut()] {
        e.schedule_app(
            0,
            NodeId(0),
            AppEvent::Send {
                group: GroupId(1),
                tag: 1,
            },
        );
        e.run_to_quiescence();
    }
    assert_eq!(concrete.stats().data_overhead, erased.stats().data_overhead);
    assert_eq!(concrete.stats().distinct_deliveries(), 5);
    assert_eq!(erased.stats().distinct_deliveries(), 5);
}
