//! The discrete-event engine, layered into focused modules:
//!
//! * [`queue`] — the arena-backed event queue: the binary heap orders
//!   small `(time, seq, slot)` keys while packet payloads wait in a
//!   free-list arena.
//! * [`transport`] — link liveness and the finite-capacity FIFO-server
//!   model ([`CapacityModel`]), unit-testable without an engine.
//! * [`ctx`] — [`Ctx`], the per-dispatch handle protocols use to send,
//!   unicast, arm timers and record deliveries.
//! * [`core`] — [`Engine`] itself: event loop, fault application, IGP
//!   reconvergence, tracing.
//! * [`runner`] — [`EngineRunner`], the object-safe erasure of
//!   `Engine<R>` used by the protocol registry and scenario drivers.
//! * `telemetry` — the engine's seam to `scmp-telemetry`: the owned
//!   event [`scmp_telemetry::Sink`] plus the periodic gauge sampler.
//!
//! This module keeps the shared vocabulary: simulation time, the
//! [`Router`] trait, application events and trace records.

pub mod core;
pub mod ctx;
pub mod queue;
pub mod runner;
pub(crate) mod telemetry;
pub mod transport;

#[cfg(test)]
mod tests;

pub use core::Engine;
pub use ctx::Ctx;
pub use runner::EngineRunner;
pub use transport::{CapacityModel, LinkSlot, Transport};

use crate::fault::FaultEvent;
use crate::packet::PacketClass;
use scmp_net::NodeId;
use std::fmt;

/// Simulation time in abstract ticks (the same unit as link delays).
pub type SimTime = u64;

/// One record of the (optional) event trace — enough to reconstruct the
/// protocol conversation without holding message bodies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event fired.
    pub time: SimTime,
    /// The router that handled it.
    pub node: NodeId,
    /// What happened.
    pub kind: TraceKind,
}

/// Kind of traced event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A packet was handed to the router.
    Deliver {
        /// Sender (neighbour or tunnel tail).
        from: NodeId,
        /// Overhead class.
        class: PacketClass,
        /// Group the packet belongs to.
        group: crate::packet::GroupId,
        /// Data tag (0 for control).
        tag: u64,
    },
    /// A timer fired.
    Timer {
        /// Protocol-defined token.
        token: u64,
    },
    /// A host/subnet event was injected.
    App(AppEvent),
    /// A scheduled fault fired (link cut/restore, router crash/recover).
    Fault(FaultEvent),
    /// A send to a router that is not (or no longer) a neighbour was
    /// dropped — a repair scan racing a topology change.
    NonNeighbourDrop {
        /// The intended next hop.
        to: NodeId,
    },
}

/// Scenario-injected application events: what the attached hosts/subnets
/// ask their designated router to do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AppEvent {
    /// A host on this router's subnet joined `group` (the IGMP report
    /// already aggregated — see `scmp-core::igmp` for the host-level
    /// model).
    Join(crate::packet::GroupId),
    /// The last host on this router's subnet left `group`.
    Leave(crate::packet::GroupId),
    /// A local host sends one data payload (`tag`) to `group`.
    Send {
        group: crate::packet::GroupId,
        tag: u64,
    },
}

/// A protocol state machine running on one router.
///
/// One value of the implementing type exists per node; the engine owns
/// them all and dispatches events. `Msg` is the protocol's wire-message
/// enum.
pub trait Router {
    /// Protocol message body carried by [`crate::packet::Packet`].
    type Msg: Clone + fmt::Debug;

    /// Classify a message body for telemetry: which control verb (or
    /// data variant) it carries. The engine stamps the result on
    /// [`scmp_telemetry::EventKind::Deliver`] events so the inspector
    /// can reconstruct control causality chains. The default (`None`)
    /// keeps protocols that don't care fully working.
    fn classify(_msg: &Self::Msg) -> Option<scmp_telemetry::CtlKind> {
        None
    }

    /// Called once before the first event fires.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// A packet arrived from neighbour (or tunnel tail) `from`.
    fn on_packet(
        &mut self,
        from: NodeId,
        pkt: crate::packet::Packet<Self::Msg>,
        ctx: &mut Ctx<'_, Self::Msg>,
    );

    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = (token, ctx);
    }

    /// An application event occurred on this router's subnet.
    fn on_app(&mut self, ev: AppEvent, ctx: &mut Ctx<'_, Self::Msg>);
}
