//! Object-safe erasure of [`Engine`]: drive any protocol's engine
//! through one vtable.
//!
//! `Engine<R>` is generic over the protocol, so heterogeneous scenario
//! drivers (the bench harness, the protocol registry) cannot hold a
//! collection of them directly. [`EngineRunner`] erases the protocol
//! type behind the driving surface every experiment uses: scheduling,
//! capacity, tracing, running and statistics. Protocol-specific state
//! inspection stays on the concrete `Engine<R>`.

use super::core::Engine;
use super::transport::CapacityModel;
use super::{AppEvent, Router, SimTime, TraceRecord};
use crate::channel::ChannelModel;
use crate::fault::{FaultEvent, FaultPlan};
use crate::stats::SimStats;
use scmp_net::{NodeId, Topology};
use scmp_telemetry::{Event, GaugeSample, Sink};

/// The protocol-agnostic driving surface of an [`Engine`].
pub trait EngineRunner {
    /// Inject an application event at absolute time `time`.
    fn schedule_app(&mut self, time: SimTime, node: NodeId, ev: AppEvent);
    /// Schedule a single fault.
    fn schedule_fault(&mut self, time: SimTime, fault: FaultEvent);
    /// Schedule every fault of a plan.
    fn schedule_fault_plan(&mut self, plan: &FaultPlan);
    /// Enable the finite link-capacity model.
    fn set_capacity(&mut self, model: CapacityModel);
    /// Install a channel impairment model.
    fn set_channel(&mut self, model: ChannelModel);
    /// Override the runaway-protection event limit.
    fn set_event_limit(&mut self, limit: u64);
    /// Enable event tracing into the default bounded in-memory ring.
    fn enable_trace(&mut self);
    /// Install a telemetry sink.
    fn set_sink(&mut self, sink: Box<dyn Sink + Send>);
    /// Sample engine gauges every `interval` ticks (`0` disables).
    fn set_gauge_interval(&mut self, interval: SimTime);
    /// The gauge time series sampled so far.
    fn gauges(&self) -> &[GaugeSample];
    /// The sink's in-memory event snapshot.
    fn events(&self) -> Vec<Event>;
    /// Flush the telemetry sink.
    fn flush_telemetry(&mut self);
    /// The recorded trace in the legacy vocabulary (empty when tracing
    /// is disabled).
    fn trace(&self) -> Vec<TraceRecord>;
    /// Current simulation time.
    fn now(&self) -> SimTime;
    /// The topology being simulated.
    fn topo(&self) -> &Topology;
    /// Collected statistics.
    fn stats(&self) -> &SimStats;
    /// Deepest the event queue has been.
    fn peak_queue_depth(&self) -> usize;
    /// Run until the queue drains or the next event is past `deadline`.
    fn run_until(&mut self, deadline: SimTime) -> u64;
    /// Run until the event queue is completely drained.
    fn run_to_quiescence(&mut self) -> u64;
}

impl<R: Router> EngineRunner for Engine<R> {
    fn schedule_app(&mut self, time: SimTime, node: NodeId, ev: AppEvent) {
        Engine::schedule_app(self, time, node, ev);
    }
    fn schedule_fault(&mut self, time: SimTime, fault: FaultEvent) {
        Engine::schedule_fault(self, time, fault);
    }
    fn schedule_fault_plan(&mut self, plan: &FaultPlan) {
        Engine::schedule_fault_plan(self, plan);
    }
    fn set_capacity(&mut self, model: CapacityModel) {
        Engine::set_capacity(self, model);
    }
    fn set_channel(&mut self, model: ChannelModel) {
        Engine::set_channel(self, model);
    }
    fn set_event_limit(&mut self, limit: u64) {
        Engine::set_event_limit(self, limit);
    }
    fn enable_trace(&mut self) {
        Engine::enable_trace(self);
    }
    fn set_sink(&mut self, sink: Box<dyn Sink + Send>) {
        Engine::set_sink(self, sink);
    }
    fn set_gauge_interval(&mut self, interval: SimTime) {
        Engine::set_gauge_interval(self, interval);
    }
    fn gauges(&self) -> &[GaugeSample] {
        Engine::gauges(self)
    }
    fn events(&self) -> Vec<Event> {
        Engine::events(self)
    }
    fn flush_telemetry(&mut self) {
        Engine::flush_telemetry(self);
    }
    fn trace(&self) -> Vec<TraceRecord> {
        Engine::trace(self)
    }
    fn now(&self) -> SimTime {
        Engine::now(self)
    }
    fn topo(&self) -> &Topology {
        Engine::topo(self)
    }
    fn stats(&self) -> &SimStats {
        Engine::stats(self)
    }
    fn peak_queue_depth(&self) -> usize {
        Engine::peak_queue_depth(self)
    }
    fn run_until(&mut self, deadline: SimTime) -> u64 {
        Engine::run_until(self, deadline)
    }
    fn run_to_quiescence(&mut self) -> u64 {
        Engine::run_to_quiescence(self)
    }
}
