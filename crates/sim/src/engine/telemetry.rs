//! The engine's telemetry seam: one owned [`Sink`] plus the periodic
//! gauge sampler.
//!
//! The engine (and every [`Ctx`](super::Ctx)) goes through this struct
//! to emit structured events. `enabled` caches [`Sink::enabled`] at
//! install time, so with the default [`NullSink`] the hot path pays one
//! predictable branch per would-be event and never constructs an
//! [`Event`].

use super::transport::Transport;
use super::SimTime;
use scmp_net::NodeId;
use scmp_telemetry::{Event, EventKind, GaugeSample, NullSink, Sink};

/// The engine's telemetry state: sink, cached enable flag, gauge
/// sampling schedule and the collected gauge series.
pub(super) struct Telemetry {
    sink: Box<dyn Sink + Send>,
    enabled: bool,
    gauge_interval: Option<SimTime>,
    next_sample: SimTime,
    gauges: Vec<GaugeSample>,
    health: Vec<Event>,
}

impl Telemetry {
    /// Disabled telemetry (the default): a [`NullSink`].
    pub(super) fn new() -> Self {
        Telemetry {
            sink: Box::new(NullSink),
            enabled: false,
            gauge_interval: None,
            next_sample: 0,
            gauges: Vec::new(),
            health: Vec::new(),
        }
    }

    /// Install a sink, caching its enable flag.
    pub(super) fn set_sink(&mut self, sink: Box<dyn Sink + Send>) {
        self.enabled = sink.enabled();
        self.sink = sink;
    }

    /// Whether event emission is worth the construction cost.
    #[inline]
    pub(super) fn on(&self) -> bool {
        self.enabled
    }

    /// Emit one event (callers check [`Telemetry::on`] first so disabled
    /// runs never construct the kind).
    pub(super) fn emit(&mut self, time: SimTime, node: NodeId, kind: EventKind) {
        self.sink.record(&Event {
            time,
            node: node.0,
            kind,
        });
    }

    /// Enable periodic gauge sampling every `interval` ticks (`0`
    /// disables).
    pub(super) fn set_gauge_interval(&mut self, interval: SimTime) {
        if interval == 0 {
            self.gauge_interval = None;
        } else {
            self.gauge_interval = Some(interval);
            self.next_sample = interval;
        }
    }

    /// Take a gauge sample if the schedule says one is due at `now`.
    /// Samples are kept in-memory and, when the sink is enabled, also
    /// emitted as [`EventKind::Gauge`] events.
    pub(super) fn maybe_sample(
        &mut self,
        now: SimTime,
        queue_depth: usize,
        transport: &Transport,
        deliveries: u64,
    ) {
        let Some(interval) = self.gauge_interval else {
            return;
        };
        if now < self.next_sample {
            return;
        }
        let sample = GaugeSample {
            time: now,
            queue_depth: queue_depth as u64,
            down_links: transport.down_link_count() as u64,
            down_nodes: transport.down_node_count() as u64,
            deliveries,
        };
        self.gauges.push(sample);
        if self.enabled {
            self.sink.record(&sample.to_event());
        }
        self.next_sample = now + interval;
    }

    /// The gauge series sampled so far.
    pub(super) fn gauges(&self) -> &[GaugeSample] {
        &self.gauges
    }

    /// Record one tree-health sample: kept in the in-memory registry and
    /// forwarded to the sink when enabled. Callers gate the (non-trivial)
    /// metric computation on [`Telemetry::on`], so disabled runs never
    /// reach here.
    pub(super) fn record_health(&mut self, time: SimTime, node: NodeId, kind: EventKind) {
        let ev = Event {
            time,
            node: node.0,
            kind,
        };
        if self.enabled {
            self.sink.record(&ev);
        }
        self.health.push(ev);
    }

    /// The tree-health samples recorded so far.
    pub(super) fn health(&self) -> &[Event] {
        &self.health
    }

    /// Flush the sink (streaming sinks buffer).
    pub(super) fn flush(&mut self) {
        self.sink.flush();
    }

    /// The sink's in-memory snapshot (empty for streaming sinks).
    pub(super) fn snapshot_events(&self) -> Vec<Event> {
        self.sink.snapshot()
    }
}
