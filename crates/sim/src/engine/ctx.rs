//! The per-dispatch context handed to [`Router`](super::Router)
//! callbacks: the only way protocols interact with the network.

use super::queue::{EventKind, EventQueue};
use super::telemetry::Telemetry;
use super::transport::Transport;
use super::SimTime;
use crate::packet::{GroupId, Packet, PacketClass, ORIGIN_UNSET};
use crate::stats::SimStats;
use scmp_net::{NodeId, RoutingTables, Topology};
use scmp_telemetry::{DropReason, EventKind as TeleKind, HealthTrigger};
use std::fmt;

/// The per-dispatch context handed to [`Router`](super::Router)
/// callbacks.
pub struct Ctx<'a, M> {
    pub(super) now: SimTime,
    pub(super) node: NodeId,
    pub(super) topo: &'a Topology,
    pub(super) routes: &'a RoutingTables,
    pub(super) queue: &'a mut EventQueue<M>,
    pub(super) stats: &'a mut SimStats,
    pub(super) transport: &'a mut Transport,
    pub(super) tele: &'a mut Telemetry,
    /// True while any link or node is down: overhead charged in this
    /// window also accumulates into the during-failure counters.
    pub(super) degraded: bool,
}

impl<'a, M: Clone + fmt::Debug> Ctx<'a, M> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The router being executed.
    pub fn me(&self) -> NodeId {
        self.node
    }

    /// The topology (read-only).
    pub fn topo(&self) -> &Topology {
        self.topo
    }

    /// The domain's unicast routing tables (read-only).
    pub fn routes(&self) -> &RoutingTables {
        self.routes
    }

    fn push(&mut self, time: SimTime, node: NodeId, kind: EventKind<M>) {
        self.queue.push(time, node, kind);
    }

    /// Is the link `a`–`b` (and both endpoints) currently in service?
    /// Models the domain's link-state IGP view, which every router —
    /// and in particular the m-router's repair scan — can consult.
    pub fn link_up(&self, a: NodeId, b: NodeId) -> bool {
        self.transport.link_alive(a, b)
    }

    /// Is router `v` currently in service (per the IGP view)?
    pub fn node_up(&self, v: NodeId) -> bool {
        self.transport.node_up(v)
    }

    /// The topology restricted to live nodes and links — what a repair
    /// algorithm should plan over. Node ids are preserved.
    pub fn surviving_topology(&self) -> Topology {
        self.topo.subtopology(
            |v| self.transport.node_up(v),
            |a, b| !self.transport.link_cut(a, b),
        )
    }

    /// Record a completed tree repair: the elapsed time since the most
    /// recent fault becomes a repair-latency sample.
    pub fn record_repair(&mut self) {
        let now = self.now;
        let latency = self.stats.record_repair(now);
        if self.tele.on() {
            if let Some(latency) = latency {
                self.tele
                    .emit(self.now, self.node, TeleKind::Repair { latency });
            }
        }
    }

    /// Record a control-plane retransmission (JOIN/LEAVE/TREE/BRANCH
    /// retry): counted in the stats and, when telemetry is on, emitted
    /// with the destination, attempt number, and the transaction's
    /// causal trace key (`tag`).
    pub fn record_retransmit(&mut self, group: u32, to: NodeId, attempt: u32, tag: u64) {
        self.stats.retransmissions += 1;
        if self.tele.on() {
            self.tele.emit(
                self.now,
                self.node,
                TeleKind::Retransmit {
                    group,
                    to: to.0,
                    attempt,
                    tag,
                },
            );
        }
    }

    /// Record a NACK originated by this router for `(group, origin,
    /// seq)`; `tag` is the payload's causal trace key.
    pub fn record_nack(&mut self, group: u32, origin: u32, seq: u64, tag: u64) {
        self.stats.nacks_sent += 1;
        if self.tele.on() {
            self.tele.emit(
                self.now,
                self.node,
                TeleKind::Nack {
                    group,
                    origin,
                    seq,
                    tag,
                },
            );
        }
    }

    /// Record a NACK absorbed by this router's pending-request table
    /// (duplicate-NACK suppression).
    pub fn record_nack_suppressed(&mut self, group: u32, origin: u32, seq: u64, tag: u64) {
        self.stats.nacks_suppressed += 1;
        if self.tele.on() {
            self.tele.emit(
                self.now,
                self.node,
                TeleKind::NackSuppress {
                    group,
                    origin,
                    seq,
                    tag,
                },
            );
        }
    }

    /// Record a NACK forwarded upstream after a repair-cache miss
    /// (stats only — the miss event already carries the key).
    pub fn record_nack_forwarded(&mut self) {
        self.stats.nacks_forwarded += 1;
    }

    /// Record a NACK answered from this router's repair cache.
    pub fn record_repair_hit(&mut self, group: u32, origin: u32, seq: u64, tag: u64) {
        self.stats.repair_cache_hits += 1;
        if self.tele.on() {
            self.tele.emit(
                self.now,
                self.node,
                TeleKind::RepairHit {
                    group,
                    origin,
                    seq,
                    tag,
                },
            );
        }
    }

    /// Record a NACK that missed this router's repair cache.
    pub fn record_repair_miss(&mut self, group: u32, origin: u32, seq: u64, tag: u64) {
        self.stats.repair_cache_misses += 1;
        if self.tele.on() {
            self.tele.emit(
                self.now,
                self.node,
                TeleKind::RepairMiss {
                    group,
                    origin,
                    seq,
                    tag,
                },
            );
        }
    }

    /// Record repair-cache entries evicted by the byte cap (stats only).
    pub fn record_cache_evictions(&mut self, n: u64) {
        self.stats.repair_cache_evictions += n;
    }

    /// Record a data gap closing at this receiver, `latency` ticks
    /// after the gap was first observed.
    pub fn record_recovery(&mut self, group: u32, origin: u32, seq: u64, tag: u64, latency: u64) {
        self.stats.record_recovery(latency);
        if self.tele.on() {
            self.tele.emit(
                self.now,
                self.node,
                TeleKind::Recovery {
                    group,
                    origin,
                    seq,
                    tag,
                    latency,
                },
            );
        }
    }

    /// Record a checksum-valid frame whose message kind this build does
    /// not implement: counted and telemetry-visible, never an error.
    pub fn drop_unknown_kind(&mut self) {
        self.stats.drops += 1;
        self.stats.unknown_kind_drops += 1;
        self.trace_drop(DropReason::UnknownKind, None, None);
    }

    /// Whether the installed telemetry sink is live — expensive
    /// observability probes (tree-health sampling) are gated on this so
    /// sink-off runs pay nothing.
    pub fn telemetry_on(&self) -> bool {
        self.tele.on()
    }

    /// Record a per-group tree-health sample (taken by the m-router
    /// after a tree build/repair): member count, max hop depth, total
    /// edge cost, mean delay stretch vs unicast (×1000), and
    /// inter-member delay variation (max − min, ticks). Stored in the
    /// engine's health registry and emitted as a telemetry event.
    #[allow(clippy::too_many_arguments)]
    pub fn record_tree_health(
        &mut self,
        group: GroupId,
        trigger: HealthTrigger,
        members: u32,
        depth: u32,
        cost: u64,
        stretch_milli: u64,
        delay_var: u64,
    ) {
        self.tele.record_health(
            self.now,
            self.node,
            TeleKind::TreeHealth {
                group: group.0,
                trigger,
                members,
                depth,
                cost,
                stretch_milli,
                delay_var,
            },
        );
    }

    /// Record a standby promotion to m-router (real or spurious — the
    /// chaos invariants distinguish them by whether the primary was up).
    pub fn record_takeover(&mut self) {
        self.stats.takeovers += 1;
        if self.tele.on() {
            self.tele.emit(self.now, self.node, TeleKind::Takeover);
        }
    }

    /// Record the m-router's repair scan *entering* partition-degraded
    /// mode: `stranded` nodes just became unreachable, `members` of
    /// them are logged group members awaiting readoption.
    pub fn record_partition(&mut self, stranded: u32, members: u32) {
        if self.tele.on() {
            self.tele.emit(
                self.now,
                self.node,
                TeleKind::Partition { stranded, members },
            );
        }
    }

    /// Record one repair-scan pass served while part of the domain was
    /// unreachable (the partition-degraded accounting of `SimStats`).
    pub fn record_partition_degraded_tick(&mut self) {
        self.stats.partition_degraded_ticks += 1;
    }

    /// Record previously unreachable nodes becoming reachable again
    /// (the partition healed from this router's vantage point).
    pub fn record_heal(&mut self, restored: u32) {
        if self.tele.on() {
            self.tele
                .emit(self.now, self.node, TeleKind::Heal { restored });
        }
    }

    /// Record a post-heal reconciliation for one group: `readopted`
    /// stranded members merged back under generation `epoch`.
    pub fn record_reconcile(&mut self, group: u32, readopted: u32, epoch: u64) {
        self.stats.reconciliations += 1;
        if self.tele.on() {
            self.tele.emit(
                self.now,
                self.node,
                TeleKind::Reconcile {
                    group,
                    readopted,
                    epoch,
                },
            );
        }
    }

    /// Emit a drop event with its reason and — when the drop point still
    /// had the packet in hand — its (group, tag) correlation key, so
    /// journeys can show where a packet died (telemetry-enabled runs
    /// only).
    fn trace_drop(&mut self, reason: DropReason, to: Option<NodeId>, key: Option<(u32, u64)>) {
        if self.tele.on() {
            self.tele.emit(
                self.now,
                self.node,
                TeleKind::Drop {
                    reason,
                    to: to.map(|n| n.0),
                    group: key.map(|(g, _)| g),
                    tag: key.map(|(_, t)| t),
                },
            );
        }
    }

    /// Send `pkt` to the directly-connected neighbour `to`. Charges the
    /// link cost against the packet's overhead class and delivers after
    /// the link delay. Dead links/nodes drop the packet.
    ///
    /// Sending to a router that is not a neighbour is a protocol bug in
    /// a static topology, but a repair scan can legitimately race a
    /// topology change — so release builds count and trace the drop
    /// instead of tearing the simulation down (debug builds still
    /// assert).
    pub fn send(&mut self, to: NodeId, mut pkt: Packet<M>) {
        if pkt.origin == ORIGIN_UNSET {
            pkt.origin = self.node;
        }
        let key = (pkt.group.0, pkt.tag);
        let Some(w) = self.topo.link(self.node, to) else {
            debug_assert!(false, "{:?} is not a neighbour of {:?}", to, self.node);
            self.stats.drops += 1;
            self.trace_drop(DropReason::NonNeighbour, Some(to), Some(key));
            return;
        };
        if !self.transport.link_alive(self.node, to) {
            self.stats.drops += 1;
            self.trace_drop(DropReason::DeadLink, None, Some(key));
            return;
        }
        let Some(depart) = self.reserve_link(self.node, to, self.now) else {
            // Queue overflow: the congestion loss of §I.
            self.stats.drops += 1;
            self.stats.queue_drops += 1;
            self.trace_drop(DropReason::QueueFull, None, Some(key));
            return;
        };
        self.charge(pkt.class, w.cost);
        // The channel rolls after the sender has paid for the
        // transmission: bandwidth is spent whether or not the wire
        // delivers.
        let roll = self.transport.channel_roll(self.node, to);
        if roll.drop {
            self.stats.drops += 1;
            self.stats.channel_dropped += 1;
            self.trace_drop(DropReason::ChannelLoss, Some(to), Some(key));
            return;
        }
        let t = depart + w.delay + self.note_jitter(roll.jitter, to, key);
        let dup = roll.duplicate.then(|| pkt.clone());
        self.push(
            t,
            to,
            EventKind::Deliver {
                from: self.node,
                corrupted: roll.corrupt,
                pkt,
            },
        );
        if let Some(pkt) = dup {
            self.note_duplicate(to, key);
            self.push(
                t,
                to,
                EventKind::Deliver {
                    from: self.node,
                    corrupted: roll.corrupt,
                    pkt,
                },
            );
        }
    }

    /// Account a nonzero reorder jitter; returns it for the arrival-time
    /// sum.
    fn note_jitter(&mut self, jitter: SimTime, to: NodeId, key: (u32, u64)) -> SimTime {
        if jitter > 0 {
            self.stats.channel_reordered += 1;
            if self.tele.on() {
                self.tele.emit(
                    self.now,
                    self.node,
                    TeleKind::ChannelReorder {
                        to: to.0,
                        jitter,
                        group: key.0,
                        tag: key.1,
                    },
                );
            }
        }
        jitter
    }

    /// Account a channel duplication (the copy is pushed by the caller).
    fn note_duplicate(&mut self, to: NodeId, key: (u32, u64)) {
        self.stats.channel_duplicated += 1;
        if self.tele.on() {
            self.tele.emit(
                self.now,
                self.node,
                TeleKind::ChannelDuplicate {
                    to: to.0,
                    group: key.0,
                    tag: key.1,
                },
            );
        }
    }

    /// Reserve the directed link `a -> b` through the transport and
    /// charge any queueing wait to the statistics. Returns the
    /// serialisation-complete time, or `None` when the queue is full.
    fn reserve_link(&mut self, a: NodeId, b: NodeId, ready: SimTime) -> Option<SimTime> {
        let slot = self.transport.reserve_link(a, b, ready)?;
        self.stats.record_queue_wait(slot.waited);
        Some(slot.depart)
    }

    /// Send `pkt` to an arbitrary router via the domain's unicast routing
    /// (hop-by-hop along shortest-delay paths, every hop charged). This
    /// models IP tunnelling: intermediate routers forward without the
    /// multicast protocol seeing the packet. The receiver observes
    /// `from` = the last hop on the path.
    ///
    /// The packet is dropped (and partially charged, like a real packet
    /// making it partway) if the path crosses a dead link or node.
    pub fn unicast(&mut self, dst: NodeId, mut pkt: Packet<M>) {
        if pkt.origin == ORIGIN_UNSET {
            pkt.origin = self.node;
        }
        let key = (pkt.group.0, pkt.tag);
        if dst == self.node {
            let t = self.now;
            self.push(
                t,
                dst,
                EventKind::Deliver {
                    from: self.node,
                    corrupted: false,
                    pkt,
                },
            );
            return;
        }
        let Some(route) = self.routes.route(self.node, dst) else {
            self.stats.drops += 1;
            self.trace_drop(DropReason::NoRoute, None, Some(key));
            return;
        };
        let mut at = self.now;
        // Channel impairments accumulate across the tunnel's hops: a
        // drop anywhere loses the packet (partially charged); corruption
        // and duplication stick to the final delivery (a mid-path copy
        // would fork the tunnel, which hop-by-hop forwarding without
        // protocol visibility cannot model — the copy's later hops go
        // uncharged, a documented approximation); jitter adds up.
        let mut corrupted = false;
        let mut duplicate = false;
        for hop in route.windows(2) {
            let (a, b) = (hop[0], hop[1]);
            if !self.transport.link_alive(a, b) {
                self.stats.drops += 1;
                self.trace_drop(DropReason::DeadLink, None, Some(key));
                return;
            }
            let Some(depart) = self.reserve_link(a, b, at) else {
                self.stats.drops += 1;
                self.stats.queue_drops += 1;
                self.trace_drop(DropReason::QueueFull, None, Some(key));
                return;
            };
            let w = self.topo.link(a, b).expect("route follows links");
            self.charge(pkt.class, w.cost);
            let roll = self.transport.channel_roll(a, b);
            if roll.drop {
                self.stats.drops += 1;
                self.stats.channel_dropped += 1;
                self.trace_drop(DropReason::ChannelLoss, Some(b), Some(key));
                return;
            }
            corrupted |= roll.corrupt;
            duplicate |= roll.duplicate;
            at = depart + w.delay + self.note_jitter(roll.jitter, b, key);
        }
        let from = route[route.len() - 2];
        let dup = duplicate.then(|| pkt.clone());
        self.push(
            at,
            dst,
            EventKind::Deliver {
                from,
                corrupted,
                pkt,
            },
        );
        if let Some(pkt) = dup {
            self.note_duplicate(dst, key);
            self.push(
                at,
                dst,
                EventKind::Deliver {
                    from,
                    corrupted,
                    pkt,
                },
            );
        }
    }

    /// Arm a timer that fires `delay` ticks from now with `token`.
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        let t = self.now + delay;
        let node = self.node;
        self.push(t, node, EventKind::Timer { token });
    }

    /// Record delivery of a data payload to the member hosts attached to
    /// this router (the end of the multicast path).
    pub fn deliver_local(&mut self, pkt: &Packet<M>) {
        debug_assert_eq!(
            pkt.class,
            PacketClass::Data,
            "only data is delivered to hosts"
        );
        let delay = self.now.saturating_sub(pkt.created_at);
        self.stats
            .record_delivery(pkt.group, pkt.tag, self.node, delay);
        if self.tele.on() {
            self.tele.emit(
                self.now,
                self.node,
                TeleKind::DeliverLocal {
                    group: pkt.group.0,
                    tag: pkt.tag,
                    delay,
                },
            );
        }
    }

    /// Record a protocol-decision drop (e.g. a packet arriving from a
    /// router outside the forwarding set, §III-F) with no correlation
    /// key. Prefer [`Ctx::drop_packet_keyed`] when the packet is still
    /// in hand.
    pub fn drop_packet(&mut self) {
        self.stats.drops += 1;
        self.trace_drop(DropReason::Protocol, None, None);
    }

    /// Record a protocol-decision drop of an identified packet, keeping
    /// its (group, tag) correlation key visible in journeys.
    pub fn drop_packet_keyed(&mut self, group: GroupId, tag: u64) {
        self.stats.drops += 1;
        self.trace_drop(DropReason::Protocol, None, Some((group.0, tag)));
    }

    fn charge(&mut self, class: PacketClass, cost: u64) {
        match class {
            PacketClass::Data => {
                self.stats.data_overhead += cost;
                self.stats.data_hops += 1;
                if self.degraded {
                    self.stats.data_overhead_during_failure += cost;
                }
            }
            PacketClass::Control => {
                self.stats.protocol_overhead += cost;
                self.stats.control_hops += 1;
                if self.degraded {
                    self.stats.control_overhead_during_failure += cost;
                }
            }
        }
    }
}
