//! Property-based tests for the discrete-event engine: conservation and
//! ordering invariants under random workloads, with and without the
//! capacity model.

use proptest::prelude::*;
use scmp_net::graph::LinkWeight;
use scmp_net::topology::regular::{line, ring};
use scmp_net::NodeId;
use scmp_sim::{AppEvent, CapacityModel, Ctx, Engine, GroupId, Packet, Router};

/// A relay protocol on a line: forwards data left-to-right only; every
/// node delivers locally. Simple enough that exact outcomes are
/// predictable.
struct Relay {
    me: NodeId,
    n: usize,
}

#[derive(Clone, Debug)]
struct M;

impl Router for Relay {
    type Msg = M;

    fn on_packet(&mut self, _from: NodeId, pkt: Packet<M>, ctx: &mut Ctx<'_, M>) {
        ctx.deliver_local(&pkt);
        let next = self.me.0 as usize + 1;
        if next < self.n {
            ctx.send(NodeId(next as u32), pkt);
        }
    }

    fn on_app(&mut self, ev: AppEvent, ctx: &mut Ctx<'_, M>) {
        if let AppEvent::Send { group, tag } = ev {
            let pkt = Packet::data(group, tag, ctx.now(), M);
            ctx.deliver_local(&pkt);
            let next = self.me.0 as usize + 1;
            if next < self.n {
                ctx.send(NodeId(next as u32), pkt);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Without capacities: every hop charges exactly the link cost, and
    /// delivery delay equals distance × link delay, independent of how
    /// many packets are in flight.
    #[test]
    fn overhead_and_delay_are_exact(
        n in 2usize..12,
        sends in prop::collection::vec((0u64..1000, 1u64..50), 1..20),
    ) {
        let delay = 7u64;
        let cost = 3u64;
        let topo = line(n, LinkWeight::new(delay, cost));
        let mut e = Engine::new(topo, |me, t, _| Relay { me, n: t.node_count() });
        let mut tags = std::collections::BTreeSet::new();
        for (t, tag) in &sends {
            if tags.insert(*tag) {
                e.schedule_app(*t, NodeId(0), AppEvent::Send { group: GroupId(1), tag: *tag });
            }
        }
        e.run_to_quiescence();
        let hops_per_packet = (n - 1) as u64;
        prop_assert_eq!(e.stats().data_hops, tags.len() as u64 * hops_per_packet);
        prop_assert_eq!(
            e.stats().data_overhead,
            tags.len() as u64 * hops_per_packet * cost
        );
        for &tag in &tags {
            for v in 0..n as u32 {
                prop_assert_eq!(
                    e.stats().delivery_delay(GroupId(1), tag, NodeId(v)),
                    Some(v as u64 * delay)
                );
            }
        }
    }

    /// With capacities: nothing is lost when the queue limit is high,
    /// and per-link FIFO order means delivery delays at the far end are
    /// non-decreasing in send order for same-time sends.
    #[test]
    fn capacity_preserves_packets_under_large_queues(
        n in 2usize..8,
        burst in 1u64..12,
        tx in 1u64..40,
    ) {
        let topo = line(n, LinkWeight::new(5, 1));
        let mut e = Engine::new(topo, |me, t, _| Relay { me, n: t.node_count() });
        e.set_capacity(CapacityModel::uniform(tx, 10_000));
        for tag in 1..=burst {
            e.schedule_app(0, NodeId(0), AppEvent::Send { group: GroupId(1), tag });
        }
        e.run_to_quiescence();
        prop_assert_eq!(e.stats().queue_drops, 0);
        let last = NodeId(n as u32 - 1);
        let mut prev = 0;
        for tag in 1..=burst {
            let d = e.stats().delivery_delay(GroupId(1), tag, last).expect("delivered");
            prop_assert!(d >= prev, "FIFO violated: tag {} at {} after {}", tag, d, prev);
            prev = d;
        }
    }

    /// Queue-limited links drop the excess and only the excess: the
    /// number of survivors at the far end matches the queue capacity
    /// model (limit + 1 in service + 1 entering) for a same-instant burst.
    #[test]
    fn queue_limit_bounds_survivors(limit in 0u64..6, burst in 1u64..20) {
        let topo = line(2, LinkWeight::new(5, 1));
        let mut e = Engine::new(topo, |me, t, _| Relay { me, n: t.node_count() });
        e.set_capacity(CapacityModel::uniform(10, limit));
        for tag in 1..=burst {
            e.schedule_app(0, NodeId(0), AppEvent::Send { group: GroupId(1), tag });
        }
        e.run_to_quiescence();
        let delivered = (1..=burst)
            .filter(|&t| e.stats().delivery_count(GroupId(1), t, NodeId(1)) == 1)
            .count() as u64;
        let cap = limit + 1; // one transmitting + queue_limit waiting
        prop_assert_eq!(delivered, burst.min(cap));
        prop_assert_eq!(e.stats().queue_drops, burst - delivered);
    }

    /// The correlated partition family's cut really partitions: for any
    /// seed, both sides are nonempty, they tile the node set, and with
    /// exactly the cut links removed no side-B node is reachable from
    /// side A — on the paper's Waxman graphs and the GT-ITM-style
    /// transit-stub-like flat random graphs alike.
    #[test]
    fn partition_cut_disconnects_the_sides(
        seed in 0u64..512,
        n in 8usize..40,
        use_waxman in any::<bool>(),
    ) {
        use scmp_net::metrics::reachable_set;
        use scmp_net::rng::rng_for;
        use scmp_net::topology::{gt_itm_flat, waxman, GtItmConfig, WaxmanConfig};
        use scmp_net::TopologyBuilder;
        use scmp_sim::partition_cut;

        let topo = if use_waxman {
            waxman(
                &WaxmanConfig { n, min_delay_one: true, ..WaxmanConfig::default() },
                &mut rng_for("prop-partition", seed),
            )
        } else {
            gt_itm_flat(
                &GtItmConfig { n, average_degree: 3.5, grid: 32_767 },
                &mut rng_for("prop-partition-gtitm", seed),
            )
        };
        let cut = partition_cut(&topo, seed).expect("n >= 2");
        prop_assert!(!cut.side_a.is_empty(), "side A empty");
        prop_assert!(!cut.side_b.is_empty(), "side B empty");
        prop_assert_eq!(cut.side_a.len() + cut.side_b.len(), topo.node_count());

        let down: std::collections::BTreeSet<(u32, u32)> = cut
            .cut
            .iter()
            .map(|&(a, b)| (a.0.min(b.0), a.0.max(b.0)))
            .collect();
        let mut b = TopologyBuilder::new(topo.node_count());
        for &(x, y, w) in topo.edges() {
            if !down.contains(&(x.0.min(y.0), x.0.max(y.0))) {
                b.add_link(x, y, w);
            }
        }
        let surviving = b.build();
        let reach = reachable_set(&surviving, cut.side_a[0]);
        for v in &cut.side_a {
            prop_assert!(reach[v.index()], "side A split by its own cut at n{}", v.0);
        }
        for v in &cut.side_b {
            prop_assert!(!reach[v.index()], "cut leaks: n{} still reachable", v.0);
        }
    }

    /// Ring flood with failure injection: dead links never deliver, the
    /// engine stays deterministic across repeated runs.
    #[test]
    fn failure_injection_deterministic(n in 3usize..10, cut in 0usize..10) {
        let run = || {
            let topo = ring(n, LinkWeight::new(2, 2));
            let mut e = Engine::new(topo, |me, t, _| Relay { me, n: t.node_count() });
            let a = NodeId((cut % n) as u32);
            let b = NodeId(((cut + 1) % n) as u32);
            e.set_link_down(a, b, true);
            e.schedule_app(0, NodeId(0), AppEvent::Send { group: GroupId(1), tag: 1 });
            e.run_to_quiescence();
            (e.stats().data_overhead, e.stats().distinct_deliveries(), e.stats().drops)
        };
        prop_assert_eq!(run(), run());
    }
}
