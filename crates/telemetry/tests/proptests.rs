//! Property-based tests for the telemetry primitives: the histogram's
//! quantile contract under hostile `q`, sum saturation, merge algebra,
//! variance accumulation, the JSONL string codec under arbitrary
//! content, and the causal trace-key packing.

use proptest::prelude::*;
use scmp_telemetry::{
    bucket_index, encode_json_string, pack_ctl_tag, unpack_ctl_tag, CtlKind, Event, EventKind,
    Histogram, TraceKey, TrafficClass,
};

/// Build a histogram from a sample vector.
fn hist_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Map an arbitrary pair into an interesting `q`, covering NaN,
/// infinities, negatives, zero, in-range fractions and >1 overshoot.
fn hostile_q(selector: u8, frac: f64) -> f64 {
    match selector % 8 {
        0 => f64::NAN,
        1 => f64::NEG_INFINITY,
        2 => -frac,
        3 => 0.0,
        4 => frac, // (0,1)
        5 => 1.0,
        6 => 1.0 + frac, // overshoot
        _ => f64::INFINITY,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `quantile` never panics, never exceeds the observed maximum, and
    /// always lands on a bucket bound at or above the smallest sample's
    /// bucket — whatever `q` is.
    #[test]
    fn quantile_is_total_and_bounded(
        samples in prop::collection::vec(0u64..1_000_000_000, 1..64),
        selector in 0u8..8,
        frac in 0.0001f64..0.9999,
    ) {
        let h = hist_of(&samples);
        let q = hostile_q(selector, frac);
        let v = h.quantile(q);
        prop_assert!(v <= h.max(), "quantile {v} above max {} for q={q}", h.max());
        let lo = *samples.iter().min().unwrap();
        // Rank 1 resolves to the smallest sample's bucket: the estimate
        // can never fall below that bucket's lower bound.
        prop_assert!(
            bucket_index(v) >= bucket_index(lo) || v == h.max(),
            "quantile {v} below the smallest sample {lo} for q={q}"
        );
    }

    /// Quantiles are monotone in `q`, including across the hostile
    /// boundary values (NaN and q<=0 pin to the low end, q>=1 to max).
    #[test]
    fn quantile_is_monotone_in_q(
        samples in prop::collection::vec(0u64..1_000_000_000, 1..64),
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
    ) {
        let h = hist_of(&samples);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi));
        prop_assert!(h.quantile(f64::NAN) <= h.quantile(hi));
        prop_assert!(h.quantile(-1.0) <= h.quantile(lo.max(1e-12)));
        prop_assert_eq!(h.quantile(2.0), h.max());
    }

    /// `sum` saturates instead of wrapping: it equals the true sum when
    /// that fits in u64, and pins to `u64::MAX` when it doesn't (so the
    /// documented mean under-report is the worst that can happen).
    #[test]
    fn sum_saturates_exactly(
        samples in prop::collection::vec(0u64..=u64::MAX, 1..16),
    ) {
        let h = hist_of(&samples);
        let true_sum = samples.iter().fold(0u128, |acc, &v| acc + v as u128);
        if true_sum <= u64::MAX as u128 {
            prop_assert_eq!(h.sum(), true_sum as u64);
        } else {
            prop_assert_eq!(h.sum(), u64::MAX);
            prop_assert!(h.mean() <= h.max() as f64);
        }
    }

    /// Merging two histograms equals recording every sample into one,
    /// and quantiles of the merge stay within the combined range.
    #[test]
    fn merge_matches_recording_all(
        xs in prop::collection::vec(0u64..1_000_000, 0..32),
        ys in prop::collection::vec(0u64..1_000_000, 0..32),
    ) {
        let mut a = hist_of(&xs);
        let b = hist_of(&ys);
        let mut all = Vec::new();
        all.extend_from_slice(&xs);
        all.extend_from_slice(&ys);
        let direct = hist_of(&all);
        a.merge(&b);
        prop_assert_eq!(&a, &direct);
        for q in [0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(a.quantile(q), direct.quantile(q));
        }
    }

    /// Trace keys are injective per (group, origin, seq): two distinct
    /// triples never pack to the same (group, tag) pair, and every
    /// packed tag lands in the control space, disjoint from data tags.
    #[test]
    fn trace_keys_are_unique_per_triple(
        a in (0u32..1_000_000, 0u32..0x7fff_ffff, 0u32..=u32::MAX),
        b in (0u32..1_000_000, 0u32..0x7fff_ffff, 0u32..=u32::MAX),
        data_tag in 0u64..(1u64 << 63),
    ) {
        let ka = TraceKey::new(a.0, a.1, a.2);
        let kb = TraceKey::new(b.0, b.1, b.2);
        prop_assert_eq!((ka.group, ka.tag()) == (kb.group, kb.tag()), a == b);
        prop_assert_eq!(unpack_ctl_tag(ka.tag()), Some((a.1, a.2)));
        prop_assert_ne!(ka.tag(), data_tag, "control tags never collide with data tags");
        prop_assert_eq!(TraceKey::from_tag(a.0, ka.tag()), Some(ka));
    }

    /// A stamped event survives the JSONL codec round trip: the packed
    /// control tag comes back bit-for-bit and unpacks to the same key.
    #[test]
    fn trace_keys_survive_the_jsonl_codec(
        group in 0u32..1_000_000,
        origin in 0u32..0x7fff_ffff,
        seq in 0u32..=u32::MAX,
        time in 0u64..u64::MAX,
        from in 0u32..=u32::MAX,
    ) {
        let tag = pack_ctl_tag(origin, seq);
        let ev = Event {
            time,
            node: origin,
            kind: EventKind::Deliver {
                from,
                class: TrafficClass::Control,
                group,
                tag,
                ctl: Some(CtlKind::Join),
            },
        };
        let back = Event::decode(&ev.to_jsonl())
            .map_err(TestCaseError::fail)?;
        prop_assert_eq!(back, ev);
        match back.kind {
            EventKind::Deliver { tag: t, .. } => {
                prop_assert_eq!(unpack_ctl_tag(t), Some((origin, seq)));
            }
            _ => prop_assert!(false, "kind changed in round trip"),
        }
    }

    /// The histogram's variance matches the two-pass textbook formula
    /// within float tolerance, and never goes negative.
    #[test]
    fn variance_matches_naive_computation(
        samples in prop::collection::vec(0u64..10_000_000, 1..64),
    ) {
        let h = hist_of(&samples);
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&v| v as f64).sum::<f64>() / n;
        let naive = samples
            .iter()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        let tol = 1e-6 * naive.max(1.0);
        prop_assert!((h.variance() - naive).abs() <= tol,
            "variance {} vs naive {naive}", h.variance());
        prop_assert!(h.variance() >= 0.0);
        prop_assert!((h.stddev() - naive.sqrt()).abs() <= tol.sqrt());
    }

    /// Variance accumulation saturates instead of wrapping or panicking
    /// under adversarial magnitudes, and merge adds the accumulators.
    #[test]
    fn variance_is_total_under_extremes(
        xs in prop::collection::vec(0u64..=u64::MAX, 1..8),
        ys in prop::collection::vec(0u64..=u64::MAX, 1..8),
    ) {
        let mut a = hist_of(&xs);
        let b = hist_of(&ys);
        prop_assert!(a.variance().is_finite() && a.variance() >= 0.0);
        a.merge(&b);
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        prop_assert_eq!(&a, &hist_of(&all));
        prop_assert!(a.stddev().is_finite());
    }

    /// Arbitrary strings round-trip through the JSON string codec.
    /// (The vendored proptest has no `Arbitrary for String`; build one
    /// from raw codepoints, skipping the surrogate gap.)
    #[test]
    fn json_string_codec_round_trips(
        points in prop::collection::vec(0u32..0x11_0000, 0..64),
    ) {
        let s: String = points
            .iter()
            .filter_map(|&p| char::from_u32(p))
            .collect();
        let mut doc = String::from("{\"label\":");
        encode_json_string(&s, &mut doc);
        doc.push('}');
        prop_assert!(!doc[1..doc.len() - 1].contains('\n'));
        let v: serde_json::Value = serde_json::from_str(&doc)
            .map_err(|e| TestCaseError::fail(format!("{doc:?}: {e}")))?;
        let obj = v.as_object().expect("object");
        match &obj[0].1 {
            serde_json::Value::Str(back) => prop_assert_eq!(back, &s),
            other => prop_assert!(false, "expected string, got {:?}", other),
        }
    }
}
