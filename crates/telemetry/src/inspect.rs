//! Trace inspection: load a JSONL trace and answer questions about it.
//!
//! [`Trace`] wraps a decoded event stream and derives the views the
//! `scmp-inspect` CLI exposes: per-group convergence timelines, per-node
//! event filters, recomputed latency histograms, causal packet
//! journeys keyed by the (group, origin, seq) trace keys, per-group
//! tree-health summaries, and a delivery audit that flags duplicate,
//! phantom, or unexplained-missing deliveries.

use crate::event::{decode_events, encode_events, CtlKind, Event, EventKind};
use crate::hist::Histogram;
use crate::series::GaugeSample;
use crate::trace_key::{is_ctl_tag, TraceKey};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// A decoded trace, events in recorded (time) order.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<Event>,
}

/// Histograms recomputed purely from trace events.
#[derive(Clone, Debug, Default)]
pub struct TraceHistograms {
    /// End-to-end delay of each distinct local delivery.
    pub e2e_delay: Histogram,
    /// Latency of each completed tree repair.
    pub repair: Histogram,
}

/// The fate of one multicast send within a group's timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvergencePoint {
    /// Payload tag of the send.
    pub tag: u64,
    /// When and where it was injected.
    pub sent_at: u64,
    /// The injecting node.
    pub source: u32,
    /// Group members at send time (sorted).
    pub members_at_send: Vec<u32>,
    /// Distinct `(node, time)` local deliveries for this tag (sorted by
    /// node).
    pub delivered: Vec<(u32, u64)>,
    /// Time the last expected member delivered, when all of them did.
    pub converged_at: Option<u64>,
}

/// A group's convergence timeline: one point per send, in send order.
#[derive(Clone, Debug, Default)]
pub struct Convergence {
    /// The group inspected.
    pub group: u32,
    /// One entry per send to the group.
    pub points: Vec<ConvergencePoint>,
}

/// The delivery audit over a whole trace.
#[derive(Clone, Debug, Default)]
pub struct Audit {
    /// Sends observed.
    pub sends: u64,
    /// Distinct local deliveries observed.
    pub deliveries: u64,
    /// `(group, tag, node)` delivered more than once — always a failure.
    pub duplicates: Vec<(u32, u64, u32)>,
    /// Drop counts by reason label.
    pub drops: BTreeMap<&'static str, u64>,
    /// Fault events (link down/up, crash, recover) observed.
    pub faults: u64,
    /// `(group, tag, node)` expected at send time but never delivered.
    pub missing: Vec<(u32, u64, u32)>,
    /// Missing deliveries with no drop and no fault anywhere in the
    /// trace to explain them — always a failure.
    pub unaccounted: Vec<(u32, u64, u32)>,
    /// `(group, tag, node)` delivered locally without any preceding send
    /// of that payload — always a failure (a trace that conjures data).
    pub phantom: Vec<(u32, u64, u32)>,
    /// Events whose timestamp ran backwards relative to the previous
    /// event — always a failure (the engine emits in dispatch order).
    pub disordered: u64,
}

impl Audit {
    /// True when the trace shows none of the hard violation classes:
    /// duplicate delivery, unexplained-missing delivery, phantom
    /// delivery, or out-of-order timestamps. Every one of these sets the
    /// `scmp-inspect --audit` exit code.
    pub fn passed(&self) -> bool {
        self.duplicates.is_empty()
            && self.unaccounted.is_empty()
            && self.phantom.is_empty()
            && self.disordered == 0
    }

    /// Human-readable audit report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "audit: sends={} deliveries={} faults={} verdict={}",
            self.sends,
            self.deliveries,
            self.faults,
            if self.passed() { "PASS" } else { "FAIL" }
        );
        for (reason, n) in &self.drops {
            let _ = writeln!(out, "  drop[{reason}] = {n}");
        }
        for &(g, t, n) in &self.duplicates {
            let _ = writeln!(out, "  DUPLICATE delivery: group {g} tag {t} node {n}");
        }
        for &(g, t, n) in &self.phantom {
            let _ = writeln!(out, "  PHANTOM delivery: group {g} tag {t} node {n}");
        }
        if self.disordered > 0 {
            let _ = writeln!(out, "  DISORDERED timestamps: {} events", self.disordered);
        }
        for &(g, t, n) in &self.missing {
            let explained = !self.unaccounted.contains(&(g, t, n));
            let _ = writeln!(
                out,
                "  missing delivery: group {g} tag {t} node {n}{}",
                if explained {
                    " (explained by drops/faults)"
                } else {
                    " UNACCOUNTED"
                }
            );
        }
        out
    }
}

/// One packet's — or one control transaction's — reconstructed journey:
/// every event in the trace stamped with the same (group, tag)
/// correlation key, in dispatch order.
#[derive(Clone, Debug)]
pub struct Journey {
    /// The group inspected.
    pub group: u32,
    /// The correlation tag: a data payload tag, or a packed control tag.
    pub tag: u64,
    /// The decoded (group, origin, seq) key for control transactions,
    /// `None` for data journeys.
    pub key: Option<TraceKey>,
    /// Every stamped event, in trace order: sends, per-hop delivers
    /// (with their control kind), local deliveries, keyed drops,
    /// retransmissions, channel duplicates/reorders.
    pub steps: Vec<Event>,
    /// For control transactions: the origin node's first data delivery
    /// at or after the transaction started — the JOIN → … → first
    /// delivery closure.
    pub first_delivery: Option<Event>,
}

impl Journey {
    /// True when the trace holds no event with this key.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The rendered step label for one event (dispatch metadata only).
    fn step_label(kind: &EventKind) -> String {
        match *kind {
            EventKind::Send { .. } => "send".to_string(),
            EventKind::Deliver {
                from, class, ctl, ..
            } => {
                let what = match ctl {
                    Some(c) => c.label(),
                    None => class.label(),
                };
                format!("deliver from n{from} [{what}]")
            }
            EventKind::DeliverLocal { delay, .. } => format!("deliver_local (+{delay})"),
            EventKind::Drop { reason, to, .. } => match to {
                Some(to) => format!("DROP [{}] -> n{to}", reason.label()),
                None => format!("DROP [{}]", reason.label()),
            },
            EventKind::Retransmit { to, attempt, .. } => {
                format!("retransmit -> n{to} (attempt {attempt})")
            }
            EventKind::ChannelDuplicate { to, .. } => format!("channel duplicate -> n{to}"),
            EventKind::ChannelReorder { to, jitter, .. } => {
                format!("channel reorder -> n{to} (+{jitter})")
            }
            EventKind::Nack { origin, seq, .. } => format!("NACK origin n{origin} seq {seq}"),
            EventKind::NackSuppress { origin, seq, .. } => {
                format!("nack suppressed (origin n{origin} seq {seq})")
            }
            EventKind::RepairHit { origin, seq, .. } => {
                format!("repair cache HIT (origin n{origin} seq {seq})")
            }
            EventKind::RepairMiss { origin, seq, .. } => {
                format!("repair cache miss (origin n{origin} seq {seq})")
            }
            EventKind::Recovery { seq, latency, .. } => {
                format!("gap recovered seq {seq} (+{latency})")
            }
            _ => "?".to_string(),
        }
    }

    /// The compressed causality chain: each step's one-word stage, with
    /// consecutive repeats collapsed (`join -> branch -> tree_ack ->
    /// delivered`).
    pub fn chain(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for ev in &self.steps {
            let stage = match ev.kind {
                EventKind::Send { .. } => "send",
                EventKind::Deliver { class, ctl, .. } => match ctl {
                    Some(c) => c.label(),
                    None => class.label(),
                },
                EventKind::DeliverLocal { .. } => "delivered",
                EventKind::Drop { .. } => "drop",
                EventKind::Retransmit { .. } => "retransmit",
                EventKind::ChannelDuplicate { .. } => "dup",
                EventKind::ChannelReorder { .. } => "reorder",
                EventKind::Nack { .. } => "nack",
                EventKind::NackSuppress { .. } => "nack_suppress",
                EventKind::RepairHit { .. } => "repair_hit",
                EventKind::RepairMiss { .. } => "repair_miss",
                EventKind::Recovery { .. } => "recovered",
                _ => continue,
            };
            if out.last() != Some(&stage) {
                out.push(stage);
            }
        }
        if self.first_delivery.is_some() {
            out.push("first_delivery");
        }
        out
    }

    /// Deterministic human-readable timeline, byte-stable for goldens.
    pub fn report(&self) -> String {
        let mut out = String::new();
        match self.key {
            Some(k) => {
                let _ = writeln!(out, "journey {k} (control txn, origin n{}):", k.origin);
            }
            None => {
                let _ = writeln!(out, "journey g{} tag {} (data):", self.group, self.tag);
            }
        }
        if self.steps.is_empty() {
            let _ = writeln!(out, "  (no events with this key)");
            return out;
        }
        for ev in &self.steps {
            let _ = writeln!(
                out,
                "  t={:<8} n{:<4} {}",
                ev.time,
                ev.node,
                Journey::step_label(&ev.kind)
            );
        }
        let _ = writeln!(out, "  chain: {}", self.chain().join(" -> "));
        let (mut drops, mut retx, mut locals, mut hops) = (0u64, 0u64, 0u64, 0u64);
        for ev in &self.steps {
            match ev.kind {
                EventKind::Deliver { .. } => hops += 1,
                EventKind::DeliverLocal { .. } => locals += 1,
                EventKind::Drop { .. } => drops += 1,
                EventKind::Retransmit { .. } => retx += 1,
                _ => {}
            }
        }
        let _ = writeln!(
            out,
            "  summary: {hops} hops, {locals} local deliveries, {drops} drops, {retx} retransmits"
        );
        if let Some(fd) = self.first_delivery {
            if let EventKind::DeliverLocal { tag, delay, .. } = fd.kind {
                let _ = writeln!(
                    out,
                    "  first data at origin: t={} tag {tag} (+{delay})",
                    fd.time
                );
            }
        }
        out
    }
}

impl Trace {
    /// Wrap an already-decoded event stream.
    pub fn from_events(events: Vec<Event>) -> Trace {
        Trace { events }
    }

    /// Decode a JSONL document.
    pub fn parse(jsonl: &str) -> Result<Trace, String> {
        Ok(Trace {
            events: decode_events(jsonl)?,
        })
    }

    /// The raw events, in recorded order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Re-encode as JSONL.
    pub fn to_jsonl(&self) -> String {
        encode_events(&self.events)
    }

    /// Distinct groups mentioned anywhere, sorted.
    pub fn groups(&self) -> Vec<u32> {
        let mut set = BTreeSet::new();
        for ev in &self.events {
            match ev.kind {
                EventKind::Join { group }
                | EventKind::Leave { group }
                | EventKind::Send { group, .. }
                | EventKind::Deliver { group, .. }
                | EventKind::DeliverLocal { group, .. } => {
                    set.insert(group);
                }
                _ => {}
            }
        }
        set.into_iter().collect()
    }

    /// Events that fired at `node` (gauge samples excluded — their node
    /// id is not meaningful).
    pub fn node_events(&self, node: u32) -> Vec<Event> {
        self.events
            .iter()
            .filter(|ev| ev.node == node && !matches!(ev.kind, EventKind::Gauge { .. }))
            .copied()
            .collect()
    }

    /// The gauge time series embedded in the trace.
    pub fn gauges(&self) -> Vec<GaugeSample> {
        self.events
            .iter()
            .filter_map(GaugeSample::from_event)
            .collect()
    }

    /// Every distinct correlation tag stamped on `group`'s events,
    /// sorted — data tags first (small integers), then packed control
    /// tags (high bit set).
    pub fn journey_tags(&self, group: u32) -> Vec<u64> {
        let mut set = BTreeSet::new();
        for ev in &self.events {
            if let Some((g, t)) = journey_key(ev) {
                if g == group {
                    set.insert(t);
                }
            }
        }
        set.into_iter().collect()
    }

    /// Reconstruct the journey of one (group, tag) key: every stamped
    /// event in trace order, plus — for control transactions — the
    /// origin's first data delivery after the transaction began.
    pub fn journey(&self, group: u32, tag: u64) -> Journey {
        let steps: Vec<Event> = self
            .events
            .iter()
            .filter(|ev| journey_key(ev) == Some((group, tag)))
            .copied()
            .collect();
        let key = TraceKey::from_tag(group, tag);
        let first_delivery = key.and_then(|k| {
            let start = steps.first()?.time;
            self.events
                .iter()
                .find(|ev| {
                    ev.node == k.origin
                        && ev.time >= start
                        && matches!(ev.kind, EventKind::DeliverLocal { group: g, .. } if g == group)
                })
                .copied()
        });
        Journey {
            group,
            tag,
            key,
            steps,
            first_delivery,
        }
    }

    /// The control transactions in `group` that start with a JOIN —
    /// one journey each, in tag (origin, seq) order.
    pub fn join_journeys(&self, group: u32) -> Vec<Journey> {
        self.journey_tags(group)
            .into_iter()
            .filter(|&t| is_ctl_tag(t))
            .map(|t| self.journey(group, t))
            .filter(|j| {
                j.steps.iter().any(|ev| {
                    matches!(
                        ev.kind,
                        EventKind::Deliver {
                            ctl: Some(CtlKind::Join),
                            ..
                        }
                    )
                })
            })
            .collect()
    }

    /// Render every JOIN transaction in `group` (the causality chain
    /// JOIN → TREE/BRANCH → ack → first delivery), byte-stable.
    pub fn joins_report(&self, group: u32) -> String {
        let journeys = self.join_journeys(group);
        let mut out = String::new();
        let _ = writeln!(out, "group {group}: {} join transaction(s)", journeys.len());
        for j in &journeys {
            out.push_str(&j.report());
        }
        out
    }

    /// The tree-health samples embedded in the trace, in trace order,
    /// optionally restricted to one group.
    pub fn tree_health(&self, group: Option<u32>) -> Vec<Event> {
        self.events
            .iter()
            .filter(|ev| match ev.kind {
                EventKind::TreeHealth { group: g, .. } => group.is_none() || group == Some(g),
                _ => false,
            })
            .copied()
            .collect()
    }

    /// Summarize per-group tree health: every sample plus a per-group
    /// trailer with the latest state and the spread over time.
    pub fn health_report(&self) -> String {
        let mut by_group: BTreeMap<u32, Vec<Event>> = BTreeMap::new();
        for ev in self.tree_health(None) {
            if let EventKind::TreeHealth { group, .. } = ev.kind {
                by_group.entry(group).or_default().push(ev);
            }
        }
        let mut out = String::new();
        if by_group.is_empty() {
            let _ = writeln!(out, "tree health: no samples in trace");
            return out;
        }
        for (g, samples) in &by_group {
            let _ = writeln!(out, "group {g} tree health ({} samples):", samples.len());
            let mut costs = Histogram::new();
            for ev in samples {
                if let EventKind::TreeHealth {
                    trigger,
                    members,
                    depth,
                    cost,
                    stretch_milli,
                    delay_var,
                    ..
                } = ev.kind
                {
                    let _ = writeln!(
                        out,
                        "  t={:<8} [{}] members={members} depth={depth} cost={cost} stretch={}.{:03} delay_var={delay_var}",
                        ev.time,
                        trigger.label(),
                        stretch_milli / 1000,
                        stretch_milli % 1000,
                    );
                    costs.record(cost);
                }
            }
            let _ = writeln!(
                out,
                "  cost over time: mean={:.1} max={} stddev={:.1}",
                costs.mean(),
                costs.max(),
                costs.stddev()
            );
        }
        out
    }

    /// Recompute latency histograms from the events. End-to-end delay
    /// counts each `(group, tag, node)` once (first delivery), matching
    /// the engine's own statistics.
    pub fn histograms(&self) -> TraceHistograms {
        let mut out = TraceHistograms::default();
        let mut seen = BTreeSet::new();
        for ev in &self.events {
            match ev.kind {
                EventKind::DeliverLocal { group, tag, delay }
                    if seen.insert((group, tag, ev.node)) =>
                {
                    out.e2e_delay.record(delay);
                }
                EventKind::Repair { latency } => out.repair.record(latency),
                _ => {}
            }
        }
        out
    }

    /// The convergence timeline of `group`: membership is replayed from
    /// join/leave events (a router crash wipes its membership until an
    /// explicit re-join), and each send is tracked until every member
    /// known at send time has delivered its payload.
    pub fn convergence(&self, group: u32) -> Convergence {
        let mut members: BTreeSet<u32> = BTreeSet::new();
        let mut points: Vec<ConvergencePoint> = Vec::new();
        for ev in &self.events {
            match ev.kind {
                EventKind::Join { group: g } if g == group => {
                    members.insert(ev.node);
                }
                EventKind::Leave { group: g } if g == group => {
                    members.remove(&ev.node);
                }
                EventKind::RouterCrash => {
                    members.remove(&ev.node);
                }
                EventKind::Send { group: g, tag } if g == group => {
                    points.push(ConvergencePoint {
                        tag,
                        sent_at: ev.time,
                        source: ev.node,
                        members_at_send: members.iter().copied().collect(),
                        delivered: Vec::new(),
                        converged_at: None,
                    });
                }
                EventKind::DeliverLocal { group: g, tag, .. } if g == group => {
                    if let Some(p) = points.iter_mut().rev().find(|p| p.tag == tag) {
                        if !p.delivered.iter().any(|&(n, _)| n == ev.node) {
                            p.delivered.push((ev.node, ev.time));
                        }
                    }
                }
                _ => {}
            }
        }
        for p in &mut points {
            p.delivered.sort_unstable();
            let all = p
                .members_at_send
                .iter()
                .all(|m| p.delivered.iter().any(|&(n, _)| n == *m));
            if all && !p.members_at_send.is_empty() {
                p.converged_at = p.delivered.iter().map(|&(_, t)| t).max();
            }
        }
        Convergence { group, points }
    }

    /// Audit the trace for delivery correctness. Hard violations —
    /// duplicate local delivery, a delivery whose payload was never
    /// sent (phantom), timestamps running backwards, or a missing
    /// delivery with no drop and no fault anywhere to explain it — all
    /// fail the audit (and set the `scmp-inspect --audit` exit code).
    pub fn audit(&self) -> Audit {
        let mut audit = Audit::default();
        let mut delivered: BTreeSet<(u32, u64, u32)> = BTreeSet::new();
        let mut sent: BTreeSet<(u32, u64)> = BTreeSet::new();
        let mut last_time = 0u64;
        for ev in &self.events {
            if ev.time < last_time {
                audit.disordered += 1;
            }
            last_time = last_time.max(ev.time);
            match ev.kind {
                EventKind::Send { group, tag } => {
                    audit.sends += 1;
                    sent.insert((group, tag));
                }
                EventKind::DeliverLocal { group, tag, .. } => {
                    if !sent.contains(&(group, tag)) {
                        audit.phantom.push((group, tag, ev.node));
                    }
                    if delivered.insert((group, tag, ev.node)) {
                        audit.deliveries += 1;
                    } else {
                        audit.duplicates.push((group, tag, ev.node));
                    }
                }
                EventKind::Drop { reason, .. } => {
                    *audit.drops.entry(reason.label()).or_insert(0) += 1;
                }
                EventKind::LinkDown { .. }
                | EventKind::LinkUp { .. }
                | EventKind::RouterCrash
                | EventKind::RouterRecover => audit.faults += 1,
                _ => {}
            }
        }
        for group in self.groups() {
            for p in self.convergence(group).points {
                for m in &p.members_at_send {
                    if !delivered.contains(&(group, p.tag, *m)) {
                        audit.missing.push((group, p.tag, *m));
                    }
                }
            }
        }
        let loss_explained = audit.faults > 0 || audit.drops.values().any(|&n| n > 0);
        if !loss_explained {
            audit.unaccounted = audit.missing.clone();
        }
        audit
    }

    /// A one-screen summary: time span, event counts by kind, groups.
    pub fn summary(&self) -> String {
        let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
        for ev in &self.events {
            let name = match ev.kind {
                EventKind::Join { .. } => "join",
                EventKind::Leave { .. } => "leave",
                EventKind::Send { .. } => "send",
                EventKind::Deliver { .. } => "deliver",
                EventKind::DeliverLocal { .. } => "deliver_local",
                EventKind::Timer { .. } => "timer",
                EventKind::LinkDown { .. } => "link_down",
                EventKind::LinkUp { .. } => "link_up",
                EventKind::RouterCrash => "crash",
                EventKind::RouterRecover => "recover",
                EventKind::Drop { .. } => "drop",
                EventKind::Repair { .. } => "repair",
                EventKind::Gauge { .. } => "gauge",
                EventKind::ChannelDuplicate { .. } => "channel_duplicate",
                EventKind::ChannelReorder { .. } => "channel_reorder",
                EventKind::Retransmit { .. } => "retransmit",
                EventKind::Takeover => "takeover",
                EventKind::TreeHealth { .. } => "tree_health",
                EventKind::Nack { .. } => "nack",
                EventKind::NackSuppress { .. } => "nack_suppress",
                EventKind::RepairHit { .. } => "repair_hit",
                EventKind::RepairMiss { .. } => "repair_miss",
                EventKind::Recovery { .. } => "recovery",
                EventKind::Partition { .. } => "partition",
                EventKind::Heal { .. } => "heal",
                EventKind::Reconcile { .. } => "reconcile",
            };
            *by_kind.entry(name).or_insert(0) += 1;
        }
        let span = match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => format!("t={}..{}", a.time, b.time),
            _ => "empty".to_string(),
        };
        let mut out = String::new();
        let _ = writeln!(out, "trace: {} events, {span}", self.events.len());
        for (k, n) in &by_kind {
            let _ = writeln!(out, "  {k:<14} {n}");
        }
        let groups = self.groups();
        if !groups.is_empty() {
            let _ = writeln!(out, "  groups: {groups:?}");
        }
        out
    }
}

/// The (group, tag) correlation key an event is stamped with, when it
/// participates in journeys at all.
fn journey_key(ev: &Event) -> Option<(u32, u64)> {
    match ev.kind {
        EventKind::Send { group, tag }
        | EventKind::Deliver { group, tag, .. }
        | EventKind::DeliverLocal { group, tag, .. }
        | EventKind::Retransmit { group, tag, .. }
        | EventKind::ChannelDuplicate { group, tag, .. }
        | EventKind::ChannelReorder { group, tag, .. }
        | EventKind::Nack { group, tag, .. }
        | EventKind::NackSuppress { group, tag, .. }
        | EventKind::RepairHit { group, tag, .. }
        | EventKind::RepairMiss { group, tag, .. }
        | EventKind::Recovery { group, tag, .. } => Some((group, tag)),
        EventKind::Drop {
            group: Some(g),
            tag: Some(t),
            ..
        } => Some((g, t)),
        _ => None,
    }
}

impl Convergence {
    /// Human-readable timeline.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "group {} convergence:", self.group);
        for p in &self.points {
            let _ = writeln!(
                out,
                "  tag {} sent t={} by n{} -> {}/{} members{}",
                p.tag,
                p.sent_at,
                p.source,
                p.delivered.len(),
                p.members_at_send.len(),
                match p.converged_at {
                    Some(t) => format!(", converged t={t}"),
                    None => ", NOT converged".to_string(),
                }
            );
            for &(n, t) in &p.delivered {
                let _ = writeln!(out, "    n{n} delivered t={t} (+{})", t - p.sent_at);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DropReason;

    fn ev(time: u64, node: u32, kind: EventKind) -> Event {
        Event { time, node, kind }
    }

    fn happy_trace() -> Trace {
        Trace::from_events(vec![
            ev(0, 3, EventKind::Join { group: 1 }),
            ev(0, 4, EventKind::Join { group: 1 }),
            ev(100, 1, EventKind::Send { group: 1, tag: 7 }),
            ev(
                103,
                3,
                EventKind::DeliverLocal {
                    group: 1,
                    tag: 7,
                    delay: 3,
                },
            ),
            ev(
                105,
                4,
                EventKind::DeliverLocal {
                    group: 1,
                    tag: 7,
                    delay: 5,
                },
            ),
        ])
    }

    #[test]
    fn convergence_tracks_members_at_send_time() {
        let c = happy_trace().convergence(1);
        assert_eq!(c.points.len(), 1);
        let p = &c.points[0];
        assert_eq!(p.members_at_send, vec![3, 4]);
        assert_eq!(p.delivered, vec![(3, 103), (4, 105)]);
        assert_eq!(p.converged_at, Some(105));
        assert!(c.report().contains("converged t=105"));
    }

    #[test]
    fn crash_wipes_membership() {
        let t = Trace::from_events(vec![
            ev(0, 3, EventKind::Join { group: 1 }),
            ev(0, 4, EventKind::Join { group: 1 }),
            ev(50, 4, EventKind::RouterCrash),
            ev(100, 1, EventKind::Send { group: 1, tag: 7 }),
            ev(
                103,
                3,
                EventKind::DeliverLocal {
                    group: 1,
                    tag: 7,
                    delay: 3,
                },
            ),
        ]);
        let p = &t.convergence(1).points[0];
        assert_eq!(p.members_at_send, vec![3]);
        assert_eq!(p.converged_at, Some(103));
        assert!(t.audit().passed());
    }

    #[test]
    fn audit_flags_duplicates_and_silent_loss() {
        // Duplicate delivery is always a failure.
        let mut events = happy_trace().events().to_vec();
        events.push(ev(
            110,
            4,
            EventKind::DeliverLocal {
                group: 1,
                tag: 7,
                delay: 10,
            },
        ));
        let a = Trace::from_events(events).audit();
        assert!(!a.passed());
        assert_eq!(a.duplicates, vec![(1, 7, 4)]);

        // A missing delivery with no drop/fault anywhere is unaccounted.
        let t = Trace::from_events(vec![
            ev(0, 3, EventKind::Join { group: 1 }),
            ev(100, 1, EventKind::Send { group: 1, tag: 7 }),
        ]);
        let a = t.audit();
        assert!(!a.passed());
        assert_eq!(a.unaccounted, vec![(1, 7, 3)]);
        assert!(a.report().contains("UNACCOUNTED"));

        // The same loss with a recorded drop is explained.
        let t = Trace::from_events(vec![
            ev(0, 3, EventKind::Join { group: 1 }),
            ev(100, 1, EventKind::Send { group: 1, tag: 7 }),
            ev(
                101,
                2,
                EventKind::Drop {
                    reason: DropReason::QueueFull,
                    to: None,
                    group: Some(1),
                    tag: Some(7),
                },
            ),
        ]);
        let a = t.audit();
        assert!(a.passed());
        assert_eq!(a.missing, vec![(1, 7, 3)]);
        assert!(a.unaccounted.is_empty());
    }

    #[test]
    fn audit_flags_phantom_deliveries() {
        // A delivery whose payload was never sent is a hard violation.
        let t = Trace::from_events(vec![
            ev(0, 3, EventKind::Join { group: 1 }),
            ev(
                50,
                3,
                EventKind::DeliverLocal {
                    group: 1,
                    tag: 99,
                    delay: 5,
                },
            ),
        ]);
        let a = t.audit();
        assert!(!a.passed());
        assert_eq!(a.phantom, vec![(1, 99, 3)]);
        assert!(a.report().contains("PHANTOM"));
    }

    #[test]
    fn audit_flags_disordered_timestamps() {
        let t = Trace::from_events(vec![
            ev(100, 1, EventKind::Send { group: 1, tag: 7 }),
            ev(90, 1, EventKind::Timer { token: 1 }),
        ]);
        let a = t.audit();
        assert!(!a.passed());
        assert_eq!(a.disordered, 1);
        assert!(a.report().contains("DISORDERED"));
    }

    #[test]
    fn histograms_dedup_first_delivery() {
        let mut events = happy_trace().events().to_vec();
        events.push(ev(
            110,
            4,
            EventKind::DeliverLocal {
                group: 1,
                tag: 7,
                delay: 10,
            },
        ));
        events.push(ev(120, 0, EventKind::Repair { latency: 1200 }));
        let h = Trace::from_events(events).histograms();
        assert_eq!(h.e2e_delay.count(), 2, "duplicate delivery not recounted");
        assert_eq!(h.e2e_delay.max(), 5);
        assert_eq!(h.repair.count(), 1);
        assert_eq!(h.repair.max(), 1200);
    }

    #[test]
    fn data_journey_reconstructs_hops_and_drops() {
        let t = Trace::from_events(vec![
            ev(100, 1, EventKind::Send { group: 1, tag: 7 }),
            ev(
                103,
                0,
                EventKind::Deliver {
                    from: 1,
                    class: crate::event::TrafficClass::Data,
                    group: 1,
                    tag: 7,
                    ctl: Some(CtlKind::Data),
                },
            ),
            ev(
                104,
                0,
                EventKind::Drop {
                    reason: DropReason::ChannelLoss,
                    to: Some(4),
                    group: Some(1),
                    tag: Some(7),
                },
            ),
            ev(
                106,
                3,
                EventKind::DeliverLocal {
                    group: 1,
                    tag: 7,
                    delay: 6,
                },
            ),
            // A different tag must stay out of the journey.
            ev(200, 1, EventKind::Send { group: 1, tag: 8 }),
        ]);
        let j = t.journey(1, 7);
        assert_eq!(j.key, None, "tag 7 is a data tag");
        assert_eq!(j.steps.len(), 4);
        assert_eq!(j.chain(), vec!["send", "data", "drop", "delivered"]);
        let r = j.report();
        assert!(r.contains("journey g1 tag 7 (data):"), "{r}");
        assert!(r.contains("DROP [channel_loss] -> n4"), "{r}");
        assert_eq!(r, t.journey(1, 7).report(), "byte-stable");
        assert_eq!(t.journey_tags(1), vec![7, 8]);
    }

    #[test]
    fn join_journey_chains_to_first_delivery() {
        let tag = TraceKey::new(1, 4, 1).tag();
        let t = Trace::from_events(vec![
            ev(0, 4, EventKind::Join { group: 1 }),
            ev(
                3,
                0,
                EventKind::Deliver {
                    from: 4,
                    class: crate::event::TrafficClass::Control,
                    group: 1,
                    tag,
                    ctl: Some(CtlKind::Join),
                },
            ),
            ev(
                6,
                4,
                EventKind::Deliver {
                    from: 0,
                    class: crate::event::TrafficClass::Control,
                    group: 1,
                    tag,
                    ctl: Some(CtlKind::Branch),
                },
            ),
            ev(
                9,
                0,
                EventKind::Deliver {
                    from: 4,
                    class: crate::event::TrafficClass::Control,
                    group: 1,
                    tag,
                    ctl: Some(CtlKind::TreeAck),
                },
            ),
            ev(100, 1, EventKind::Send { group: 1, tag: 5 }),
            ev(
                104,
                4,
                EventKind::DeliverLocal {
                    group: 1,
                    tag: 5,
                    delay: 4,
                },
            ),
        ]);
        let joins = t.join_journeys(1);
        assert_eq!(joins.len(), 1);
        let j = &joins[0];
        assert_eq!(j.key, Some(TraceKey::new(1, 4, 1)));
        assert_eq!(
            j.chain(),
            vec!["join", "branch", "tree_ack", "first_delivery"]
        );
        let fd = j.first_delivery.expect("origin delivered after join");
        assert_eq!((fd.time, fd.node), (104, 4));
        let report = t.joins_report(1);
        assert!(report.contains("1 join transaction(s)"), "{report}");
        assert!(
            report.contains("first data at origin: t=104 tag 5"),
            "{report}"
        );
    }

    #[test]
    fn health_report_summarizes_samples() {
        let t = Trace::from_events(vec![ev(
            2_000,
            0,
            EventKind::TreeHealth {
                group: 1,
                trigger: crate::event::HealthTrigger::Join,
                members: 3,
                depth: 2,
                cost: 14,
                stretch_milli: 1250,
                delay_var: 6,
            },
        )]);
        assert_eq!(t.tree_health(Some(1)).len(), 1);
        assert!(t.tree_health(Some(2)).is_empty());
        let r = t.health_report();
        assert!(r.contains("group 1 tree health (1 samples):"), "{r}");
        assert!(r.contains("stretch=1.250"), "{r}");
        assert!(r.contains("delay_var=6"), "{r}");
        let none = Trace::from_events(vec![]).health_report();
        assert!(none.contains("no samples"));
    }

    #[test]
    fn summary_and_filters() {
        let t = happy_trace();
        let s = t.summary();
        assert!(s.contains("5 events"));
        assert!(s.contains("deliver_local  2"));
        assert_eq!(t.groups(), vec![1]);
        assert_eq!(t.node_events(3).len(), 2);
        assert_eq!(t.node_events(9).len(), 0);
        let back = Trace::parse(&t.to_jsonl()).unwrap();
        assert_eq!(back.events(), t.events());
    }
}
