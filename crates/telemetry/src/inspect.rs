//! Trace inspection: load a JSONL trace and answer questions about it.
//!
//! [`Trace`] wraps a decoded event stream and derives the views the
//! `scmp-inspect` CLI exposes: per-group convergence timelines, per-node
//! event filters, recomputed latency histograms, and a delivery audit
//! that flags duplicate or unexplained-missing deliveries.

use crate::event::{decode_events, encode_events, Event, EventKind};
use crate::hist::Histogram;
use crate::series::GaugeSample;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// A decoded trace, events in recorded (time) order.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<Event>,
}

/// Histograms recomputed purely from trace events.
#[derive(Clone, Debug, Default)]
pub struct TraceHistograms {
    /// End-to-end delay of each distinct local delivery.
    pub e2e_delay: Histogram,
    /// Latency of each completed tree repair.
    pub repair: Histogram,
}

/// The fate of one multicast send within a group's timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvergencePoint {
    /// Payload tag of the send.
    pub tag: u64,
    /// When and where it was injected.
    pub sent_at: u64,
    /// The injecting node.
    pub source: u32,
    /// Group members at send time (sorted).
    pub members_at_send: Vec<u32>,
    /// Distinct `(node, time)` local deliveries for this tag (sorted by
    /// node).
    pub delivered: Vec<(u32, u64)>,
    /// Time the last expected member delivered, when all of them did.
    pub converged_at: Option<u64>,
}

/// A group's convergence timeline: one point per send, in send order.
#[derive(Clone, Debug, Default)]
pub struct Convergence {
    /// The group inspected.
    pub group: u32,
    /// One entry per send to the group.
    pub points: Vec<ConvergencePoint>,
}

/// The delivery audit over a whole trace.
#[derive(Clone, Debug, Default)]
pub struct Audit {
    /// Sends observed.
    pub sends: u64,
    /// Distinct local deliveries observed.
    pub deliveries: u64,
    /// `(group, tag, node)` delivered more than once — always a failure.
    pub duplicates: Vec<(u32, u64, u32)>,
    /// Drop counts by reason label.
    pub drops: BTreeMap<&'static str, u64>,
    /// Fault events (link down/up, crash, recover) observed.
    pub faults: u64,
    /// `(group, tag, node)` expected at send time but never delivered.
    pub missing: Vec<(u32, u64, u32)>,
    /// Missing deliveries with no drop and no fault anywhere in the
    /// trace to explain them — always a failure.
    pub unaccounted: Vec<(u32, u64, u32)>,
}

impl Audit {
    /// True when the trace shows no duplicate and no unexplained-missing
    /// delivery.
    pub fn passed(&self) -> bool {
        self.duplicates.is_empty() && self.unaccounted.is_empty()
    }

    /// Human-readable audit report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "audit: sends={} deliveries={} faults={} verdict={}",
            self.sends,
            self.deliveries,
            self.faults,
            if self.passed() { "PASS" } else { "FAIL" }
        );
        for (reason, n) in &self.drops {
            let _ = writeln!(out, "  drop[{reason}] = {n}");
        }
        for &(g, t, n) in &self.duplicates {
            let _ = writeln!(out, "  DUPLICATE delivery: group {g} tag {t} node {n}");
        }
        for &(g, t, n) in &self.missing {
            let explained = !self.unaccounted.contains(&(g, t, n));
            let _ = writeln!(
                out,
                "  missing delivery: group {g} tag {t} node {n}{}",
                if explained {
                    " (explained by drops/faults)"
                } else {
                    " UNACCOUNTED"
                }
            );
        }
        out
    }
}

impl Trace {
    /// Wrap an already-decoded event stream.
    pub fn from_events(events: Vec<Event>) -> Trace {
        Trace { events }
    }

    /// Decode a JSONL document.
    pub fn parse(jsonl: &str) -> Result<Trace, String> {
        Ok(Trace {
            events: decode_events(jsonl)?,
        })
    }

    /// The raw events, in recorded order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Re-encode as JSONL.
    pub fn to_jsonl(&self) -> String {
        encode_events(&self.events)
    }

    /// Distinct groups mentioned anywhere, sorted.
    pub fn groups(&self) -> Vec<u32> {
        let mut set = BTreeSet::new();
        for ev in &self.events {
            match ev.kind {
                EventKind::Join { group }
                | EventKind::Leave { group }
                | EventKind::Send { group, .. }
                | EventKind::Deliver { group, .. }
                | EventKind::DeliverLocal { group, .. } => {
                    set.insert(group);
                }
                _ => {}
            }
        }
        set.into_iter().collect()
    }

    /// Events that fired at `node` (gauge samples excluded — their node
    /// id is not meaningful).
    pub fn node_events(&self, node: u32) -> Vec<Event> {
        self.events
            .iter()
            .filter(|ev| ev.node == node && !matches!(ev.kind, EventKind::Gauge { .. }))
            .copied()
            .collect()
    }

    /// The gauge time series embedded in the trace.
    pub fn gauges(&self) -> Vec<GaugeSample> {
        self.events
            .iter()
            .filter_map(GaugeSample::from_event)
            .collect()
    }

    /// Recompute latency histograms from the events. End-to-end delay
    /// counts each `(group, tag, node)` once (first delivery), matching
    /// the engine's own statistics.
    pub fn histograms(&self) -> TraceHistograms {
        let mut out = TraceHistograms::default();
        let mut seen = BTreeSet::new();
        for ev in &self.events {
            match ev.kind {
                EventKind::DeliverLocal { group, tag, delay }
                    if seen.insert((group, tag, ev.node)) =>
                {
                    out.e2e_delay.record(delay);
                }
                EventKind::Repair { latency } => out.repair.record(latency),
                _ => {}
            }
        }
        out
    }

    /// The convergence timeline of `group`: membership is replayed from
    /// join/leave events (a router crash wipes its membership until an
    /// explicit re-join), and each send is tracked until every member
    /// known at send time has delivered its payload.
    pub fn convergence(&self, group: u32) -> Convergence {
        let mut members: BTreeSet<u32> = BTreeSet::new();
        let mut points: Vec<ConvergencePoint> = Vec::new();
        for ev in &self.events {
            match ev.kind {
                EventKind::Join { group: g } if g == group => {
                    members.insert(ev.node);
                }
                EventKind::Leave { group: g } if g == group => {
                    members.remove(&ev.node);
                }
                EventKind::RouterCrash => {
                    members.remove(&ev.node);
                }
                EventKind::Send { group: g, tag } if g == group => {
                    points.push(ConvergencePoint {
                        tag,
                        sent_at: ev.time,
                        source: ev.node,
                        members_at_send: members.iter().copied().collect(),
                        delivered: Vec::new(),
                        converged_at: None,
                    });
                }
                EventKind::DeliverLocal { group: g, tag, .. } if g == group => {
                    if let Some(p) = points.iter_mut().rev().find(|p| p.tag == tag) {
                        if !p.delivered.iter().any(|&(n, _)| n == ev.node) {
                            p.delivered.push((ev.node, ev.time));
                        }
                    }
                }
                _ => {}
            }
        }
        for p in &mut points {
            p.delivered.sort_unstable();
            let all = p
                .members_at_send
                .iter()
                .all(|m| p.delivered.iter().any(|&(n, _)| n == *m));
            if all && !p.members_at_send.is_empty() {
                p.converged_at = p.delivered.iter().map(|&(_, t)| t).max();
            }
        }
        Convergence { group, points }
    }

    /// Audit the trace for delivery correctness. A duplicate local
    /// delivery always fails the audit. A missing delivery fails only
    /// when the trace shows no drop and no fault at all — loss without
    /// any recorded cause means the trace (or the protocol) lost a
    /// packet silently.
    pub fn audit(&self) -> Audit {
        let mut audit = Audit::default();
        let mut delivered: BTreeSet<(u32, u64, u32)> = BTreeSet::new();
        for ev in &self.events {
            match ev.kind {
                EventKind::Send { .. } => audit.sends += 1,
                EventKind::DeliverLocal { group, tag, .. } => {
                    if delivered.insert((group, tag, ev.node)) {
                        audit.deliveries += 1;
                    } else {
                        audit.duplicates.push((group, tag, ev.node));
                    }
                }
                EventKind::Drop { reason, .. } => {
                    *audit.drops.entry(reason.label()).or_insert(0) += 1;
                }
                EventKind::LinkDown { .. }
                | EventKind::LinkUp { .. }
                | EventKind::RouterCrash
                | EventKind::RouterRecover => audit.faults += 1,
                _ => {}
            }
        }
        for group in self.groups() {
            for p in self.convergence(group).points {
                for m in &p.members_at_send {
                    if !delivered.contains(&(group, p.tag, *m)) {
                        audit.missing.push((group, p.tag, *m));
                    }
                }
            }
        }
        let loss_explained = audit.faults > 0 || audit.drops.values().any(|&n| n > 0);
        if !loss_explained {
            audit.unaccounted = audit.missing.clone();
        }
        audit
    }

    /// A one-screen summary: time span, event counts by kind, groups.
    pub fn summary(&self) -> String {
        let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
        for ev in &self.events {
            let name = match ev.kind {
                EventKind::Join { .. } => "join",
                EventKind::Leave { .. } => "leave",
                EventKind::Send { .. } => "send",
                EventKind::Deliver { .. } => "deliver",
                EventKind::DeliverLocal { .. } => "deliver_local",
                EventKind::Timer { .. } => "timer",
                EventKind::LinkDown { .. } => "link_down",
                EventKind::LinkUp { .. } => "link_up",
                EventKind::RouterCrash => "crash",
                EventKind::RouterRecover => "recover",
                EventKind::Drop { .. } => "drop",
                EventKind::Repair { .. } => "repair",
                EventKind::Gauge { .. } => "gauge",
                EventKind::ChannelDuplicate { .. } => "channel_duplicate",
                EventKind::ChannelReorder { .. } => "channel_reorder",
                EventKind::Retransmit { .. } => "retransmit",
                EventKind::Takeover => "takeover",
            };
            *by_kind.entry(name).or_insert(0) += 1;
        }
        let span = match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => format!("t={}..{}", a.time, b.time),
            _ => "empty".to_string(),
        };
        let mut out = String::new();
        let _ = writeln!(out, "trace: {} events, {span}", self.events.len());
        for (k, n) in &by_kind {
            let _ = writeln!(out, "  {k:<14} {n}");
        }
        let groups = self.groups();
        if !groups.is_empty() {
            let _ = writeln!(out, "  groups: {groups:?}");
        }
        out
    }
}

impl Convergence {
    /// Human-readable timeline.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "group {} convergence:", self.group);
        for p in &self.points {
            let _ = writeln!(
                out,
                "  tag {} sent t={} by n{} -> {}/{} members{}",
                p.tag,
                p.sent_at,
                p.source,
                p.delivered.len(),
                p.members_at_send.len(),
                match p.converged_at {
                    Some(t) => format!(", converged t={t}"),
                    None => ", NOT converged".to_string(),
                }
            );
            for &(n, t) in &p.delivered {
                let _ = writeln!(out, "    n{n} delivered t={t} (+{})", t - p.sent_at);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DropReason;

    fn ev(time: u64, node: u32, kind: EventKind) -> Event {
        Event { time, node, kind }
    }

    fn happy_trace() -> Trace {
        Trace::from_events(vec![
            ev(0, 3, EventKind::Join { group: 1 }),
            ev(0, 4, EventKind::Join { group: 1 }),
            ev(100, 1, EventKind::Send { group: 1, tag: 7 }),
            ev(
                103,
                3,
                EventKind::DeliverLocal {
                    group: 1,
                    tag: 7,
                    delay: 3,
                },
            ),
            ev(
                105,
                4,
                EventKind::DeliverLocal {
                    group: 1,
                    tag: 7,
                    delay: 5,
                },
            ),
        ])
    }

    #[test]
    fn convergence_tracks_members_at_send_time() {
        let c = happy_trace().convergence(1);
        assert_eq!(c.points.len(), 1);
        let p = &c.points[0];
        assert_eq!(p.members_at_send, vec![3, 4]);
        assert_eq!(p.delivered, vec![(3, 103), (4, 105)]);
        assert_eq!(p.converged_at, Some(105));
        assert!(c.report().contains("converged t=105"));
    }

    #[test]
    fn crash_wipes_membership() {
        let t = Trace::from_events(vec![
            ev(0, 3, EventKind::Join { group: 1 }),
            ev(0, 4, EventKind::Join { group: 1 }),
            ev(50, 4, EventKind::RouterCrash),
            ev(100, 1, EventKind::Send { group: 1, tag: 7 }),
            ev(
                103,
                3,
                EventKind::DeliverLocal {
                    group: 1,
                    tag: 7,
                    delay: 3,
                },
            ),
        ]);
        let p = &t.convergence(1).points[0];
        assert_eq!(p.members_at_send, vec![3]);
        assert_eq!(p.converged_at, Some(103));
        assert!(t.audit().passed());
    }

    #[test]
    fn audit_flags_duplicates_and_silent_loss() {
        // Duplicate delivery is always a failure.
        let mut events = happy_trace().events().to_vec();
        events.push(ev(
            110,
            4,
            EventKind::DeliverLocal {
                group: 1,
                tag: 7,
                delay: 10,
            },
        ));
        let a = Trace::from_events(events).audit();
        assert!(!a.passed());
        assert_eq!(a.duplicates, vec![(1, 7, 4)]);

        // A missing delivery with no drop/fault anywhere is unaccounted.
        let t = Trace::from_events(vec![
            ev(0, 3, EventKind::Join { group: 1 }),
            ev(100, 1, EventKind::Send { group: 1, tag: 7 }),
        ]);
        let a = t.audit();
        assert!(!a.passed());
        assert_eq!(a.unaccounted, vec![(1, 7, 3)]);
        assert!(a.report().contains("UNACCOUNTED"));

        // The same loss with a recorded drop is explained.
        let t = Trace::from_events(vec![
            ev(0, 3, EventKind::Join { group: 1 }),
            ev(100, 1, EventKind::Send { group: 1, tag: 7 }),
            ev(
                101,
                2,
                EventKind::Drop {
                    reason: DropReason::QueueFull,
                    to: None,
                },
            ),
        ]);
        let a = t.audit();
        assert!(a.passed());
        assert_eq!(a.missing, vec![(1, 7, 3)]);
        assert!(a.unaccounted.is_empty());
    }

    #[test]
    fn histograms_dedup_first_delivery() {
        let mut events = happy_trace().events().to_vec();
        events.push(ev(
            110,
            4,
            EventKind::DeliverLocal {
                group: 1,
                tag: 7,
                delay: 10,
            },
        ));
        events.push(ev(120, 0, EventKind::Repair { latency: 1200 }));
        let h = Trace::from_events(events).histograms();
        assert_eq!(h.e2e_delay.count(), 2, "duplicate delivery not recounted");
        assert_eq!(h.e2e_delay.max(), 5);
        assert_eq!(h.repair.count(), 1);
        assert_eq!(h.repair.max(), 1200);
    }

    #[test]
    fn summary_and_filters() {
        let t = happy_trace();
        let s = t.summary();
        assert!(s.contains("5 events"));
        assert!(s.contains("deliver_local  2"));
        assert_eq!(t.groups(), vec![1]);
        assert_eq!(t.node_events(3).len(), 2);
        assert_eq!(t.node_events(9).len(), 0);
        let back = Trace::parse(&t.to_jsonl()).unwrap();
        assert_eq!(back.events(), t.events());
    }
}
