//! Log-bucketed histograms for latency-style metrics.
//!
//! The paper's §IV-B tables report only maxima; protocol comparisons
//! need the distribution (Helmy et al., *Systematic Performance
//! Evaluation of Multipoint Protocols*). [`Histogram`] trades exactness
//! for O(1) recording and O(65) memory: bucket 0 holds zeros and bucket
//! `k` holds `[2^(k-1), 2^k)`, so quantiles are resolved to a power-of-
//! two bracket, which is plenty for p50/p90/p99 on tick-valued delays.

/// Number of buckets covering the full `u64` range (zero + 64 octaves).
pub const BUCKET_COUNT: usize = 65;

/// A log-bucketed histogram over `u64` samples.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// `counts[0]` = zeros; `counts[k]` = samples in `[2^(k-1), 2^k)`.
    /// Grown on demand so an empty histogram allocates nothing.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    sumsq: u128,
    max: u64,
}

/// The bucket a value lands in.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// The inclusive `(low, high)` bounds of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKET_COUNT, "bucket {i} out of range");
    if i == 0 {
        (0, 0)
    } else if i == 64 {
        (1 << 63, u64::MAX)
    } else {
        (1 << (i - 1), (1 << i) - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let i = bucket_index(v);
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.sumsq = self.sumsq.saturating_add((v as u128) * (v as u128));
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples. **Saturates at `u64::MAX`**: once the
    /// running total clips, it stays clipped (and [`Histogram::mean`]
    /// under-reports, since it divides the clipped sum by the true
    /// count). Tick-valued delays never get close in practice; callers
    /// feeding adversarial magnitudes should treat `sum() == u64::MAX`
    /// as "at least this much".
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample, 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, 0.0 when empty. Computed from the saturating
    /// [`Histogram::sum`], so it under-reports once the sum has clipped
    /// at `u64::MAX` (see there).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Population variance, 0.0 when empty.
    ///
    /// Accumulated as an exact `u128` sum of squares (saturating — a
    /// single `u64::MAX` sample squared is within range, so saturation
    /// needs ~2^64 such samples) and combined with the mean in f64 at
    /// query time, clamped at 0 against rounding. Like the mean, it
    /// under-reports once either running total has clipped.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.mean();
        (self.sumsq as f64 / n - mean * mean).max(0.0)
    }

    /// Population standard deviation, 0.0 when empty. The delay-variation
    /// metric placement experiments report (VNS RP-management lineage).
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Estimate the `q`-quantile: the upper bound of the first bucket
    /// whose cumulative count reaches rank `ceil(q * count)`, clamped
    /// to the observed maximum. 0 when empty.
    ///
    /// `q` outside `(0.0, 1.0]` is defined explicitly rather than left
    /// to float-cast behaviour: `q <= 0.0` and `NaN` resolve to rank 1
    /// (the smallest recorded sample's bucket), `q >= 1.0` (including
    /// `+inf`) to rank `count` (the maximum). No input panics and no
    /// input produces an out-of-range rank.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Branch before the float maths: `NaN.ceil() as u64` is a
        // saturating cast to 0 and a negative product likewise clips,
        // which would silently alias "garbage q" onto rank 1 — make the
        // contract explicit instead of an accident of `as`.
        let rank = if q.is_nan() || q <= 0.0 {
            1
        } else if q >= 1.0 {
            self.count
        } else {
            ((q * self.count as f64).ceil() as u64).clamp(1, self.count)
        };
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.sumsq = self.sumsq.saturating_add(other.sumsq);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(low, high, count)`, low to high.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
    }

    /// A fixed-format dump: one `[lo, hi] count` line per non-empty
    /// bucket plus a quantile summary line. Deterministic for golden
    /// diffs.
    pub fn dump(&self, label: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{label}: n={} mean={:.1} p50={} p90={} p99={} max={}",
            self.count,
            self.mean(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.max
        );
        for (lo, hi, c) in self.buckets() {
            let _ = writeln!(out, "  [{lo:>12}, {hi:>12}]  {c}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Zero is its own bucket.
        assert_eq!(bucket_index(0), 0);
        // Each octave [2^(k-1), 2^k) maps to bucket k; both edges land
        // inside, the next power of two lands one bucket up.
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..BUCKET_COUNT {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), i, "low bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "high bound of bucket {i}");
        }
        // Bounds tile the u64 range without gaps.
        for i in 1..BUCKET_COUNT {
            assert_eq!(bucket_bounds(i - 1).1 + 1, bucket_bounds(i).0);
        }
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        // p50 of 1..=100 is 50; the bucket estimate returns the bucket's
        // upper bound, which must bracket the true value within 2x.
        let p50 = h.p50();
        assert!((50..=63).contains(&p50), "p50 estimate {p50}");
        let p99 = h.p99();
        assert!((99..=100).contains(&p99), "p99 estimate {p99}");
        // The maximum is exact, and quantiles never exceed it.
        assert_eq!(h.quantile(1.0), 100);
    }

    #[test]
    fn zeros_and_empty() {
        let mut h = Histogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
        h.record(0);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.buckets().collect::<Vec<_>>(), vec![(0, 0, 2)]);
    }

    #[test]
    fn quantile_is_total_over_hostile_q() {
        let mut h = Histogram::new();
        for v in [3u64, 17, 900] {
            h.record(v);
        }
        let lowest = h.quantile(1e-12);
        // NaN, zero and negatives resolve to rank 1 — same as the
        // smallest positive q.
        for q in [f64::NAN, 0.0, -0.0, -1.0, f64::NEG_INFINITY] {
            assert_eq!(h.quantile(q), lowest, "q={q}");
        }
        // One and above resolve to the maximum.
        for q in [1.0, 1.5, 1e300, f64::INFINITY] {
            assert_eq!(h.quantile(q), h.max(), "q={q}");
        }
        // Empty histograms stay at 0 whatever q is.
        let empty = Histogram::new();
        for q in [f64::NAN, -1.0, 0.5, 2.0] {
            assert_eq!(empty.quantile(q), 0);
        }
    }

    #[test]
    fn variance_matches_the_textbook_formula() {
        let mut h = Histogram::new();
        assert_eq!(h.variance(), 0.0);
        assert_eq!(h.stddev(), 0.0);
        for v in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            h.record(v);
        }
        // Classic example: mean 5, population variance 4, stddev 2.
        assert_eq!(h.mean(), 5.0);
        assert!((h.variance() - 4.0).abs() < 1e-9, "{}", h.variance());
        assert!((h.stddev() - 2.0).abs() < 1e-9);
        // Constant samples have zero spread.
        let mut c = Histogram::new();
        for _ in 0..10 {
            c.record(42);
        }
        assert_eq!(c.variance(), 0.0);
    }

    #[test]
    fn variance_survives_extreme_samples() {
        // u64::MAX squared fits u128, so one huge sample is exact, and
        // the f64 combination must stay finite and non-negative.
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert!(h.variance().is_finite());
        assert!(h.variance() >= 0.0);
        assert!(h.stddev().is_finite());
    }

    #[test]
    fn sum_saturates_and_mean_under_reports() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum clips instead of wrapping");
        // Documented consequence: the mean divides the clipped sum by
        // the true count, so it under-reports the true average.
        assert!(h.mean() < u64::MAX as f64);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn merge_equals_recording_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [0, 1, 5, 900, 70_000] {
            a.record(v);
            all.record(v);
        }
        for v in [3, 3, 1_000_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn dump_is_deterministic() {
        let mut h = Histogram::new();
        for v in [12, 13, 900] {
            h.record(v);
        }
        assert_eq!(h.dump("delay"), h.dump("delay"));
        assert!(h.dump("delay").starts_with("delay: n=3"));
    }
}
