//! Event sinks: where structured events go.
//!
//! The engine holds a `Box<dyn Sink>` and caches [`Sink::enabled`] so a
//! disabled sink costs one predictable branch per dispatch — no event is
//! even constructed. [`RingSink`] keeps the last `capacity` events in
//! memory for interactive inspection; [`JsonlSink`] streams every event
//! as one JSON line to any writer for offline analysis with
//! `scmp-inspect`.

use crate::event::Event;
use std::io;

/// A destination for structured events.
pub trait Sink {
    /// Whether the producer should bother constructing events at all.
    /// The engine caches this at install time.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event.
    fn record(&mut self, ev: &Event);

    /// Flush buffered output (streaming sinks).
    fn flush(&mut self) {}

    /// In-memory snapshot of recorded events, oldest first. Streaming
    /// sinks return an empty vec — their events already left.
    fn snapshot(&self) -> Vec<Event> {
        Vec::new()
    }
}

/// The disabled sink: records nothing, costs nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _ev: &Event) {}
}

/// A bounded in-memory ring: keeps the most recent `capacity` events and
/// counts what it had to evict.
///
/// Storage is a flat `Vec` written circularly: recording into a full
/// ring is a single indexed overwrite, not a `VecDeque` pop + push —
/// the ring sits on the engine's per-event hot path, and the dumber
/// layout is measurably cheaper there.
#[derive(Clone, Debug)]
pub struct RingSink {
    buf: Vec<Event>,
    capacity: usize,
    /// Next write position (wraps at `capacity`).
    head: usize,
    /// Total events ever recorded.
    recorded: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (at least 1). The
    /// buffer is preallocated so the hot path never reallocates while
    /// the ring fills.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            recorded: 0,
        }
    }

    /// Events evicted because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Sink for RingSink {
    #[inline]
    fn record(&mut self, ev: &Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(*ev);
        } else {
            self.buf[self.head] = *ev;
        }
        self.head += 1;
        if self.head == self.capacity {
            self.head = 0;
        }
        self.recorded += 1;
    }

    fn snapshot(&self) -> Vec<Event> {
        if self.buf.len() < self.capacity {
            self.buf.clone()
        } else {
            // Oldest-first: the slot about to be overwritten is the
            // oldest surviving event.
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
            out
        }
    }
}

/// Default JSONL batch size: lines accumulate in an internal buffer and
/// hit the writer in 64 KiB chunks.
pub const JSONL_FLUSH_BYTES: usize = 64 * 1024;

/// Streams each event as one JSON line to a writer.
///
/// Lines are batched in an internal byte buffer and handed to the
/// writer only when the buffer passes the flush threshold (or on
/// [`Sink::flush`]/drop) — one `write_all` per event was a measured 33%
/// of engine hot-path throughput, batching reclaims most of it even
/// when the caller forgot the `BufWriter`.
pub struct JsonlSink<W: io::Write> {
    w: Option<W>,
    buf: String,
    flush_bytes: usize,
    written: u64,
    error: Option<io::Error>,
}

impl<W: io::Write> JsonlSink<W> {
    /// Stream events to `w`, batching [`JSONL_FLUSH_BYTES`] per write.
    pub fn new(w: W) -> Self {
        JsonlSink::with_flush_bytes(w, JSONL_FLUSH_BYTES)
    }

    /// Stream events to `w`, flushing the internal buffer to the writer
    /// whenever it reaches `flush_bytes` (minimum 1 — every event goes
    /// straight through, the pre-batching behaviour).
    pub fn with_flush_bytes(w: W, flush_bytes: usize) -> Self {
        let flush_bytes = flush_bytes.max(1);
        JsonlSink {
            w: Some(w),
            buf: String::with_capacity(flush_bytes.min(JSONL_FLUSH_BYTES) + 256),
            flush_bytes,
            written: 0,
            error: None,
        }
    }

    /// Lines encoded so far (buffered or already written).
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first write error, if any occurred (later events after an
    /// error are silently skipped rather than panicking mid-simulation).
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> W {
        self.drain(true);
        self.w.take().expect("writer present until into_inner")
    }

    /// Write the buffered lines out; `fsync` also flushes the writer.
    fn drain(&mut self, fsync: bool) {
        let w = match self.w.as_mut() {
            Some(w) => w,
            None => return,
        };
        if self.error.is_none() && !self.buf.is_empty() {
            if let Err(e) = w.write_all(self.buf.as_bytes()) {
                self.error = Some(e);
            }
        }
        self.buf.clear();
        if fsync && self.error.is_none() {
            if let Err(e) = w.flush() {
                self.error = Some(e);
            }
        }
    }
}

impl<W: io::Write> Sink for JsonlSink<W> {
    fn record(&mut self, ev: &Event) {
        if self.error.is_some() {
            return;
        }
        ev.encode(&mut self.buf);
        self.buf.push('\n');
        self.written += 1;
        if self.buf.len() >= self.flush_bytes {
            self.drain(false);
        }
    }

    fn flush(&mut self) {
        self.drain(true);
    }
}

impl<W: io::Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        self.drain(true);
    }
}

/// A clonable in-memory byte buffer implementing [`io::Write`].
///
/// The sweep executor's JSONL capture seam: an engine owns a
/// `JsonlSink<SharedBuf>` while the sweep cell keeps a clone of the same
/// buffer, so after `flush_telemetry` the cell can take the bytes back
/// out and hand them to the merge step — one buffer per cell,
/// concatenated in cell order, no shared file handles between workers.
#[derive(Clone, Debug, Default)]
pub struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl SharedBuf {
    /// A fresh, empty buffer.
    pub fn new() -> Self {
        SharedBuf::default()
    }

    /// Take the accumulated bytes, leaving the buffer empty.
    pub fn take(&self) -> Vec<u8> {
        std::mem::take(&mut *self.0.lock().expect("SharedBuf poisoned"))
    }

    /// Take the accumulated bytes as UTF-8 text (JSONL output is always
    /// valid UTF-8), leaving the buffer empty.
    pub fn take_string(&self) -> String {
        String::from_utf8(self.take()).expect("JSONL output is UTF-8")
    }

    /// Bytes accumulated so far.
    pub fn len(&self) -> usize {
        self.0.lock().expect("SharedBuf poisoned").len()
    }

    /// True when nothing has been written (or everything taken).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .expect("SharedBuf poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(time: u64) -> Event {
        Event {
            time,
            node: 1,
            kind: EventKind::Timer { token: time },
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(&ev(1));
        assert!(s.snapshot().is_empty());
    }

    #[test]
    fn ring_keeps_the_most_recent() {
        let mut s = RingSink::new(3);
        assert!(s.is_empty());
        for t in 0..5 {
            s.record(&ev(t));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.evicted(), 2);
        let times: Vec<u64> = s.snapshot().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn shared_buf_captures_jsonl() {
        let buf = SharedBuf::new();
        let mut s = JsonlSink::new(buf.clone());
        for t in 0..3 {
            s.record(&ev(t));
        }
        s.flush();
        let text = buf.take_string();
        assert_eq!(text.lines().count(), 3);
        assert!(buf.is_empty(), "take drains the buffer");
        let back = crate::event::decode_events(&text).unwrap();
        assert_eq!(back, vec![ev(0), ev(1), ev(2)]);
    }

    #[test]
    fn jsonl_batches_until_the_threshold() {
        let buf = SharedBuf::new();
        let mut s = JsonlSink::with_flush_bytes(buf.clone(), 1 << 20);
        for t in 0..10 {
            s.record(&ev(t));
        }
        assert_eq!(s.written(), 10);
        assert!(buf.is_empty(), "lines stay buffered below the threshold");
        s.flush();
        assert_eq!(buf.take_string().lines().count(), 10);
    }

    #[test]
    fn jsonl_threshold_one_streams_every_line() {
        let buf = SharedBuf::new();
        let mut s = JsonlSink::with_flush_bytes(buf.clone(), 1);
        s.record(&ev(7));
        assert_eq!(buf.take_string().lines().count(), 1);
    }

    #[test]
    fn jsonl_flushes_on_drop() {
        let buf = SharedBuf::new();
        {
            let mut s = JsonlSink::new(buf.clone());
            for t in 0..3 {
                s.record(&ev(t));
            }
            assert!(buf.is_empty(), "still buffered");
        }
        assert_eq!(buf.take_string().lines().count(), 3, "drop drains");
    }

    #[test]
    fn jsonl_streams_lines() {
        let mut s = JsonlSink::new(Vec::new());
        for t in 0..3 {
            s.record(&ev(t));
        }
        s.flush();
        assert_eq!(s.written(), 3);
        assert!(s.error().is_none());
        let buf = s.into_inner();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
        let back = crate::event::decode_events(&text).unwrap();
        assert_eq!(back, vec![ev(0), ev(1), ev(2)]);
    }
}
