//! The structured event vocabulary and its JSONL wire form.
//!
//! One [`Event`] describes one observable occurrence inside a simulation
//! run: a dispatch (packet/timer/app), a fault firing, a drop with its
//! reason, a local delivery with its end-to-end delay, a completed tree
//! repair, or a periodic gauge sample. Events are protocol-agnostic —
//! node and group identifiers are plain integers so this crate depends
//! on nothing else in the workspace.
//!
//! The JSONL form is one object per line with a fixed key order, so a
//! trace file diffs cleanly and can serve as a golden snapshot:
//!
//! ```text
//! {"t":10000,"node":1,"kind":"send","group":1,"tag":1}
//! {"t":10003,"node":0,"kind":"deliver","from":1,"class":"data","group":1,"tag":1}
//! ```

use serde::Deserialize;
use std::fmt::Write as _;

/// Overhead class of a delivered packet, mirroring the simulator's
/// data/control split without depending on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficClass {
    /// Multicast payload.
    Data,
    /// Protocol traffic (JOIN/LEAVE, TREE/BRANCH, acks, ...).
    Control,
}

impl TrafficClass {
    /// Stable string used in the JSONL form and reports.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::Data => "data",
            TrafficClass::Control => "control",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "data" => Some(TrafficClass::Data),
            "control" => Some(TrafficClass::Control),
            _ => None,
        }
    }
}

/// Why a packet was dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The link (or an endpoint) was out of service.
    DeadLink,
    /// The destination node was down when the event fired.
    DeadNode,
    /// The bounded link queue overflowed (congestion loss).
    QueueFull,
    /// No unicast route existed (partitioned topology).
    NoRoute,
    /// A send to a router that is not a neighbour (repair scan racing a
    /// topology change).
    NonNeighbour,
    /// A protocol decision (e.g. packet from outside the forwarding set).
    Protocol,
    /// The channel model lost the packet on the wire.
    ChannelLoss,
    /// The packet arrived corrupted and failed the receiver's checksum.
    Corrupt,
    /// The frame carried a message kind this build does not implement
    /// (a future protocol revision); the checksum was valid, so the
    /// frame is counted and skipped rather than treated as corruption.
    UnknownKind,
}

impl DropReason {
    /// Stable string used in the JSONL form and reports.
    pub fn label(self) -> &'static str {
        match self {
            DropReason::DeadLink => "dead_link",
            DropReason::DeadNode => "dead_node",
            DropReason::QueueFull => "queue_full",
            DropReason::NoRoute => "no_route",
            DropReason::NonNeighbour => "non_neighbour",
            DropReason::Protocol => "protocol",
            DropReason::ChannelLoss => "channel_loss",
            DropReason::Corrupt => "corrupt",
            DropReason::UnknownKind => "unknown_kind",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "dead_link" => Some(DropReason::DeadLink),
            "dead_node" => Some(DropReason::DeadNode),
            "queue_full" => Some(DropReason::QueueFull),
            "no_route" => Some(DropReason::NoRoute),
            "non_neighbour" => Some(DropReason::NonNeighbour),
            "protocol" => Some(DropReason::Protocol),
            "channel_loss" => Some(DropReason::ChannelLoss),
            "corrupt" => Some(DropReason::Corrupt),
            "unknown_kind" => Some(DropReason::UnknownKind),
            _ => None,
        }
    }
}

/// Control-plane message kind on a delivered packet, mirroring the SCMP
/// wire vocabulary without depending on it. Protocols that don't
/// classify their messages simply omit it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtlKind {
    /// Membership request toward the m-router.
    Join,
    /// Membership withdrawal toward the m-router.
    Leave,
    /// Upstream branch teardown.
    Prune,
    /// Full tree-state install from the m-router.
    Tree,
    /// Incremental graft install.
    Branch,
    /// Stale-state flush after a restructure.
    Flush,
    /// Multicast payload on the tree.
    Data,
    /// Payload tunnelled to the m-router by an off-tree DR.
    EncapData,
    /// m-router liveness beacon.
    Heartbeat,
    /// Primary→standby membership mirror.
    StandbySync,
    /// Takeover announcement from a promoted standby.
    NewMRouter,
    /// m-router acknowledgement of a LEAVE.
    LeaveAck,
    /// Hop-by-hop acknowledgement of a TREE/BRANCH install.
    TreeAck,
    /// Receiver-driven repair request for a missing data sequence.
    Nack,
    /// Cached-payload retransmission answering a NACK.
    Repair,
    /// Sequence-extent beacon closing the tail-loss window.
    SeqAnnounce,
}

impl CtlKind {
    /// Stable string used in the JSONL form and journey reports.
    pub fn label(self) -> &'static str {
        match self {
            CtlKind::Join => "join",
            CtlKind::Leave => "leave",
            CtlKind::Prune => "prune",
            CtlKind::Tree => "tree",
            CtlKind::Branch => "branch",
            CtlKind::Flush => "flush",
            CtlKind::Data => "data",
            CtlKind::EncapData => "encap",
            CtlKind::Heartbeat => "heartbeat",
            CtlKind::StandbySync => "sync",
            CtlKind::NewMRouter => "new_mrouter",
            CtlKind::LeaveAck => "leave_ack",
            CtlKind::TreeAck => "tree_ack",
            CtlKind::Nack => "nack",
            CtlKind::Repair => "repair",
            CtlKind::SeqAnnounce => "announce",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "join" => Some(CtlKind::Join),
            "leave" => Some(CtlKind::Leave),
            "prune" => Some(CtlKind::Prune),
            "tree" => Some(CtlKind::Tree),
            "branch" => Some(CtlKind::Branch),
            "flush" => Some(CtlKind::Flush),
            "data" => Some(CtlKind::Data),
            "encap" => Some(CtlKind::EncapData),
            "heartbeat" => Some(CtlKind::Heartbeat),
            "sync" => Some(CtlKind::StandbySync),
            "new_mrouter" => Some(CtlKind::NewMRouter),
            "leave_ack" => Some(CtlKind::LeaveAck),
            "tree_ack" => Some(CtlKind::TreeAck),
            "nack" => Some(CtlKind::Nack),
            "repair" => Some(CtlKind::Repair),
            "announce" => Some(CtlKind::SeqAnnounce),
            _ => None,
        }
    }
}

/// What caused a tree-health sample to be taken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthTrigger {
    /// A member join (re)built or grafted the tree.
    Join,
    /// A member leave pruned the tree.
    Leave,
    /// The repair scan rebuilt the tree on the surviving topology.
    Repair,
    /// A promoted standby rebuilt the tree after takeover.
    Takeover,
}

impl HealthTrigger {
    /// Stable string used in the JSONL form and reports.
    pub fn label(self) -> &'static str {
        match self {
            HealthTrigger::Join => "join",
            HealthTrigger::Leave => "leave",
            HealthTrigger::Repair => "repair",
            HealthTrigger::Takeover => "takeover",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "join" => Some(HealthTrigger::Join),
            "leave" => Some(HealthTrigger::Leave),
            "repair" => Some(HealthTrigger::Repair),
            "takeover" => Some(HealthTrigger::Takeover),
            _ => None,
        }
    }
}

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A host on the node's subnet joined `group`.
    Join { group: u32 },
    /// The last host on the node's subnet left `group`.
    Leave { group: u32 },
    /// A local host injected payload `tag` for `group`.
    Send { group: u32, tag: u64 },
    /// A packet was handed to the node's router. `ctl` is the
    /// protocol-level message kind when the router classifies its
    /// messages (`None` for protocols that don't).
    Deliver {
        from: u32,
        class: TrafficClass,
        group: u32,
        tag: u64,
        ctl: Option<CtlKind>,
    },
    /// A data payload reached the member hosts attached to the node,
    /// `delay` ticks after its source injected it.
    DeliverLocal { group: u32, tag: u64, delay: u64 },
    /// A protocol timer fired.
    Timer { token: u64 },
    /// The link `a`–`b` went out of service.
    LinkDown { a: u32, b: u32 },
    /// The link `a`–`b` was restored.
    LinkUp { a: u32, b: u32 },
    /// The node crashed (state wiped).
    RouterCrash,
    /// The node recovered with factory-fresh state.
    RouterRecover,
    /// A packet was dropped at the node. `to` is the intended next hop
    /// when one was known at the drop point (`None` otherwise);
    /// `group`/`tag` carry the dropped packet's correlation key when the
    /// drop point still had the packet in hand, so journeys can show
    /// where a transaction died.
    Drop {
        reason: DropReason,
        to: Option<u32>,
        group: Option<u32>,
        tag: Option<u64>,
    },
    /// The m-router's repair scan completed a tree repair, `latency`
    /// ticks after the most recent injected failure.
    Repair { latency: u64 },
    /// A periodic gauge sample (the node id is not meaningful).
    Gauge {
        queue_depth: u64,
        down_links: u64,
        down_nodes: u64,
        deliveries: u64,
    },
    /// The channel model delivered a second copy of a packet to `to`.
    ChannelDuplicate { to: u32, group: u32, tag: u64 },
    /// The channel model delayed a packet to `to` by `jitter` extra
    /// ticks (later packets can overtake it).
    ChannelReorder {
        to: u32,
        jitter: u64,
        group: u32,
        tag: u64,
    },
    /// The node retransmitted a control message to `to` (attempt
    /// numbers start at 1). `tag` is the transaction's trace key.
    Retransmit {
        group: u32,
        to: u32,
        attempt: u32,
        tag: u64,
    },
    /// A standby promoted itself to m-router.
    Takeover,
    /// A tree-health sample taken after a tree build/repair at the
    /// m-router: member count, max hop depth, total edge cost, mean
    /// delay stretch vs unicast (×1000), and inter-member delay
    /// variation (max − min delivery delay, in ticks).
    TreeHealth {
        group: u32,
        trigger: HealthTrigger,
        members: u32,
        depth: u32,
        cost: u64,
        stretch_milli: u64,
        delay_var: u64,
    },
    /// The node requested a repair for `(group, origin, seq)` on the
    /// reliability tier. `tag` is the payload's causal trace key so the
    /// NACK joins the data packet's journey.
    Nack {
        group: u32,
        origin: u32,
        seq: u64,
        tag: u64,
    },
    /// A would-be NACK was absorbed by a pending-request entry at the
    /// node (duplicate-NACK suppression on the repair path).
    NackSuppress {
        group: u32,
        origin: u32,
        seq: u64,
        tag: u64,
    },
    /// A NACK was answered from the node's local repair cache.
    RepairHit {
        group: u32,
        origin: u32,
        seq: u64,
        tag: u64,
    },
    /// A NACK missed the node's repair cache and had to go upstream.
    RepairMiss {
        group: u32,
        origin: u32,
        seq: u64,
        tag: u64,
    },
    /// A previously detected data gap closed at a receiver, `latency`
    /// ticks after the gap was first observed.
    Recovery {
        group: u32,
        origin: u32,
        seq: u64,
        tag: u64,
        latency: u64,
    },
    /// The m-router's repair scan found part of the domain unreachable
    /// (a network partition): `stranded` nodes are cut off, `members`
    /// of them are logged group members the scan must keep on the books
    /// for readoption.
    Partition { stranded: u32, members: u32 },
    /// Previously unreachable nodes became reachable again (the
    /// partition healed): `restored` nodes rejoined the m-router's
    /// component.
    Heal { restored: u32 },
    /// Post-heal reconciliation for one group: the surviving root
    /// readopted `readopted` stranded members under generation `epoch`
    /// (the epoch-guarded merge that resolves any dual-root race).
    Reconcile {
        group: u32,
        readopted: u32,
        epoch: u64,
    },
}

/// Append `s` to `out` as a JSON string literal (surrounding quotes
/// included), escaping `"`, `\` and every control character so the
/// result is always one parseable JSON token — a label like `node "a"`
/// or an embedded newline can never split or corrupt a JSONL line.
///
/// Every string the fixed-key-order codec emits goes through this
/// helper. `&str` input is valid UTF-8 by construction; byte-oriented
/// callers sanitise first with [`sanitize_label`].
pub fn encode_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Sanitise possibly-invalid UTF-8 into a string the codec can carry:
/// invalid sequences are replaced with U+FFFD rather than rejected, so
/// hostile input degrades to a visible marker instead of unparseable
/// output.
pub fn sanitize_label(bytes: &[u8]) -> std::borrow::Cow<'_, str> {
    String::from_utf8_lossy(bytes)
}

/// One structured trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Simulation time the event fired.
    pub time: u64,
    /// The router it fired at (0 and not meaningful for gauges).
    pub node: u32,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Append the event's JSONL line (no trailing newline) to `out`.
    /// Keys are emitted in a fixed order so traces are diffable.
    pub fn encode(&self, out: &mut String) {
        let _ = write!(out, "{{\"t\":{},\"node\":{}", self.time, self.node);
        match self.kind {
            EventKind::Join { group } => {
                let _ = write!(out, ",\"kind\":\"join\",\"group\":{group}");
            }
            EventKind::Leave { group } => {
                let _ = write!(out, ",\"kind\":\"leave\",\"group\":{group}");
            }
            EventKind::Send { group, tag } => {
                let _ = write!(out, ",\"kind\":\"send\",\"group\":{group},\"tag\":{tag}");
            }
            EventKind::Deliver {
                from,
                class,
                group,
                tag,
                ctl,
            } => {
                let _ = write!(out, ",\"kind\":\"deliver\",\"from\":{from},\"class\":");
                encode_json_string(class.label(), out);
                let _ = write!(out, ",\"group\":{group},\"tag\":{tag}");
                if let Some(ctl) = ctl {
                    out.push_str(",\"ctl\":");
                    encode_json_string(ctl.label(), out);
                }
            }
            EventKind::DeliverLocal { group, tag, delay } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"deliver_local\",\"group\":{group},\"tag\":{tag},\"delay\":{delay}"
                );
            }
            EventKind::Timer { token } => {
                let _ = write!(out, ",\"kind\":\"timer\",\"token\":{token}");
            }
            EventKind::LinkDown { a, b } => {
                let _ = write!(out, ",\"kind\":\"link_down\",\"a\":{a},\"b\":{b}");
            }
            EventKind::LinkUp { a, b } => {
                let _ = write!(out, ",\"kind\":\"link_up\",\"a\":{a},\"b\":{b}");
            }
            EventKind::RouterCrash => {
                let _ = write!(out, ",\"kind\":\"crash\"");
            }
            EventKind::RouterRecover => {
                let _ = write!(out, ",\"kind\":\"recover\"");
            }
            EventKind::Drop {
                reason,
                to,
                group,
                tag,
            } => {
                out.push_str(",\"kind\":\"drop\",\"reason\":");
                encode_json_string(reason.label(), out);
                if let Some(to) = to {
                    let _ = write!(out, ",\"to\":{to}");
                }
                if let Some(group) = group {
                    let _ = write!(out, ",\"group\":{group}");
                }
                if let Some(tag) = tag {
                    let _ = write!(out, ",\"tag\":{tag}");
                }
            }
            EventKind::Repair { latency } => {
                let _ = write!(out, ",\"kind\":\"repair\",\"latency\":{latency}");
            }
            EventKind::Gauge {
                queue_depth,
                down_links,
                down_nodes,
                deliveries,
            } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"gauge\",\"queue_depth\":{queue_depth},\"down_links\":{down_links},\"down_nodes\":{down_nodes},\"deliveries\":{deliveries}"
                );
            }
            EventKind::ChannelDuplicate { to, group, tag } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"channel_duplicate\",\"to\":{to},\"group\":{group},\"tag\":{tag}"
                );
            }
            EventKind::ChannelReorder {
                to,
                jitter,
                group,
                tag,
            } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"channel_reorder\",\"to\":{to},\"jitter\":{jitter},\"group\":{group},\"tag\":{tag}"
                );
            }
            EventKind::Retransmit {
                group,
                to,
                attempt,
                tag,
            } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"retransmit\",\"group\":{group},\"to\":{to},\"attempt\":{attempt},\"tag\":{tag}"
                );
            }
            EventKind::Takeover => {
                let _ = write!(out, ",\"kind\":\"takeover\"");
            }
            EventKind::TreeHealth {
                group,
                trigger,
                members,
                depth,
                cost,
                stretch_milli,
                delay_var,
            } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"tree_health\",\"group\":{group},\"trigger\":"
                );
                encode_json_string(trigger.label(), out);
                let _ = write!(
                    out,
                    ",\"members\":{members},\"depth\":{depth},\"cost\":{cost},\"stretch_milli\":{stretch_milli},\"delay_var\":{delay_var}"
                );
            }
            EventKind::Nack {
                group,
                origin,
                seq,
                tag,
            } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"nack\",\"group\":{group},\"origin\":{origin},\"seq\":{seq},\"tag\":{tag}"
                );
            }
            EventKind::NackSuppress {
                group,
                origin,
                seq,
                tag,
            } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"nack_suppress\",\"group\":{group},\"origin\":{origin},\"seq\":{seq},\"tag\":{tag}"
                );
            }
            EventKind::RepairHit {
                group,
                origin,
                seq,
                tag,
            } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"repair_hit\",\"group\":{group},\"origin\":{origin},\"seq\":{seq},\"tag\":{tag}"
                );
            }
            EventKind::RepairMiss {
                group,
                origin,
                seq,
                tag,
            } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"repair_miss\",\"group\":{group},\"origin\":{origin},\"seq\":{seq},\"tag\":{tag}"
                );
            }
            EventKind::Recovery {
                group,
                origin,
                seq,
                tag,
                latency,
            } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"recovery\",\"group\":{group},\"origin\":{origin},\"seq\":{seq},\"tag\":{tag},\"latency\":{latency}"
                );
            }
            EventKind::Partition { stranded, members } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"partition\",\"stranded\":{stranded},\"members\":{members}"
                );
            }
            EventKind::Heal { restored } => {
                let _ = write!(out, ",\"kind\":\"heal\",\"restored\":{restored}");
            }
            EventKind::Reconcile {
                group,
                readopted,
                epoch,
            } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"reconcile\",\"group\":{group},\"readopted\":{readopted},\"epoch\":{epoch}"
                );
            }
        }
        out.push('}');
    }

    /// The event's JSONL line as an owned string.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        self.encode(&mut s);
        s
    }

    /// Parse one JSONL line.
    pub fn decode(line: &str) -> Result<Event, String> {
        let raw: RawEvent = serde_json::from_str(line).map_err(|e| e.to_string())?;
        raw.into_event()
    }
}

/// Encode a slice of events as a complete JSONL document (one line per
/// event, trailing newline).
pub fn encode_events(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        ev.encode(&mut out);
        out.push('\n');
    }
    out
}

/// Parse a JSONL document (blank lines ignored) back into events.
pub fn decode_events(jsonl: &str) -> Result<Vec<Event>, String> {
    let mut out = Vec::new();
    for (i, line) in jsonl.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ev = Event::decode(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(ev);
    }
    Ok(out)
}

/// The permissive parse-side shape: every per-kind field optional.
#[derive(Deserialize)]
struct RawEvent {
    t: u64,
    node: u32,
    kind: String,
    group: Option<u32>,
    tag: Option<u64>,
    from: Option<u32>,
    class: Option<String>,
    token: Option<u64>,
    a: Option<u32>,
    b: Option<u32>,
    to: Option<u32>,
    reason: Option<String>,
    delay: Option<u64>,
    latency: Option<u64>,
    queue_depth: Option<u64>,
    down_links: Option<u64>,
    down_nodes: Option<u64>,
    deliveries: Option<u64>,
    jitter: Option<u64>,
    attempt: Option<u32>,
    ctl: Option<String>,
    trigger: Option<String>,
    members: Option<u32>,
    depth: Option<u32>,
    cost: Option<u64>,
    stretch_milli: Option<u64>,
    delay_var: Option<u64>,
    origin: Option<u32>,
    seq: Option<u64>,
    stranded: Option<u32>,
    restored: Option<u32>,
    readopted: Option<u32>,
    epoch: Option<u64>,
}

impl RawEvent {
    fn into_event(self) -> Result<Event, String> {
        fn need<T>(v: Option<T>, field: &str, kind: &str) -> Result<T, String> {
            v.ok_or_else(|| format!("{kind} event missing field {field:?}"))
        }
        let kind = match self.kind.as_str() {
            "join" => EventKind::Join {
                group: need(self.group, "group", "join")?,
            },
            "leave" => EventKind::Leave {
                group: need(self.group, "group", "leave")?,
            },
            "send" => EventKind::Send {
                group: need(self.group, "group", "send")?,
                tag: need(self.tag, "tag", "send")?,
            },
            "deliver" => EventKind::Deliver {
                from: need(self.from, "from", "deliver")?,
                class: need(
                    self.class.as_deref().and_then(TrafficClass::parse),
                    "class",
                    "deliver",
                )?,
                group: need(self.group, "group", "deliver")?,
                tag: need(self.tag, "tag", "deliver")?,
                ctl: match self.ctl.as_deref() {
                    None => None,
                    Some(s) => Some(need(CtlKind::parse(s), "ctl", "deliver")?),
                },
            },
            "deliver_local" => EventKind::DeliverLocal {
                group: need(self.group, "group", "deliver_local")?,
                tag: need(self.tag, "tag", "deliver_local")?,
                delay: need(self.delay, "delay", "deliver_local")?,
            },
            "timer" => EventKind::Timer {
                token: need(self.token, "token", "timer")?,
            },
            "link_down" => EventKind::LinkDown {
                a: need(self.a, "a", "link_down")?,
                b: need(self.b, "b", "link_down")?,
            },
            "link_up" => EventKind::LinkUp {
                a: need(self.a, "a", "link_up")?,
                b: need(self.b, "b", "link_up")?,
            },
            "crash" => EventKind::RouterCrash,
            "recover" => EventKind::RouterRecover,
            "drop" => EventKind::Drop {
                reason: need(
                    self.reason.as_deref().and_then(DropReason::parse),
                    "reason",
                    "drop",
                )?,
                to: self.to,
                group: self.group,
                tag: self.tag,
            },
            "repair" => EventKind::Repair {
                latency: need(self.latency, "latency", "repair")?,
            },
            "gauge" => EventKind::Gauge {
                queue_depth: need(self.queue_depth, "queue_depth", "gauge")?,
                down_links: need(self.down_links, "down_links", "gauge")?,
                down_nodes: need(self.down_nodes, "down_nodes", "gauge")?,
                deliveries: need(self.deliveries, "deliveries", "gauge")?,
            },
            "channel_duplicate" => EventKind::ChannelDuplicate {
                to: need(self.to, "to", "channel_duplicate")?,
                group: need(self.group, "group", "channel_duplicate")?,
                tag: need(self.tag, "tag", "channel_duplicate")?,
            },
            "channel_reorder" => EventKind::ChannelReorder {
                to: need(self.to, "to", "channel_reorder")?,
                jitter: need(self.jitter, "jitter", "channel_reorder")?,
                group: need(self.group, "group", "channel_reorder")?,
                tag: need(self.tag, "tag", "channel_reorder")?,
            },
            "retransmit" => EventKind::Retransmit {
                group: need(self.group, "group", "retransmit")?,
                to: need(self.to, "to", "retransmit")?,
                attempt: need(self.attempt, "attempt", "retransmit")?,
                tag: need(self.tag, "tag", "retransmit")?,
            },
            "takeover" => EventKind::Takeover,
            "tree_health" => EventKind::TreeHealth {
                group: need(self.group, "group", "tree_health")?,
                trigger: need(
                    self.trigger.as_deref().and_then(HealthTrigger::parse),
                    "trigger",
                    "tree_health",
                )?,
                members: need(self.members, "members", "tree_health")?,
                depth: need(self.depth, "depth", "tree_health")?,
                cost: need(self.cost, "cost", "tree_health")?,
                stretch_milli: need(self.stretch_milli, "stretch_milli", "tree_health")?,
                delay_var: need(self.delay_var, "delay_var", "tree_health")?,
            },
            "nack" => EventKind::Nack {
                group: need(self.group, "group", "nack")?,
                origin: need(self.origin, "origin", "nack")?,
                seq: need(self.seq, "seq", "nack")?,
                tag: need(self.tag, "tag", "nack")?,
            },
            "nack_suppress" => EventKind::NackSuppress {
                group: need(self.group, "group", "nack_suppress")?,
                origin: need(self.origin, "origin", "nack_suppress")?,
                seq: need(self.seq, "seq", "nack_suppress")?,
                tag: need(self.tag, "tag", "nack_suppress")?,
            },
            "repair_hit" => EventKind::RepairHit {
                group: need(self.group, "group", "repair_hit")?,
                origin: need(self.origin, "origin", "repair_hit")?,
                seq: need(self.seq, "seq", "repair_hit")?,
                tag: need(self.tag, "tag", "repair_hit")?,
            },
            "repair_miss" => EventKind::RepairMiss {
                group: need(self.group, "group", "repair_miss")?,
                origin: need(self.origin, "origin", "repair_miss")?,
                seq: need(self.seq, "seq", "repair_miss")?,
                tag: need(self.tag, "tag", "repair_miss")?,
            },
            "recovery" => EventKind::Recovery {
                group: need(self.group, "group", "recovery")?,
                origin: need(self.origin, "origin", "recovery")?,
                seq: need(self.seq, "seq", "recovery")?,
                tag: need(self.tag, "tag", "recovery")?,
                latency: need(self.latency, "latency", "recovery")?,
            },
            "partition" => EventKind::Partition {
                stranded: need(self.stranded, "stranded", "partition")?,
                members: need(self.members, "members", "partition")?,
            },
            "heal" => EventKind::Heal {
                restored: need(self.restored, "restored", "heal")?,
            },
            "reconcile" => EventKind::Reconcile {
                group: need(self.group, "group", "reconcile")?,
                readopted: need(self.readopted, "readopted", "reconcile")?,
                epoch: need(self.epoch, "epoch", "reconcile")?,
            },
            other => return Err(format!("unknown event kind {other:?}")),
        };
        Ok(Event {
            time: self.t,
            node: self.node,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<Event> {
        vec![
            Event {
                time: 0,
                node: 4,
                kind: EventKind::Join { group: 1 },
            },
            Event {
                time: 1,
                node: 4,
                kind: EventKind::Leave { group: 1 },
            },
            Event {
                time: 2,
                node: 1,
                kind: EventKind::Send { group: 1, tag: 9 },
            },
            Event {
                time: 3,
                node: 0,
                kind: EventKind::Deliver {
                    from: 1,
                    class: TrafficClass::Data,
                    group: 1,
                    tag: 9,
                    ctl: None,
                },
            },
            Event {
                time: 4,
                node: 0,
                kind: EventKind::Deliver {
                    from: 1,
                    class: TrafficClass::Control,
                    group: 1,
                    tag: crate::trace_key::pack_ctl_tag(4, 1),
                    ctl: Some(CtlKind::Join),
                },
            },
            Event {
                time: 5,
                node: 3,
                kind: EventKind::DeliverLocal {
                    group: 1,
                    tag: 9,
                    delay: 42,
                },
            },
            Event {
                time: 6,
                node: 2,
                kind: EventKind::Timer { token: 7 },
            },
            Event {
                time: 7,
                node: 0,
                kind: EventKind::LinkDown { a: 0, b: 2 },
            },
            Event {
                time: 8,
                node: 0,
                kind: EventKind::LinkUp { a: 0, b: 2 },
            },
            Event {
                time: 9,
                node: 4,
                kind: EventKind::RouterCrash,
            },
            Event {
                time: 10,
                node: 4,
                kind: EventKind::RouterRecover,
            },
            Event {
                time: 11,
                node: 5,
                kind: EventKind::Drop {
                    reason: DropReason::NonNeighbour,
                    to: Some(3),
                    group: Some(1),
                    tag: Some(9),
                },
            },
            Event {
                time: 12,
                node: 5,
                kind: EventKind::Drop {
                    reason: DropReason::QueueFull,
                    to: None,
                    group: None,
                    tag: None,
                },
            },
            Event {
                time: 13,
                node: 0,
                kind: EventKind::Repair { latency: 1200 },
            },
            Event {
                time: 14,
                node: 0,
                kind: EventKind::Gauge {
                    queue_depth: 17,
                    down_links: 1,
                    down_nodes: 0,
                    deliveries: 6,
                },
            },
            Event {
                time: 15,
                node: 2,
                kind: EventKind::Drop {
                    reason: DropReason::ChannelLoss,
                    to: Some(4),
                    group: Some(1),
                    tag: Some(crate::trace_key::pack_ctl_tag(2, 3)),
                },
            },
            Event {
                time: 16,
                node: 2,
                kind: EventKind::Drop {
                    reason: DropReason::Corrupt,
                    to: None,
                    group: None,
                    tag: None,
                },
            },
            Event {
                time: 17,
                node: 2,
                kind: EventKind::ChannelDuplicate {
                    to: 4,
                    group: 1,
                    tag: 9,
                },
            },
            Event {
                time: 18,
                node: 2,
                kind: EventKind::ChannelReorder {
                    to: 4,
                    jitter: 11,
                    group: 1,
                    tag: 9,
                },
            },
            Event {
                time: 19,
                node: 2,
                kind: EventKind::Retransmit {
                    group: 1,
                    to: 0,
                    attempt: 2,
                    tag: crate::trace_key::pack_ctl_tag(2, 1),
                },
            },
            Event {
                time: 20,
                node: 6,
                kind: EventKind::Takeover,
            },
            Event {
                time: 21,
                node: 0,
                kind: EventKind::TreeHealth {
                    group: 1,
                    trigger: HealthTrigger::Repair,
                    members: 3,
                    depth: 2,
                    cost: 14,
                    stretch_milli: 1250,
                    delay_var: 6,
                },
            },
            Event {
                time: 22,
                node: 3,
                kind: EventKind::Nack {
                    group: 1,
                    origin: 13,
                    seq: 4,
                    tag: crate::trace_key::pack_ctl_tag(13, 4),
                },
            },
            Event {
                time: 23,
                node: 2,
                kind: EventKind::NackSuppress {
                    group: 1,
                    origin: 13,
                    seq: 4,
                    tag: crate::trace_key::pack_ctl_tag(13, 4),
                },
            },
            Event {
                time: 24,
                node: 2,
                kind: EventKind::RepairHit {
                    group: 1,
                    origin: 13,
                    seq: 4,
                    tag: 5,
                },
            },
            Event {
                time: 25,
                node: 2,
                kind: EventKind::RepairMiss {
                    group: 1,
                    origin: 13,
                    seq: 5,
                    tag: 6,
                },
            },
            Event {
                time: 26,
                node: 3,
                kind: EventKind::Recovery {
                    group: 1,
                    origin: 13,
                    seq: 4,
                    tag: 5,
                    latency: 730,
                },
            },
            Event {
                time: 27,
                node: 3,
                kind: EventKind::Drop {
                    reason: DropReason::UnknownKind,
                    to: None,
                    group: None,
                    tag: None,
                },
            },
            Event {
                time: 28,
                node: 0,
                kind: EventKind::Deliver {
                    from: 2,
                    class: TrafficClass::Control,
                    group: 1,
                    tag: crate::trace_key::pack_ctl_tag(13, 4),
                    ctl: Some(CtlKind::Nack),
                },
            },
            Event {
                time: 29,
                node: 10,
                kind: EventKind::Partition {
                    stranded: 9,
                    members: 3,
                },
            },
            Event {
                time: 30,
                node: 10,
                kind: EventKind::Heal { restored: 9 },
            },
            Event {
                time: 31,
                node: 10,
                kind: EventKind::Reconcile {
                    group: 1,
                    readopted: 3,
                    epoch: 1 << 32,
                },
            },
        ]
    }

    #[test]
    fn every_kind_roundtrips() {
        for ev in all_kinds() {
            let line = ev.to_jsonl();
            let back = Event::decode(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, ev, "roundtrip of {line}");
        }
    }

    #[test]
    fn document_roundtrip_and_blank_lines() {
        let events = all_kinds();
        let mut doc = encode_events(&events);
        doc.push('\n'); // extra blank line must be ignored
        assert_eq!(decode_events(&doc).unwrap(), events);
    }

    #[test]
    fn encoding_is_stable() {
        let ev = Event {
            time: 10_000,
            node: 1,
            kind: EventKind::Send { group: 1, tag: 1 },
        };
        assert_eq!(
            ev.to_jsonl(),
            r#"{"t":10000,"node":1,"kind":"send","group":1,"tag":1}"#
        );
    }

    #[test]
    fn hostile_strings_round_trip_through_the_codec() {
        // The codec must never emit an unparseable line, whatever the
        // string content: quotes, backslashes, control characters,
        // newlines (which would split a JSONL record), and non-ASCII.
        let hostile = [
            "node \"a\"",
            "back\\slash",
            "line\nbreak\r\n",
            "tab\there",
            "nul\u{0}byte",
            "\u{1}\u{2}\u{1f}",
            "quote-end\"",
            "ünïcödé 漢字 🚀",
            "",
            "already\\\"escaped\\\"",
        ];
        for s in hostile {
            let mut line = String::from("{\"label\":");
            encode_json_string(s, &mut line);
            line.push('}');
            assert!(
                !line[1..line.len() - 1].contains('\n'),
                "escaped form must stay on one line: {line:?}"
            );
            let v: serde_json::Value =
                serde_json::from_str(&line).unwrap_or_else(|e| panic!("{line:?}: {e}"));
            let obj = v.as_object().expect("object");
            let (key, val) = &obj[0];
            assert_eq!(key, "label");
            match val {
                serde_json::Value::Str(back) => assert_eq!(back, s, "round trip of {s:?}"),
                other => panic!("expected string, got {other:?}"),
            }
        }
    }

    #[test]
    fn invalid_utf8_is_sanitised_not_propagated() {
        let bad = [0x66, 0x6f, 0x6f, 0xff, 0xfe, 0x62, 0x61, 0x72];
        let label = sanitize_label(&bad);
        assert_eq!(label, "foo\u{fffd}\u{fffd}bar");
        let mut out = String::new();
        encode_json_string(&label, &mut out);
        assert!(serde_json::from_str::<serde_json::Value>(&out).is_ok());
    }

    #[test]
    fn errors_name_the_problem() {
        assert!(Event::decode("{").is_err());
        let missing = r#"{"t":1,"node":2,"kind":"send","group":1}"#;
        assert!(Event::decode(missing).unwrap_err().contains("tag"));
        let unknown = r#"{"t":1,"node":2,"kind":"warp"}"#;
        assert!(Event::decode(unknown).unwrap_err().contains("warp"));
        let bad_ctl = r#"{"t":1,"node":2,"kind":"deliver","from":1,"class":"control","group":1,"tag":5,"ctl":"warp"}"#;
        assert!(Event::decode(bad_ctl).unwrap_err().contains("ctl"));
        let doc = format!("{missing}\n");
        assert!(decode_events(&doc).unwrap_err().starts_with("line 1"));
    }
}
