//! Per-tick time-series gauges sampled at a configurable interval.

use crate::event::{Event, EventKind};

/// One periodic sample of simulator-wide gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GaugeSample {
    /// Simulation time of the sample.
    pub time: u64,
    /// Events waiting in the engine's queue at sample time.
    pub queue_depth: u64,
    /// Links currently administratively down.
    pub down_links: u64,
    /// Routers currently crashed.
    pub down_nodes: u64,
    /// Cumulative distinct local deliveries so far.
    pub deliveries: u64,
}

impl GaugeSample {
    /// The sample as a structured event (node 0, not meaningful).
    pub fn to_event(self) -> Event {
        Event {
            time: self.time,
            node: 0,
            kind: EventKind::Gauge {
                queue_depth: self.queue_depth,
                down_links: self.down_links,
                down_nodes: self.down_nodes,
                deliveries: self.deliveries,
            },
        }
    }

    /// Recover a sample from a gauge event (`None` for other kinds).
    pub fn from_event(ev: &Event) -> Option<GaugeSample> {
        match ev.kind {
            EventKind::Gauge {
                queue_depth,
                down_links,
                down_nodes,
                deliveries,
            } => Some(GaugeSample {
                time: ev.time,
                queue_depth,
                down_links,
                down_nodes,
                deliveries,
            }),
            _ => None,
        }
    }

    /// Delivery rate between `prev` and `self` in deliveries per 1000
    /// ticks (0.0 when no time elapsed).
    pub fn delivery_rate_since(&self, prev: &GaugeSample) -> f64 {
        let dt = self.time.saturating_sub(prev.time);
        if dt == 0 {
            return 0.0;
        }
        let dd = self.deliveries.saturating_sub(prev.deliveries);
        dd as f64 * 1000.0 / dt as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_roundtrip_and_rate() {
        let a = GaugeSample {
            time: 1000,
            queue_depth: 5,
            down_links: 1,
            down_nodes: 0,
            deliveries: 10,
        };
        let b = GaugeSample {
            time: 3000,
            deliveries: 30,
            ..a
        };
        assert_eq!(GaugeSample::from_event(&a.to_event()), Some(a));
        assert_eq!(b.delivery_rate_since(&a), 10.0);
        assert_eq!(a.delivery_rate_since(&a), 0.0);
        let other = Event {
            time: 0,
            node: 1,
            kind: EventKind::Timer { token: 1 },
        };
        assert_eq!(GaugeSample::from_event(&other), None);
    }
}
