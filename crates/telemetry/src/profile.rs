//! Span-style wall-clock profiling: RAII scopes accounted into a
//! per-thread profile table.
//!
//! Simulation runs are single-threaded and the bench harness fans seeds
//! out one run per thread, so a thread-local table needs no locking and
//! attributes every span to the run that produced it. Wall-clock numbers
//! never feed back into the simulation, so determinism is untouched.
//!
//! ```
//! use scmp_telemetry::profile::{self, Span, TimedScope};
//! profile::reset();
//! {
//!     let _t = TimedScope::new(Span::DcdmBuild);
//!     // ... build a tree ...
//! }
//! let p = profile::snapshot();
//! assert_eq!(p.get(Span::DcdmBuild).count, 1);
//! ```

use std::cell::RefCell;
use std::fmt::Write as _;
use std::time::Instant;

/// The instrumented operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Span {
    /// One DCDM tree mutation (join or leave) at the m-router's mirror.
    DcdmBuild,
    /// One pass of the m-router's periodic repair scan.
    RepairScan,
    /// One `Engine::run_until` dispatch batch.
    DispatchBatch,
}

impl Span {
    /// All spans, in report order.
    pub const ALL: [Span; 3] = [Span::DcdmBuild, Span::RepairScan, Span::DispatchBatch];

    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Span::DcdmBuild => "dcdm_build",
            Span::RepairScan => "repair_scan",
            Span::DispatchBatch => "dispatch_batch",
        }
    }

    fn index(self) -> usize {
        match self {
            Span::DcdmBuild => 0,
            Span::RepairScan => 1,
            Span::DispatchBatch => 2,
        }
    }
}

/// Accumulated timing of one span kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed scopes.
    pub count: u64,
    /// Total wall time in nanoseconds.
    pub total_ns: u64,
    /// Longest single scope in nanoseconds.
    pub max_ns: u64,
}

impl SpanStats {
    /// Mean scope duration in nanoseconds, 0.0 when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// The per-run profile table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    spans: [SpanStats; 3],
}

impl Profile {
    /// Stats for one span kind.
    pub fn get(&self, span: Span) -> SpanStats {
        self.spans[span.index()]
    }

    fn record(&mut self, span: Span, ns: u64) {
        let s = &mut self.spans[span.index()];
        s.count += 1;
        s.total_ns = s.total_ns.saturating_add(ns);
        s.max_ns = s.max_ns.max(ns);
    }

    /// An aligned text table (spans with zero scopes omitted).
    pub fn report(&self) -> String {
        let mut out =
            String::from("span            count     total_ms      mean_us       max_us\n");
        for span in Span::ALL {
            let s = self.get(span);
            if s.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<14} {:>6} {:>12.2} {:>12.1} {:>12.1}",
                span.label(),
                s.count,
                s.total_ns as f64 / 1e6,
                s.mean_ns() / 1e3,
                s.max_ns as f64 / 1e3,
            );
        }
        out
    }
}

thread_local! {
    static PROFILE: RefCell<Profile> = RefCell::new(Profile::default());
}

/// Clear this thread's profile table (call before a timed run).
pub fn reset() {
    PROFILE.with(|p| *p.borrow_mut() = Profile::default());
}

/// A copy of this thread's profile table.
pub fn snapshot() -> Profile {
    PROFILE.with(|p| p.borrow().clone())
}

/// RAII timing scope: measures from construction to drop and accounts
/// the elapsed wall time into the thread's profile table.
pub struct TimedScope {
    span: Span,
    start: Instant,
}

impl TimedScope {
    /// Start timing `span`.
    pub fn new(span: Span) -> Self {
        TimedScope {
            span,
            start: Instant::now(),
        }
    }
}

impl Drop for TimedScope {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        PROFILE.with(|p| p.borrow_mut().record(self.span, ns));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_accumulate_per_thread() {
        reset();
        {
            let _a = TimedScope::new(Span::DcdmBuild);
            let _b = TimedScope::new(Span::DcdmBuild);
        }
        {
            let _c = TimedScope::new(Span::RepairScan);
        }
        let p = snapshot();
        assert_eq!(p.get(Span::DcdmBuild).count, 2);
        assert_eq!(p.get(Span::RepairScan).count, 1);
        assert_eq!(p.get(Span::DispatchBatch).count, 0);
        let report = p.report();
        assert!(report.contains("dcdm_build"));
        assert!(!report.contains("dispatch_batch"), "empty spans omitted");
        reset();
        assert_eq!(snapshot().get(Span::DcdmBuild).count, 0);
    }

    #[test]
    fn other_threads_do_not_leak_in() {
        reset();
        std::thread::spawn(|| {
            let _t = TimedScope::new(Span::DispatchBatch);
        })
        .join()
        .unwrap();
        assert_eq!(snapshot().get(Span::DispatchBatch).count, 0);
    }
}
