//! Causal trace keys: the (group, origin, seq) correlation identity.
//!
//! Every control transaction in the simulator — a JOIN and the
//! TREE/BRANCH/ack cascade it causes, a LEAVE and its ack, a repair
//! rebuild — is stamped with one compact key so the inspector can
//! reconstruct the whole causality chain from a flat JSONL trace.
//!
//! The key rides the existing per-packet `tag` field (and the wire
//! header's tag slot), packed so it can never collide with a data
//! payload tag:
//!
//! ```text
//!   bit 63        bits 62..32        bits 31..0
//!   ┌────┬──────────────────────┬──────────────────┐
//!   │ 1  │  origin node (31 b)  │  txn seq (32 b)  │
//!   └────┴──────────────────────┴──────────────────┘
//! ```
//!
//! Data tags are small application-chosen integers with bit 63 clear, so
//! `is_ctl_tag` splits the two spaces exactly. Origins above `2^31 - 1`
//! are masked — simulated topologies top out orders of magnitude below
//! that (10k nodes in the scale study).

/// The high bit marking a packed control-transaction tag.
pub const CTL_TAG_BIT: u64 = 1 << 63;

/// The (group, origin, seq) identity of one control transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceKey {
    /// Multicast group the transaction concerns.
    pub group: u32,
    /// Node that originated the transaction (allocated the seq).
    pub origin: u32,
    /// Per-origin transaction counter, starting at 1.
    pub seq: u32,
}

impl TraceKey {
    /// Build a key. `origin` is masked to 31 bits (see module docs).
    pub fn new(group: u32, origin: u32, seq: u32) -> Self {
        TraceKey {
            group,
            origin: origin & 0x7fff_ffff,
            seq,
        }
    }

    /// The packed tag carried in packet headers and telemetry events.
    pub fn tag(self) -> u64 {
        pack_ctl_tag(self.origin, self.seq)
    }

    /// Recover the key from a `(group, tag)` pair; `None` when `tag` is
    /// a plain data tag (high bit clear).
    pub fn from_tag(group: u32, tag: u64) -> Option<TraceKey> {
        let (origin, seq) = unpack_ctl_tag(tag)?;
        Some(TraceKey { group, origin, seq })
    }
}

impl std::fmt::Display for TraceKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}:n{}#{}", self.group, self.origin, self.seq)
    }
}

/// Pack an (origin, seq) pair into a control tag. Injective for origins
/// below `2^31`; larger origins are masked.
pub fn pack_ctl_tag(origin: u32, seq: u32) -> u64 {
    CTL_TAG_BIT | ((origin as u64 & 0x7fff_ffff) << 32) | seq as u64
}

/// Split a control tag back into (origin, seq); `None` for data tags.
pub fn unpack_ctl_tag(tag: u64) -> Option<(u32, u32)> {
    if tag & CTL_TAG_BIT == 0 {
        return None;
    }
    Some((((tag >> 32) & 0x7fff_ffff) as u32, tag as u32))
}

/// True when `tag` is a packed control-transaction tag.
pub fn is_ctl_tag(tag: u64) -> bool {
    tag & CTL_TAG_BIT != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_and_unpack_round_trip() {
        for (origin, seq) in [(0, 0), (1, 1), (42, 7), (0x7fff_ffff, u32::MAX)] {
            let tag = pack_ctl_tag(origin, seq);
            assert!(is_ctl_tag(tag));
            assert_eq!(unpack_ctl_tag(tag), Some((origin, seq)));
            let key = TraceKey::from_tag(9, tag).unwrap();
            assert_eq!(key, TraceKey::new(9, origin, seq));
            assert_eq!(key.tag(), tag);
        }
    }

    #[test]
    fn data_tags_are_never_control() {
        for tag in [0u64, 1, 12, u64::MAX >> 1] {
            assert!(!is_ctl_tag(tag));
            assert_eq!(unpack_ctl_tag(tag), None);
            assert_eq!(TraceKey::from_tag(1, tag), None);
        }
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(TraceKey::new(3, 14, 2).to_string(), "g3:n14#2");
    }
}
