//! # scmp-telemetry
//!
//! Observability primitives for the SCMP reproduction: structured trace
//! events with a stable JSONL wire form, pluggable event sinks that cost
//! one branch when disabled, log-bucketed latency histograms, per-tick
//! gauge time series, span-style wall-clock profiling, and a trace
//! inspector that answers convergence/audit queries offline.
//!
//! The crate is deliberately protocol-agnostic: node and group ids are
//! plain integers, so it sits below every other workspace crate and can
//! be reused by the simulator, the benches and the `scmp-inspect` CLI
//! without dependency cycles.
//!
//! Layer map:
//!
//! | module      | provides |
//! |-------------|----------|
//! | [`event`]   | [`Event`]/[`EventKind`] vocabulary + JSONL encode/decode |
//! | [`sink`]    | [`Sink`] trait, [`NullSink`], [`RingSink`], [`JsonlSink`] |
//! | [`hist`]    | [`Histogram`] (log buckets, p50/p90/p99) |
//! | [`series`]  | [`GaugeSample`] periodic gauge samples |
//! | [`profile`] | [`Span`]/[`TimedScope`] RAII profiling, per-thread table |
//! | [`inspect`] | [`Trace`] loader + convergence/audit/journey/histogram queries |
//! | [`trace_key`] | [`TraceKey`] (group, origin, seq) causal correlation keys |

pub mod event;
pub mod hist;
pub mod inspect;
pub mod profile;
pub mod series;
pub mod sink;
pub mod trace_key;

pub use event::{
    decode_events, encode_events, encode_json_string, sanitize_label, CtlKind, DropReason, Event,
    EventKind, HealthTrigger, TrafficClass,
};
pub use hist::{bucket_bounds, bucket_index, Histogram, BUCKET_COUNT};
pub use inspect::{Audit, Convergence, ConvergencePoint, Journey, Trace, TraceHistograms};
pub use profile::{Profile, Span, SpanStats, TimedScope};
pub use series::GaugeSample;
pub use sink::{JsonlSink, NullSink, RingSink, SharedBuf, Sink, JSONL_FLUSH_BYTES};
pub use trace_key::{is_ctl_tag, pack_ctl_tag, unpack_ctl_tag, TraceKey, CTL_TAG_BIT};
