//! # scmp-protocols — the protocol registry
//!
//! One place that knows how to construct a simulation engine for every
//! multicast protocol in the workspace: SCMP itself plus the §IV-B
//! baselines (CBT, DVMRP, MOSPF) and the §I-discussed PIM-SM.
//!
//! Experiment harnesses and integration tests used to repeat the same
//! `match protocol { ... Engine::new(...) ... }` block; they now go
//! through [`build_engine`], which erases the per-protocol router type
//! behind [`EngineRunner`]. Code that needs to inspect SCMP state after
//! the run (routing entries, the m-router mirror) uses the typed
//! [`build_scmp_engine`] instead — construction still happens here.

use scmp_baselines::{
    CbtConfig, CbtRouter, DvmrpConfig, DvmrpRouter, MospfRouter, PimConfig, PimSmRouter,
};
use scmp_core::router::{ScmpConfig, ScmpDomain, ScmpRouter};
use scmp_net::{NodeId, Topology};
use scmp_sim::{Engine, EngineRunner};
use serde::Serialize;
use std::sync::Arc;

/// Every protocol the workspace can simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum ProtocolKind {
    /// The paper's service-centric multicast protocol.
    Scmp,
    /// Core-based trees (shared bidirectional tree, join + ack).
    Cbt,
    /// DVMRP flood-and-prune (source-rooted broadcast trees).
    Dvmrp,
    /// Multicast OSPF (per-source shortest-path trees from the LSDB).
    Mospf,
    /// PIM sparse mode (unidirectional shared tree rooted at the RP).
    PimSm,
}

impl ProtocolKind {
    /// Every registered protocol.
    pub const ALL: [ProtocolKind; 5] = [
        ProtocolKind::Scmp,
        ProtocolKind::Cbt,
        ProtocolKind::Dvmrp,
        ProtocolKind::Mospf,
        ProtocolKind::PimSm,
    ];

    /// The four protocols of the paper's Fig. 8/9 comparison, in its
    /// order of discussion.
    pub const FIG_8_9: [ProtocolKind; 4] = [
        ProtocolKind::Scmp,
        ProtocolKind::Cbt,
        ProtocolKind::Dvmrp,
        ProtocolKind::Mospf,
    ];

    /// The shared-tree trio of the PIM-SM side experiment.
    pub const SHARED_TREE: [ProtocolKind; 3] =
        [ProtocolKind::Scmp, ProtocolKind::Cbt, ProtocolKind::PimSm];

    /// Output label (also the accepted [`parse`](Self::parse) spelling).
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Scmp => "scmp",
            ProtocolKind::Cbt => "cbt",
            ProtocolKind::Dvmrp => "dvmrp",
            ProtocolKind::Mospf => "mospf",
            ProtocolKind::PimSm => "pim-sm",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn parse(s: &str) -> Option<ProtocolKind> {
        ProtocolKind::ALL.into_iter().find(|k| k.label() == s)
    }
}

/// Everything a protocol needs beyond the topology. The `center` doubles
/// as SCMP's m-router, CBT's core and PIM-SM's rendezvous point, so the
/// comparisons place all shared-tree roots on the same node.
#[derive(Clone, Copy, Debug)]
pub struct ProtocolParams {
    /// Shared-tree root: m-router / core / RP. Ignored by the
    /// source-rooted protocols (DVMRP, MOSPF).
    pub center: NodeId,
    /// DVMRP prune lifetime; the flood-prune cycle repeats at this
    /// period. Ignored by everything else.
    pub dvmrp_prune_timeout: u64,
}

impl ProtocolParams {
    /// Params with the paper's 10-second DVMRP prune lifetime
    /// (10 × 50 000 ticks).
    pub fn new(center: NodeId) -> Self {
        ProtocolParams {
            center,
            dvmrp_prune_timeout: 500_000,
        }
    }
}

/// Build an SCMP engine with full control over the [`ScmpConfig`]
/// (standby, repair scan, retries, ablations). The typed return keeps
/// `engine.router(n)` inspection available to tests.
pub fn build_scmp_engine(topo: Topology, config: ScmpConfig) -> Engine<ScmpRouter> {
    let domain = ScmpDomain::new(topo, config);
    Engine::new(domain.topo.clone(), move |me, _, _| {
        ScmpRouter::new(me, Arc::clone(&domain))
    })
}

/// The registry: construct an engine for any protocol, erased behind
/// [`EngineRunner`]. This is the only place in the workspace that
/// matches on a protocol to build one. The box is `Send` so sweep
/// harnesses can fan independent cells out to worker threads.
pub fn build_engine(
    kind: ProtocolKind,
    topo: &Topology,
    params: &ProtocolParams,
) -> Box<dyn EngineRunner + Send> {
    match kind {
        ProtocolKind::Scmp => Box::new(build_scmp_engine(
            topo.clone(),
            ScmpConfig::new(params.center),
        )),
        ProtocolKind::Cbt => {
            let core = params.center;
            Box::new(Engine::new(topo.clone(), move |me, _, _| {
                CbtRouter::new(me, CbtConfig { core })
            }))
        }
        ProtocolKind::Dvmrp => {
            let cfg = DvmrpConfig {
                prune_timeout: params.dvmrp_prune_timeout,
            };
            Box::new(Engine::new(topo.clone(), move |me, _, _| {
                DvmrpRouter::new(me, cfg)
            }))
        }
        ProtocolKind::Mospf => {
            let paths = scmp_net::shared_provider_for(topo);
            Box::new(Engine::new(topo.clone(), move |me, _, _| {
                MospfRouter::new(me, std::sync::Arc::clone(&paths))
            }))
        }
        ProtocolKind::PimSm => {
            let rp = params.center;
            Box::new(Engine::new(topo.clone(), move |me, _, _| {
                PimSmRouter::new(me, PimConfig { rp })
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scmp_net::topology::examples::fig5;
    use scmp_sim::{AppEvent, GroupId};

    const G: GroupId = GroupId(1);

    #[test]
    fn engines_and_stats_are_send() {
        // Compile-time guarantee the sweep executor relies on: a built
        // engine (and its stats) can move to a worker thread.
        fn assert_send<T: Send>() {}
        assert_send::<Box<dyn EngineRunner + Send>>();
        assert_send::<Engine<ScmpRouter>>();
        assert_send::<scmp_sim::SimStats>();
    }

    #[test]
    fn labels_round_trip() {
        for kind in ProtocolKind::ALL {
            assert_eq!(ProtocolKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(ProtocolKind::parse("ospf"), None);
    }

    #[test]
    fn every_protocol_delivers_on_fig5() {
        for kind in ProtocolKind::ALL {
            let topo = fig5();
            let mut e = build_engine(kind, &topo, &ProtocolParams::new(NodeId(0)));
            e.schedule_app(0, NodeId(4), AppEvent::Join(G));
            e.schedule_app(1_000, NodeId(3), AppEvent::Join(G));
            e.schedule_app(500_000, NodeId(5), AppEvent::Send { group: G, tag: 1 });
            e.run_to_quiescence();
            for m in [3u32, 4] {
                assert_eq!(
                    e.stats().delivery_count(G, 1, NodeId(m)),
                    1,
                    "{} failed to deliver to node {m}",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn typed_scmp_engine_exposes_router_state() {
        let topo = fig5();
        let mut e = build_scmp_engine(topo, ScmpConfig::new(NodeId(0)));
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.run_to_quiescence();
        assert!(e.router(NodeId(0)).is_m_router());
        assert!(e.router(NodeId(4)).entry(G).is_some());
    }

    #[test]
    fn registry_engine_matches_hand_built_engine() {
        let topo = fig5();
        let mut erased = build_engine(ProtocolKind::Scmp, &topo, &ProtocolParams::new(NodeId(0)));
        let mut typed = build_scmp_engine(topo, ScmpConfig::new(NodeId(0)));
        for e in [&mut *erased, &mut typed as &mut dyn EngineRunner] {
            e.schedule_app(0, NodeId(4), AppEvent::Join(G));
            e.schedule_app(10_000, NodeId(5), AppEvent::Send { group: G, tag: 2 });
            e.run_to_quiescence();
        }
        assert_eq!(
            erased.stats().protocol_overhead,
            typed.stats().protocol_overhead
        );
        assert_eq!(erased.stats().data_overhead, typed.stats().data_overhead);
    }
}
