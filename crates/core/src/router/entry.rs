//! The multicast routing entry — the paper's *(gid, upstream,
//! downstream)* triple.

use scmp_net::NodeId;
use std::collections::BTreeSet;

/// One multicast routing entry: the paper's *(gid, upstream, downstream)*
/// triple; `downstream` splits into child routers and the local subnet
/// interface.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoutingEntry {
    /// Parent router on the tree (`None` at the m-router).
    pub upstream: Option<NodeId>,
    /// Child routers on the tree.
    pub downstream_routers: BTreeSet<NodeId>,
    /// True when the local subnet has at least one member host.
    pub local_interface: bool,
    /// Tree generation this entry was last written at. TREE/BRANCH/FLUSH
    /// packets carrying an older generation are ignored, so a stale
    /// BRANCH overtaken by a restructure's TREE refresh cannot corrupt
    /// the installed state.
    pub gen: u64,
}

impl RoutingEntry {
    /// The forwarding set `F` of §III-F: upstream ∪ downstream routers.
    pub fn forwarding_set(&self) -> Vec<NodeId> {
        let mut f: Vec<NodeId> = self.downstream_routers.iter().copied().collect();
        if let Some(u) = self.upstream {
            f.push(u);
        }
        f
    }

    /// A leaf entry with no local members can be discarded.
    pub fn is_prunable(&self) -> bool {
        self.downstream_routers.is_empty() && !self.local_interface
    }
}
