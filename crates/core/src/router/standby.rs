//! Hot-standby failover (§V item 4): the standby mirrors membership via
//! StandbySync, watches the primary's heartbeats, and on watchdog expiry
//! promotes itself — announcing the new m-router address and rebuilding
//! every tree around the dead primary.

use super::{MRouterState, Role, ScmpRouter, TIMER_REBUILD, TIMER_WATCHDOG_BASE};
use crate::message::ScmpMsg;
use crate::session::SessionDb;
use crate::tree_packet::TreePacket;
use scmp_net::NodeId;
use scmp_sim::{Ctx, GroupId, Packet, SimTime};
use scmp_tree::Dcdm;
use std::sync::Arc;

/// Standby-only state: the mirrored membership plus the deadman
/// generation counter.
#[derive(Debug)]
pub struct StandbyState {
    pub(super) membership: SessionDb,
    /// Bumped on every heartbeat; stale watchdog timers are ignored.
    pub(super) watchdog_gen: u64,
    /// Earliest time a watchdog expiry may promote this standby. Every
    /// heartbeat pushes it `heartbeat_loss_tolerance` intervals into the
    /// future; a watchdog timer that fires before it (a stale timer
    /// whose generation happens to match, e.g. after a demotion reset
    /// the counter) is ignored instead of causing a spurious takeover.
    pub(super) deadline: SimTime,
}

impl StandbyState {
    /// Fresh standby state with nothing mirrored and no deadline.
    pub(super) fn new() -> Self {
        StandbyState {
            membership: SessionDb::new(),
            watchdog_gen: 0,
            deadline: 0,
        }
    }
}

impl ScmpRouter {
    pub(super) fn standby_takeover(&mut self, ctx: &mut Ctx<'_, ScmpMsg>) {
        let domain = Arc::clone(&self.domain);
        let me = self.me;
        let Role::Standby(standby) = std::mem::replace(&mut self.role, Role::IRouter) else {
            return;
        };
        let mut state = Box::new(MRouterState::new());
        state.sessions = standby.membership;
        // Outrank every generation the domain has seen: the old primary
        // may still be alive (spurious promotion) and pushing trees of
        // its own, and ours must win the staleness race everywhere.
        state.gen_epoch =
            ((self.gen_high_water >> super::GEN_EPOCH_SHIFT) + 1) << super::GEN_EPOCH_SHIFT;
        self.role = Role::MRouter(state);
        // Announce the new address to every router first; the rebuilt
        // TREE packets follow after `takeover_rebuild_delay`. One
        // transaction key covers the whole announcement wave.
        let txn = self.fresh_txn();
        for v in domain.topo.nodes() {
            if v != me {
                ctx.unicast(
                    v,
                    Packet::control_keyed(GroupId(0), txn, ScmpMsg::NewMRouter { address: me }),
                );
            }
        }
        self.m_router = me;
        ctx.record_takeover();
        ctx.set_timer(domain.config.takeover_rebuild_delay, TIMER_REBUILD);
    }

    /// NewMRouter announcement processing, shared by every role.
    ///
    /// Besides the common re-pointing (believed address, forwarding
    /// state, JOIN retry restart), a still-alive primary that hears
    /// another node announce itself as m-router steps down: heartbeat
    /// loss can promote the standby while the primary is healthy, and a
    /// domain with two active m-routers would partition membership. The
    /// deposed primary keeps its membership database as the new mirror,
    /// arms its own watchdog, and rejoins as an ordinary DR.
    pub(super) fn handle_new_mrouter(&mut self, address: NodeId, ctx: &mut Ctx<'_, ScmpMsg>) {
        if address == self.me {
            return; // our own (unicast-echoed) announcement
        }
        if self.is_m_router() {
            let cfg = self.domain.config.clone();
            let Role::MRouter(state) = std::mem::replace(&mut self.role, Role::IRouter) else {
                unreachable!()
            };
            let mut standby = StandbyState::new();
            standby.membership = state.sessions;
            if cfg.heartbeat_interval > 0 {
                let horizon =
                    cfg.heartbeat_interval * 2 * u64::from(cfg.heartbeat_loss_tolerance.max(1));
                standby.deadline = ctx.now() + horizon;
                ctx.set_timer(horizon, TIMER_WATCHDOG_BASE);
            }
            self.role = Role::Standby(standby);
        }
        // The old trees are rooted at the previous primary: drop all
        // forwarding state. The new m-router pushes rebuilt TREE packets
        // after `takeover_rebuild_delay`; until they arrive, sources
        // fall back to unicast encapsulation. Subnets that still have
        // members re-mark their interface as pending so the rebuilt
        // tree re-opens it on arrival.
        self.m_router = address;
        self.entries.clear();
        self.flushed.clear();
        // The old transaction series died with the old primary; JOINs
        // toward the new address open fresh ones.
        self.join_txns.clear();
        self.leave_txns.clear();
        self.pending_interfaces = self.subnet.active_groups().into_iter().collect();
        // Restart the JOIN retry series toward the new address: the
        // rebuilt TREE push may miss a DR whose original JOIN died with
        // the primary.
        let retry = self.domain.config.join_retry;
        if retry > 0 {
            for &g in &self.pending_interfaces {
                self.join_attempts.insert(g, 0);
                ctx.set_timer(retry, super::TIMER_JOIN_RETRY_BASE + g.0 as u64);
            }
        }
    }

    pub(super) fn rebuild_after_takeover(&mut self, ctx: &mut Ctx<'_, ScmpMsg>) {
        let domain = Arc::clone(&self.domain);
        let me = self.me;
        // Plan around the failed primary: its links are unusable.
        let (topo, paths) = match &domain.failover {
            Some((t, p)) => (t, p),
            None => (&domain.topo, &domain.paths),
        };
        let Role::MRouter(state) = &mut self.role else {
            return;
        };
        let groups: Vec<GroupId> = state.sessions.active_groups();
        let mut rebuilt = Vec::new();
        for group in groups {
            // Members partitioned away by the primary's failure cannot be
            // served until the operator restores connectivity; skip them.
            let members: Vec<NodeId> = state
                .sessions
                .members_from_log(group)
                .into_iter()
                .filter(|&m| paths.unicast_delay(m, me).is_some())
                .collect();
            if members.is_empty() {
                continue;
            }
            state.assign_fabric_port(group);
            let mut dcdm = Dcdm::new(topo, &**paths, me, domain.config.bound);
            for m in &members {
                dcdm.join(*m);
            }
            rebuilt.push((group, dcdm.into_tree()));
        }
        for (group, tree) in rebuilt {
            let txn = self.fresh_txn();
            let Role::MRouter(state) = &mut self.role else {
                unreachable!()
            };
            let gen = state.next_gen(group);
            let entry = self.entries.entry(group).or_default();
            entry.upstream = None;
            entry.downstream_routers = tree.children(me).iter().copied().collect();
            entry.local_interface = tree.is_member(me);
            entry.gen = gen;
            for &child in tree.children(me) {
                let tp = TreePacket::from_tree(&tree, child);
                let pkt = Packet::control_keyed(group, txn, ScmpMsg::Tree { gen, packet: tp });
                self.send_tree_tracked(group, child, gen, pkt, ctx);
            }
            super::mrouter::record_tree_health(
                group,
                scmp_telemetry::HealthTrigger::Takeover,
                topo,
                &**paths,
                &tree,
                ctx,
            );
            let Role::MRouter(state) = &mut self.role else {
                unreachable!()
            };
            state.trees.insert(group, tree);
        }
    }
}
