//! Hot-standby failover (§V item 4): the standby mirrors membership via
//! StandbySync, watches the primary's heartbeats, and on watchdog expiry
//! promotes itself — announcing the new m-router address and rebuilding
//! every tree around the dead primary.

use super::{MRouterState, Role, ScmpRouter, TIMER_REBUILD};
use crate::message::ScmpMsg;
use crate::session::SessionDb;
use crate::tree_packet::TreePacket;
use scmp_net::NodeId;
use scmp_sim::{Ctx, GroupId, Packet};
use scmp_tree::Dcdm;
use std::sync::Arc;

/// Standby-only state: the mirrored membership plus the deadman
/// generation counter.
#[derive(Debug)]
pub struct StandbyState {
    pub(super) membership: SessionDb,
    /// Bumped on every heartbeat; stale watchdog timers are ignored.
    pub(super) watchdog_gen: u64,
}

impl ScmpRouter {
    pub(super) fn standby_takeover(&mut self, ctx: &mut Ctx<'_, ScmpMsg>) {
        let domain = Arc::clone(&self.domain);
        let me = self.me;
        let Role::Standby(standby) = std::mem::replace(&mut self.role, Role::IRouter) else {
            return;
        };
        let mut state = Box::new(MRouterState::new());
        state.sessions = standby.membership;
        // Announce the new address to every router first; the rebuilt
        // TREE packets follow after `takeover_rebuild_delay`.
        for v in domain.topo.nodes() {
            if v != me {
                ctx.unicast(
                    v,
                    Packet::control(GroupId(0), ScmpMsg::NewMRouter { address: me }),
                );
            }
        }
        self.m_router = me;
        self.role = Role::MRouter(state);
        ctx.set_timer(domain.config.takeover_rebuild_delay, TIMER_REBUILD);
    }

    pub(super) fn rebuild_after_takeover(&mut self, ctx: &mut Ctx<'_, ScmpMsg>) {
        let domain = Arc::clone(&self.domain);
        let me = self.me;
        // Plan around the failed primary: its links are unusable.
        let (topo, paths) = match &domain.failover {
            Some((t, p)) => (t, p),
            None => (&domain.topo, &domain.paths),
        };
        let Role::MRouter(state) = &mut self.role else {
            return;
        };
        let groups: Vec<GroupId> = state.sessions.active_groups();
        let mut rebuilt = Vec::new();
        for group in groups {
            // Members partitioned away by the primary's failure cannot be
            // served until the operator restores connectivity; skip them.
            let members: Vec<NodeId> = state
                .sessions
                .members_from_log(group)
                .into_iter()
                .filter(|&m| paths.unicast_delay(m, me).is_some())
                .collect();
            if members.is_empty() {
                continue;
            }
            state.assign_fabric_port(group);
            let mut dcdm = Dcdm::new(topo, paths, me, domain.config.bound);
            for m in &members {
                dcdm.join(*m);
            }
            rebuilt.push((group, dcdm.into_tree()));
        }
        for (group, tree) in rebuilt {
            let Role::MRouter(state) = &mut self.role else {
                unreachable!()
            };
            let gen = state.next_gen(group);
            let entry = self.entries.entry(group).or_default();
            entry.upstream = None;
            entry.downstream_routers = tree.children(me).iter().copied().collect();
            entry.local_interface = tree.is_member(me);
            entry.gen = gen;
            for &child in tree.children(me) {
                let tp = TreePacket::from_tree(&tree, child);
                ctx.send(
                    child,
                    Packet::control(group, ScmpMsg::Tree { gen, packet: tp }),
                );
            }
            let Role::MRouter(state) = &mut self.role else {
                unreachable!()
            };
            state.trees.insert(group, tree);
        }
    }
}
