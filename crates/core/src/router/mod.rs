//! The SCMP router state machine (§II–III).
//!
//! Every node in the domain runs one [`ScmpRouter`]. Most are i-routers:
//! they keep one multicast routing entry per group — the paper's triple
//! *(group id, upstream, downstream)* — and perform only forwarding,
//! TREE/BRANCH processing and PRUNE propagation. One node is the
//! m-router: it owns the membership database, runs the DCDM algorithm on
//! every JOIN/LEAVE, emits TREE/BRANCH packets, keeps the accounting log
//! and (optionally) mirrors state to a hot-standby peer (§V item 4).
//!
//! Packet walk (Fig. 4): IGMP report → DR sends JOIN (unicast to
//! m-router) → m-router updates the tree (DCDM) → BRANCH packet (simple
//! graft) or TREE packets (restructure) install routing entries → data
//! flows on the bidirectional shared tree, with off-tree sources
//! encapsulating to the m-router.
//!
//! The state machine is split by role: this module holds the
//! [`ScmpRouter`] shell (fields, role dispatch, the [`Router`] impl);
//! [`config`]/[`domain`]/[`entry`] hold the shared plain data types;
//! the designated-router side (membership, data plane, TREE/BRANCH
//! install) lives in `dr`; the m-router side (DCDM, sessions, fabric,
//! repair scans) in `mrouter`; and the hot-standby failover machinery
//! in `standby`.

mod config;
mod domain;
mod dr;
mod entry;
mod mrouter;
mod reliability;
mod standby;
#[cfg(test)]
mod tests;

pub use config::{ReliabilityConfig, ScmpConfig, CACHE_ENTRY_BYTES};
pub use domain::ScmpDomain;
pub use entry::RoutingEntry;
pub use mrouter::MRouterState;
pub use reliability::{nack_jitter, payload_bytes};
pub use standby::StandbyState;

use crate::dedup::RecentSet;
use crate::igmp::{HostId, Subnet};
use crate::message::ScmpMsg;
use scmp_net::NodeId;
use scmp_sim::{AppEvent, Ctx, GroupId, Packet, Router};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Timer tokens.
const TIMER_HEARTBEAT: u64 = 1;
const TIMER_REBUILD: u64 = 3;
/// Periodic m-router repair scan (robustness extension): check every
/// mirrored tree against the IGP liveness view and re-run DCDM over the
/// surviving topology when a tree is damaged.
const TIMER_REPAIR: u64 = 4;
/// Watchdog tokens are generation-stamped: `TIMER_WATCHDOG_BASE + gen`.
/// Every heartbeat bumps the generation, so only the deadman timer armed
/// after the *last* heartbeat can trigger a takeover.
const TIMER_WATCHDOG_BASE: u64 = 1_000;
/// Session-expiry tokens: `TIMER_EXPIRY_BASE + gid`. Must stay above
/// every watchdog token; group ids are small in practice, and the bases
/// are far enough apart that overlap would need 2^63 heartbeats.
const TIMER_EXPIRY_BASE: u64 = 1 << 63;
/// JOIN-retry tokens: `TIMER_JOIN_RETRY_BASE + gid`.
const TIMER_JOIN_RETRY_BASE: u64 = 1 << 62;
/// LEAVE-retry tokens: `TIMER_LEAVE_RETRY_BASE + gid`.
const TIMER_LEAVE_RETRY_BASE: u64 = 1 << 61;
/// TREE-retry tokens: `TIMER_TREE_RETRY_BASE + (gid << 24) + child`.
/// Node ids fit 24 bits in any simulated domain and group ids stay far
/// below 2^36, so the token never reaches [`TIMER_LEAVE_RETRY_BASE`].
const TIMER_TREE_RETRY_BASE: u64 = 1 << 60;
/// NACK suppression-timer tokens (reliability tier):
/// `TIMER_NACK_BASE + (gid << 24) + stream_origin`.
const TIMER_NACK_BASE: u64 = 1 << 59;
/// SEQ-ANNOUNCE series tokens (reliability tier):
/// `TIMER_ANNOUNCE_BASE + (gid << 24) + stream_origin`.
const TIMER_ANNOUNCE_BASE: u64 = 1 << 58;

/// Encode one parent → child tree-ARQ slot as a timer token.
pub(super) fn tree_retry_token(group: GroupId, child: NodeId) -> u64 {
    TIMER_TREE_RETRY_BASE + ((group.0 as u64) << 24) + child.0 as u64
}
/// Give up a JOIN/LEAVE retransmission series after this many attempts
/// (the m-router is gone for good; a takeover or operator intervenes).
const MAX_RETRIES: u32 = 8;
/// Exponential-backoff shift cap: delay = base << min(attempt, cap).
const BACKOFF_CAP: u32 = 6;
/// Tree generations carry a takeover epoch in their upper bits: a
/// promoted standby starts numbering at the next epoch above every
/// generation it has observed, so its TREE/BRANCH packets always beat
/// the deposed primary's — even when that primary is alive (spurious
/// promotion) and kept bumping its own generations right up to the
/// handover.
const GEN_EPOCH_SHIFT: u32 = 32;

/// One unacknowledged TREE/BRANCH transmission awaiting TREE-ACK from a
/// direct child (hop-by-hop tree ARQ, `tree_retry > 0`).
#[derive(Debug)]
struct PendingTree {
    gen: u64,
    attempts: u32,
    pkt: Packet<ScmpMsg>,
    /// Earliest time a retry timer may act. Retry timers are keyed by
    /// `(group, child)` only, so when a newer TREE replaces a pending
    /// entry, the older arming's timer is still in flight — it must not
    /// retransmit the new packet early.
    deadline: scmp_sim::SimTime,
}

/// Role of a node in the SCMP domain.
#[derive(Debug)]
pub enum Role {
    /// Ordinary intermediate multicast router.
    IRouter,
    /// The active master multicast router (boxed: the state is two
    /// orders of magnitude larger than the other variants).
    MRouter(Box<MRouterState>),
    /// Hot standby mirroring the primary.
    Standby(StandbyState),
}

/// The per-node SCMP state machine. Implements [`scmp_sim::Router`].
pub struct ScmpRouter {
    me: NodeId,
    domain: Arc<ScmpDomain>,
    /// Current believed m-router address (changes after a takeover).
    m_router: NodeId,
    role: Role,
    /// Multicast routing table: one entry per group.
    entries: BTreeMap<GroupId, RoutingEntry>,
    /// Groups whose local interface is marked pending a TREE/BRANCH
    /// packet (§III-B: "the interface ... is marked so that it will be
    /// added to the downstream ... when the DR receives the TREE packet
    /// later").
    pending_interfaces: BTreeSet<GroupId>,
    /// Flush tombstones: highest generation at which this router was
    /// told to discard a group's state; older TREE/BRANCH are ignored.
    flushed: BTreeMap<GroupId, u64>,
    /// IGMP subnet model.
    pub subnet: Subnet,
    /// Sequential host ids for app-injected join/leave events.
    next_host: u32,
    /// Host stack per group so Leave events pop a real joined host.
    joined_hosts: BTreeMap<GroupId, Vec<HostId>>,
    /// JOIN retransmissions already made per group (backoff exponent).
    join_attempts: BTreeMap<GroupId, u32>,
    /// LEAVEs awaiting a LEAVE-ACK, with retransmission count.
    pending_leaves: BTreeMap<GroupId, u32>,
    /// TREE/BRANCH packets this node sent to a direct child and not yet
    /// TREE-ACKed, keyed by `(group, child)`. Lives on every router, not
    /// just the m-router: tree distribution is relayed hop by hop, and
    /// each relay hop runs its own ARQ when `tree_retry > 0`.
    pending_trees: BTreeMap<(GroupId, NodeId), PendingTree>,
    /// Highest tree generation observed in any TREE/BRANCH/FLUSH packet.
    /// Seeds the generation epoch on a standby takeover (see
    /// [`GEN_EPOCH_SHIFT`]).
    gen_high_water: u64,
    /// Recently forwarded data-packet keys `(group, origin, tag,
    /// encapsulated)`, for suppressing channel-duplicated payloads. The
    /// key is the full causal trace key — origin included, so two
    /// sources reusing the same application tag in one group cannot
    /// shadow each other — plus an encapsulated flag that keeps an
    /// EncapData and its decapsulated Data twin (same group, origin and
    /// tag) from shadowing each other at the m-router.
    recent_data: RecentSet<(u32, u32, u64, bool)>,
    /// Reliable-multicast tier state (streams, repair cache, pending
    /// NACK interests); empty and untouched when
    /// `config.reliability` is `None`.
    rel: reliability::ReliabilityState,
    /// Sequence counter behind [`ScmpRouter::fresh_txn`]: every control
    /// transaction this node originates gets a distinct causal trace key.
    next_txn: u32,
    /// The trace key of the in-flight JOIN series per group: retries
    /// reuse it so the whole series correlates as one transaction.
    join_txns: BTreeMap<GroupId, u64>,
    /// The trace key of the in-flight LEAVE series per group.
    leave_txns: BTreeMap<GroupId, u64>,
}

/// How many data-packet keys each router remembers for duplicate
/// suppression. Channel duplicates arrive within a reorder window of
/// the original, so a small recent-set is ample.
const RECENT_DATA_CAP: usize = 64;

impl ScmpRouter {
    /// Create the state machine for node `me`.
    pub fn new(me: NodeId, domain: Arc<ScmpDomain>) -> Self {
        let cfg = &domain.config;
        assert!(
            cfg.extra_m_routers.is_empty() || cfg.standby.is_none(),
            "hot standby is only supported with a single m-router"
        );
        let role = if me == cfg.m_router || cfg.extra_m_routers.contains(&me) {
            Role::MRouter(Box::new(MRouterState::new()))
        } else if Some(me) == cfg.standby {
            Role::Standby(StandbyState::new())
        } else {
            Role::IRouter
        };
        ScmpRouter {
            me,
            m_router: cfg.m_router,
            domain,
            role,
            entries: BTreeMap::new(),
            pending_interfaces: BTreeSet::new(),
            flushed: BTreeMap::new(),
            subnet: Subnet::new(),
            next_host: 0,
            joined_hosts: BTreeMap::new(),
            join_attempts: BTreeMap::new(),
            pending_leaves: BTreeMap::new(),
            pending_trees: BTreeMap::new(),
            gen_high_water: 0,
            recent_data: RecentSet::new(RECENT_DATA_CAP),
            rel: reliability::ReliabilityState::default(),
            next_txn: 0,
            join_txns: BTreeMap::new(),
            leave_txns: BTreeMap::new(),
        }
    }

    /// Allocate a fresh causal transaction tag: a packed
    /// [`scmp_telemetry::TraceKey`] `(origin=me, seq)` whose high bit
    /// keeps it disjoint from every data tag. Stamped on the control
    /// packet that opens a transaction and inherited by the whole
    /// cascade it triggers, so `scmp-inspect --journey` can reconstruct
    /// JOIN → BRANCH → ACK chains end to end.
    pub(super) fn fresh_txn(&mut self) -> u64 {
        self.next_txn += 1;
        scmp_telemetry::pack_ctl_tag(self.me.0, self.next_txn)
    }

    /// The node's routing entry for `group` (None when off-tree).
    pub fn entry(&self, group: GroupId) -> Option<&RoutingEntry> {
        self.entries.get(&group)
    }

    /// Current believed m-router address (of the primary; per-group
    /// addresses come from [`Self::m_router_for`]).
    pub fn m_router_address(&self) -> NodeId {
        self.m_router
    }

    /// The m-router serving `group`: round-robin over the configured
    /// m-router set, or the (possibly failed-over) single m-router.
    pub fn m_router_for(&self, group: GroupId) -> NodeId {
        let extra = &self.domain.config.extra_m_routers;
        if extra.is_empty() {
            return self.m_router;
        }
        let idx = group.0 as usize % (1 + extra.len());
        if idx == 0 {
            self.domain.config.m_router
        } else {
            extra[idx - 1]
        }
    }

    /// True while this node acts as the m-router.
    pub fn is_m_router(&self) -> bool {
        matches!(self.role, Role::MRouter(_))
    }

    /// m-router state, if this node is (currently) the m-router.
    pub fn m_state(&self) -> Option<&MRouterState> {
        match &self.role {
            Role::MRouter(s) => Some(s),
            _ => None,
        }
    }
}

impl Router for ScmpRouter {
    type Msg = ScmpMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ScmpMsg>) {
        let cfg = &self.domain.config;
        if cfg.repair_interval > 0 && self.is_m_router() {
            ctx.set_timer(cfg.repair_interval, TIMER_REPAIR);
        }
        if cfg.heartbeat_interval == 0 {
            return;
        }
        let horizon = cfg.heartbeat_interval * 2 * u64::from(cfg.heartbeat_loss_tolerance.max(1));
        match &mut self.role {
            Role::MRouter(_) if cfg.standby.is_some() => {
                ctx.set_timer(cfg.heartbeat_interval, TIMER_HEARTBEAT);
            }
            Role::Standby(s) => {
                // Generous first deadline (twice the steady-state
                // tolerance): the primary may be several propagation
                // delays away.
                s.deadline = ctx.now() + horizon;
                ctx.set_timer(horizon, TIMER_WATCHDOG_BASE);
            }
            _ => {}
        }
    }

    fn classify(msg: &ScmpMsg) -> Option<scmp_telemetry::CtlKind> {
        use scmp_telemetry::CtlKind;
        Some(match msg {
            ScmpMsg::Join { .. } => CtlKind::Join,
            ScmpMsg::Leave { .. } => CtlKind::Leave,
            ScmpMsg::Prune => CtlKind::Prune,
            ScmpMsg::Tree { .. } => CtlKind::Tree,
            ScmpMsg::Branch { .. } => CtlKind::Branch,
            ScmpMsg::Flush { .. } => CtlKind::Flush,
            ScmpMsg::Data { .. } => CtlKind::Data,
            ScmpMsg::EncapData { .. } => CtlKind::EncapData,
            ScmpMsg::Heartbeat { .. } => CtlKind::Heartbeat,
            ScmpMsg::StandbySync { .. } => CtlKind::StandbySync,
            ScmpMsg::NewMRouter { .. } => CtlKind::NewMRouter,
            ScmpMsg::LeaveAck => CtlKind::LeaveAck,
            ScmpMsg::TreeAck { .. } => CtlKind::TreeAck,
            ScmpMsg::Nack { .. } => CtlKind::Nack,
            ScmpMsg::Repair { .. } => CtlKind::Repair,
            ScmpMsg::SeqAnnounce { .. } => CtlKind::SeqAnnounce,
        })
    }

    fn on_packet(&mut self, from: NodeId, pkt: Packet<ScmpMsg>, ctx: &mut Ctx<'_, ScmpMsg>) {
        let group = pkt.group;
        let tag = pkt.tag;
        match pkt.body.clone() {
            ScmpMsg::Join { requester } => self.m_handle_join(group, requester, tag, ctx),
            ScmpMsg::Leave { requester } => self.m_handle_leave(group, requester, tag, ctx),
            ScmpMsg::Prune => self.handle_prune(from, group, tag, ctx),
            ScmpMsg::Tree { gen, packet } => {
                self.gen_high_water = self.gen_high_water.max(gen);
                self.install_tree_packet(from, group, gen, packet, tag, ctx)
            }
            ScmpMsg::Branch { gen, packet } => {
                self.gen_high_water = self.gen_high_water.max(gen);
                self.install_branch_packet(from, group, gen, packet, tag, ctx)
            }
            ScmpMsg::Flush { gen } => {
                self.gen_high_water = self.gen_high_water.max(gen);
                let tomb = self.flushed.entry(group).or_insert(0);
                if gen > *tomb {
                    *tomb = gen;
                }
                // Only state at or below the flushed generation dies; a
                // newer BRANCH/TREE may have legitimately re-added us
                // while the flush was in flight.
                if self.entries.get(&group).is_some_and(|e| e.gen <= gen) {
                    self.entries.remove(&group);
                }
            }
            ScmpMsg::Data { .. } => self.forward_on_tree(from, pkt, ctx),
            ScmpMsg::EncapData { .. } => self.handle_encap_data(pkt, ctx),
            ScmpMsg::Nack { origin, seq } => self.rel_handle_nack(from, &pkt, origin, seq, ctx),
            ScmpMsg::Repair { origin, seq } => self.rel_handle_repair(&pkt, origin, seq, ctx),
            ScmpMsg::SeqAnnounce { origin, seq, round } => {
                self.rel_handle_announce(from, &pkt, origin, seq, round, ctx)
            }
            ScmpMsg::Heartbeat { .. } => {
                let cfg = &self.domain.config;
                let interval = cfg.heartbeat_interval;
                let grace = interval * u64::from(cfg.heartbeat_loss_tolerance.max(1));
                let promoted = Some(self.me) == cfg.standby;
                let me = self.me;
                match &mut self.role {
                    Role::Standby(s) => {
                        // Re-arm the deadman timer: takeover only when no
                        // heartbeat lands for `heartbeat_loss_tolerance`
                        // intervals. The deadline backs up the generation
                        // stamp — a stale timer whose token happens to
                        // match a reset generation still cannot promote
                        // before the last heartbeat's grace runs out.
                        s.watchdog_gen += 1;
                        s.deadline = ctx.now() + grace;
                        let gen = s.watchdog_gen;
                        ctx.set_timer(grace, TIMER_WATCHDOG_BASE + gen);
                    }
                    Role::MRouter(state) if promoted => {
                        // A heartbeat reaching a *promoted* standby means
                        // the old primary survived (the promotion was
                        // spurious, caused by heartbeat loss). Repeat the
                        // announcement until it steps down, and start
                        // mirroring/heartbeating back so the pair is
                        // symmetric again.
                        ctx.unicast(
                            from,
                            Packet::control(GroupId(0), ScmpMsg::NewMRouter { address: me }),
                        );
                        if !state.peer_alive {
                            state.peer_alive = true;
                            if interval > 0 {
                                ctx.set_timer(interval, TIMER_HEARTBEAT);
                            }
                        }
                    }
                    _ => {}
                }
            }
            ScmpMsg::StandbySync { member, joined } => {
                if let Role::Standby(s) = &mut self.role {
                    s.membership.register_group(group);
                    s.membership.record(ctx.now(), group, member, joined);
                }
            }
            ScmpMsg::LeaveAck => {
                self.pending_leaves.remove(&group);
                self.leave_txns.remove(&group);
            }
            ScmpMsg::NewMRouter { address } => self.handle_new_mrouter(address, ctx),
            ScmpMsg::TreeAck { gen } => self.handle_tree_ack(group, from, gen),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, ScmpMsg>) {
        match token {
            TIMER_HEARTBEAT => {
                let cfg = self.domain.config.clone();
                let me = self.me;
                if let Role::MRouter(state) = &mut self.role {
                    state.heartbeat_seq += 1;
                    let seq = state.heartbeat_seq;
                    // A promoted standby beacons back to the deposed
                    // primary (its new standby); the primary beacons to
                    // the configured standby as always.
                    let peer = if Some(me) == cfg.standby {
                        Some(cfg.m_router)
                    } else {
                        cfg.standby
                    };
                    if let Some(peer) = peer {
                        ctx.unicast(
                            peer,
                            Packet::control(GroupId(0), ScmpMsg::Heartbeat { seq }),
                        );
                    }
                    ctx.set_timer(cfg.heartbeat_interval, TIMER_HEARTBEAT);
                }
            }
            TIMER_REBUILD => self.rebuild_after_takeover(ctx),
            TIMER_REPAIR => self.m_repair_scan(ctx),
            token if token >= TIMER_EXPIRY_BASE => {
                self.expire_session_if_empty(GroupId((token - TIMER_EXPIRY_BASE) as u32));
            }
            token if token >= TIMER_JOIN_RETRY_BASE => {
                self.retry_join_if_unanswered(GroupId((token - TIMER_JOIN_RETRY_BASE) as u32), ctx);
            }
            token if token >= TIMER_LEAVE_RETRY_BASE => {
                self.retry_leave_if_unacked(GroupId((token - TIMER_LEAVE_RETRY_BASE) as u32), ctx);
            }
            token if token >= TIMER_TREE_RETRY_BASE => {
                let slot = token - TIMER_TREE_RETRY_BASE;
                let group = GroupId((slot >> 24) as u32);
                let child = NodeId((slot & 0x00FF_FFFF) as u32);
                self.retry_tree_if_unacked(group, child, ctx);
            }
            token if token >= TIMER_NACK_BASE => {
                let slot = token - TIMER_NACK_BASE;
                let group = GroupId((slot >> 24) as u32);
                let origin = NodeId((slot & 0x00FF_FFFF) as u32);
                self.rel_nack_timer(group, origin, ctx);
            }
            token if token >= TIMER_ANNOUNCE_BASE => {
                let slot = token - TIMER_ANNOUNCE_BASE;
                let group = GroupId((slot >> 24) as u32);
                let origin = NodeId((slot & 0x00FF_FFFF) as u32);
                self.rel_announce_timer(group, origin, ctx);
            }
            token if token >= TIMER_WATCHDOG_BASE => {
                let take_over = match &self.role {
                    // Both guards must agree: the generation stamp kills
                    // timers superseded by a later heartbeat, and the
                    // deadline kills stale timers whose token matches a
                    // reset generation (e.g. right after a demotion).
                    Role::Standby(s) => {
                        token - TIMER_WATCHDOG_BASE == s.watchdog_gen && ctx.now() >= s.deadline
                    }
                    _ => false,
                };
                if take_over {
                    self.standby_takeover(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_app(&mut self, ev: AppEvent, ctx: &mut Ctx<'_, ScmpMsg>) {
        match ev {
            AppEvent::Join(g) => self.handle_host_join(g, ctx),
            AppEvent::Leave(g) => self.handle_host_leave(g, ctx),
            AppEvent::Send { group, tag } => self.handle_host_send(group, tag, ctx),
        }
    }
}
