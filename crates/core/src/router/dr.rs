//! The designated-router side of the state machine: host membership
//! (§III-B, §III-C), the data plane (§III-F) and TREE/BRANCH/PRUNE
//! processing (§III-E). Everything here runs on every router; the
//! m-router-only logic lives in the sibling `mrouter` module.

use super::{
    PendingTree, ScmpRouter, BACKOFF_CAP, MAX_RETRIES, TIMER_JOIN_RETRY_BASE,
    TIMER_LEAVE_RETRY_BASE,
};
use crate::igmp::{HostId, MembershipEdge};
use crate::message::ScmpMsg;
use crate::tree_packet::{BranchPacket, TreePacket};
use scmp_net::NodeId;
use scmp_sim::{Ctx, GroupId, Packet};

impl ScmpRouter {
    // ------------------------------------------------------------------
    // Member joining / leaving (§III-B, §III-C)
    // ------------------------------------------------------------------

    pub(super) fn handle_host_join(&mut self, group: GroupId, ctx: &mut Ctx<'_, ScmpMsg>) {
        let host = HostId(self.next_host);
        self.next_host += 1;
        let edge = self.subnet.host_join(host, group);
        self.joined_hosts.entry(group).or_default().push(host);
        if edge != MembershipEdge::FirstJoined(group) {
            return;
        }
        if let Some(entry) = self.entries.get_mut(&group) {
            // Already on the tree: just open the interface; the JOIN is
            // still sent "for possible accounting and billing purposes".
            entry.local_interface = true;
        } else {
            self.pending_interfaces.insert(group);
            let retry = self.domain.config.join_retry;
            if retry > 0 {
                self.join_attempts.insert(group, 0);
                ctx.set_timer(retry, TIMER_JOIN_RETRY_BASE + group.0 as u64);
            }
        }
        let txn = self.fresh_txn();
        self.join_txns.insert(group, txn);
        let m = self.m_router_for(group);
        let me = self.me;
        ctx.unicast(
            m,
            Packet::control_keyed(group, txn, ScmpMsg::Join { requester: me }),
        );
    }

    /// The trace key of the group's in-flight JOIN series, minting one
    /// when the series started before keys existed (e.g. restarted
    /// toward a new m-router after a takeover).
    fn join_txn(&mut self, group: GroupId) -> u64 {
        match self.join_txns.get(&group) {
            Some(&t) => t,
            None => {
                let t = self.fresh_txn();
                self.join_txns.insert(group, t);
                t
            }
        }
    }

    /// JOIN retry: if the subnet still wants the group but no tree state
    /// arrived (the JOIN or its TREE/BRANCH answer was lost), resend with
    /// exponential backoff, giving up after [`MAX_RETRIES`].
    pub(super) fn retry_join_if_unanswered(&mut self, group: GroupId, ctx: &mut Ctx<'_, ScmpMsg>) {
        let wants = self.subnet.has_members(group);
        let answered = self
            .entries
            .get(&group)
            .is_some_and(|e| e.local_interface || !wants);
        if !wants || answered || self.is_m_router() {
            self.join_attempts.remove(&group);
            self.join_txns.remove(&group);
            return;
        }
        let attempt = self.join_attempts.entry(group).or_insert(0);
        *attempt += 1;
        if *attempt > MAX_RETRIES {
            self.join_attempts.remove(&group);
            self.join_txns.remove(&group);
            return;
        }
        let backoff = self.domain.config.join_retry << (*attempt).min(BACKOFF_CAP);
        self.pending_interfaces.insert(group);
        let txn = self.join_txn(group);
        let m = self.m_router_for(group);
        let me = self.me;
        ctx.unicast(
            m,
            Packet::control_keyed(group, txn, ScmpMsg::Join { requester: me }),
        );
        if self.domain.config.join_retry > 0 {
            ctx.set_timer(backoff, TIMER_JOIN_RETRY_BASE + group.0 as u64);
        }
    }

    /// LEAVE retry: the m-router never acked, so either the LEAVE or the
    /// LEAVE-ACK was lost; resend with backoff until acked or exhausted.
    pub(super) fn retry_leave_if_unacked(&mut self, group: GroupId, ctx: &mut Ctx<'_, ScmpMsg>) {
        let Some(attempt) = self.pending_leaves.get_mut(&group) else {
            return; // acked in the meantime
        };
        *attempt += 1;
        let attempt = *attempt;
        if attempt > MAX_RETRIES {
            self.pending_leaves.remove(&group);
            self.leave_txns.remove(&group);
            return;
        }
        let backoff = self.domain.config.leave_retry << attempt.min(BACKOFF_CAP);
        let txn = match self.leave_txns.get(&group) {
            Some(&t) => t,
            None => {
                let t = self.fresh_txn();
                self.leave_txns.insert(group, t);
                t
            }
        };
        let m = self.m_router_for(group);
        let me = self.me;
        ctx.unicast(
            m,
            Packet::control_keyed(group, txn, ScmpMsg::Leave { requester: me }),
        );
        ctx.set_timer(backoff, TIMER_LEAVE_RETRY_BASE + group.0 as u64);
    }

    pub(super) fn handle_host_leave(&mut self, group: GroupId, ctx: &mut Ctx<'_, ScmpMsg>) {
        let Some(host) = self.joined_hosts.get_mut(&group).and_then(|v| v.pop()) else {
            return; // no joined host to leave
        };
        let edge = self.subnet.host_leave(host, group);
        if edge != MembershipEdge::LastLeft(group) {
            return;
        }
        self.pending_interfaces.remove(&group);
        // One transaction covers the whole departure: the hop-by-hop
        // PRUNE and the LEAVE/LEAVE-ACK exchange share the key.
        let txn = self.fresh_txn();
        let mut send_leave = false;
        if let Some(entry) = self.entries.get_mut(&group) {
            entry.local_interface = false;
            if entry.is_prunable() {
                // Became a leaf: PRUNE upstream and forget the entry.
                if let Some(up) = entry.upstream {
                    ctx.send(up, Packet::control_keyed(group, txn, ScmpMsg::Prune));
                }
                self.entries.remove(&group);
                send_leave = true;
            } else if !entry.downstream_routers.is_empty() {
                // Still forwarding for children: LEAVE for accounting only.
                send_leave = true;
            }
        } else {
            // Leave raced ahead of the BRANCH/TREE install.
            send_leave = true;
        }
        if send_leave {
            self.leave_txns.insert(group, txn);
            let m = self.m_router_for(group);
            let me = self.me;
            ctx.unicast(
                m,
                Packet::control_keyed(group, txn, ScmpMsg::Leave { requester: me }),
            );
            let retry = self.domain.config.leave_retry;
            if retry > 0 {
                self.pending_leaves.insert(group, 0);
                ctx.set_timer(retry, TIMER_LEAVE_RETRY_BASE + group.0 as u64);
            }
        }
    }

    // ------------------------------------------------------------------
    // Data plane (§III-F)
    // ------------------------------------------------------------------

    pub(super) fn handle_host_send(
        &mut self,
        group: GroupId,
        tag: u64,
        ctx: &mut Ctx<'_, ScmpMsg>,
    ) {
        // Reliability tier: stamp the payload with the next sequence of
        // this node's (group, origin=me) stream and cache it for
        // repairs (0 = tier off, plain §III-F semantics).
        let seq = self.rel_stamp_send(group, tag, ctx);
        if let Some(entry) = self.entries.get(&group) {
            let pkt = Packet::data(group, tag, ctx.now(), ScmpMsg::Data { seq });
            if entry.local_interface {
                ctx.deliver_local(&pkt);
            }
            for to in entry.forwarding_set() {
                ctx.send(to, pkt.clone());
            }
        } else {
            // Off-tree source: encapsulate toward the m-router (§III-F).
            let m = self.m_router_for(group);
            let pkt = Packet::data(group, tag, ctx.now(), ScmpMsg::EncapData { seq });
            ctx.unicast(m, pkt);
        }
    }

    pub(super) fn forward_on_tree(
        &mut self,
        from: NodeId,
        pkt: Packet<ScmpMsg>,
        ctx: &mut Ctx<'_, ScmpMsg>,
    ) {
        let Some(entry) = self.entries.get(&pkt.group) else {
            ctx.drop_packet();
            return;
        };
        let f = entry.forwarding_set();
        if !f.contains(&from) {
            // §III-F: packets from routers outside F are dropped.
            ctx.drop_packet();
            return;
        }
        let seq = match pkt.body {
            ScmpMsg::Data { seq } => seq,
            _ => 0,
        };
        if seq > 0 {
            // Reliability tier: per-stream sequence state is the
            // authoritative dedup (and gap detector) for sequenced
            // payloads.
            if !self.rel_observe_data(
                pkt.group,
                pkt.origin,
                seq,
                pkt.tag,
                pkt.created_at,
                Some(from),
                false,
                ctx,
            ) {
                ctx.drop_packet_keyed(pkt.group, pkt.tag);
                return;
            }
        } else if !self
            .recent_data
            .insert((pkt.group.0, pkt.origin.0, pkt.tag, false))
        {
            // A channel-duplicated copy already forwarded: suppress it,
            // or every member below would receive the payload twice.
            ctx.drop_packet();
            return;
        }
        let entry = self.entries.get(&pkt.group).expect("entry checked above");
        if entry.local_interface {
            ctx.deliver_local(&pkt);
        }
        for to in f {
            if to != from {
                ctx.send(to, pkt.clone());
            }
        }
    }

    pub(super) fn handle_encap_data(&mut self, pkt: Packet<ScmpMsg>, ctx: &mut Ctx<'_, ScmpMsg>) {
        if !self.is_m_router() {
            // Stale sender configuration (e.g. right after a takeover):
            // relay toward the address we believe in, unless that's us.
            let m = self.m_router_for(pkt.group);
            if m != self.me {
                ctx.unicast(m, pkt);
            } else {
                ctx.drop_packet();
            }
            return;
        }
        let seq = match pkt.body {
            ScmpMsg::EncapData { seq } => seq,
            _ => 0,
        };
        if seq > 0 {
            // Reliability tier: track the encapsulation leg as a
            // per-origin stream — the m-router NACKs the origin over
            // unicast for anything the leg lost.
            if !self.rel_observe_data(
                pkt.group,
                pkt.origin,
                seq,
                pkt.tag,
                pkt.created_at,
                None,
                true,
                ctx,
            ) {
                ctx.drop_packet_keyed(pkt.group, pkt.tag);
                return;
            }
        } else if !self
            .recent_data
            .insert((pkt.group.0, pkt.origin.0, pkt.tag, true))
        {
            // Channel-duplicated encapsulation: decapsulating it again
            // would push a second copy down the whole tree.
            ctx.drop_packet();
            return;
        }
        // Decapsulate and push down the tree (§III-F).
        let data = Packet {
            body: ScmpMsg::Data { seq },
            ..pkt
        };
        if let Some(entry) = self.entries.get(&data.group) {
            if entry.local_interface {
                ctx.deliver_local(&data);
            }
            for to in entry.downstream_routers.clone() {
                ctx.send(to, data.clone());
            }
        }
        // No entry: empty group, payload evaporates at the root.
        if seq > 0 {
            // Restart the downstream announce series so members learn
            // the stream extent even when the flood's tail is lost.
            if let Some(cfg) = self.domain.config.reliability.clone() {
                self.rel_kick_announce(data.group, data.origin, &cfg, ctx);
            }
        }
    }

    // ------------------------------------------------------------------
    // Tree distribution (§III-E)
    // ------------------------------------------------------------------

    /// A TREE/BRANCH packet is stale when an equal-or-newer generation
    /// has already been installed or flushed.
    pub(super) fn is_stale(&self, group: GroupId, gen: u64) -> bool {
        if self.flushed.get(&group).is_some_and(|&fg| gen <= fg) {
            return true;
        }
        self.entries.get(&group).is_some_and(|e| gen <= e.gen)
    }

    pub(super) fn install_tree_packet(
        &mut self,
        from: NodeId,
        group: GroupId,
        gen: u64,
        tp: TreePacket,
        txn: u64,
        ctx: &mut Ctx<'_, ScmpMsg>,
    ) {
        self.ack_tree_packet(from, group, gen, txn, ctx);
        if self.is_stale(group, gen) {
            ctx.drop_packet_keyed(group, txn);
            return;
        }
        // The DR's subnet is the ground truth for the local interface:
        // a concurrent restructure may have flushed an entry (losing the
        // flag) while this router's own JOIN was still in flight.
        self.pending_interfaces.remove(&group);
        self.join_attempts.remove(&group);
        self.join_txns.remove(&group);
        let local = self.subnet.has_members(group);
        let entry = self.entries.entry(group).or_default();
        let old_upstream = entry.upstream;
        entry.upstream = Some(from);
        entry.downstream_routers = tp.downstream_routers().into_iter().collect();
        entry.gen = gen;
        entry.local_interface = local;
        // Moving under a new parent: tell the old one to stop forwarding
        // to us, or it would keep a stale child pointer forever.
        if let Some(old) = old_upstream {
            if old != from {
                ctx.send(old, Packet::control_keyed(group, txn, ScmpMsg::Prune));
            }
        }
        for (child, sub) in tp.split() {
            let pkt = Packet::control_keyed(group, txn, ScmpMsg::Tree { gen, packet: sub });
            self.send_tree_tracked(group, child, gen, pkt, ctx);
        }
        self.prune_if_orphaned(group, txn, ctx);
    }

    pub(super) fn install_branch_packet(
        &mut self,
        from: NodeId,
        group: GroupId,
        gen: u64,
        bp: BranchPacket,
        txn: u64,
        ctx: &mut Ctx<'_, ScmpMsg>,
    ) {
        self.ack_tree_packet(from, group, gen, txn, ctx);
        if self.is_stale(group, gen) {
            // A newer TREE refresh already encodes this (or a newer)
            // tree; the stale branch must not resurrect old edges.
            ctx.drop_packet_keyed(group, txn);
            return;
        }
        let (next, rest) = bp.advance(self.me);
        self.pending_interfaces.remove(&group);
        self.join_attempts.remove(&group);
        self.join_txns.remove(&group);
        let local = self.subnet.has_members(group);
        let entry = self.entries.entry(group).or_default();
        let old_upstream = entry.upstream;
        entry.upstream = Some(from);
        entry.gen = gen;
        entry.local_interface = local;
        if let Some(old) = old_upstream {
            if old != from {
                ctx.send(old, Packet::control_keyed(group, txn, ScmpMsg::Prune));
            }
        }
        if let Some(next) = next {
            entry.downstream_routers.insert(next);
            let pkt = Packet::control_keyed(group, txn, ScmpMsg::Branch { gen, packet: rest });
            self.send_tree_tracked(group, next, gen, pkt, ctx);
        } else {
            self.prune_if_orphaned(group, txn, ctx);
        }
    }

    // ------------------------------------------------------------------
    // Hop-by-hop TREE/BRANCH ARQ (robustness extension)
    // ------------------------------------------------------------------
    // Tree distribution is relayed parent → child along tree edges, so
    // a single unprotected hop would cap the end-to-end install
    // probability at the worst link's delivery rate. Instead *every*
    // sender — the m-router and each relaying DR — tracks its own
    // transmissions to direct children and retransmits until TREE-ACKed
    // (bounded by [`MAX_RETRIES`]). A JOIN retried by the member remains
    // the end-to-end backstop once the hop budget is exhausted.

    /// Send a TREE/BRANCH packet to a direct child, registering it for
    /// retransmission until TREE-ACKed when `tree_retry > 0`.
    pub(super) fn send_tree_tracked(
        &mut self,
        group: GroupId,
        child: NodeId,
        gen: u64,
        pkt: Packet<ScmpMsg>,
        ctx: &mut Ctx<'_, ScmpMsg>,
    ) {
        let retry = self.domain.config.tree_retry;
        if retry == 0 {
            ctx.send(child, pkt);
            return;
        }
        ctx.send(child, pkt.clone());
        let deadline = ctx.now() + retry;
        self.pending_trees.insert(
            (group, child),
            PendingTree {
                gen,
                attempts: 0,
                pkt,
                deadline,
            },
        );
        ctx.set_timer(retry, super::tree_retry_token(group, child));
    }

    /// TREE-retry timer fired: resend the pending packet with backoff,
    /// giving up after [`MAX_RETRIES`].
    pub(super) fn retry_tree_if_unacked(
        &mut self,
        group: GroupId,
        child: NodeId,
        ctx: &mut Ctx<'_, ScmpMsg>,
    ) {
        let retry = self.domain.config.tree_retry;
        let now = ctx.now();
        let Some(p) = self.pending_trees.get_mut(&(group, child)) else {
            return; // acked in the meantime
        };
        if now < p.deadline {
            return; // stale timer from a superseded arming
        }
        p.attempts += 1;
        if p.attempts > MAX_RETRIES {
            self.pending_trees.remove(&(group, child));
            return;
        }
        let attempt = p.attempts;
        let pkt = p.pkt.clone();
        let tag = pkt.tag;
        let delay = retry << attempt.min(BACKOFF_CAP);
        p.deadline = now + delay;
        ctx.send(child, pkt);
        ctx.record_retransmit(group.0, child, attempt, tag);
        ctx.set_timer(delay, super::tree_retry_token(group, child));
    }

    /// TREE-ACK from a direct child: clear the pending transmission,
    /// unless the ack is for an older generation than the one in flight.
    pub(super) fn handle_tree_ack(&mut self, group: GroupId, from: NodeId, gen: u64) {
        if self
            .pending_trees
            .get(&(group, from))
            .is_some_and(|p| gen >= p.gen)
        {
            self.pending_trees.remove(&(group, from));
        }
    }

    /// Acknowledge a TREE/BRANCH packet to the parent that relayed it,
    /// when the domain runs the tree ARQ (`tree_retry > 0`). Stale
    /// packets are acked too: the parent's retransmission must stop once
    /// *any* copy got through, even if a newer generation overtook it in
    /// flight.
    fn ack_tree_packet(
        &mut self,
        from: NodeId,
        group: GroupId,
        gen: u64,
        txn: u64,
        ctx: &mut Ctx<'_, ScmpMsg>,
    ) {
        if self.domain.config.tree_retry > 0 {
            ctx.send(
                from,
                Packet::control_keyed(group, txn, ScmpMsg::TreeAck { gen }),
            );
        }
    }

    /// A just-installed leaf entry with no local members (the join was
    /// cancelled by a leave racing past it) prunes itself immediately,
    /// inheriting the transaction key of whatever triggered the check.
    fn prune_if_orphaned(&mut self, group: GroupId, txn: u64, ctx: &mut Ctx<'_, ScmpMsg>) {
        if self.is_m_router() {
            return;
        }
        if let Some(entry) = self.entries.get(&group) {
            if entry.is_prunable() {
                if let Some(up) = entry.upstream {
                    ctx.send(up, Packet::control_keyed(group, txn, ScmpMsg::Prune));
                }
                self.entries.remove(&group);
            }
        }
    }

    pub(super) fn handle_prune(
        &mut self,
        from: NodeId,
        group: GroupId,
        txn: u64,
        ctx: &mut Ctx<'_, ScmpMsg>,
    ) {
        let Some(entry) = self.entries.get_mut(&group) else {
            return;
        };
        entry.downstream_routers.remove(&from);
        if !self.is_m_router() {
            self.prune_if_orphaned(group, txn, ctx);
        }
    }
}
