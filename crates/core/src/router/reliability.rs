//! The reliable-multicast data tier (robustness extension).
//!
//! Plain SCMP (§III-F) delivers data packets best-effort: on a lossy
//! channel the delivery ratio degrades linearly with the loss rate.
//! This module adds an optional SRM-style recovery tier on top of the
//! bidirectional shared tree, enabled per domain by
//! [`ScmpConfig::reliability`](super::ScmpConfig):
//!
//! * **Sequencing** — the originating DR stamps every payload of a
//!   (group, origin) stream with a consecutive sequence number (`seq`
//!   in [`ScmpMsg::Data`]/[`ScmpMsg::EncapData`]; 0 = tier off).
//! * **Gap detection** — every router tracks per-stream receive state;
//!   a skipped sequence opens a *gap*. Receivers responsible for
//!   delivery (DRs with a live local interface, and the m-router for
//!   the unicast encapsulation leg) schedule a NACK.
//! * **NACK suppression timers** — NACKs are delayed by a base wait
//!   plus a *seeded, deterministic* jitter hash of (seed, node, group,
//!   origin, attempt), so replays are stable across worker counts while
//!   NACKs from different receivers still spread out (SRM's randomized
//!   request timer). Retries back off exponentially and give up after
//!   [`ReliabilityConfig::nack_retries`].
//! * **Repair caches** — every on-tree relaying DR keeps a bounded,
//!   byte-capped LRU cache of recently forwarded payloads (the NDN
//!   content-store analogue) and answers NACKs from it locally,
//!   forwarding upstream only on a miss.
//! * **Duplicate-NACK suppression** — a pending-interest table per
//!   router aggregates NACKs for the same (group, origin, seq) within a
//!   hold window: later requesters are parked as waiters and served
//!   when the repair flows down, so a loss near the source does not
//!   implode into one NACK per member.
//! * **Tail loss** — a gap after the *last* packet produces no later
//!   packet to reveal it, so stream sources announce their high-water
//!   sequence for a few rounds after each send burst
//!   ([`ScmpMsg::SeqAnnounce`]); the m-router re-announces decapsulated
//!   streams down the tree.
//!
//! Everything here is inert when `config.reliability` is `None`: the
//! sequence stamp stays 0, no state is touched, and the data plane is
//! byte-identical to plain SCMP (pinned by integration tests).

use super::config::ReliabilityConfig;
use super::{ScmpRouter, BACKOFF_CAP, TIMER_ANNOUNCE_BASE, TIMER_NACK_BASE};
use crate::message::ScmpMsg;
use scmp_net::NodeId;
use scmp_sim::{Ctx, GroupId, Packet, PacketClass};
use scmp_telemetry::pack_ctl_tag;
use std::collections::{BTreeMap, BTreeSet};

/// Most missing sequences NACKed per timer round; the rest wait for the
/// retry (bounds the burst a pathological gap can emit).
const NACK_BATCH: usize = 16;
/// Most tracked gaps per stream; older gaps are abandoned beyond this
/// (the payloads are unrecoverable anyway once every cache evicted
/// them, and the bound keeps per-stream memory constant).
const MAX_GAPS_PER_STREAM: usize = 1024;
/// Most pending-interest entries per router.
const MAX_PIT: usize = 1024;

/// Encode one (group, origin-stream) NACK-timer slot as a timer token.
fn nack_token(group: GroupId, origin: NodeId) -> u64 {
    TIMER_NACK_BASE + ((group.0 as u64) << 24) + origin.0 as u64
}

/// Encode one (group, origin-stream) announce-timer slot.
fn announce_token(group: GroupId, origin: NodeId) -> u64 {
    TIMER_ANNOUNCE_BASE + ((group.0 as u64) << 24) + origin.0 as u64
}

/// Deterministic suppression-timer jitter in `[0, width)`: a splitmix64
/// finalizer over the seed and the scheduling coordinates. A pure hash
/// — not an RNG stream — so the schedule is independent of event
/// interleaving and identical under any `--jobs` count.
pub fn nack_jitter(seed: u64, me: NodeId, group: GroupId, origin: NodeId, attempt: u32) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let x = seed
        .wrapping_add(mix((me.0 as u64) << 32 | group.0 as u64))
        .wrapping_add(mix((origin.0 as u64) << 8 | attempt as u64));
    mix(x)
}

/// Modelled size in bytes of the payload `(group, origin, seq)`: a
/// pure hash of the stream coordinates into
/// `[payload_bytes_min, payload_bytes_max]`, so every router charges
/// the same payload identically without any size travelling on the
/// wire. Collapses to the configured constant when the range is empty
/// (the default pins both ends to `CACHE_ENTRY_BYTES`).
pub fn payload_bytes(cfg: &ReliabilityConfig, group: GroupId, origin: NodeId, seq: u64) -> usize {
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let lo = u64::from(cfg.payload_bytes_min.min(cfg.payload_bytes_max));
    let hi = u64::from(cfg.payload_bytes_min.max(cfg.payload_bytes_max));
    if lo == hi {
        return lo as usize;
    }
    let x = cfg
        .seed
        .wrapping_add(mix((origin.0 as u64) << 32 | group.0 as u64))
        .wrapping_add(mix(seq));
    (lo + mix(x) % (hi - lo + 1)) as usize
}

fn jitter_in(
    cfg: &ReliabilityConfig,
    me: NodeId,
    group: GroupId,
    origin: NodeId,
    attempt: u32,
) -> u64 {
    if cfg.nack_jitter == 0 {
        return 0;
    }
    nack_jitter(cfg.seed, me, group, origin, attempt) % cfg.nack_jitter
}

/// Per-(group, origin) stream receive state.
#[derive(Debug, Default)]
struct StreamState {
    /// Highest sequence known to exist (received, repaired or
    /// announced).
    hi: u64,
    /// Open gaps: missing sequence → time the gap was first detected
    /// (feeds the recovery-latency histogram when the repair lands).
    missing: BTreeMap<u64, u64>,
    /// Tree neighbor the stream arrives from — the NACK direction.
    from: Option<NodeId>,
    /// m-router-side state for the unicast encapsulation leg: NACKs go
    /// straight back to the stream origin instead of up a tree edge.
    encap: bool,
    /// NACK suppression-timer state for this stream.
    nack_armed: bool,
    nack_attempt: u32,
    nack_deadline: u64,
    /// Highest (seq, round) announce already relayed down the tree, so
    /// each announce round is forwarded once per router.
    relayed_announce: Option<(u64, u32)>,
}

enum Arrival {
    Fresh { closed_gap_at: Option<u64> },
    Duplicate,
}

impl StreamState {
    /// Record that sequence `seq` arrived at time `now`; opens gaps for
    /// skipped sequences and closes the matching gap on a late arrival.
    fn observe(&mut self, seq: u64, now: u64) -> Arrival {
        if seq > self.hi {
            for missed in self.hi + 1..seq {
                if self.missing.len() >= MAX_GAPS_PER_STREAM {
                    self.missing.pop_first();
                }
                self.missing.insert(missed, now);
            }
            self.hi = seq;
            Arrival::Fresh {
                closed_gap_at: None,
            }
        } else if let Some(at) = self.missing.remove(&seq) {
            Arrival::Fresh {
                closed_gap_at: Some(at),
            }
        } else {
            Arrival::Duplicate
        }
    }

    /// Extend the known extent from an announce; opens tail gaps.
    fn observe_extent(&mut self, seq: u64, now: u64) {
        if seq > self.hi {
            for missed in self.hi + 1..=seq {
                if self.missing.len() >= MAX_GAPS_PER_STREAM {
                    self.missing.pop_first();
                }
                self.missing.insert(missed, now);
            }
            self.hi = seq;
        }
    }
}

/// One cached payload, LRU-stamped and charged at its modelled size.
#[derive(Debug)]
struct CacheEntry {
    tag: u64,
    created_at: u64,
    stamp: u64,
    bytes: usize,
}

/// Bounded retransmission cache: (group, origin, seq) → payload
/// metadata, byte-capped with least-recently-used eviction. Each entry
/// is charged its modelled payload size (see [`payload_bytes`]), so a
/// few jumbo payloads displace many small ones.
#[derive(Debug, Default)]
struct RepairCache {
    entries: BTreeMap<(u32, u32, u64), CacheEntry>,
    /// LRU index: access stamp → key. Stamps are unique (monotonic
    /// counter), so the map is a total order of recency.
    lru: BTreeMap<u64, (u32, u32, u64)>,
    next_stamp: u64,
    /// Summed `bytes` of every live entry.
    total_bytes: usize,
}

impl RepairCache {
    /// Insert (or refresh) a payload charged at `bytes`; returns how
    /// many entries were evicted to bring the summed payload bytes back
    /// under `cap_bytes` (the newest entry itself is never evicted, so
    /// one oversized payload still caches).
    fn insert(
        &mut self,
        key: (u32, u32, u64),
        tag: u64,
        created_at: u64,
        bytes: usize,
        cap_bytes: usize,
    ) -> u64 {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(e) = self.entries.get_mut(&key) {
            self.lru.remove(&e.stamp);
            e.stamp = stamp;
            self.lru.insert(stamp, key);
            return 0;
        }
        self.entries.insert(
            key,
            CacheEntry {
                tag,
                created_at,
                stamp,
                bytes,
            },
        );
        self.lru.insert(stamp, key);
        self.total_bytes += bytes;
        let mut evicted = 0;
        while self.total_bytes > cap_bytes && self.entries.len() > 1 {
            let (_, victim) = self.lru.pop_first().expect("lru tracks every entry");
            let gone = self
                .entries
                .remove(&victim)
                .expect("entries track every key");
            self.total_bytes -= gone.bytes;
            evicted += 1;
        }
        evicted
    }

    /// Look up a payload, refreshing its recency on a hit.
    fn get(&mut self, key: (u32, u32, u64)) -> Option<(u64, u64)> {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let e = self.entries.get_mut(&key)?;
        self.lru.remove(&e.stamp);
        e.stamp = stamp;
        self.lru.insert(stamp, key);
        Some((e.tag, e.created_at))
    }
}

/// One aggregated pending repair: requesters parked while the first
/// NACK travels upstream.
#[derive(Debug)]
struct PitEntry {
    waiters: BTreeSet<NodeId>,
    forwarded_at: u64,
}

/// Announce-series state for a stream this router sources (its own
/// sends, or — at the m-router — a decapsulated encap stream).
#[derive(Debug)]
struct AnnounceState {
    rounds_left: u32,
    round: u32,
    deadline: u64,
}

/// All reliability-tier state of one router. Empty (a few empty maps)
/// when the tier is disabled.
#[derive(Debug, Default)]
pub(super) struct ReliabilityState {
    streams: BTreeMap<(GroupId, NodeId), StreamState>,
    cache: RepairCache,
    pit: BTreeMap<(u32, u32, u64), PitEntry>,
    /// Next sequence to stamp per group this node sends into.
    send_seq: BTreeMap<GroupId, u64>,
    announces: BTreeMap<(GroupId, NodeId), AnnounceState>,
}

impl ScmpRouter {
    fn rel_cfg(&self) -> Option<ReliabilityConfig> {
        self.domain.config.reliability.clone()
    }

    /// Stamp the next sequence number for a payload this node sends
    /// into `group`, caching the payload for repairs. Returns 0 (the
    /// unsequenced sentinel) when the tier is off.
    pub(super) fn rel_stamp_send(
        &mut self,
        group: GroupId,
        tag: u64,
        ctx: &mut Ctx<'_, ScmpMsg>,
    ) -> u64 {
        let Some(cfg) = self.rel_cfg() else {
            return 0;
        };
        let seq = self.rel.send_seq.entry(group).or_insert(0);
        *seq += 1;
        let seq = *seq;
        let bytes = payload_bytes(&cfg, group, self.me, seq);
        let evicted = self.rel.cache.insert(
            (group.0, self.me.0, seq),
            tag,
            ctx.now(),
            bytes,
            cfg.cache_bytes,
        );
        ctx.record_cache_evictions(evicted);
        self.rel_kick_announce(group, self.me, &cfg, ctx);
        seq
    }

    /// Dedup + gap bookkeeping for an arriving sequenced payload.
    /// Returns `false` when the packet is a duplicate and must be
    /// suppressed. On a fresh arrival the payload is cached and, if the
    /// packet closed a tracked gap at a delivery-responsible router,
    /// the recovery is recorded.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn rel_observe_data(
        &mut self,
        group: GroupId,
        origin: NodeId,
        seq: u64,
        tag: u64,
        created_at: u64,
        from: Option<NodeId>,
        encap: bool,
        ctx: &mut Ctx<'_, ScmpMsg>,
    ) -> bool {
        let Some(cfg) = self.rel_cfg() else {
            return true;
        };
        let now = ctx.now();
        let stream = self.rel.streams.entry((group, origin)).or_default();
        stream.encap = stream.encap || encap;
        if let Some(f) = from {
            stream.from = Some(f);
        }
        let fresh = match stream.observe(seq, now) {
            Arrival::Duplicate => return false,
            Arrival::Fresh { closed_gap_at } => closed_gap_at,
        };
        let bytes = payload_bytes(&cfg, group, origin, seq);
        let evicted = self.rel.cache.insert(
            (group.0, origin.0, seq),
            tag,
            created_at,
            bytes,
            cfg.cache_bytes,
        );
        ctx.record_cache_evictions(evicted);
        if let Some(detected) = fresh {
            // A gap closed by an ordinary (reordered/duplicated) copy is
            // not a repair; only count it when this router would have
            // NACKed for it.
            if self.rel_responsible(group, origin) {
                ctx.record_recovery(group.0, origin.0, seq, tag, now.saturating_sub(detected));
            }
        }
        self.rel_arm_nack_if_needed(group, origin, &cfg, ctx);
        true
    }

    /// Whether this router must chase gaps of stream (group, origin):
    /// it delivers to local members, or it is the m-router terminating
    /// the stream's unicast encapsulation leg.
    fn rel_responsible(&self, group: GroupId, origin: NodeId) -> bool {
        if self.entries.get(&group).is_some_and(|e| e.local_interface) {
            return true;
        }
        self.is_m_router()
            && self
                .rel
                .streams
                .get(&(group, origin))
                .is_some_and(|s| s.encap)
    }

    /// Arm the stream's NACK suppression timer when it has open gaps,
    /// this router is responsible for them, and no timer is pending.
    fn rel_arm_nack_if_needed(
        &mut self,
        group: GroupId,
        origin: NodeId,
        cfg: &ReliabilityConfig,
        ctx: &mut Ctx<'_, ScmpMsg>,
    ) {
        if !self.rel_responsible(group, origin) {
            return;
        }
        let me = self.me;
        let Some(stream) = self.rel.streams.get_mut(&(group, origin)) else {
            return;
        };
        if stream.missing.is_empty() || stream.nack_armed {
            return;
        }
        stream.nack_armed = true;
        stream.nack_attempt = 0;
        let delay = cfg.nack_delay + jitter_in(cfg, me, group, origin, 0);
        stream.nack_deadline = ctx.now() + delay;
        ctx.set_timer(delay, nack_token(group, origin));
    }

    /// NACK suppression timer fired for stream (group, origin).
    pub(super) fn rel_nack_timer(
        &mut self,
        group: GroupId,
        origin: NodeId,
        ctx: &mut Ctx<'_, ScmpMsg>,
    ) {
        let Some(cfg) = self.rel_cfg() else {
            return;
        };
        let now = ctx.now();
        let responsible = self.rel_responsible(group, origin);
        let me = self.me;
        let m_router = self.m_router_for(group);
        let Some(stream) = self.rel.streams.get_mut(&(group, origin)) else {
            return;
        };
        if now < stream.nack_deadline {
            return; // superseded arming; the newer timer is in flight
        }
        if stream.missing.is_empty() || !responsible {
            stream.nack_armed = false;
            return;
        }
        stream.nack_attempt += 1;
        if stream.nack_attempt > cfg.nack_retries {
            // Give up: the payloads have aged out of every cache that
            // could answer. The gaps stay recorded (delivery_ratio
            // reflects them); a later repair can still close them.
            stream.nack_armed = false;
            return;
        }
        let attempt = stream.nack_attempt;
        let encap = stream.encap;
        let upstream = stream.from;
        let wanted: Vec<u64> = stream.missing.keys().take(NACK_BATCH).copied().collect();
        for seq in wanted {
            let tag = pack_ctl_tag(origin.0, seq as u32);
            let pkt = Packet::control_keyed(group, tag, ScmpMsg::Nack { origin, seq });
            ctx.record_nack(group.0, origin.0, seq, tag);
            if encap {
                // m-router chasing the unicast encapsulation leg.
                ctx.unicast(origin, pkt);
            } else if let Some(up) = upstream {
                ctx.send(up, pkt);
            } else if m_router != me {
                // Never saw a data packet (pure tail loss learned from a
                // relayed announce before any payload): ask the root.
                ctx.unicast(m_router, pkt);
            }
        }
        let delay = (cfg.nack_delay << attempt.min(BACKOFF_CAP))
            + jitter_in(&cfg, me, group, origin, attempt);
        let stream = self
            .rel
            .streams
            .get_mut(&(group, origin))
            .expect("stream checked above");
        stream.nack_deadline = now + delay;
        ctx.set_timer(delay, nack_token(group, origin));
    }

    /// An incoming NACK: answer from the repair cache, or aggregate it
    /// in the PIT and forward upstream on a fresh miss.
    pub(super) fn rel_handle_nack(
        &mut self,
        from: NodeId,
        pkt: &Packet<ScmpMsg>,
        origin: NodeId,
        seq: u64,
        ctx: &mut Ctx<'_, ScmpMsg>,
    ) {
        let Some(cfg) = self.rel_cfg() else {
            ctx.drop_packet_keyed(pkt.group, pkt.tag);
            return;
        };
        let group = pkt.group;
        let key = (group.0, origin.0, seq);
        if let Some((tag, created_at)) = self.rel.cache.get(key) {
            ctx.record_repair_hit(group.0, origin.0, seq, tag);
            let repair = Packet {
                class: PacketClass::Control,
                group,
                tag,
                created_at,
                // Preserve the stream origin so every repair hop (and
                // the eventual recovered delivery) joins the original
                // payload's causal journey.
                origin,
                body: ScmpMsg::Repair { origin, seq },
            };
            if origin == self.me {
                // We are the stream source; the requester NACKed us
                // directly over unicast (the encapsulation leg).
                ctx.unicast(pkt.origin, repair);
            } else {
                ctx.send(from, repair);
            }
            return;
        }
        ctx.record_repair_miss(group.0, origin.0, seq, pkt.tag);
        if origin == self.me {
            // Our own payload aged out of our cache: unrecoverable.
            ctx.drop_packet_keyed(group, pkt.tag);
            return;
        }
        let now = ctx.now();
        let hold = cfg.nack_delay * 2;
        if let Some(entry) = self.rel.pit.get_mut(&key) {
            if now.saturating_sub(entry.forwarded_at) < hold {
                // A NACK for this payload is already travelling
                // upstream; park the requester until the repair flows
                // down (duplicate-NACK suppression).
                entry.waiters.insert(from);
                ctx.record_nack_suppressed(group.0, origin.0, seq, pkt.tag);
                return;
            }
        }
        if self.rel.pit.len() >= MAX_PIT && !self.rel.pit.contains_key(&key) {
            // Shed the oldest interest; its requester retries anyway.
            if let Some(oldest) = self
                .rel
                .pit
                .iter()
                .min_by_key(|(k, e)| (e.forwarded_at, **k))
                .map(|(k, _)| *k)
            {
                self.rel.pit.remove(&oldest);
            }
        }
        let entry = self.rel.pit.entry(key).or_insert(PitEntry {
            waiters: BTreeSet::new(),
            forwarded_at: now,
        });
        entry.waiters.insert(from);
        entry.forwarded_at = now;
        ctx.record_nack_forwarded();
        // Forward a *fresh* NACK so each hop's requester is the
        // previous hop (repairs then cascade cache-to-cache back down).
        let fwd = Packet::control_keyed(group, pkt.tag, ScmpMsg::Nack { origin, seq });
        let stream = self.rel.streams.get(&(group, origin));
        if stream.is_some_and(|s| s.encap) {
            ctx.unicast(origin, fwd);
        } else if let Some(up) = stream.and_then(|s| s.from) {
            ctx.send(up, fwd);
        } else {
            let m = self.m_router_for(group);
            if m != self.me {
                ctx.unicast(m, fwd);
            }
        }
    }

    /// An incoming repair: close the gap, deliver locally when this DR
    /// has members, serve parked waiters, and — at the m-router for an
    /// encapsulated stream — re-flood the recovered payload down the
    /// tree as ordinary data.
    pub(super) fn rel_handle_repair(
        &mut self,
        pkt: &Packet<ScmpMsg>,
        origin: NodeId,
        seq: u64,
        ctx: &mut Ctx<'_, ScmpMsg>,
    ) {
        if self.rel_cfg().is_none() {
            ctx.drop_packet_keyed(pkt.group, pkt.tag);
            return;
        };
        let group = pkt.group;
        if !self.rel_observe_data(
            group,
            origin,
            seq,
            pkt.tag,
            pkt.created_at,
            None,
            false,
            ctx,
        ) {
            ctx.drop_packet_keyed(group, pkt.tag);
            return;
        }
        let data = Packet {
            class: PacketClass::Data,
            group,
            tag: pkt.tag,
            created_at: pkt.created_at,
            origin,
            body: ScmpMsg::Data { seq },
        };
        let encap = self
            .rel
            .streams
            .get(&(group, origin))
            .is_some_and(|s| s.encap);
        if self.is_m_router() && encap {
            // The recovered payload never made it off the encapsulation
            // leg: push it down the whole tree like a fresh
            // decapsulation. Stream dedup downstream suppresses copies
            // members already have.
            self.rel.pit.remove(&(group.0, origin.0, seq));
            if let Some(entry) = self.entries.get(&group) {
                if entry.local_interface {
                    ctx.deliver_local(&data);
                }
                for to in entry.downstream_routers.clone() {
                    ctx.send(to, data.clone());
                }
            }
            return;
        }
        if self.entries.get(&group).is_some_and(|e| e.local_interface) {
            ctx.deliver_local(&data);
        }
        if let Some(pit) = self.rel.pit.remove(&(group.0, origin.0, seq)) {
            let repair = Packet {
                class: PacketClass::Control,
                group,
                tag: pkt.tag,
                created_at: pkt.created_at,
                origin,
                body: ScmpMsg::Repair { origin, seq },
            };
            for w in pit.waiters {
                ctx.send(w, repair.clone());
            }
        }
    }

    /// An incoming SEQ-ANNOUNCE: learn the stream extent (opening tail
    /// gaps), relay each round once down the tree, and — at the
    /// m-router for an encapsulated stream — restart the downstream
    /// announce series so members learn the extent too.
    pub(super) fn rel_handle_announce(
        &mut self,
        from: NodeId,
        pkt: &Packet<ScmpMsg>,
        origin: NodeId,
        seq: u64,
        round: u32,
        ctx: &mut Ctx<'_, ScmpMsg>,
    ) {
        let Some(cfg) = self.rel_cfg() else {
            ctx.drop_packet_keyed(pkt.group, pkt.tag);
            return;
        };
        let group = pkt.group;
        if origin == self.me {
            return; // our own announce echoed back on the tree
        }
        let now = ctx.now();
        let is_m = self.is_m_router();
        let stream = self.rel.streams.entry((group, origin)).or_default();
        // The encapsulation leg is unicast: an announce landing at the
        // m-router from an origin it has no tree-neighbor state for is
        // the origin's own beacon.
        if is_m && stream.from.is_none() {
            stream.encap = true;
        }
        if stream.from.is_none() && !stream.encap {
            stream.from = Some(from);
        }
        stream.observe_extent(seq, now);
        let relay = if stream.relayed_announce < Some((seq, round)) {
            stream.relayed_announce = Some((seq, round));
            true
        } else {
            false
        };
        let encap = stream.encap;
        self.rel_arm_nack_if_needed(group, origin, &cfg, ctx);
        if is_m && encap {
            // Re-announce the (possibly still unrecovered) extent down
            // the tree so members detect tail loss of the flood too.
            self.rel_kick_announce(group, origin, &cfg, ctx);
            return;
        }
        if relay {
            if let Some(entry) = self.entries.get(&group) {
                let fwd = Packet::control_keyed(
                    group,
                    pkt.tag,
                    ScmpMsg::SeqAnnounce { origin, seq, round },
                );
                for to in entry.forwarding_set() {
                    if to != from {
                        ctx.send(to, fwd.clone());
                    }
                }
            }
        }
    }

    /// (Re)start the announce series for a stream this router sources.
    pub(super) fn rel_kick_announce(
        &mut self,
        group: GroupId,
        origin: NodeId,
        cfg: &ReliabilityConfig,
        ctx: &mut Ctx<'_, ScmpMsg>,
    ) {
        if cfg.announce_interval == 0 || cfg.announce_rounds == 0 {
            return;
        }
        let deadline = ctx.now() + cfg.announce_interval;
        let state = self
            .rel
            .announces
            .entry((group, origin))
            .or_insert(AnnounceState {
                rounds_left: 0,
                round: 0,
                deadline,
            });
        state.rounds_left = cfg.announce_rounds;
        state.deadline = deadline;
        ctx.set_timer(cfg.announce_interval, announce_token(group, origin));
    }

    /// Announce timer fired for a stream this router sources.
    pub(super) fn rel_announce_timer(
        &mut self,
        group: GroupId,
        origin: NodeId,
        ctx: &mut Ctx<'_, ScmpMsg>,
    ) {
        let Some(cfg) = self.rel_cfg() else {
            return;
        };
        let now = ctx.now();
        let Some(state) = self.rel.announces.get_mut(&(group, origin)) else {
            return;
        };
        if now < state.deadline {
            return; // superseded by a newer series restart
        }
        if state.rounds_left == 0 {
            self.rel.announces.remove(&(group, origin));
            return;
        }
        state.rounds_left -= 1;
        state.round += 1;
        let round = state.round;
        let more = state.rounds_left > 0;
        if more {
            state.deadline = now + cfg.announce_interval;
            ctx.set_timer(cfg.announce_interval, announce_token(group, origin));
        } else {
            self.rel.announces.remove(&(group, origin));
        }
        let hi = if origin == self.me {
            self.rel.send_seq.get(&group).copied().unwrap_or(0)
        } else {
            self.rel
                .streams
                .get(&(group, origin))
                .map(|s| s.hi)
                .unwrap_or(0)
        };
        if hi == 0 {
            return;
        }
        let tag = pack_ctl_tag(origin.0, hi as u32);
        let announce = Packet::control_keyed(
            group,
            tag,
            ScmpMsg::SeqAnnounce {
                origin,
                seq: hi,
                round,
            },
        );
        if let Some(entry) = self.entries.get(&group) {
            if origin == self.me {
                // On-tree source: flood over every tree interface.
                for to in entry.forwarding_set() {
                    ctx.send(to, announce.clone());
                }
            } else {
                // m-router re-announcing a decapsulated stream.
                for to in entry.downstream_routers.clone() {
                    ctx.send(to, announce.clone());
                }
            }
        } else if origin == self.me {
            // Off-tree source: beacon the extent to the stream's root.
            let m = self.m_router_for(group);
            if m != self.me {
                ctx.unicast(m, announce);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::config::CACHE_ENTRY_BYTES;
    use super::*;

    #[test]
    fn stream_gap_detection_opens_and_closes() {
        let mut s = StreamState::default();
        assert!(matches!(
            s.observe(1, 10),
            Arrival::Fresh {
                closed_gap_at: None
            }
        ));
        // 2 and 3 lost; 4 arrives.
        assert!(matches!(s.observe(4, 20), Arrival::Fresh { .. }));
        assert_eq!(
            s.missing.keys().copied().collect::<Vec<_>>(),
            vec![2, 3],
            "skipped sequences become gaps"
        );
        // Late copy of 2 closes its gap, stamped with detection time.
        match s.observe(2, 30) {
            Arrival::Fresh { closed_gap_at } => assert_eq!(closed_gap_at, Some(20)),
            _ => panic!("late arrival must be fresh"),
        }
        assert!(matches!(s.observe(2, 31), Arrival::Duplicate));
        assert!(matches!(s.observe(4, 32), Arrival::Duplicate));
        // Announce extends the extent: 5..=6 become tail gaps.
        s.observe_extent(6, 40);
        assert_eq!(s.missing.keys().copied().collect::<Vec<_>>(), vec![3, 5, 6]);
        assert_eq!(s.hi, 6);
    }

    #[test]
    fn repair_cache_is_byte_capped_lru() {
        let mut c = RepairCache::default();
        let cap = 4 * CACHE_ENTRY_BYTES; // room for 4 default-size entries
        for seq in 1..=4u64 {
            assert_eq!(c.insert((1, 13, seq), seq, 0, CACHE_ENTRY_BYTES, cap), 0);
        }
        // Touch seq 1 so seq 2 is the LRU victim.
        assert_eq!(c.get((1, 13, 1)), Some((1, 0)));
        assert_eq!(
            c.insert((1, 13, 5), 5, 0, CACHE_ENTRY_BYTES, cap),
            1,
            "one entry evicted"
        );
        assert_eq!(c.get((1, 13, 2)), None, "LRU victim was seq 2");
        assert_eq!(c.get((1, 13, 1)), Some((1, 0)), "recently used survives");
        // Re-inserting an existing key refreshes, never evicts.
        assert_eq!(c.insert((1, 13, 1), 1, 0, CACHE_ENTRY_BYTES, cap), 0);
        assert_eq!(c.entries.len(), 4);
        assert_eq!(c.total_bytes, cap, "accounting matches the live set");
    }

    #[test]
    fn repair_cache_charges_actual_payload_bytes() {
        let mut c = RepairCache::default();
        let cap = 1_000;
        // Ten 100-byte payloads fill the cache exactly.
        for seq in 1..=10u64 {
            assert_eq!(c.insert((1, 13, seq), seq, 0, 100, cap), 0);
        }
        assert_eq!(c.total_bytes, 1_000);
        // One 550-byte jumbo displaces six small payloads (five would
        // leave 1_050 > cap), not the single entry a flat per-entry
        // estimate would charge.
        assert_eq!(c.insert((1, 13, 11), 11, 0, 550, cap), 6);
        assert_eq!(c.entries.len(), 5);
        assert_eq!(c.total_bytes, 4 * 100 + 550);
        for seq in 1..=6u64 {
            assert_eq!(c.get((1, 13, seq)), None, "small payload {seq} evicted");
        }
        // A tiny payload after the jumbo evicts nothing.
        assert_eq!(c.insert((1, 13, 12), 12, 0, 8, cap), 0);
        assert_eq!(c.total_bytes, 4 * 100 + 550 + 8);
        // An oversize payload beyond the whole cap still caches (the
        // newest entry is never evicted) but flushes everything else.
        assert_eq!(c.insert((1, 13, 13), 13, 0, 2_000, cap), 6);
        assert_eq!(c.entries.len(), 1);
        assert_eq!(c.total_bytes, 2_000);
        assert_eq!(c.get((1, 13, 13)), Some((13, 0)));
    }

    #[test]
    fn payload_sizes_are_pure_and_ranged() {
        let mut cfg = ReliabilityConfig {
            payload_bytes_min: 16,
            payload_bytes_max: 1_024,
            ..ReliabilityConfig::default()
        };
        let mut distinct = BTreeSet::new();
        for seq in 1..=64u64 {
            let a = payload_bytes(&cfg, GroupId(1), NodeId(13), seq);
            let b = payload_bytes(&cfg, GroupId(1), NodeId(13), seq);
            assert_eq!(a, b, "same coordinates, same size");
            assert!((16..=1_024).contains(&a), "size {a} out of range");
            distinct.insert(a);
        }
        assert!(distinct.len() > 1, "a 64-payload mix must vary in size");
        // A degenerate range is a constant — the default model.
        cfg.payload_bytes_min = CACHE_ENTRY_BYTES as u32;
        cfg.payload_bytes_max = CACHE_ENTRY_BYTES as u32;
        for seq in 1..=8u64 {
            assert_eq!(
                payload_bytes(&cfg, GroupId(1), NodeId(13), seq),
                CACHE_ENTRY_BYTES
            );
        }
    }

    #[test]
    fn jitter_is_a_pure_function_of_its_inputs() {
        let a = nack_jitter(7, NodeId(3), GroupId(1), NodeId(13), 0);
        let b = nack_jitter(7, NodeId(3), GroupId(1), NodeId(13), 0);
        assert_eq!(a, b, "same coordinates, same jitter");
        let c = nack_jitter(7, NodeId(4), GroupId(1), NodeId(13), 0);
        let d = nack_jitter(7, NodeId(3), GroupId(1), NodeId(13), 1);
        let e = nack_jitter(8, NodeId(3), GroupId(1), NodeId(13), 0);
        // Not a proof of spread, but the standard coordinates must not
        // collide for the suppression design to make sense.
        assert!(a != c || a != d || a != e);
    }
}
