//! The m-router side of the state machine: centralized DCDM tree
//! construction on JOIN/LEAVE (§III-D), the session/accounting database,
//! the switching-fabric configuration (§II-B) and the periodic tree
//! repair scan (robustness extension).

use super::{Role, ScmpRouter, TIMER_EXPIRY_BASE, TIMER_REPAIR};
use crate::message::ScmpMsg;
use crate::session::SessionDb;
use crate::tree_packet::{BranchPacket, TreePacket};
use scmp_fabric::{GroupRequest, SandwichFabric};
use scmp_net::{NodeId, OnDemandPaths, PathProvider, Topology};
use scmp_sim::{Ctx, GroupId, Packet};
use scmp_telemetry::HealthTrigger;
use scmp_tree::{Dcdm, MulticastTree};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Sample the tree-health metrics (cost, depth, members, stretch, delay
/// variation) and record them on the telemetry stream. The metric
/// computation walks the whole tree, so it is gated on telemetry being
/// enabled: sink-off runs pay nothing and behave identically.
pub(super) fn record_tree_health(
    group: GroupId,
    trigger: HealthTrigger,
    topo: &Topology,
    paths: &dyn PathProvider,
    tree: &MulticastTree,
    ctx: &mut Ctx<'_, ScmpMsg>,
) {
    if !ctx.telemetry_on() {
        return;
    }
    let h = scmp_tree::health(topo, paths, tree);
    ctx.record_tree_health(
        group,
        trigger,
        h.members,
        h.depth,
        h.cost,
        h.stretch_milli,
        h.delay_var,
    );
}

/// m-router-only state.
#[derive(Debug)]
pub struct MRouterState {
    /// One mirrored multicast tree per group (§III-D: "the multicast
    /// tree is constructed in the m-router before it is physically
    /// formed in the domain").
    pub(super) trees: BTreeMap<GroupId, MulticastTree>,
    /// Group/session database with the accounting log.
    pub sessions: SessionDb,
    /// Output-port assignment per group in the switching fabric.
    fabric_ports: BTreeMap<GroupId, usize>,
    /// The configured sandwich fabric (rebuilt when the group set
    /// changes); `None` until the first group appears.
    fabric: Option<SandwichFabric>,
    /// Fabric port count (power of two ≥ 2 × expected groups).
    fabric_size: usize,
    /// Per-group tree generation, bumped on every membership change.
    gens: BTreeMap<GroupId, u64>,
    /// Added to every generation this m-router issues. Zero on the
    /// configured primary; a promoted standby starts at the epoch above
    /// everything it has seen, so its generations outrank the deposed
    /// primary's (see [`super::GEN_EPOCH_SHIFT`]).
    pub(super) gen_epoch: u64,
    pub(super) heartbeat_seq: u64,
    /// Set on a promoted standby once the deposed primary has proven
    /// itself alive (its heartbeat reached us after our takeover): from
    /// then on the promoted node heartbeats and mirrors membership back,
    /// making the survivor pair symmetric again.
    pub(super) peer_alive: bool,
    /// Nodes the previous repair scan found unreachable from this
    /// m-router (empty in a healthy domain). The scan diffs its fresh
    /// reachability view against this set to detect a partition forming
    /// (degraded mode) and healing (reconciliation).
    pub(super) unreachable: BTreeSet<NodeId>,
}

impl MRouterState {
    pub(super) fn new() -> Self {
        MRouterState {
            trees: BTreeMap::new(),
            sessions: SessionDb::new(),
            fabric_ports: BTreeMap::new(),
            fabric: None,
            fabric_size: 64,
            gens: BTreeMap::new(),
            gen_epoch: 0,
            heartbeat_seq: 0,
            peer_alive: false,
            unreachable: BTreeSet::new(),
        }
    }

    /// Bump and return the tree generation for `group` (offset into this
    /// m-router's takeover epoch).
    pub(super) fn next_gen(&mut self, group: GroupId) -> u64 {
        let g = self.gens.entry(group).or_insert(0);
        *g += 1;
        self.gen_epoch + *g
    }

    /// The mirrored tree for `group`, if the group has been seen.
    pub fn tree(&self, group: GroupId) -> Option<&MulticastTree> {
        self.trees.get(&group)
    }

    /// The fabric output port assigned to `group`.
    pub fn fabric_port(&self, group: GroupId) -> Option<usize> {
        self.fabric_ports.get(&group).copied()
    }

    /// Reconfigure the sandwich fabric for the current group set: one
    /// input port per group (the line from the domain) merging onto the
    /// group's assigned output port. In a deployed m-router the sources
    /// of a group would occupy several input ports; the per-group
    /// input-port set here is the minimal one that keeps the
    /// configuration live and checked.
    fn reconfigure_fabric(&mut self) {
        let groups: Vec<GroupRequest> = self
            .fabric_ports
            .iter()
            .enumerate()
            .map(|(idx, (_, &port))| GroupRequest {
                sources: vec![idx],
                output: port,
            })
            .collect();
        if groups.is_empty() {
            self.fabric = None;
            return;
        }
        self.fabric = Some(
            SandwichFabric::configure(self.fabric_size, &groups)
                .expect("port assignment is collision-free"),
        );
    }

    pub(super) fn assign_fabric_port(&mut self, group: GroupId) {
        if self.fabric_ports.contains_key(&group) {
            return;
        }
        // Grow the fabric when the group count approaches the port count
        // (half the ports serve as source lines, half as group outputs —
        // a bigger switching fabric is exactly the §II-B scaling story).
        while self.fabric_ports.len() + 1 > self.fabric_size / 2 {
            self.fabric_size *= 2;
        }
        // Deterministic first-free assignment from the top of the port
        // range (low ports serve as source lines).
        let used: BTreeSet<usize> = self.fabric_ports.values().copied().collect();
        let port = (0..self.fabric_size)
            .rev()
            .find(|p| !used.contains(p))
            .expect("fabric has free ports");
        self.fabric_ports.insert(group, port);
        self.reconfigure_fabric();
    }
}

impl ScmpRouter {
    /// Where membership mirror updates go: the configured standby for
    /// the primary, or — on a promoted standby — back to the deposed
    /// primary once it has proven itself alive.
    pub(super) fn sync_peer(&self) -> Option<NodeId> {
        let cfg = &self.domain.config;
        let standby = cfg.standby?;
        if self.me != standby {
            return Some(standby);
        }
        match &self.role {
            Role::MRouter(state) if state.peer_alive => Some(cfg.m_router),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // m-router: centralized tree construction (§III-D)
    // ------------------------------------------------------------------

    pub(super) fn m_handle_join(
        &mut self,
        group: GroupId,
        requester: NodeId,
        txn: u64,
        ctx: &mut Ctx<'_, ScmpMsg>,
    ) {
        let domain = Arc::clone(&self.domain);
        let me = self.me;
        let Role::MRouter(state) = &mut self.role else {
            return; // JOIN addressed to a node that is not the m-router
        };
        state.sessions.register_group(group);
        state.sessions.record(ctx.now(), group, requester, true);
        state.assign_fabric_port(group);
        let gen = state.next_gen(group);
        let tree = state
            .trees
            .remove(&group)
            .unwrap_or_else(|| MulticastTree::new(domain.topo.node_count(), me));
        let mut dcdm = Dcdm::with_tree(&domain.topo, &*domain.paths, tree, domain.config.bound);
        let outcome = dcdm.join(requester);
        let tree = dcdm.into_tree();

        // Refresh the m-router's own routing entry from the mirror.
        let entry = self.entries.entry(group).or_default();
        entry.upstream = None;
        entry.downstream_routers = tree.children(me).iter().copied().collect();
        if requester == me {
            self.pending_interfaces.remove(&group);
            entry.local_interface = true;
        }

        // Physically form the change in the domain.
        if requester != me {
            if outcome.path.len() == 1 {
                // Requester was already on the tree — but its entry may
                // be gone (crash-recovered DR, TREE/BRANCH lost to
                // congestion), so re-send a BRANCH refresh along its root
                // path instead of distributing nothing. This makes a
                // repeated JOIN an idempotent state-repair primitive.
                if let Some(path) = tree.path_from_root(requester) {
                    if path.len() > 1 {
                        let bp = BranchPacket::from_root_path(&path);
                        let first = bp.path[0];
                        let pkt =
                            Packet::control_keyed(group, txn, ScmpMsg::Branch { gen, packet: bp });
                        self.send_tree_tracked(group, first, gen, pkt, ctx);
                    }
                }
            } else if outcome.is_simple_graft() && !domain.config.tree_packets_only {
                let path = tree.path_from_root(requester).expect("member on tree");
                let bp = BranchPacket::from_root_path(&path);
                let first = bp.path[0];
                let pkt = Packet::control_keyed(group, txn, ScmpMsg::Branch { gen, packet: bp });
                self.send_tree_tracked(group, first, gen, pkt, ctx);
            } else {
                // Restructured (or ablation): full TREE refresh, plus
                // explicit flushes for routers pruned off the tree.
                for &child in tree.children(me) {
                    let tp = TreePacket::from_tree(&tree, child);
                    let pkt = Packet::control_keyed(group, txn, ScmpMsg::Tree { gen, packet: tp });
                    self.send_tree_tracked(group, child, gen, pkt, ctx);
                }
                for &gone in &outcome.pruned {
                    ctx.unicast(
                        gone,
                        Packet::control_keyed(group, txn, ScmpMsg::Flush { gen }),
                    );
                }
            }
        }

        record_tree_health(
            group,
            HealthTrigger::Join,
            &domain.topo,
            &*domain.paths,
            &tree,
            ctx,
        );
        let Role::MRouter(state) = &mut self.role else {
            unreachable!()
        };
        state.trees.insert(group, tree);
        if let Some(peer) = self.sync_peer() {
            ctx.unicast(
                peer,
                Packet::control_keyed(
                    group,
                    txn,
                    ScmpMsg::StandbySync {
                        member: requester,
                        joined: true,
                    },
                ),
            );
        }
    }

    pub(super) fn m_handle_leave(
        &mut self,
        group: GroupId,
        requester: NodeId,
        txn: u64,
        ctx: &mut Ctx<'_, ScmpMsg>,
    ) {
        let domain = Arc::clone(&self.domain);
        let me = self.me;
        let Role::MRouter(state) = &mut self.role else {
            return;
        };
        // Ack first: the DR retransmits until acked, and processing below
        // is made idempotent so a duplicate LEAVE (lost ack) is harmless.
        // Membership ground truth is the accounting log, not the mirrored
        // tree — a repair rebuild may have dropped an unreachable member
        // from the tree while its join is still on the books.
        ctx.unicast(
            requester,
            Packet::control_keyed(group, txn, ScmpMsg::LeaveAck),
        );
        if !state.sessions.members_from_log(group).contains(&requester) {
            return; // duplicate of an already-processed LEAVE
        }
        state.sessions.record(ctx.now(), group, requester, false);
        state.next_gen(group);
        let Some(tree) = state.trees.remove(&group) else {
            return;
        };
        let mut dcdm = Dcdm::with_tree(&domain.topo, &*domain.paths, tree, domain.config.bound);
        dcdm.leave(requester);
        let tree = dcdm.into_tree();
        // The physical prune travels hop-by-hop from the leaving DR
        // (§III-D: "the real prune operation is accomplished by the
        // leaving member sending the PRUNE message upstream hop by
        // hop") — the m-router only refreshes its mirror and entry.
        let entry = self.entries.entry(group).or_default();
        entry.downstream_routers = tree.children(me).iter().copied().collect();
        if requester == me {
            entry.local_interface = false;
        }
        let emptied = tree.member_count() == 0;
        record_tree_health(
            group,
            HealthTrigger::Leave,
            &domain.topo,
            &*domain.paths,
            &tree,
            ctx,
        );
        let Role::MRouter(state) = &mut self.role else {
            unreachable!()
        };
        state.trees.insert(group, tree);
        if emptied && domain.config.session_expiry > 0 {
            ctx.set_timer(
                domain.config.session_expiry,
                TIMER_EXPIRY_BASE + group.0 as u64,
            );
        }
        if let Some(peer) = self.sync_peer() {
            ctx.unicast(
                peer,
                Packet::control_keyed(
                    group,
                    txn,
                    ScmpMsg::StandbySync {
                        member: requester,
                        joined: false,
                    },
                ),
            );
        }
    }

    /// Expiry timer fired for a group: if it is still memberless, tear
    /// down the session — revoke the address, free the fabric port and
    /// drop the tree state.
    pub(super) fn expire_session_if_empty(&mut self, group: GroupId) {
        let Role::MRouter(state) = &mut self.role else {
            return;
        };
        let still_empty = state
            .trees
            .get(&group)
            .is_none_or(|t| t.member_count() == 0);
        if !still_empty {
            return;
        }
        state.trees.remove(&group);
        state.gens.remove(&group);
        state.sessions.expire_group(group);
        if state.fabric_ports.remove(&group).is_some() {
            state.reconfigure_fabric();
        }
        self.entries.remove(&group);
    }

    // ------------------------------------------------------------------
    // m-router: periodic tree repair (robustness extension)
    // ------------------------------------------------------------------

    /// Periodic repair scan. The m-router already owns the domain's
    /// link-state database (§II-D), so it learns about dead links and
    /// routers from the IGP; here that view is the simulator's liveness
    /// state. Every mirrored tree is assessed against it, and a damaged
    /// tree — or a tree missing a reachable logged member, e.g. after a
    /// partition heals — is rebuilt by re-running DCDM over the
    /// surviving topology. Pruned-off routers get explicit flushes so
    /// stale entries cannot black-hole later traffic.
    pub(super) fn m_repair_scan(&mut self, ctx: &mut Ctx<'_, ScmpMsg>) {
        let _span = scmp_telemetry::TimedScope::new(scmp_telemetry::Span::RepairScan);
        let domain = Arc::clone(&self.domain);
        let me = self.me;
        if !self.is_m_router() {
            return; // role changed since the timer was armed
        }
        let interval = domain.config.repair_interval;
        if interval > 0 {
            // Re-arm first so a scan can never silence itself.
            ctx.set_timer(interval, TIMER_REPAIR);
        }
        let surviving = ctx.surviving_topology();
        let reachable = scmp_net::metrics::reachable_set(&surviving, me);
        // Partition bookkeeping: diff the fresh reachability view
        // against the previous scan's. Everything here is a no-op in a
        // healthy domain — fault-free runs stay byte-identical.
        let unreachable_now: BTreeSet<NodeId> = domain
            .topo
            .nodes()
            .filter(|v| *v != me && !reachable[v.index()])
            .collect();
        {
            let Role::MRouter(state) = &mut self.role else {
                unreachable!()
            };
            if unreachable_now != state.unreachable {
                let newly_stranded = unreachable_now.difference(&state.unreachable).count();
                let healed: Vec<NodeId> = state
                    .unreachable
                    .difference(&unreachable_now)
                    .copied()
                    .collect();
                if newly_stranded > 0 {
                    // How many logged members sit on the far side — the
                    // ones degraded mode cannot serve until the heal.
                    let stranded_members = state
                        .trees
                        .keys()
                        .flat_map(|&g| state.sessions.members_from_log(g))
                        .filter(|m| unreachable_now.contains(m))
                        .collect::<BTreeSet<NodeId>>()
                        .len();
                    ctx.record_partition(unreachable_now.len() as u32, stranded_members as u32);
                }
                if !healed.is_empty() {
                    ctx.record_heal(healed.len() as u32);
                    // Reconciliation, step 1 (dual-root rule): a
                    // promoted standby re-announces its mastership to
                    // every healed node. The far side may still believe
                    // in the deposed primary — or *be* that primary,
                    // back from isolation with stale mastership; its
                    // `handle_new_mrouter` steps it down because the
                    // takeover epoch outranks every generation it ever
                    // issued. The announcement is idempotent, so
                    // repeating it on every heal is safe.
                    if Some(me) == domain.config.standby {
                        for &v in &healed {
                            ctx.unicast(
                                v,
                                Packet::control(GroupId(0), ScmpMsg::NewMRouter { address: me }),
                            );
                        }
                    }
                }
                state.unreachable = unreachable_now;
            }
            if !state.unreachable.is_empty() {
                ctx.record_partition_degraded_tick();
            }
        }
        // Phase 1 (read-only): which groups need surgery?
        let mut damaged: Vec<GroupId> = Vec::new();
        {
            let Role::MRouter(state) = &self.role else {
                unreachable!()
            };
            for (&group, tree) in &state.trees {
                let damage =
                    scmp_tree::repair::assess(tree, |v| ctx.node_up(v), |a, b| ctx.link_up(a, b));
                let readopt = state
                    .sessions
                    .members_from_log(group)
                    .into_iter()
                    .any(|m| !tree.is_member(m) && reachable[m.index()]);
                if !damage.is_intact() || readopt {
                    damaged.push(group);
                }
            }
        }
        if damaged.is_empty() {
            return;
        }
        // On-demand over the surviving view: only the trees rooted at
        // the reachable members and the m-router are computed, not all
        // 2n — repair touches a handful of sources even in big domains.
        let paths = OnDemandPaths::from_topology(&surviving);
        for group in damaged {
            // The scan originates its own causal transaction per group,
            // so repair cascades correlate like join/leave cascades do.
            let txn = self.fresh_txn();
            let Role::MRouter(state) = &mut self.role else {
                unreachable!()
            };
            // Members partitioned away stay off the tree until a later
            // scan sees them reachable again (the readopt check above).
            let members: Vec<NodeId> = state
                .sessions
                .members_from_log(group)
                .into_iter()
                .filter(|&m| paths.unicast_delay(m, me).is_some())
                .collect();
            let old_nodes = state
                .trees
                .get(&group)
                .map(|t| t.on_tree_nodes())
                .unwrap_or_default();
            // Members coming back onto the tree in this rebuild (on the
            // books, reachable, but off the old mirror): the post-heal
            // readoption the reconcile telemetry accounts.
            let readopted = state
                .trees
                .get(&group)
                .map(|t| members.iter().filter(|&&m| !t.is_member(m)).count())
                .unwrap_or(members.len());
            let gen = state.next_gen(group);
            let mut dcdm = Dcdm::new(&surviving, &paths, me, domain.config.bound);
            for &m in &members {
                dcdm.join(m);
            }
            let tree = dcdm.into_tree();
            let entry = self.entries.entry(group).or_default();
            entry.upstream = None;
            entry.downstream_routers = tree.children(me).iter().copied().collect();
            entry.local_interface = self.subnet.has_members(group);
            entry.gen = gen;
            for &child in tree.children(me) {
                let tp = TreePacket::from_tree(&tree, child);
                let pkt = Packet::control_keyed(group, txn, ScmpMsg::Tree { gen, packet: tp });
                self.send_tree_tracked(group, child, gen, pkt, ctx);
            }
            // Flush reachable routers that fell off the tree; partitioned
            // ones keep stale state, which generation stamps and the
            // §III-F forwarding-set check neutralise.
            for v in old_nodes {
                if v != me && !tree.contains(v) && reachable[v.index()] {
                    ctx.unicast(v, Packet::control_keyed(group, txn, ScmpMsg::Flush { gen }));
                }
            }
            record_tree_health(group, HealthTrigger::Repair, &surviving, &paths, &tree, ctx);
            if readopted > 0 {
                ctx.record_reconcile(group.0, readopted as u32, gen);
            }
            let Role::MRouter(state) = &mut self.role else {
                unreachable!()
            };
            state.trees.insert(group, tree);
        }
        ctx.record_repair();
    }
}
