//! The immutable per-domain context shared by every router.

use super::ScmpConfig;
use scmp_net::{AllPairsPaths, Topology};
use std::sync::Arc;

/// Immutable domain context shared by all routers (the m-router's global
/// knowledge; i-routers only use the topology for neighbour checks).
#[derive(Debug)]
pub struct ScmpDomain {
    /// The domain topology.
    pub topo: Topology,
    /// Precomputed `P_sl`/`P_lc` tables (link-state database).
    pub paths: AllPairsPaths,
    /// Protocol configuration.
    pub config: ScmpConfig,
    /// Failover view: the topology with the primary m-router's links
    /// removed, plus its path tables. Precomputed when a standby is
    /// configured so the takeover plans trees around the dead primary.
    pub failover: Option<(Topology, AllPairsPaths)>,
}

impl ScmpDomain {
    /// Build the shared context (computes the path tables).
    pub fn new(topo: Topology, config: ScmpConfig) -> Arc<Self> {
        let paths = AllPairsPaths::compute(&topo);
        let failover = config.standby.map(|_| {
            let ft = topo.without_node(config.m_router);
            let fp = AllPairsPaths::compute(&ft);
            (ft, fp)
        });
        Arc::new(ScmpDomain {
            topo,
            paths,
            config,
            failover,
        })
    }
}
