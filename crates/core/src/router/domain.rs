//! The immutable per-domain context shared by every router.

use super::ScmpConfig;
use scmp_net::{provider_for, PathProvider, Topology};
use std::sync::Arc;

/// Immutable domain context shared by all routers (the m-router's global
/// knowledge; i-routers only use the topology for neighbour checks).
#[derive(Debug)]
pub struct ScmpDomain {
    /// The domain topology.
    pub topo: Topology,
    /// `P_sl`/`P_lc` path tables (link-state database) — eager all-pairs
    /// at paper scale, on-demand memoized source trees for large domains.
    pub paths: Box<dyn PathProvider>,
    /// Protocol configuration.
    pub config: ScmpConfig,
    /// Failover view: the topology with the primary m-router's links
    /// removed, plus its path tables. Precomputed when a standby is
    /// configured so the takeover plans trees around the dead primary.
    pub failover: Option<(Topology, Box<dyn PathProvider>)>,
}

impl ScmpDomain {
    /// Build the shared context (the path provider is chosen by domain
    /// size; see [`provider_for`]).
    pub fn new(topo: Topology, config: ScmpConfig) -> Arc<Self> {
        let paths = provider_for(&topo);
        let failover = config.standby.map(|_| {
            let ft = topo.without_node(config.m_router);
            let fp = provider_for(&ft);
            (ft, fp)
        });
        Arc::new(ScmpDomain {
            topo,
            paths,
            config,
            failover,
        })
    }
}
