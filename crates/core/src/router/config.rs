//! Domain-wide protocol configuration (§III-A: "provisioned in every
//! router's configuration file").

use scmp_net::NodeId;
use scmp_tree::DelayBound;

/// Domain-wide SCMP configuration, shared by every router.
#[derive(Clone, Debug)]
pub struct ScmpConfig {
    /// The (primary) m-router's address, provisioned in every router's
    /// configuration file (§III-A).
    pub m_router: NodeId,
    /// Additional m-routers for the §II-A extension ("an ISP may own
    /// more than one m-routers ... our approach can be easily extended
    /// to multiple m-routers per domain"). Groups are assigned
    /// round-robin by group id across `[m_router] ∪ extra_m_routers`.
    /// Mutually exclusive with `standby` (hot-standby failover is
    /// implemented for the single-m-router configuration).
    pub extra_m_routers: Vec<NodeId>,
    /// Optional hot-standby m-router.
    pub standby: Option<NodeId>,
    /// Delay-bound regime handed to DCDM.
    pub bound: DelayBound,
    /// Primary→standby heartbeat period (0 disables failover machinery).
    pub heartbeat_interval: u64,
    /// After a takeover, wait this long before pushing rebuilt TREE
    /// packets (lets the NewMRouter announcements land first).
    pub takeover_rebuild_delay: u64,
    /// Ablation switch: always distribute full TREE packets, never
    /// BRANCH packets (§III-E motivates BRANCH as the cheap path; the
    /// `ablation_branch` bench quantifies it).
    pub tree_packets_only: bool,
    /// Tear down a session after its group has been memberless this long
    /// (§II-C: "tear down an expired multicast session" and "revoke a
    /// multicast address from an abandoned multicast group").
    /// 0 disables expiry.
    pub session_expiry: u64,
    /// Retransmit a JOIN if the tree has not reached this DR after this
    /// long — protects membership against congestion-dropped JOIN or
    /// TREE/BRANCH packets when the link-capacity model is active.
    /// Retries back off exponentially (`join_retry << attempt`, capped)
    /// and give up after [`MAX_RETRIES`](super::MAX_RETRIES). 0 disables
    /// retries.
    pub join_retry: u64,
    /// Retransmit an unacknowledged LEAVE after this long, with the same
    /// backoff/give-up policy as `join_retry`. LEAVE is the one §III
    /// message whose loss silently strands membership (and billing)
    /// state at the m-router, so the m-router acks it with LEAVE-ACK
    /// and the DR retries until acked. 0 disables retries.
    pub leave_retry: u64,
    /// Retransmit an unacknowledged TREE or BRANCH packet to a direct
    /// child after this long, with the same backoff/give-up policy as
    /// `join_retry`. The ARQ runs hop by hop: the m-router *and* every
    /// DR relaying tree state to its children track their own
    /// transmissions, and receivers acknowledge each packet to the
    /// parent it came from with TREE-ACK (even stale ones, so a raced
    /// retransmission cannot retry forever). 0 disables the ARQ and
    /// suppresses the acks — the default, because on a loss-free
    /// channel the acks are pure overhead.
    pub tree_retry: u64,
    /// How many consecutive lost heartbeats the standby tolerates before
    /// taking over. The watchdog deadline is `tolerance ×
    /// heartbeat_interval` past the last heartbeat (and twice that at
    /// start-up, when the primary may be several propagation delays
    /// away). Values below 1 are treated as 1.
    pub heartbeat_loss_tolerance: u32,
    /// m-router repair-scan period: every interval, check each mirrored
    /// tree against the domain's liveness view (the IGP's link-state
    /// database) and re-run DCDM over the surviving topology when the
    /// tree is damaged or a logged member is reachable but off-tree.
    /// 0 disables the scan. Note: a non-zero interval re-arms forever,
    /// so drive such simulations with `run_until`, not quiescence.
    pub repair_interval: u64,
    /// Optional reliable-multicast data tier (NACK recovery + i-router
    /// repair caches). `None` — the default — keeps the data plane
    /// byte-identical to plain SCMP.
    pub reliability: Option<ReliabilityConfig>,
}

/// Knobs for the reliable-multicast data tier (SRM-style NACK recovery
/// with in-network repair caches). All timers are in simulation time
/// units; all randomness is a pure hash of `seed` and protocol state,
/// so replays are deterministic across worker counts.
#[derive(Clone, Debug)]
pub struct ReliabilityConfig {
    /// Base delay before a receiver NACKs a detected gap. Waiting lets
    /// a reordered packet close the gap for free and spreads NACKs so
    /// upstream duplicate suppression can thin them (SRM's request
    /// timer).
    pub nack_delay: u64,
    /// Width of the randomized jitter added to `nack_delay` (the
    /// suppression-timer spread). The actual jitter for a given
    /// (node, group, origin, attempt) is a pure seeded hash in
    /// `[0, nack_jitter)`.
    pub nack_jitter: u64,
    /// NACK retransmission attempts per missing sequence before giving
    /// up. Retries back off exponentially like the control-plane ARQs.
    pub nack_retries: u32,
    /// Byte cap on each router's repair cache. Entries are evicted in
    /// least-recently-used order when the summed payload bytes exceed
    /// the cap (at least one entry is always retained).
    pub cache_bytes: usize,
    /// Smallest modelled payload size in bytes. The simulator carries
    /// no real payload bytes, so each `(group, origin, seq)` payload is
    /// assigned a deterministic size in
    /// `[payload_bytes_min, payload_bytes_max]` by a pure seeded hash;
    /// with `min == max` every payload weighs exactly that much (the
    /// default pins both to [`CACHE_ENTRY_BYTES`]).
    pub payload_bytes_min: u32,
    /// Largest modelled payload size in bytes (see `payload_bytes_min`).
    pub payload_bytes_max: u32,
    /// Delay between SEQ-ANNOUNCE rounds after a send burst (tail-loss
    /// detection); 0 disables announcements.
    pub announce_interval: u64,
    /// Number of SEQ-ANNOUNCE rounds sent after each send burst.
    pub announce_rounds: u32,
    /// Seed for the NACK suppression-timer jitter hash.
    pub seed: u64,
}

/// Default modelled payload size in bytes (header + the simulator's
/// abstract payload): what every cached payload weighs unless the
/// `payload_bytes_min`/`payload_bytes_max` model says otherwise.
pub const CACHE_ENTRY_BYTES: usize = 64;

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            nack_delay: 300,
            nack_jitter: 200,
            nack_retries: 8,
            cache_bytes: 64 * 1024,
            payload_bytes_min: CACHE_ENTRY_BYTES as u32,
            payload_bytes_max: CACHE_ENTRY_BYTES as u32,
            announce_interval: 1_000,
            announce_rounds: 3,
            seed: 0x5C3F_11AB,
        }
    }
}

impl ScmpConfig {
    /// Plain configuration: given m-router, dynamic bound, no standby.
    pub fn new(m_router: NodeId) -> Self {
        ScmpConfig {
            m_router,
            extra_m_routers: Vec::new(),
            standby: None,
            bound: DelayBound::Dynamic,
            heartbeat_interval: 0,
            takeover_rebuild_delay: 1_000,
            tree_packets_only: false,
            session_expiry: 0,
            join_retry: 500_000,
            leave_retry: 500_000,
            tree_retry: 0,
            heartbeat_loss_tolerance: 4,
            repair_interval: 0,
            reliability: None,
        }
    }
}
