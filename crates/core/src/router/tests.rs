use super::*;
use scmp_net::topology::examples::fig5;
use scmp_net::Topology;
use scmp_sim::Engine;

const G: GroupId = GroupId(1);

fn build(topo: Topology, config: ScmpConfig) -> Engine<ScmpRouter> {
    let domain = ScmpDomain::new(topo, config);
    Engine::new(domain.topo.clone(), move |me, _, _| {
        ScmpRouter::new(me, Arc::clone(&domain))
    })
}

fn fig5_engine() -> Engine<ScmpRouter> {
    build(fig5(), ScmpConfig::new(NodeId(0)))
}

#[test]
fn single_join_installs_branch() {
    let mut e = fig5_engine();
    e.schedule_app(0, NodeId(4), AppEvent::Join(G));
    e.run_to_quiescence();
    // BRANCH path 0-1-4: node 1 forwards, node 4 is the member.
    let r1 = e.router(NodeId(1));
    let entry = r1.entry(G).expect("node 1 on tree");
    assert_eq!(entry.upstream, Some(NodeId(0)));
    assert!(entry.downstream_routers.contains(&NodeId(4)));
    assert!(!entry.local_interface);
    let r4 = e.router(NodeId(4));
    let entry = r4.entry(G).expect("node 4 on tree");
    assert_eq!(entry.upstream, Some(NodeId(1)));
    assert!(entry.local_interface);
    // m-router mirror matches.
    let m = e.router(NodeId(0)).m_state().unwrap();
    assert!(m.tree(G).unwrap().is_member(NodeId(4)));
}

#[test]
fn fig5_walkthrough_forms_paper_tree() {
    let mut e = fig5_engine();
    e.schedule_app(0, NodeId(4), AppEvent::Join(G)); // g1
    e.schedule_app(1_000, NodeId(3), AppEvent::Join(G)); // g2
    e.schedule_app(2_000, NodeId(5), AppEvent::Join(G)); // g3
    e.run_to_quiescence();
    // Final tree (Fig. 5d): 0-1-4, 0-2, 2-3, 2-5.
    let expect = [
        (NodeId(0), None, vec![NodeId(1), NodeId(2)]),
        (NodeId(1), Some(NodeId(0)), vec![NodeId(4)]),
        (NodeId(2), Some(NodeId(0)), vec![NodeId(3), NodeId(5)]),
        (NodeId(3), Some(NodeId(2)), vec![]),
        (NodeId(4), Some(NodeId(1)), vec![]),
        (NodeId(5), Some(NodeId(2)), vec![]),
    ];
    for (node, up, down) in expect {
        let entry = e
            .router(node)
            .entry(G)
            .unwrap_or_else(|| panic!("{node:?} off tree"));
        assert_eq!(entry.upstream, up, "{node:?} upstream");
        let d: Vec<NodeId> = entry.downstream_routers.iter().copied().collect();
        assert_eq!(d, down, "{node:?} downstream");
    }
}

#[test]
fn on_tree_source_reaches_all_members() {
    let mut e = fig5_engine();
    for (t, n) in [(0, 4u32), (1_000, 3), (2_000, 5)] {
        e.schedule_app(t, NodeId(n), AppEvent::Join(G));
    }
    e.schedule_app(10_000, NodeId(4), AppEvent::Send { group: G, tag: 1 });
    e.run_to_quiescence();
    for m in [4u32, 3, 5] {
        assert_eq!(e.stats().delivery_count(G, 1, NodeId(m)), 1, "member {m}");
    }
    assert!(!e.stats().has_duplicate_deliveries());
}

#[test]
fn off_tree_source_encapsulates_via_m_router() {
    let mut e = fig5_engine();
    e.schedule_app(0, NodeId(4), AppEvent::Join(G));
    // Node 5 is NOT on the tree; it sends.
    e.schedule_app(5_000, NodeId(5), AppEvent::Send { group: G, tag: 7 });
    e.run_to_quiescence();
    assert_eq!(e.stats().delivery_count(G, 7, NodeId(4)), 1);
    // Sender itself has no members: no local delivery.
    assert_eq!(e.stats().delivery_count(G, 7, NodeId(5)), 0);
}

#[test]
fn leave_prunes_physically() {
    let mut e = fig5_engine();
    e.schedule_app(0, NodeId(4), AppEvent::Join(G));
    e.schedule_app(1_000, NodeId(3), AppEvent::Join(G));
    e.schedule_app(5_000, NodeId(4), AppEvent::Leave(G));
    e.run_to_quiescence();
    assert!(e.router(NodeId(4)).entry(G).is_none(), "4 pruned");
    // Node 1 still forwards toward 2-3 (Fig. 5b tree), so it stays.
    let e1 = e.router(NodeId(1)).entry(G).expect("1 keeps forwarding");
    assert_eq!(
        e1.downstream_routers.iter().copied().collect::<Vec<_>>(),
        vec![NodeId(2)]
    );
    // Tree mirror agrees.
    let m = e.router(NodeId(0)).m_state().unwrap();
    assert!(!m.tree(G).unwrap().contains(NodeId(4)));
    assert!(m.tree(G).unwrap().is_member(NodeId(3)));
    // Data still reaches the remaining member.
    let mut e2 = e;
    let later = e2.now() + 20_000;
    e2.schedule_app(later, NodeId(0), AppEvent::Send { group: G, tag: 2 });
    e2.run_to_quiescence();
    assert_eq!(e2.stats().delivery_count(G, 2, NodeId(3)), 1);
    assert_eq!(e2.stats().delivery_count(G, 2, NodeId(4)), 0);
}

#[test]
fn second_host_join_and_partial_leave_keep_tree() {
    let mut e = fig5_engine();
    e.schedule_app(0, NodeId(4), AppEvent::Join(G));
    e.schedule_app(1_000, NodeId(4), AppEvent::Join(G)); // second host, same subnet
    e.schedule_app(2_000, NodeId(4), AppEvent::Leave(G)); // one host leaves
    e.run_to_quiescence();
    // Subnet still has a member: entry and interface stay.
    let entry = e.router(NodeId(4)).entry(G).expect("still on tree");
    assert!(entry.local_interface);
}

#[test]
fn m_router_subnet_membership() {
    let mut e = fig5_engine();
    e.schedule_app(0, NodeId(0), AppEvent::Join(G));
    e.schedule_app(1_000, NodeId(4), AppEvent::Join(G));
    e.schedule_app(5_000, NodeId(4), AppEvent::Send { group: G, tag: 3 });
    e.run_to_quiescence();
    // The m-router's own subnet hears the data.
    assert_eq!(e.stats().delivery_count(G, 3, NodeId(0)), 1);
    assert_eq!(e.stats().delivery_count(G, 3, NodeId(4)), 1);
}

#[test]
fn restructure_sends_tree_packets_and_flushes() {
    // The Fig. 5 walkthrough restructures on g3's join; verify node
    // entries stay consistent and no stale path remains from node 1
    // to node 2.
    let mut e = fig5_engine();
    for (t, n) in [(0, 4u32), (1_000, 3), (2_000, 5)] {
        e.schedule_app(t, NodeId(n), AppEvent::Join(G));
    }
    e.schedule_app(10_000, NodeId(0), AppEvent::Send { group: G, tag: 9 });
    e.run_to_quiescence();
    for m in [3u32, 4, 5] {
        assert_eq!(e.stats().delivery_count(G, 9, NodeId(m)), 1, "member {m}");
    }
    assert!(!e.stats().has_duplicate_deliveries());
    // Node 1's downstream no longer contains node 2.
    assert!(!e
        .router(NodeId(1))
        .entry(G)
        .unwrap()
        .downstream_routers
        .contains(&NodeId(2)));
}

#[test]
fn tree_packets_only_ablation_works() {
    let mut cfg = ScmpConfig::new(NodeId(0));
    cfg.tree_packets_only = true;
    let mut e = build(fig5(), cfg);
    for (t, n) in [(0, 4u32), (1_000, 3), (2_000, 5)] {
        e.schedule_app(t, NodeId(n), AppEvent::Join(G));
    }
    e.schedule_app(10_000, NodeId(4), AppEvent::Send { group: G, tag: 1 });
    e.run_to_quiescence();
    for m in [3u32, 4, 5] {
        assert_eq!(e.stats().delivery_count(G, 1, NodeId(m)), 1);
    }
}

#[test]
fn fabric_port_assigned_per_group() {
    let mut e = fig5_engine();
    e.schedule_app(0, NodeId(4), AppEvent::Join(G));
    e.schedule_app(0, NodeId(3), AppEvent::Join(GroupId(2)));
    e.run_to_quiescence();
    let m = e.router(NodeId(0)).m_state().unwrap();
    let p1 = m.fabric_port(G).unwrap();
    let p2 = m.fabric_port(GroupId(2)).unwrap();
    assert_ne!(p1, p2);
}

#[test]
fn accounting_log_records_all_membership_traffic() {
    let mut e = fig5_engine();
    e.schedule_app(0, NodeId(4), AppEvent::Join(G));
    e.schedule_app(1_000, NodeId(3), AppEvent::Join(G));
    e.schedule_app(2_000, NodeId(4), AppEvent::Leave(G));
    e.run_to_quiescence();
    let m = e.router(NodeId(0)).m_state().unwrap();
    let log = m.sessions.log();
    assert_eq!(log.len(), 3);
    assert!(log[0].joined && log[0].node == NodeId(4));
    assert!(!log[2].joined && log[2].node == NodeId(4));
    assert_eq!(m.sessions.members_from_log(G), vec![NodeId(3)]);
}

#[test]
fn failover_restores_service() {
    let mut cfg = ScmpConfig::new(NodeId(0));
    cfg.standby = Some(NodeId(2));
    cfg.heartbeat_interval = 500;
    cfg.takeover_rebuild_delay = 500;
    let mut e = build(fig5(), cfg);
    e.schedule_app(0, NodeId(4), AppEvent::Join(G));
    e.schedule_app(1_000, NodeId(3), AppEvent::Join(G));
    e.run_until(3_000);
    // Primary dies.
    e.set_node_down(NodeId(0), true);
    e.run_until(20_000);
    // Standby must have taken over.
    assert!(e.router(NodeId(2)).is_m_router(), "standby promoted");
    assert_eq!(e.router(NodeId(4)).m_router_address(), NodeId(2));
    // Data from an off-tree source flows through the new m-router.
    e.schedule_app(21_000, NodeId(1), AppEvent::Send { group: G, tag: 5 });
    e.run_to_quiescence();
    assert_eq!(e.stats().delivery_count(G, 5, NodeId(4)), 1);
    assert_eq!(e.stats().delivery_count(G, 5, NodeId(3)), 1);
}

#[test]
fn no_takeover_while_primary_alive() {
    let mut cfg = ScmpConfig::new(NodeId(0));
    cfg.standby = Some(NodeId(2));
    cfg.heartbeat_interval = 500;
    let mut e = build(fig5(), cfg);
    e.schedule_app(0, NodeId(4), AppEvent::Join(G));
    e.run_until(50_000);
    assert!(e.router(NodeId(0)).is_m_router());
    assert!(!e.router(NodeId(2)).is_m_router());
    assert_eq!(e.router(NodeId(4)).m_router_address(), NodeId(0));
}

#[test]
fn data_to_empty_group_evaporates() {
    let mut e = fig5_engine();
    e.schedule_app(0, NodeId(5), AppEvent::Send { group: G, tag: 1 });
    e.run_to_quiescence();
    assert_eq!(e.stats().distinct_deliveries(), 0);
    // The encapsulated packet still cost data overhead on its way.
    assert!(e.stats().data_overhead > 0);
}

#[test]
fn staleness_rules() {
    // A protocol run stamps real generations...
    let mut e = fig5_engine();
    e.schedule_app(0, NodeId(4), AppEvent::Join(G));
    e.run_to_quiescence();
    assert!(e.router(NodeId(1)).entry(G).unwrap().gen >= 1);
    // ...and the staleness predicate orders packets against both the
    // installed entry and the flush tombstone.
    let domain = ScmpDomain::new(fig5(), ScmpConfig::new(NodeId(0)));
    let mut r = ScmpRouter::new(NodeId(1), domain);
    r.entries.insert(
        G,
        RoutingEntry {
            upstream: Some(NodeId(0)),
            downstream_routers: [NodeId(4)].into(),
            local_interface: false,
            gen: 5,
        },
    );
    assert!(r.is_stale(G, 5), "equal generation is stale");
    assert!(r.is_stale(G, 3), "older generation is stale");
    assert!(!r.is_stale(G, 6), "newer generation applies");
    r.flushed.insert(G, 9);
    assert!(r.is_stale(G, 7), "tombstone outranks the entry");
    assert!(!r.is_stale(G, 10));
}

#[test]
fn join_retries_through_transient_failure() {
    // The link carrying the JOIN is down when the host joins; the
    // retry timer must re-register the member once it recovers.
    let mut e = fig5_engine();
    e.set_link_down(NodeId(0), NodeId(3), true);
    e.set_link_down(NodeId(2), NodeId(3), true);
    // Node 3 is now unreachable except via... fig5: 3 connects to 0
    // and 2 only, so it is fully cut off.
    e.schedule_app(0, NodeId(3), AppEvent::Join(G));
    e.run_until(400_000);
    assert!(
        e.router(NodeId(3)).entry(G).is_none(),
        "join lost while cut off"
    );
    e.set_link_down(NodeId(0), NodeId(3), false);
    e.set_link_down(NodeId(2), NodeId(3), false);
    e.run_to_quiescence();
    let entry = e.router(NodeId(3)).entry(G).expect("retry re-registered");
    assert!(entry.local_interface);
    // Data now reaches it.
    let later = e.now() + 10_000;
    e.schedule_app(later, NodeId(5), AppEvent::Send { group: G, tag: 1 });
    e.run_to_quiescence();
    assert_eq!(e.stats().delivery_count(G, 1, NodeId(3)), 1);
}

#[test]
fn session_expires_after_memberless_period() {
    use crate::session::SessionState;
    let mut cfg = ScmpConfig::new(NodeId(0));
    cfg.session_expiry = 100_000;
    let mut e = build(fig5(), cfg);
    e.schedule_app(0, NodeId(4), AppEvent::Join(G));
    e.schedule_app(50_000, NodeId(4), AppEvent::Leave(G));
    e.run_to_quiescence();
    let m = e.router(NodeId(0)).m_state().unwrap();
    assert!(m.tree(G).is_none(), "tree state torn down");
    assert!(m.fabric_port(G).is_none(), "fabric port revoked");
    assert_eq!(m.sessions.state(G), Some(SessionState::Expired));
}

#[test]
fn rejoin_before_expiry_cancels_teardown() {
    let mut cfg = ScmpConfig::new(NodeId(0));
    cfg.session_expiry = 500_000;
    let mut e = build(fig5(), cfg);
    e.schedule_app(0, NodeId(4), AppEvent::Join(G));
    e.schedule_app(50_000, NodeId(4), AppEvent::Leave(G));
    // Rejoin while the expiry timer is pending.
    e.schedule_app(200_000, NodeId(3), AppEvent::Join(G));
    e.run_to_quiescence();
    let m = e.router(NodeId(0)).m_state().unwrap();
    let tree = m.tree(G).expect("session survived");
    assert!(tree.is_member(NodeId(3)));
    // Data still flows.
    let mut e2 = e;
    e2.schedule_app(2_000_000, NodeId(5), AppEvent::Send { group: G, tag: 1 });
    e2.run_to_quiescence();
    assert_eq!(e2.stats().delivery_count(G, 1, NodeId(3)), 1);
}

#[test]
fn generations_increase_per_membership_change() {
    let mut e = fig5_engine();
    e.schedule_app(0, NodeId(4), AppEvent::Join(G));
    e.run_to_quiescence();
    let g1 = e.router(NodeId(4)).entry(G).unwrap().gen;
    let later = e.now() + 10_000;
    e.schedule_app(later, NodeId(3), AppEvent::Join(G));
    e.run_to_quiescence();
    let g2 = e.router(NodeId(3)).entry(G).unwrap().gen;
    assert!(g2 > g1, "second join distributes a newer generation");
}

#[test]
fn rapid_join_leave_churn_stays_consistent() {
    let mut e = fig5_engine();
    let mut t = 0;
    for round in 0..5 {
        for n in [3u32, 4, 5] {
            e.schedule_app(t, NodeId(n), AppEvent::Join(G));
            t += 100;
        }
        for n in [3u32, 4, 5] {
            e.schedule_app(t, NodeId(n), AppEvent::Leave(G));
            t += 100;
        }
        let _ = round;
    }
    e.run_to_quiescence();
    // Everyone left: no entries anywhere except possibly the root's.
    for v in 1..6u32 {
        assert!(
            e.router(NodeId(v)).entry(G).is_none(),
            "node {v} kept a stale entry"
        );
    }
    let m = e.router(NodeId(0)).m_state().unwrap();
    assert_eq!(m.tree(G).unwrap().member_count(), 0);
    assert_eq!(m.tree(G).unwrap().on_tree_count(), 1);
}

#[test]
fn repair_scan_reroutes_around_cut_tree_link() {
    use scmp_sim::FaultEvent;
    let mut cfg = ScmpConfig::new(NodeId(0));
    cfg.repair_interval = 2_000;
    let mut e = build(fig5(), cfg);
    for (t, n) in [(0, 4u32), (1_000, 3), (2_000, 5)] {
        e.schedule_app(t, NodeId(n), AppEvent::Join(G));
    }
    // Fig. 5d tree: 0-1-4, 0-2, 2-3, 2-5. Cutting 0-2 orphans the
    // whole right side; 2 stays reachable via 1-2 and 3-2.
    e.schedule_fault(
        20_000,
        FaultEvent::LinkDown {
            a: NodeId(0),
            b: NodeId(2),
        },
    );
    e.schedule_app(15_000, NodeId(0), AppEvent::Send { group: G, tag: 1 });
    e.schedule_app(30_000, NodeId(0), AppEvent::Send { group: G, tag: 2 });
    e.run_until(60_000);
    for m in [4u32, 3, 5] {
        assert_eq!(
            e.stats().delivery_count(G, 1, NodeId(m)),
            1,
            "pre-cut to {m}"
        );
        assert_eq!(
            e.stats().delivery_count(G, 2, NodeId(m)),
            1,
            "post-repair to {m}"
        );
    }
    assert!(!e.stats().has_duplicate_deliveries());
    assert!(e.stats().repairs >= 1, "repair scan must have fired");
    // The scan runs within one interval of the fault; allow slack for
    // the timer phase.
    assert!(
        e.stats().max_repair_latency <= 2 * 2_000,
        "repair latency {} too high",
        e.stats().max_repair_latency
    );
    // The repaired mirror avoids the dead link.
    let m = e.router(NodeId(0)).m_state().unwrap();
    let tree = m.tree(G).unwrap();
    assert_eq!(tree.validate(None), Ok(()));
    for (p, c) in tree.edges() {
        assert!(
            !(p.0.min(c.0) == 0 && p.0.max(c.0) == 2),
            "repaired tree still uses the dead link"
        );
    }
}

#[test]
fn repair_scan_idle_when_network_healthy() {
    let mut cfg = ScmpConfig::new(NodeId(0));
    cfg.repair_interval = 1_000;
    let mut e = build(fig5(), cfg);
    e.schedule_app(0, NodeId(4), AppEvent::Join(G));
    let before = {
        e.run_until(5_000);
        e.stats().protocol_overhead
    };
    e.run_until(100_000);
    // Scans keep running but distribute nothing: no repairs, no
    // control traffic beyond the initial join.
    assert_eq!(e.stats().repairs, 0);
    assert_eq!(e.stats().protocol_overhead, before);
}

#[test]
fn repair_readopts_member_after_partition_heals() {
    use scmp_sim::FaultEvent;
    let mut cfg = ScmpConfig::new(NodeId(0));
    cfg.repair_interval = 2_000;
    let mut e = build(fig5(), cfg);
    for (t, n) in [(0, 4u32), (1_000, 3), (2_000, 5)] {
        e.schedule_app(t, NodeId(n), AppEvent::Join(G));
    }
    // Cut node 5 off entirely (its only link is 2-5): the repair
    // drops it from the tree; when the link heals, a later scan must
    // graft it back without any new JOIN from the host.
    e.schedule_fault(
        10_000,
        FaultEvent::LinkDown {
            a: NodeId(2),
            b: NodeId(5),
        },
    );
    e.run_until(20_000);
    {
        let m = e.router(NodeId(0)).m_state().unwrap();
        assert!(
            !m.tree(G).unwrap().is_member(NodeId(5)),
            "5 dropped while cut"
        );
    }
    e.schedule_fault(
        30_000,
        FaultEvent::LinkUp {
            a: NodeId(2),
            b: NodeId(5),
        },
    );
    e.schedule_app(50_000, NodeId(0), AppEvent::Send { group: G, tag: 9 });
    e.run_until(80_000);
    let m = e.router(NodeId(0)).m_state().unwrap();
    assert!(m.tree(G).unwrap().is_member(NodeId(5)), "5 re-adopted");
    assert_eq!(e.stats().delivery_count(G, 9, NodeId(5)), 1);
    assert!(e.stats().repairs >= 2, "cut + heal each trigger a repair");
}

#[test]
fn rejoin_after_dr_crash_reinstalls_entry() {
    use scmp_sim::FaultEvent;
    let mut e = fig5_engine();
    e.schedule_app(0, NodeId(4), AppEvent::Join(G));
    e.schedule_fault(10_000, FaultEvent::RouterCrash { node: NodeId(4) });
    e.schedule_fault(20_000, FaultEvent::RouterRecover { node: NodeId(4) });
    // The recovered DR lost its entry and subnet, but the m-router
    // still counts node 4 as a member. A fresh host join must
    // re-install the entry via the BRANCH refresh (a JOIN for an
    // existing member used to distribute nothing).
    e.schedule_app(30_000, NodeId(4), AppEvent::Join(G));
    e.run_to_quiescence();
    let entry = e.router(NodeId(4)).entry(G).expect("entry reinstalled");
    assert!(entry.local_interface);
    assert_eq!(entry.upstream, Some(NodeId(1)));
    let later = e.now() + 1_000;
    e.schedule_app(later, NodeId(0), AppEvent::Send { group: G, tag: 3 });
    e.run_to_quiescence();
    assert_eq!(e.stats().delivery_count(G, 3, NodeId(4)), 1);
}

#[test]
fn leave_is_acked_and_recorded_once() {
    let mut e = fig5_engine();
    e.schedule_app(0, NodeId(4), AppEvent::Join(G));
    e.schedule_app(10_000, NodeId(4), AppEvent::Leave(G));
    e.run_to_quiescence();
    let m = e.router(NodeId(0)).m_state().unwrap();
    // Ack landed before the first retry: exactly one leave record.
    assert_eq!(m.sessions.log().len(), 2);
    assert!(m.sessions.members_from_log(G).is_empty());
}

#[test]
fn leave_retries_through_transient_failure() {
    // The member is cut off when its last host leaves; the LEAVE is
    // lost, and the retransmission after the links heal must still
    // deregister it (otherwise billing runs forever).
    let mut e = fig5_engine();
    e.schedule_app(0, NodeId(3), AppEvent::Join(G));
    e.run_until(5_000);
    e.set_link_down(NodeId(0), NodeId(3), true);
    e.set_link_down(NodeId(2), NodeId(3), true);
    e.schedule_app(6_000, NodeId(3), AppEvent::Leave(G));
    e.run_until(400_000);
    {
        let m = e.router(NodeId(0)).m_state().unwrap();
        assert_eq!(
            m.sessions.members_from_log(G),
            vec![NodeId(3)],
            "LEAVE lost while cut off"
        );
    }
    e.set_link_down(NodeId(0), NodeId(3), false);
    e.set_link_down(NodeId(2), NodeId(3), false);
    e.run_to_quiescence();
    let m = e.router(NodeId(0)).m_state().unwrap();
    assert!(
        m.sessions.members_from_log(G).is_empty(),
        "retried LEAVE deregistered the member"
    );
}
