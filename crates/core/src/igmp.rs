//! IGMPv2-like subnet model (§II-C).
//!
//! The paper keeps SCMP compatible with IGMP: hosts register dynamic
//! membership with their subnet's designated router (DR); the DR learns
//! group presence via Query/Report and informs the m-router only on
//! *edges* — when the first host of a subnet joins a group, or the last
//! one leaves.
//!
//! This module models one subnet: a set of hosts, DR election (lowest
//! address wins, as in IGMPv2), queries, reports with suppression (a host
//! cancels its report when it hears another member report the same
//! group), and leave processing. It is deliberately link-traffic-free —
//! subnet chatter stays on the LAN and does not touch the §IV-B overhead
//! metrics — but the message counts are exposed so tests can check the
//! suppression behaviour.

use scmp_sim::GroupId;
use std::collections::{BTreeMap, BTreeSet};

/// Host identifier within a subnet (think: last octet of its address).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

/// What the DR must tell the multicast routing protocol after a host
/// event — the edge triggers of §III-B/C.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MembershipEdge {
    /// First host of this subnet joined the group: the DR sends JOIN.
    FirstJoined(GroupId),
    /// Last host left: the DR sends LEAVE (and possibly PRUNE).
    LastLeft(GroupId),
    /// Membership set for the group unchanged in kind: no routing action.
    NoChange,
}

/// One subnet: hosts, their memberships, and the DR.
#[derive(Clone, Debug, Default)]
pub struct Subnet {
    hosts: BTreeSet<HostId>,
    /// group -> member hosts.
    members: BTreeMap<GroupId, BTreeSet<HostId>>,
    /// IGMP message counters (reports actually transmitted, suppressed
    /// reports, queries, leaves).
    pub reports_sent: u64,
    /// Reports suppressed because another member answered first.
    pub reports_suppressed: u64,
    /// Queries the DR transmitted.
    pub queries_sent: u64,
    /// Leave messages hosts transmitted.
    pub leaves_sent: u64,
}

impl Subnet {
    /// An empty subnet.
    pub fn new() -> Self {
        Subnet::default()
    }

    /// Attach a host to the subnet.
    pub fn add_host(&mut self, h: HostId) {
        self.hosts.insert(h);
    }

    /// The designated router election winner among `candidates` — IGMPv2
    /// picks the lowest address. Returns `None` for an empty slate.
    pub fn elect_dr(candidates: &[u32]) -> Option<u32> {
        candidates.iter().copied().min()
    }

    /// Host `h` joins `group` (sends an unsolicited report, as IGMPv2
    /// joiners do). Returns the routing-visible edge.
    pub fn host_join(&mut self, h: HostId, group: GroupId) -> MembershipEdge {
        self.hosts.insert(h);
        let set = self.members.entry(group).or_default();
        let first = set.is_empty();
        if set.insert(h) {
            self.reports_sent += 1;
            if first {
                return MembershipEdge::FirstJoined(group);
            }
        }
        MembershipEdge::NoChange
    }

    /// Host `h` leaves `group` (sends an IGMPv2 Leave; the DR then
    /// queries and, if nobody reports, declares the group gone).
    pub fn host_leave(&mut self, h: HostId, group: GroupId) -> MembershipEdge {
        let Some(set) = self.members.get_mut(&group) else {
            return MembershipEdge::NoChange;
        };
        if !set.remove(&h) {
            return MembershipEdge::NoChange;
        }
        self.leaves_sent += 1;
        // Last-member query: the DR asks; remaining members would answer.
        self.queries_sent += 1;
        if set.is_empty() {
            self.members.remove(&group);
            MembershipEdge::LastLeft(group)
        } else {
            MembershipEdge::NoChange
        }
    }

    /// The DR's periodic general Query: every group with members is
    /// answered by exactly one report (the others suppress). Returns the
    /// groups confirmed alive.
    pub fn general_query(&mut self) -> Vec<GroupId> {
        self.queries_sent += 1;
        let mut alive = Vec::new();
        for (&g, set) in &self.members {
            if !set.is_empty() {
                alive.push(g);
                self.reports_sent += 1;
                self.reports_suppressed += set.len() as u64 - 1;
            }
        }
        alive
    }

    /// Does any host on this subnet belong to `group`?
    pub fn has_members(&self, group: GroupId) -> bool {
        self.members.get(&group).is_some_and(|s| !s.is_empty())
    }

    /// Groups with at least one member host.
    pub fn active_groups(&self) -> Vec<GroupId> {
        self.members
            .iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(&g, _)| g)
            .collect()
    }

    /// Number of member hosts of `group`.
    pub fn member_count(&self, group: GroupId) -> usize {
        self.members.get(&group).map_or(0, |s| s.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: GroupId = GroupId(7);

    #[test]
    fn first_join_and_last_leave_are_edges() {
        let mut s = Subnet::new();
        assert_eq!(s.host_join(HostId(1), G), MembershipEdge::FirstJoined(G));
        assert_eq!(s.host_join(HostId(2), G), MembershipEdge::NoChange);
        assert_eq!(s.host_leave(HostId(1), G), MembershipEdge::NoChange);
        assert_eq!(s.host_leave(HostId(2), G), MembershipEdge::LastLeft(G));
        assert!(!s.has_members(G));
    }

    #[test]
    fn duplicate_join_is_idempotent() {
        let mut s = Subnet::new();
        s.host_join(HostId(1), G);
        assert_eq!(s.host_join(HostId(1), G), MembershipEdge::NoChange);
        assert_eq!(s.member_count(G), 1);
    }

    #[test]
    fn leave_of_non_member_is_noop() {
        let mut s = Subnet::new();
        assert_eq!(s.host_leave(HostId(9), G), MembershipEdge::NoChange);
        s.host_join(HostId(1), G);
        assert_eq!(s.host_leave(HostId(9), G), MembershipEdge::NoChange);
        assert!(s.has_members(G));
    }

    #[test]
    fn report_suppression_on_query() {
        let mut s = Subnet::new();
        for h in 0..5 {
            s.host_join(HostId(h), G);
        }
        let before = s.reports_sent;
        let alive = s.general_query();
        assert_eq!(alive, vec![G]);
        // One report answers the query, four are suppressed.
        assert_eq!(s.reports_sent - before, 1);
        assert_eq!(s.reports_suppressed, 4);
    }

    #[test]
    fn dr_election_picks_lowest() {
        assert_eq!(Subnet::elect_dr(&[30, 10, 20]), Some(10));
        assert_eq!(Subnet::elect_dr(&[]), None);
    }

    #[test]
    fn multiple_groups_tracked_independently() {
        let mut s = Subnet::new();
        let g2 = GroupId(8);
        s.host_join(HostId(1), G);
        s.host_join(HostId(1), g2);
        assert_eq!(s.active_groups(), vec![G, g2]);
        s.host_leave(HostId(1), G);
        assert_eq!(s.active_groups(), vec![g2]);
    }
}
