//! # scmp-core — the Service-Centric Multicast Protocol
//!
//! This crate is the paper's primary contribution: the SCMP protocol of
//! §II–III, implemented as state machines over the [`scmp_sim`]
//! discrete-event engine.
//!
//! * [`message`] — the SCMP wire messages (JOIN/LEAVE/PRUNE, TREE and
//!   BRANCH self-routing packets, encapsulated data, heartbeats).
//! * [`tree_packet`] — the recursive self-routing TREE packet of §III-E,
//!   including the word-level wire codec that reproduces the paper's
//!   Fig. 6 example byte-for-byte, plus the BRANCH packet.
//! * [`igmp`] — the host/subnet-facing IGMPv2-like model of §II-C
//!   (queries, reports with suppression, leaves, DR election).
//! * [`router`] — the [`ScmpRouter`] state machine, a module tree split
//!   by role: DR duties (§III-B/C/F) in `dr`, the m-router (§III-D:
//!   centralized DCDM tree construction, membership database,
//!   accounting log) in `mrouter`, hot-standby mirroring and takeover
//!   in `standby`, with the shared domain view and configuration in
//!   `domain`/`config`.
//! * [`placement`] — the three §IV-A heuristics for locating the
//!   m-router.
//! * [`session`] — multicast session and group-address management
//!   (§II-C), including the accounting/billing event log.
//! * [`wire`] — a byte-level codec for complete SCMP packets (header +
//!   per-type body + trailing checksum), total and fuzz-tested.
//! * [`dedup`] — receiver-side duplicate suppression: sliding-window
//!   control-sequence dedup and the bounded recent-set routers use to
//!   keep channel-duplicated data packets away from member hosts.
//!
//! The m-router's switching fabric lives in [`scmp_fabric`]; the
//! [`router::MRouterState`] assigns an output port per active group and
//! keeps a configured [`scmp_fabric::SandwichFabric`] in sync with the
//! group set.

pub mod dedup;
pub mod igmp;
pub mod message;
pub mod placement;
pub mod router;
pub mod session;
pub mod tree_packet;
pub mod wire;

pub use message::ScmpMsg;
pub use router::{ScmpConfig, ScmpRouter};
pub use tree_packet::{BranchPacket, TreePacket};
