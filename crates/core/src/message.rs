//! SCMP wire messages.
//!
//! The group id rides in the enclosing [`scmp_sim::Packet`]'s `group`
//! field; message bodies carry only what §III puts in each packet type.

use crate::tree_packet::{BranchPacket, TreePacket};
use scmp_net::NodeId;

/// Body of an SCMP packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScmpMsg {
    /// JOIN request, unicast from a DR to the m-router (§III-B):
    /// carries the DR's address.
    Join { requester: NodeId },
    /// LEAVE notification, unicast from a DR to the m-router (§III-C).
    Leave { requester: NodeId },
    /// PRUNE, sent hop-by-hop from a leaf to its upstream (§III-C).
    Prune,
    /// Self-routing TREE packet: the receiver's whole subtree (§III-E).
    /// `gen` is the m-router's per-group tree generation; i-routers
    /// discard packets older than their installed state, which makes the
    /// distribution immune to reordering between a restructure's TREE
    /// refresh and an earlier join's still-in-flight BRANCH packet.
    Tree { gen: u64, packet: TreePacket },
    /// BRANCH packet: path from the m-router to one new member (§III-E),
    /// generation-stamped like TREE.
    Branch { gen: u64, packet: BranchPacket },
    /// Explicit state removal for routers pruned during a centralized
    /// tree restructure (loop elimination) — the TREE refresh never
    /// reaches them, so the m-router tells them directly. The generation
    /// doubles as a tombstone: stale TREE/BRANCH packets at or below it
    /// are ignored.
    Flush { gen: u64 },
    /// Multicast payload travelling on the bidirectional tree (§III-F).
    /// `seq` is the per-(group, origin) stream sequence number stamped
    /// by the originating DR when the reliability tier is enabled;
    /// 0 means unsequenced (tier off), preserving the plain §III-F
    /// semantics byte for byte.
    Data { seq: u64 },
    /// Payload from an off-tree source, encapsulated in unicast toward
    /// the m-router (§III-F). `seq` as in [`ScmpMsg::Data`].
    EncapData { seq: u64 },
    /// Primary→standby liveness beacon (§V, hot-standby design).
    Heartbeat { seq: u64 },
    /// Primary→standby membership mirror update.
    StandbySync { member: NodeId, joined: bool },
    /// New-primary announcement after a takeover: tells every router the
    /// m-router address changed (the paper provisions the address via
    /// router configuration; the takeover re-provisions it).
    NewMRouter { address: NodeId },
    /// m-router → DR acknowledgement of a LEAVE. LEAVE is fire-and-forget
    /// in the paper; under failure injection a lost LEAVE would strand
    /// membership state, so DRs retransmit with backoff until acked.
    LeaveAck,
    /// Receiver → m-router acknowledgement of a TREE or BRANCH packet
    /// carrying generation `gen`. Only emitted when the domain enables
    /// tree retransmission (`tree_retry > 0`): lossy channels can eat a
    /// TREE packet, and without an ack the m-router would believe the
    /// subtree installed.
    TreeAck { gen: u64 },
    /// Receiver → upstream negative acknowledgement for one missing
    /// sequence of the (group, `origin`) data stream (reliability tier,
    /// SRM-style). Travels hop by hop toward the stream source; every
    /// on-tree DR answers from its repair cache when it can.
    Nack { origin: NodeId, seq: u64 },
    /// Cache answer to a [`ScmpMsg::Nack`]: a retransmission of stream
    /// (group, `origin`) sequence `seq`. The enclosing packet preserves
    /// the original payload's tag/created_at/origin so the repair joins
    /// the original packet's causal journey.
    Repair { origin: NodeId, seq: u64 },
    /// Stream-state beacon: "(group, `origin`) has sent through `seq`".
    /// Lets receivers detect tail loss (a gap after the *last* packet
    /// produces no later packet to reveal it). Sent for a few rounds
    /// after each send burst; `round` distinguishes the rounds so
    /// relays forward each round once.
    SeqAnnounce {
        origin: NodeId,
        seq: u64,
        round: u32,
    },
}

impl ScmpMsg {
    /// Short label for traces and debugging output.
    pub fn label(&self) -> &'static str {
        match self {
            ScmpMsg::Join { .. } => "JOIN",
            ScmpMsg::Leave { .. } => "LEAVE",
            ScmpMsg::Prune => "PRUNE",
            ScmpMsg::Tree { .. } => "TREE",
            ScmpMsg::Branch { .. } => "BRANCH",
            ScmpMsg::Flush { .. } => "FLUSH",
            ScmpMsg::Data { .. } => "DATA",
            ScmpMsg::EncapData { .. } => "ENCAP",
            ScmpMsg::Heartbeat { .. } => "HEARTBEAT",
            ScmpMsg::StandbySync { .. } => "SYNC",
            ScmpMsg::NewMRouter { .. } => "NEW-MROUTER",
            ScmpMsg::LeaveAck => "LEAVE-ACK",
            ScmpMsg::TreeAck { .. } => "TREE-ACK",
            ScmpMsg::Nack { .. } => "NACK",
            ScmpMsg::Repair { .. } => "REPAIR",
            ScmpMsg::SeqAnnounce { .. } => "ANNOUNCE",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_cover_all_variants() {
        let msgs = [
            ScmpMsg::Join {
                requester: NodeId(1),
            },
            ScmpMsg::Leave {
                requester: NodeId(1),
            },
            ScmpMsg::Prune,
            ScmpMsg::Tree {
                gen: 1,
                packet: TreePacket::leaf(),
            },
            ScmpMsg::Branch {
                gen: 1,
                packet: BranchPacket {
                    path: vec![NodeId(1)],
                },
            },
            ScmpMsg::Flush { gen: 1 },
            ScmpMsg::Data { seq: 0 },
            ScmpMsg::EncapData { seq: 0 },
            ScmpMsg::Heartbeat { seq: 0 },
            ScmpMsg::StandbySync {
                member: NodeId(1),
                joined: true,
            },
            ScmpMsg::NewMRouter { address: NodeId(2) },
            ScmpMsg::LeaveAck,
            ScmpMsg::TreeAck { gen: 1 },
            ScmpMsg::Nack {
                origin: NodeId(3),
                seq: 2,
            },
            ScmpMsg::Repair {
                origin: NodeId(3),
                seq: 2,
            },
            ScmpMsg::SeqAnnounce {
                origin: NodeId(3),
                seq: 2,
                round: 0,
            },
        ];
        let labels: std::collections::BTreeSet<&str> = msgs.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), msgs.len(), "labels must be distinct");
    }
}
