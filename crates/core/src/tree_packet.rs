//! TREE and BRANCH self-routing packets (§III-E).
//!
//! A TREE packet describes the whole subtree rooted at its receiver:
//!
//! ```text
//! TREE := count, { child-address, subpacket-length, TREE }*
//! ```
//!
//! The structure is recursive, mirroring the tree; routers forward TREE
//! packets using only the information inside the packet (self-routing).
//! The word-level encoding below reproduces the paper's Fig. 6 example
//! exactly: the packet for node 2's subtree is
//! `(3; 4,1,0; 5,7,2,7,1,0,8,1,0; 6,4,1,9,1,0)`.
//!
//! A BRANCH packet is the lightweight alternative for a minor change:
//! the sequence of routers from (but excluding) the m-router down to a
//! newly joining member.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use scmp_net::NodeId;
use scmp_tree::MulticastTree;

/// A recursive TREE packet: the subtree below one router.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreePacket {
    /// One entry per downstream router: its address and the subpacket
    /// describing the subtree below it.
    pub downstream: Vec<(NodeId, TreePacket)>,
}

/// Codec errors for the wire form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Buffer ended mid-structure.
    Truncated,
    /// A subpacket length field disagreed with its actual extent.
    LengthMismatch,
    /// Trailing words after a complete packet.
    TrailingData,
}

impl TreePacket {
    /// A leaf packet (no downstream routers).
    pub fn leaf() -> Self {
        TreePacket {
            downstream: Vec::new(),
        }
    }

    /// Extract the subtree of `tree` rooted at `node` as a TREE packet.
    pub fn from_tree(tree: &MulticastTree, node: NodeId) -> Self {
        TreePacket {
            downstream: tree
                .children(node)
                .iter()
                .map(|&c| (c, TreePacket::from_tree(tree, c)))
                .collect(),
        }
    }

    /// Number of routers described (this node's subtree, excluding the
    /// receiver itself).
    pub fn router_count(&self) -> usize {
        self.downstream
            .iter()
            .map(|(_, sub)| 1 + sub.router_count())
            .sum()
    }

    /// The paper's word-level encoding:
    /// `count, { address, length(words), subpacket-words }*`.
    pub fn encode_words(&self) -> Vec<u32> {
        let mut out = vec![self.downstream.len() as u32];
        for (child, sub) in &self.downstream {
            let words = sub.encode_words();
            out.push(child.0);
            out.push(words.len() as u32);
            out.extend(words);
        }
        out
    }

    /// Decode the word-level form.
    pub fn decode_words(words: &[u32]) -> Result<Self, CodecError> {
        let (pkt, used) = Self::decode_words_inner(words)?;
        if used != words.len() {
            return Err(CodecError::TrailingData);
        }
        Ok(pkt)
    }

    fn decode_words_inner(words: &[u32]) -> Result<(Self, usize), CodecError> {
        let Some(&count) = words.first() else {
            return Err(CodecError::Truncated);
        };
        let mut pos = 1;
        let mut downstream = Vec::with_capacity(count as usize);
        for _ in 0..count {
            if pos + 2 > words.len() {
                return Err(CodecError::Truncated);
            }
            let child = NodeId(words[pos]);
            let len = words[pos + 1] as usize;
            pos += 2;
            if pos + len > words.len() {
                return Err(CodecError::Truncated);
            }
            let (sub, used) = Self::decode_words_inner(&words[pos..pos + len])?;
            if used != len {
                return Err(CodecError::LengthMismatch);
            }
            pos += len;
            downstream.push((child, sub));
        }
        Ok((TreePacket { downstream }, pos))
    }

    /// Byte-level wire form (big-endian `u32` words) using `bytes`.
    pub fn encode_bytes(&self) -> Bytes {
        let words = self.encode_words();
        let mut buf = BytesMut::with_capacity(words.len() * 4);
        for w in words {
            buf.put_u32(w);
        }
        buf.freeze()
    }

    /// Decode the byte-level wire form.
    pub fn decode_bytes(mut bytes: Bytes) -> Result<Self, CodecError> {
        if !bytes.len().is_multiple_of(4) {
            return Err(CodecError::Truncated);
        }
        let mut words = Vec::with_capacity(bytes.len() / 4);
        while bytes.has_remaining() {
            words.push(bytes.get_u32());
        }
        Self::decode_words(&words)
    }

    /// Split into the per-child TREE packets an i-router forwards after
    /// installing this packet (§III-E: "the TREE packet is split into
    /// several smaller TREE packets each of which represents a subtree
    /// rooted at one of the downstream routers").
    pub fn split(self) -> Vec<(NodeId, TreePacket)> {
        self.downstream
    }

    /// Downstream router addresses (the receiver's new children).
    pub fn downstream_routers(&self) -> Vec<NodeId> {
        self.downstream.iter().map(|(c, _)| *c).collect()
    }
}

/// A BRANCH packet: routers on the path from the m-router (exclusive) to
/// a new member (inclusive), in order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BranchPacket {
    /// Remaining path; the head is always the current receiver.
    pub path: Vec<NodeId>,
}

impl BranchPacket {
    /// Build from a full root→member tree path (drops the root).
    ///
    /// # Panics
    /// If the path has fewer than two nodes (root and member).
    pub fn from_root_path(path: &[NodeId]) -> Self {
        assert!(path.len() >= 2, "branch needs at least root and member");
        BranchPacket {
            path: path[1..].to_vec(),
        }
    }

    /// The receiver pops itself off the head; returns the next hop to
    /// forward to, if any.
    ///
    /// # Panics
    /// If the head is not `me` (mis-routed packet).
    pub fn advance(mut self, me: NodeId) -> (Option<NodeId>, BranchPacket) {
        assert_eq!(
            self.path.first(),
            Some(&me),
            "BRANCH not addressed to {me:?}"
        );
        self.path.remove(0);
        (self.path.first().copied(), self)
    }

    /// The final member this branch leads to.
    pub fn member(&self) -> NodeId {
        *self.path.last().expect("non-empty path")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scmp_net::topology::examples::fig6_tree_edges;

    /// The tree of the paper's Fig. 6 (root = node 2).
    fn fig6_tree() -> MulticastTree {
        let mut t = MulticastTree::new(11, NodeId(2));
        for (p, c) in fig6_tree_edges() {
            t.attach(p, c);
        }
        t
    }

    #[test]
    fn fig6_example_encoding_matches_paper() {
        let pkt = TreePacket::from_tree(&fig6_tree(), NodeId(2));
        // Paper: (3; 4,1,0; 5,7,2,7,1,0,8,1,0; 6,4,1,9,1,0)
        assert_eq!(
            pkt.encode_words(),
            vec![3, 4, 1, 0, 5, 7, 2, 7, 1, 0, 8, 1, 0, 6, 4, 1, 9, 1, 0]
        );
    }

    #[test]
    fn fig6_split_matches_paper() {
        let pkt = TreePacket::from_tree(&fig6_tree(), NodeId(2));
        let parts = pkt.split();
        assert_eq!(parts.len(), 3);
        // Node 4's subpacket is (0); node 5's is (2,7,1,0,8,1,0);
        // node 6's is (1,9,1,0) — exactly as the paper narrates.
        assert_eq!(parts[0].0, NodeId(4));
        assert_eq!(parts[0].1.encode_words(), vec![0]);
        assert_eq!(parts[1].0, NodeId(5));
        assert_eq!(parts[1].1.encode_words(), vec![2, 7, 1, 0, 8, 1, 0]);
        assert_eq!(parts[2].0, NodeId(6));
        assert_eq!(parts[2].1.encode_words(), vec![1, 9, 1, 0]);
    }

    #[test]
    fn words_roundtrip() {
        let pkt = TreePacket::from_tree(&fig6_tree(), NodeId(2));
        let words = pkt.encode_words();
        assert_eq!(TreePacket::decode_words(&words).unwrap(), pkt);
    }

    #[test]
    fn bytes_roundtrip() {
        let pkt = TreePacket::from_tree(&fig6_tree(), NodeId(2));
        let bytes = pkt.encode_bytes();
        assert_eq!(bytes.len(), 19 * 4);
        assert_eq!(TreePacket::decode_bytes(bytes).unwrap(), pkt);
    }

    #[test]
    fn decode_rejects_corruption() {
        let pkt = TreePacket::from_tree(&fig6_tree(), NodeId(2));
        let mut words = pkt.encode_words();
        // Truncate.
        words.pop();
        assert_eq!(TreePacket::decode_words(&words), Err(CodecError::Truncated));
        // Bad inner length.
        let mut words = pkt.encode_words();
        words[2] = 2; // node 4's subpacket claims 2 words but contains (0)
        assert!(TreePacket::decode_words(&words).is_err());
        // Trailing garbage.
        let mut words = pkt.encode_words();
        words.push(99);
        assert!(matches!(
            TreePacket::decode_words(&words),
            Err(CodecError::TrailingData) | Err(CodecError::Truncated)
        ));
        // Odd byte length.
        assert_eq!(
            TreePacket::decode_bytes(Bytes::from_static(&[0, 0, 0])),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn leaf_encoding() {
        let leaf = TreePacket::leaf();
        assert_eq!(leaf.encode_words(), vec![0]);
        assert_eq!(leaf.router_count(), 0);
        assert_eq!(TreePacket::decode_words(&[0]).unwrap(), leaf);
    }

    #[test]
    fn router_count_counts_subtree() {
        let pkt = TreePacket::from_tree(&fig6_tree(), NodeId(2));
        assert_eq!(pkt.router_count(), 6);
    }

    #[test]
    fn branch_packet_walkthrough() {
        // Paper: node 10 joins; BRANCH (2,4,10) sent to node 2.
        let b = BranchPacket::from_root_path(&[NodeId(0), NodeId(2), NodeId(4), NodeId(10)]);
        assert_eq!(b.path, vec![NodeId(2), NodeId(4), NodeId(10)]);
        assert_eq!(b.member(), NodeId(10));
        let (next, b) = b.advance(NodeId(2));
        assert_eq!(next, Some(NodeId(4)));
        let (next, b) = b.advance(NodeId(4));
        assert_eq!(next, Some(NodeId(10)));
        let (next, _) = b.advance(NodeId(10));
        assert_eq!(next, None);
    }

    #[test]
    #[should_panic(expected = "not addressed")]
    fn branch_misrouted_panics() {
        let b = BranchPacket::from_root_path(&[NodeId(0), NodeId(2)]);
        b.advance(NodeId(3));
    }

    #[test]
    fn deep_chain_roundtrips() {
        // A 50-deep chain exercises recursion depth in both directions.
        let mut t = MulticastTree::new(51, NodeId(0));
        for i in 1..51u32 {
            t.attach(NodeId(i - 1), NodeId(i));
        }
        let pkt = TreePacket::from_tree(&t, NodeId(0));
        assert_eq!(pkt.router_count(), 50);
        let words = pkt.encode_words();
        assert_eq!(TreePacket::decode_words(&words).unwrap(), pkt);
    }
}
