//! m-router placement heuristics (§IV-A).
//!
//! "There is no such location of the m-router that it has the best
//! performance under all conditions. However, there are some heuristics
//! for placing the m-router to achieve good performance in most cases:
//!
//! * **Rule 1**: for each node, calculate the average delay between the
//!   node and all the other nodes, and choose the node with less average
//!   delay;
//! * **Rule 2**: choose the node with a larger node degree;
//! * **Rule 3**: choose the node lying on the path whose delay is equal
//!   to the diameter of the graph."

use scmp_net::{Metric, NodeId, PathProvider, Topology};

/// The three placement heuristics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlacementRule {
    /// Minimise average shortest-delay distance to all other nodes.
    MinAverageDelay,
    /// Maximise node degree.
    MaxDegree,
    /// Midpoint of a delay-diameter path.
    DiameterPath,
}

impl PlacementRule {
    /// All rules in paper order.
    pub const ALL: [PlacementRule; 3] = [
        PlacementRule::MinAverageDelay,
        PlacementRule::MaxDegree,
        PlacementRule::DiameterPath,
    ];

    /// Harness label.
    pub fn label(self) -> &'static str {
        match self {
            PlacementRule::MinAverageDelay => "rule1-avg-delay",
            PlacementRule::MaxDegree => "rule2-degree",
            PlacementRule::DiameterPath => "rule3-diameter",
        }
    }
}

/// Sum of shortest delays from `v` to every other node.
fn delay_sum(paths: &dyn PathProvider, topo: &Topology, v: NodeId) -> u64 {
    topo.nodes()
        .filter(|&u| u != v)
        .map(|u| paths.unicast_delay(v, u).unwrap_or(u64::MAX / 2))
        .sum()
}

/// Rule 1: the node with the smallest average shortest-delay distance to
/// every other node (ties to the lower id).
pub fn min_average_delay(topo: &Topology, paths: &dyn PathProvider) -> NodeId {
    topo.nodes()
        .min_by_key(|&v| (delay_sum(paths, topo, v), v))
        .expect("non-empty topology")
}

/// Rule 2: the node with the largest degree (ties to the lower id).
pub fn max_degree(topo: &Topology) -> NodeId {
    topo.nodes()
        .max_by_key(|&v| (topo.degree(v), std::cmp::Reverse(v)))
        .expect("non-empty topology")
}

/// The delay diameter: the endpoints realising the largest pairwise
/// shortest delay, and that delay.
pub fn delay_diameter(topo: &Topology, paths: &dyn PathProvider) -> (NodeId, NodeId, u64) {
    let mut best = (NodeId(0), NodeId(0), 0);
    for a in topo.nodes() {
        for b in topo.nodes() {
            if a < b {
                if let Some(d) = paths.unicast_delay(a, b) {
                    if d > best.2 {
                        best = (a, b, d);
                    }
                }
            }
        }
    }
    best
}

/// Rule 3: the node on a delay-diameter path whose distance to both
/// endpoints is most balanced (the path's delay midpoint).
pub fn diameter_midpoint(topo: &Topology, paths: &dyn PathProvider) -> NodeId {
    let (a, b, total) = delay_diameter(topo, paths);
    let path = paths.path(a, b, Metric::Delay).expect("connected");
    let mut acc = 0u64;
    let mut best = (u64::MAX, path[0]);
    for pair in path.windows(2) {
        acc += topo.link(pair[0], pair[1]).expect("path link").delay;
        let imbalance = acc.abs_diff(total - acc);
        if imbalance < best.0 {
            best = (imbalance, pair[1]);
        }
    }
    // Also consider the first node (imbalance = total).
    if total.abs_diff(0) < best.0 {
        best.1 = path[0];
    }
    best.1
}

/// Apply a placement rule.
pub fn place(rule: PlacementRule, topo: &Topology, paths: &dyn PathProvider) -> NodeId {
    match rule {
        PlacementRule::MinAverageDelay => min_average_delay(topo, paths),
        PlacementRule::MaxDegree => max_degree(topo),
        PlacementRule::DiameterPath => diameter_midpoint(topo, paths),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scmp_net::graph::LinkWeight;
    use scmp_net::topology::examples::fig5;
    use scmp_net::topology::regular::{line, star};
    use scmp_net::AllPairsPaths;

    #[test]
    fn rule1_picks_center_of_line() {
        let topo = line(5, LinkWeight::new(1, 1));
        let ap = AllPairsPaths::compute(&topo);
        assert_eq!(min_average_delay(&topo, &ap), NodeId(2));
    }

    #[test]
    fn rule2_picks_hub_of_star() {
        let topo = star(6, LinkWeight::new(1, 1));
        assert_eq!(max_degree(&topo), NodeId(0));
    }

    #[test]
    fn rule3_picks_middle_of_line() {
        let topo = line(7, LinkWeight::new(1, 1));
        let ap = AllPairsPaths::compute(&topo);
        let (a, b, d) = delay_diameter(&topo, &ap);
        assert_eq!((a, b, d), (NodeId(0), NodeId(6), 6));
        assert_eq!(diameter_midpoint(&topo, &ap), NodeId(3));
    }

    #[test]
    fn rules_run_on_fig5() {
        let topo = fig5();
        let ap = AllPairsPaths::compute(&topo);
        for rule in PlacementRule::ALL {
            let v = place(rule, &topo, &ap);
            assert!(v.index() < topo.node_count(), "{}", rule.label());
        }
        // Diameter of fig5: ul(4, 5) = 4-1-0? compute: delay(4,5):
        // 4-1-2-5 = 9+3+7 = 19, 4-1-0-2-5? = 9+3+4+7 = 23 → 19. Other
        // pairs are smaller, so diameter is (4, 5).
        let (a, b, d) = delay_diameter(&topo, &ap);
        assert_eq!((a, b), (NodeId(4), NodeId(5)));
        assert_eq!(d, 19);
    }

    #[test]
    fn rule2_finds_scale_free_hub() {
        use scmp_net::rng::rng_for;
        use scmp_net::topology::ba::barabasi_albert;
        // On a BA graph the max-degree heuristic must land on a true hub:
        // degree several times the mean.
        let topo = barabasi_albert(120, 2, &mut rng_for("placement-ba", 0));
        let hub = max_degree(&topo);
        assert!(topo.degree(hub) as f64 > topo.average_degree() * 3.0);
        // And rule 1 picks a node with below-average eccentricity.
        let ap = AllPairsPaths::compute(&topo);
        let r1 = min_average_delay(&topo, &ap);
        let avg_of = |v: scmp_net::NodeId| -> f64 {
            let s: u64 = topo
                .nodes()
                .filter(|&u| u != v)
                .map(|u| ap.unicast_delay(v, u).unwrap())
                .sum();
            s as f64 / (topo.node_count() - 1) as f64
        };
        let mean_all: f64 = topo.nodes().map(avg_of).sum::<f64>() / topo.node_count() as f64;
        assert!(avg_of(r1) < mean_all, "rule 1 must beat the average node");
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<_> =
            PlacementRule::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), 3);
    }
}
