//! Receiver-side duplicate suppression.
//!
//! Two independent mechanisms, for the two ways a lossy channel can
//! replay traffic:
//!
//! * [`SeqWindow`] — per-sender sliding-window dedup over the wire
//!   header's control sequence number (the IPsec anti-replay scheme):
//!   a retransmitted or channel-duplicated control message is
//!   recognised and discarded even when its payload is not idempotent.
//! * [`RecentSet`] — a bounded FIFO set of recently-forwarded data
//!   packet keys. Data packets carry no per-sender sequence (any member
//!   may source), so routers suppress duplicates by `(group, tag)`
//!   instead, which also guarantees the "no member receives a data
//!   packet twice" chaos invariant under channel duplication.

use scmp_net::NodeId;
use std::collections::{HashMap, HashSet, VecDeque};

/// Sliding anti-replay window width (seqs older than this many behind
/// the newest are treated as replays).
const WINDOW: u32 = 64;

/// Per-sender sliding-window sequence dedup.
///
/// For each sender the window tracks the highest sequence seen and a
/// bitmap of the `WINDOW` numbers below it. [`SeqWindow::observe`]
/// returns `true` for a fresh sequence and `false` for a duplicate or
/// anything that fell off the window (too old to judge — dropping is
/// the safe side, and a live sender's retransmissions carry fresh
/// sequence numbers anyway).
#[derive(Debug, Default)]
pub struct SeqWindow {
    peers: HashMap<NodeId, PeerWindow>,
}

#[derive(Debug)]
struct PeerWindow {
    max_seq: u32,
    /// Bit `i` set ⇔ `max_seq - i` was seen (bit 0 = `max_seq` itself).
    bitmap: u64,
}

impl SeqWindow {
    /// A window with no history.
    pub fn new() -> Self {
        SeqWindow::default()
    }

    /// Record `seq` from `sender`; `true` iff it was never seen before
    /// (within the window).
    pub fn observe(&mut self, sender: NodeId, seq: u32) -> bool {
        match self.peers.get_mut(&sender) {
            None => {
                self.peers.insert(
                    sender,
                    PeerWindow {
                        max_seq: seq,
                        bitmap: 1,
                    },
                );
                true
            }
            Some(w) => {
                if seq > w.max_seq {
                    let advance = seq - w.max_seq;
                    w.bitmap = if advance >= 64 {
                        1
                    } else {
                        (w.bitmap << advance) | 1
                    };
                    w.max_seq = seq;
                    true
                } else {
                    let behind = w.max_seq - seq;
                    if behind >= WINDOW {
                        return false; // too old to judge: drop
                    }
                    let bit = 1u64 << behind;
                    if w.bitmap & bit != 0 {
                        false
                    } else {
                        w.bitmap |= bit;
                        true
                    }
                }
            }
        }
    }
}

/// A bounded FIFO set: remembers the last `cap` keys inserted and
/// answers "seen recently?". Old keys age out in insertion order, so
/// memory stays constant however long the run.
#[derive(Debug)]
pub struct RecentSet<K: std::hash::Hash + Eq + Clone> {
    order: VecDeque<K>,
    seen: HashSet<K>,
    cap: usize,
}

impl<K: std::hash::Hash + Eq + Clone> RecentSet<K> {
    /// A set remembering the `cap` most recent keys.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "a zero-capacity set would dedup nothing");
        RecentSet {
            order: VecDeque::with_capacity(cap),
            seen: HashSet::with_capacity(cap),
            cap,
        }
    }

    /// Insert `key`; `true` iff it was not already remembered.
    pub fn insert(&mut self, key: K) -> bool {
        if self.seen.contains(&key) {
            return false;
        }
        if self.order.len() == self.cap {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        self.order.push_back(key.clone());
        self.seen.insert(key);
        true
    }

    /// Number of keys currently remembered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when nothing has been remembered yet.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: NodeId = NodeId(1);
    const B: NodeId = NodeId(2);

    #[test]
    fn fresh_sequences_pass_duplicates_fail() {
        let mut w = SeqWindow::new();
        assert!(w.observe(A, 1));
        assert!(w.observe(A, 2));
        assert!(!w.observe(A, 2), "exact duplicate");
        assert!(!w.observe(A, 1), "older duplicate inside the window");
        assert!(w.observe(A, 5), "gap forward is fresh");
        assert!(w.observe(A, 3), "late arrival inside the gap is fresh");
        assert!(!w.observe(A, 3), "…but only once");
    }

    #[test]
    fn senders_are_independent() {
        let mut w = SeqWindow::new();
        assert!(w.observe(A, 7));
        assert!(w.observe(B, 7), "same seq from another sender is fresh");
        assert!(!w.observe(A, 7));
    }

    #[test]
    fn ancient_sequences_are_dropped() {
        let mut w = SeqWindow::new();
        assert!(w.observe(A, 1000));
        assert!(!w.observe(A, 1000 - WINDOW), "fell off the window");
        assert!(w.observe(A, 1000 - WINDOW + 1), "just inside");
    }

    #[test]
    fn big_jumps_reset_the_bitmap() {
        let mut w = SeqWindow::new();
        assert!(w.observe(A, 1));
        assert!(w.observe(A, 1 + 200));
        assert!(!w.observe(A, 1 + 200));
        // 1 is now far outside the window.
        assert!(!w.observe(A, 1));
    }

    #[test]
    fn window_boundary_is_exact() {
        // behind == WINDOW - 1 is the oldest judgeable sequence;
        // behind == WINDOW is one past the edge and must be dropped.
        let mut w = SeqWindow::new();
        assert!(w.observe(A, WINDOW));
        assert!(w.observe(A, 1), "behind = WINDOW - 1: just inside");
        assert!(!w.observe(A, 0), "behind = WINDOW: just outside");
        assert!(!w.observe(A, 1), "inside duplicate still caught");
    }

    #[test]
    fn sequences_near_u32_max_do_not_wrap() {
        let mut w = SeqWindow::new();
        assert!(w.observe(A, u32::MAX - 1));
        assert!(w.observe(A, u32::MAX), "advance to the numeric ceiling");
        assert!(!w.observe(A, u32::MAX), "duplicate at the ceiling");
        assert!(
            !w.observe(A, u32::MAX - 1),
            "window bitmap survived the shift"
        );
        assert!(
            w.observe(A, u32::MAX - u64::from(WINDOW) as u32 + 1),
            "oldest in-window sequence below the ceiling is fresh"
        );
        // A sender restarting at 0 after u32::MAX looks maximally old:
        // the window drops it (safe side — a live sender's next real
        // sequences are fresh, and 2^32 control packets outlive any
        // session this simulator runs).
        assert!(
            !w.observe(A, 0),
            "wrapped-around restart is dropped, not UB"
        );
    }

    #[test]
    fn exactly_64_step_advance_clears_history_correctly() {
        let mut w = SeqWindow::new();
        assert!(w.observe(A, 10));
        // advance == 64 must not shift the bitmap by its full width
        // (UB on u64); the window resets to just the new maximum.
        assert!(w.observe(A, 10 + 64));
        assert!(!w.observe(A, 10 + 64));
        assert!(w.observe(A, 10 + 64 - 1), "one behind the new max is fresh");
        assert!(!w.observe(A, 10), "behind = 64 fell off");
    }

    #[test]
    fn recent_set_capacity_one_still_dedups_the_latest() {
        let mut s: RecentSet<u32> = RecentSet::new(1);
        assert!(s.insert(1));
        assert!(!s.insert(1), "latest key remembered");
        assert!(s.insert(2), "evicts 1");
        assert!(!s.insert(2));
        assert!(s.insert(1), "evicted key re-admitted");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn duplicate_insert_does_not_disturb_eviction_order() {
        let mut s: RecentSet<u32> = RecentSet::new(2);
        assert!(s.insert(1));
        assert!(s.insert(2));
        // Re-inserting 1 is a no-op: FIFO age is insertion order, not
        // recency of use — 1 must still be the eviction victim.
        assert!(!s.insert(1));
        assert!(s.insert(3), "evicts 1, not 2");
        assert!(!s.insert(2), "2 survived the eviction");
        assert!(s.insert(1), "1 was the victim");
    }

    #[test]
    fn recent_set_dedups_and_ages_out() {
        let mut s: RecentSet<u32> = RecentSet::new(3);
        assert!(s.is_empty());
        assert!(s.insert(1));
        assert!(s.insert(2));
        assert!(s.insert(3));
        assert!(!s.insert(2), "remembered");
        assert_eq!(s.len(), 3);
        assert!(s.insert(4), "evicts 1");
        assert!(s.insert(1), "1 aged out, re-accepted");
        assert_eq!(s.len(), 3, "capacity holds");
    }
}
