//! Wire codec for complete SCMP packets.
//!
//! The simulator passes [`ScmpMsg`] values by value, but a deployable
//! SCMP needs a byte format. This module defines one: a fixed header
//! (magic, version, message type, sequence number, group, origin, tag,
//! creation timestamp) followed by a per-type body and a trailing
//! checksum; the recursive TREE payload reuses the §III-E word encoding
//! from [`crate::tree_packet`].
//!
//! ```text
//! 0      2   3    4      8        12       16           24           32
//! +------+---+----+------+--------+--------+------------+------------+----....----+------+
//! | magic|ver|type| seq  | group  | origin |    tag     | created_at | body       | csum |
//! +------+---+----+------+--------+--------+------------+------------+----....----+------+
//! ```
//!
//! All integers big-endian. Version 2 added the per-sender control
//! sequence number `seq` (receivers dedup retransmitted control
//! messages on it, see [`crate::dedup`]) and the trailing FNV-1a
//! checksum over every preceding byte, so a corrupted packet decodes to
//! [`WireError::BadChecksum`] instead of being trusted. Version 3 added
//! `origin`: the node that first transmitted the packet, preserved
//! across relays so the (group, origin, tag) causal trace key (see
//! [`scmp_telemetry::trace_key`]) survives the whole path. The codec is
//! total: `decode(encode(p)) == p` for every representable packet
//! (checked by property tests), and every truncation or corruption
//! decodes to a typed error, never a panic.

use crate::message::ScmpMsg;
use crate::tree_packet::{BranchPacket, TreePacket};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use scmp_net::NodeId;
use scmp_sim::{GroupId, Packet, PacketClass};

/// Protocol magic: "SC".
pub const MAGIC: u16 = 0x5343;
/// Wire format version (3: origin node id in the header).
pub const VERSION: u8 = 3;

/// Message-type discriminants on the wire.
#[repr(u8)]
enum MsgType {
    Join = 1,
    Leave = 2,
    Prune = 3,
    Tree = 4,
    Branch = 5,
    Flush = 6,
    Data = 7,
    EncapData = 8,
    Heartbeat = 9,
    StandbySync = 10,
    NewMRouter = 11,
    LeaveAck = 12,
    TreeAck = 13,
    Nack = 14,
    Repair = 15,
    SeqAnnounce = 16,
}

/// Decode errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// First two bytes were not [`MAGIC`].
    BadMagic,
    /// Unsupported version byte.
    BadVersion(u8),
    /// Unknown message-type byte.
    UnknownType(u8),
    /// Buffer ended mid-field.
    Truncated,
    /// Bytes left over after a complete packet.
    TrailingBytes,
    /// Embedded TREE payload failed to decode.
    BadTreePayload,
    /// The trailing checksum did not match: the packet was corrupted in
    /// flight and must be treated as lost.
    BadChecksum,
}

/// FNV-1a over `bytes`, the trailing checksum of every packet.
fn fnv32(bytes: &[u8]) -> u32 {
    const OFFSET: u32 = 0x811c_9dc5;
    const PRIME: u32 = 0x0100_0193;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Serialise a packet with control sequence number 0 (callers without a
/// per-receiver sequence stream, e.g. tests and one-shot tools).
pub fn encode(pkt: &Packet<ScmpMsg>) -> Bytes {
    encode_seq(pkt, 0)
}

/// Serialise a packet, stamping the sender's control sequence number
/// `seq` into the header (receivers dedup retransmissions on it).
pub fn encode_seq(pkt: &Packet<ScmpMsg>, seq: u32) -> Bytes {
    let mut b = BytesMut::with_capacity(40);
    b.put_u16(MAGIC);
    b.put_u8(VERSION);
    b.put_u8(type_of(&pkt.body) as u8);
    b.put_u32(seq);
    b.put_u32(pkt.group.0);
    b.put_u32(pkt.origin.0);
    b.put_u64(pkt.tag);
    b.put_u64(pkt.created_at);
    match &pkt.body {
        ScmpMsg::Join { requester } | ScmpMsg::Leave { requester } => {
            b.put_u32(requester.0);
        }
        ScmpMsg::Prune | ScmpMsg::LeaveAck => {}
        ScmpMsg::Data { seq } | ScmpMsg::EncapData { seq } => b.put_u64(*seq),
        ScmpMsg::Tree { gen, packet } => {
            b.put_u64(*gen);
            let words = packet.encode_words();
            b.put_u32(words.len() as u32);
            for w in words {
                b.put_u32(w);
            }
        }
        ScmpMsg::Branch { gen, packet } => {
            b.put_u64(*gen);
            b.put_u16(packet.path.len() as u16);
            for n in &packet.path {
                b.put_u32(n.0);
            }
        }
        ScmpMsg::Flush { gen } => b.put_u64(*gen),
        ScmpMsg::Heartbeat { seq } => b.put_u64(*seq),
        ScmpMsg::StandbySync { member, joined } => {
            b.put_u32(member.0);
            b.put_u8(u8::from(*joined));
        }
        ScmpMsg::NewMRouter { address } => b.put_u32(address.0),
        ScmpMsg::TreeAck { gen } => b.put_u64(*gen),
        ScmpMsg::Nack { origin, seq } | ScmpMsg::Repair { origin, seq } => {
            b.put_u32(origin.0);
            b.put_u64(*seq);
        }
        ScmpMsg::SeqAnnounce { origin, seq, round } => {
            b.put_u32(origin.0);
            b.put_u64(*seq);
            b.put_u32(*round);
        }
    }
    let sum = fnv32(b.as_ref());
    b.put_u32(sum);
    b.freeze()
}

fn type_of(msg: &ScmpMsg) -> MsgType {
    match msg {
        ScmpMsg::Join { .. } => MsgType::Join,
        ScmpMsg::Leave { .. } => MsgType::Leave,
        ScmpMsg::Prune => MsgType::Prune,
        ScmpMsg::Tree { .. } => MsgType::Tree,
        ScmpMsg::Branch { .. } => MsgType::Branch,
        ScmpMsg::Flush { .. } => MsgType::Flush,
        ScmpMsg::Data { .. } => MsgType::Data,
        ScmpMsg::EncapData { .. } => MsgType::EncapData,
        ScmpMsg::Heartbeat { .. } => MsgType::Heartbeat,
        ScmpMsg::StandbySync { .. } => MsgType::StandbySync,
        ScmpMsg::NewMRouter { .. } => MsgType::NewMRouter,
        ScmpMsg::LeaveAck => MsgType::LeaveAck,
        ScmpMsg::TreeAck { .. } => MsgType::TreeAck,
        ScmpMsg::Nack { .. } => MsgType::Nack,
        ScmpMsg::Repair { .. } => MsgType::Repair,
        ScmpMsg::SeqAnnounce { .. } => MsgType::SeqAnnounce,
    }
}

/// The overhead class a message type belongs to (data payloads vs
/// control traffic) — recomputed on decode so receivers cannot be fooled
/// by a forged class field.
fn class_of(msg: &ScmpMsg) -> PacketClass {
    match msg {
        ScmpMsg::Data { .. } | ScmpMsg::EncapData { .. } => PacketClass::Data,
        // Repairs retransmit a data payload, but they are recovery
        // traffic: accounting them as control keeps the §IV-B data-
        // overhead metric a pure count of first-transmission payloads.
        _ => PacketClass::Control,
    }
}

macro_rules! need {
    ($buf:expr, $n:expr) => {
        if $buf.remaining() < $n {
            return Err(WireError::Truncated);
        }
    };
}

/// A decoded wire frame: either a message this codec version knows, or
/// a checksum-verified packet of an unknown (future) kind.
///
/// Unknown kinds are *frames*, not errors: a mixed-version domain must
/// be able to count and trace them as drops instead of aborting the
/// parse path (see the `unknown_kind_drops` counter in the simulator).
/// Corruption of the kind byte is still caught — the trailing checksum
/// covers it, so a flipped kind decodes to [`WireError::BadChecksum`],
/// never to a plausible-looking future packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// A packet of a known message type, plus its header control
    /// sequence number.
    Msg(Packet<ScmpMsg>, u32),
    /// A structurally valid, checksum-verified packet whose type byte
    /// this codec version does not know. The fixed header fields are
    /// preserved so the drop can be attributed to a group/trace key.
    UnknownKind {
        kind: u8,
        seq: u32,
        group: GroupId,
        origin: NodeId,
        tag: u64,
        created_at: u64,
    },
}

/// Deserialise a packet, discarding the header's sequence number.
pub fn decode(bytes: Bytes) -> Result<Packet<ScmpMsg>, WireError> {
    decode_seq(bytes).map(|(pkt, _)| pkt)
}

/// Deserialise a packet and its control sequence number, mapping
/// unknown-kind frames to [`WireError::UnknownType`] (callers that want
/// to count them instead use [`decode_frame`]).
pub fn decode_seq(bytes: Bytes) -> Result<(Packet<ScmpMsg>, u32), WireError> {
    match decode_frame(bytes)? {
        Frame::Msg(pkt, seq) => Ok((pkt, seq)),
        Frame::UnknownKind { kind, .. } => Err(WireError::UnknownType(kind)),
    }
}

/// Deserialise a wire frame.
///
/// Error precedence mirrors a real receiver's parse order: framing
/// (magic/version/lengths) is rejected first; the checksum is verified
/// last, over every byte that precedes it, so any single-bit corruption
/// that survives framing surfaces as [`WireError::BadChecksum`]. An
/// unknown type byte is not a framing error: its body length is
/// unknowable, so everything up to the trailing checksum is treated as
/// opaque body and the frame is returned as [`Frame::UnknownKind`] once
/// the checksum verifies.
pub fn decode_frame(mut bytes: Bytes) -> Result<Frame, WireError> {
    let whole = bytes.clone();
    need!(bytes, 2 + 1 + 1 + 4 + 4 + 4 + 8 + 8);
    if bytes.get_u16() != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = bytes.get_u8();
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let ty = bytes.get_u8();
    let seq = bytes.get_u32();
    let group = GroupId(bytes.get_u32());
    let origin = NodeId(bytes.get_u32());
    let tag = bytes.get_u64();
    let created_at = bytes.get_u64();
    let body = match ty {
        t if t == MsgType::Join as u8 => {
            need!(bytes, 4);
            ScmpMsg::Join {
                requester: NodeId(bytes.get_u32()),
            }
        }
        t if t == MsgType::Leave as u8 => {
            need!(bytes, 4);
            ScmpMsg::Leave {
                requester: NodeId(bytes.get_u32()),
            }
        }
        t if t == MsgType::Prune as u8 => ScmpMsg::Prune,
        t if t == MsgType::Tree as u8 => {
            need!(bytes, 8 + 4);
            let gen = bytes.get_u64();
            let count = bytes.get_u32() as usize;
            need!(bytes, count * 4);
            let words: Vec<u32> = (0..count).map(|_| bytes.get_u32()).collect();
            let packet = TreePacket::decode_words(&words).map_err(|_| WireError::BadTreePayload)?;
            ScmpMsg::Tree { gen, packet }
        }
        t if t == MsgType::Branch as u8 => {
            need!(bytes, 8 + 2);
            let gen = bytes.get_u64();
            let len = bytes.get_u16() as usize;
            need!(bytes, len * 4);
            let path: Vec<NodeId> = (0..len).map(|_| NodeId(bytes.get_u32())).collect();
            ScmpMsg::Branch {
                gen,
                packet: BranchPacket { path },
            }
        }
        t if t == MsgType::Flush as u8 => {
            need!(bytes, 8);
            ScmpMsg::Flush {
                gen: bytes.get_u64(),
            }
        }
        t if t == MsgType::Data as u8 => {
            need!(bytes, 8);
            ScmpMsg::Data {
                seq: bytes.get_u64(),
            }
        }
        t if t == MsgType::EncapData as u8 => {
            need!(bytes, 8);
            ScmpMsg::EncapData {
                seq: bytes.get_u64(),
            }
        }
        t if t == MsgType::Heartbeat as u8 => {
            need!(bytes, 8);
            ScmpMsg::Heartbeat {
                seq: bytes.get_u64(),
            }
        }
        t if t == MsgType::StandbySync as u8 => {
            need!(bytes, 5);
            ScmpMsg::StandbySync {
                member: NodeId(bytes.get_u32()),
                joined: bytes.get_u8() != 0,
            }
        }
        t if t == MsgType::NewMRouter as u8 => {
            need!(bytes, 4);
            ScmpMsg::NewMRouter {
                address: NodeId(bytes.get_u32()),
            }
        }
        t if t == MsgType::LeaveAck as u8 => ScmpMsg::LeaveAck,
        t if t == MsgType::TreeAck as u8 => {
            need!(bytes, 8);
            ScmpMsg::TreeAck {
                gen: bytes.get_u64(),
            }
        }
        t if t == MsgType::Nack as u8 => {
            need!(bytes, 4 + 8);
            ScmpMsg::Nack {
                origin: NodeId(bytes.get_u32()),
                seq: bytes.get_u64(),
            }
        }
        t if t == MsgType::Repair as u8 => {
            need!(bytes, 4 + 8);
            ScmpMsg::Repair {
                origin: NodeId(bytes.get_u32()),
                seq: bytes.get_u64(),
            }
        }
        t if t == MsgType::SeqAnnounce as u8 => {
            need!(bytes, 4 + 8 + 4);
            ScmpMsg::SeqAnnounce {
                origin: NodeId(bytes.get_u32()),
                seq: bytes.get_u64(),
                round: bytes.get_u32(),
            }
        }
        kind => {
            // Unknown/future kind: the body length is unknowable, so
            // everything up to the trailing checksum is opaque body.
            need!(bytes, 4);
            let body_len = bytes.remaining() - 4;
            bytes.advance(body_len);
            let sum = bytes.get_u32();
            if sum != fnv32(&whole[..whole.len() - 4]) {
                return Err(WireError::BadChecksum);
            }
            return Ok(Frame::UnknownKind {
                kind,
                seq,
                group,
                origin,
                tag,
                created_at,
            });
        }
    };
    need!(bytes, 4);
    let sum = bytes.get_u32();
    if bytes.has_remaining() {
        return Err(WireError::TrailingBytes);
    }
    if sum != fnv32(&whole[..whole.len() - 4]) {
        return Err(WireError::BadChecksum);
    }
    let class = class_of(&body);
    Ok(Frame::Msg(
        Packet {
            class,
            group,
            tag,
            created_at,
            origin,
            body,
        },
        seq,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(pkt: Packet<ScmpMsg>) {
        let bytes = encode(&pkt);
        let back = decode(bytes).expect("decodes");
        assert_eq!(back.class, pkt.class);
        assert_eq!(back.group, pkt.group);
        assert_eq!(back.tag, pkt.tag);
        assert_eq!(back.created_at, pkt.created_at);
        assert_eq!(back.origin, pkt.origin);
        assert_eq!(back.body, pkt.body);
    }

    #[test]
    fn origin_rides_the_header() {
        let mut pkt = Packet::data(GroupId(2), 5, 77, ScmpMsg::Data { seq: 0 });
        pkt.origin = NodeId(31);
        let back = decode(encode(&pkt)).expect("decodes");
        assert_eq!(back.origin, NodeId(31));
        roundtrip(pkt);
    }

    #[test]
    fn all_control_variants_roundtrip() {
        let bodies = [
            ScmpMsg::Join {
                requester: NodeId(7),
            },
            ScmpMsg::Leave {
                requester: NodeId(9),
            },
            ScmpMsg::Prune,
            ScmpMsg::Flush { gen: 42 },
            ScmpMsg::Heartbeat { seq: u64::MAX },
            ScmpMsg::StandbySync {
                member: NodeId(3),
                joined: true,
            },
            ScmpMsg::StandbySync {
                member: NodeId(3),
                joined: false,
            },
            ScmpMsg::NewMRouter {
                address: NodeId(11),
            },
            ScmpMsg::LeaveAck,
            ScmpMsg::TreeAck { gen: 23 },
            ScmpMsg::Nack {
                origin: NodeId(13),
                seq: 4,
            },
            ScmpMsg::Repair {
                origin: NodeId(13),
                seq: u64::MAX,
            },
            ScmpMsg::SeqAnnounce {
                origin: NodeId(13),
                seq: 20,
                round: 2,
            },
            ScmpMsg::Branch {
                gen: 5,
                packet: BranchPacket {
                    path: vec![NodeId(2), NodeId(4), NodeId(10)],
                },
            },
        ];
        for body in bodies {
            roundtrip(Packet::control(GroupId(3), body));
        }
    }

    #[test]
    fn data_variants_roundtrip_with_metadata() {
        roundtrip(Packet::data(
            GroupId(1),
            99,
            123_456,
            ScmpMsg::Data { seq: 0 },
        ));
        roundtrip(Packet::data(
            GroupId(1),
            100,
            123_457,
            ScmpMsg::EncapData { seq: 0 },
        ));
        // Sequenced (reliability-tier) payloads carry the stream seq.
        roundtrip(Packet::data(
            GroupId(1),
            99,
            123_456,
            ScmpMsg::Data { seq: 7 },
        ));
        roundtrip(Packet::data(
            GroupId(1),
            100,
            123_457,
            ScmpMsg::EncapData { seq: u64::MAX },
        ));
    }

    #[test]
    fn tree_message_roundtrips_fig6() {
        use scmp_net::topology::examples::fig6_tree_edges;
        use scmp_tree::MulticastTree;
        let mut t = MulticastTree::new(11, NodeId(2));
        for (p, c) in fig6_tree_edges() {
            t.attach(p, c);
        }
        let tp = TreePacket::from_tree(&t, NodeId(2));
        roundtrip(Packet::control(
            GroupId(8),
            ScmpMsg::Tree {
                gen: 17,
                packet: tp,
            },
        ));
    }

    #[test]
    fn class_is_recomputed_not_trusted() {
        // Even if the caller mislabels the class, decode derives it from
        // the message type.
        let mut pkt = Packet::control(GroupId(1), ScmpMsg::Data { seq: 0 });
        pkt.class = PacketClass::Control; // forged
        let back = decode(encode(&pkt)).unwrap();
        assert_eq!(back.class, PacketClass::Data);
    }

    #[test]
    fn rejects_bad_magic_version_type() {
        let good = encode(&Packet::control(GroupId(1), ScmpMsg::Prune));
        let mut v = good.to_vec();
        v[0] = 0xff;
        assert_eq!(decode(Bytes::from(v)).unwrap_err(), WireError::BadMagic);
        let mut v = good.to_vec();
        v[2] = 99;
        assert_eq!(
            decode(Bytes::from(v)).unwrap_err(),
            WireError::BadVersion(99)
        );
        // A *corrupted* kind byte fails the checksum — it cannot be
        // mistaken for a genuine future message kind.
        let mut v = good.to_vec();
        v[3] = 200;
        assert_eq!(decode(Bytes::from(v)).unwrap_err(), WireError::BadChecksum);
    }

    /// A genuine future message kind — correctly framed and checksummed
    /// by a newer sender — decodes to [`Frame::UnknownKind`] with the
    /// header preserved, and only the back-compat `decode` path maps it
    /// to an error.
    #[test]
    fn future_kind_is_a_counted_frame_not_a_parse_failure() {
        let mut v = encode(&Packet::control_keyed(GroupId(9), 77, ScmpMsg::Prune)).to_vec();
        v[3] = 200; // future kind
        let len = v.len();
        let sum = fnv32(&v[..len - 4]);
        v[len - 4..].copy_from_slice(&sum.to_be_bytes());
        match decode_frame(Bytes::from(v.clone())).expect("valid frame") {
            Frame::UnknownKind {
                kind, group, tag, ..
            } => {
                assert_eq!(kind, 200);
                assert_eq!(group, GroupId(9));
                assert_eq!(tag, 77);
            }
            other => panic!("expected UnknownKind, got {other:?}"),
        }
        assert_eq!(
            decode(Bytes::from(v.clone())).unwrap_err(),
            WireError::UnknownType(200)
        );
        // Arbitrary opaque body bytes ride along as long as the
        // checksum holds; corruption inside them is still caught.
        let mut with_body = v.clone();
        let csum_at = with_body.len() - 4;
        with_body.splice(csum_at..csum_at, [0xAA, 0xBB, 0xCC]);
        let len = with_body.len();
        let sum = fnv32(&with_body[..len - 4]);
        with_body[len - 4..].copy_from_slice(&sum.to_be_bytes());
        assert!(matches!(
            decode_frame(Bytes::from(with_body.clone())),
            Ok(Frame::UnknownKind { kind: 200, .. })
        ));
        with_body[csum_at] ^= 0x01;
        assert_eq!(
            decode_frame(Bytes::from(with_body)).unwrap_err(),
            WireError::BadChecksum
        );
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let pkt = Packet::control(
            GroupId(4),
            ScmpMsg::Branch {
                gen: 9,
                packet: BranchPacket {
                    path: vec![NodeId(1), NodeId(2)],
                },
            },
        );
        let bytes = encode(&pkt);
        for cut in 0..bytes.len() {
            let r = decode(bytes.slice(0..cut));
            assert!(r.is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut v = encode(&Packet::control(GroupId(1), ScmpMsg::Prune)).to_vec();
        v.push(0);
        assert_eq!(
            decode(Bytes::from(v)).unwrap_err(),
            WireError::TrailingBytes
        );
    }

    #[test]
    fn sequence_number_rides_the_header() {
        let pkt = Packet::control(
            GroupId(6),
            ScmpMsg::Join {
                requester: NodeId(3),
            },
        );
        let (back, seq) = decode_seq(encode_seq(&pkt, 0xdead_beef)).expect("decodes");
        assert_eq!(seq, 0xdead_beef);
        assert_eq!(back.body, pkt.body);
        // The plain encode stamps seq 0 and plain decode discards it.
        let (_, seq0) = decode_seq(encode(&pkt)).expect("decodes");
        assert_eq!(seq0, 0);
    }

    #[test]
    fn corruption_anywhere_is_detected() {
        let pkt = Packet::control(GroupId(6), ScmpMsg::Heartbeat { seq: 0x0102_0304 });
        let good = encode_seq(&pkt, 7);
        assert!(decode(good.clone()).is_ok());
        // Flip one bit in every byte position: each corruption must be
        // rejected — as a framing error for the bytes earlier checks
        // cover, as BadChecksum for everything else. Never accepted.
        for i in 0..good.len() {
            let mut v = good.to_vec();
            v[i] ^= 0x10;
            assert!(decode(Bytes::from(v)).is_err(), "flip at {i} accepted");
        }
        // A body byte flip survives framing and lands on the checksum.
        let mut v = good.to_vec();
        let body_at = good.len() - 5; // last heartbeat-seq byte
        v[body_at] ^= 0xff;
        assert_eq!(decode(Bytes::from(v)).unwrap_err(), WireError::BadChecksum);
        // So does a flipped checksum itself.
        let mut v = good.to_vec();
        let last = v.len() - 1;
        v[last] ^= 0xff;
        assert_eq!(decode(Bytes::from(v)).unwrap_err(), WireError::BadChecksum);
    }
}
