//! Multicast group and session management (§II-C).
//!
//! "The m-router is responsible for managing the multicast groups: it
//! should be able to issue a multicast address for a new multicast
//! group, revoke a multicast address from an abandoned multicast group,
//! and publish the multicast addresses for existing multicast groups."
//! It also "keeps track of all the membership on-off information for
//! multicast scheduling/routing and for accounting/billing purposes" in
//! a database.

use scmp_net::NodeId;
use scmp_sim::GroupId;
use std::collections::BTreeMap;

/// One membership on/off record in the accounting database.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccountingRecord {
    /// Simulation time of the event.
    pub time: u64,
    /// The group concerned.
    pub group: GroupId,
    /// The DR whose subnet changed.
    pub node: NodeId,
    /// `true` = joined, `false` = left.
    pub joined: bool,
}

/// Lifecycle state of a multicast session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionState {
    /// Address issued, tree possibly empty.
    Active,
    /// Torn down; address revoked and reusable.
    Expired,
}

/// The m-router's group/session database.
#[derive(Clone, Debug, Default)]
pub struct SessionDb {
    next_group: u32,
    sessions: BTreeMap<GroupId, SessionState>,
    log: Vec<AccountingRecord>,
}

impl SessionDb {
    /// Empty database; group addresses are issued from 1 upward
    /// (0 is reserved as "no group").
    pub fn new() -> Self {
        SessionDb {
            next_group: 1,
            sessions: BTreeMap::new(),
            log: Vec::new(),
        }
    }

    /// Issue a fresh multicast address and open its session.
    pub fn create_group(&mut self) -> GroupId {
        let g = GroupId(self.next_group);
        self.next_group += 1;
        self.sessions.insert(g, SessionState::Active);
        g
    }

    /// Register an externally assigned group id (used when scenarios fix
    /// the gid). Idempotent.
    pub fn register_group(&mut self, g: GroupId) {
        self.sessions.entry(g).or_insert(SessionState::Active);
    }

    /// Tear down an expired session, revoking the address.
    pub fn expire_group(&mut self, g: GroupId) {
        if let Some(s) = self.sessions.get_mut(&g) {
            *s = SessionState::Expired;
        }
    }

    /// Current state of `g`, if known.
    pub fn state(&self, g: GroupId) -> Option<SessionState> {
        self.sessions.get(&g).copied()
    }

    /// Published list of active groups — the "query proper information
    /// about multicast groups" interface for outsiders.
    pub fn active_groups(&self) -> Vec<GroupId> {
        self.sessions
            .iter()
            .filter(|(_, s)| **s == SessionState::Active)
            .map(|(&g, _)| g)
            .collect()
    }

    /// Append an accounting record (every JOIN/LEAVE that reaches the
    /// m-router lands here — including the ones that do not change the
    /// tree, which the paper sends "for possible accounting and billing
    /// purposes").
    pub fn record(&mut self, time: u64, group: GroupId, node: NodeId, joined: bool) {
        self.log.push(AccountingRecord {
            time,
            group,
            node,
            joined,
        });
    }

    /// The full accounting log.
    pub fn log(&self) -> &[AccountingRecord] {
        &self.log
    }

    /// Members of `group` according to the log (join/leave replay) — used
    /// by the standby m-router to rebuild trees after a takeover.
    pub fn members_from_log(&self, group: GroupId) -> Vec<NodeId> {
        let mut members = Vec::new();
        for r in &self.log {
            if r.group != group {
                continue;
            }
            if r.joined {
                if !members.contains(&r.node) {
                    members.push(r.node);
                }
            } else {
                members.retain(|&n| n != r.node);
            }
        }
        members
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_are_unique_and_published() {
        let mut db = SessionDb::new();
        let a = db.create_group();
        let b = db.create_group();
        assert_ne!(a, b);
        assert_eq!(db.active_groups(), vec![a, b]);
        db.expire_group(a);
        assert_eq!(db.active_groups(), vec![b]);
        assert_eq!(db.state(a), Some(SessionState::Expired));
    }

    #[test]
    fn register_is_idempotent() {
        let mut db = SessionDb::new();
        db.register_group(GroupId(9));
        db.expire_group(GroupId(9));
        db.register_group(GroupId(9));
        assert_eq!(db.state(GroupId(9)), Some(SessionState::Expired));
    }

    #[test]
    fn log_replay_reconstructs_membership() {
        let mut db = SessionDb::new();
        let g = GroupId(1);
        db.record(10, g, NodeId(3), true);
        db.record(20, g, NodeId(5), true);
        db.record(30, g, NodeId(3), false);
        db.record(40, g, NodeId(7), true);
        db.record(50, GroupId(2), NodeId(9), true); // other group, ignored
        assert_eq!(db.members_from_log(g), vec![NodeId(5), NodeId(7)]);
        assert_eq!(db.log().len(), 5);
    }

    #[test]
    fn duplicate_joins_in_log_collapse() {
        let mut db = SessionDb::new();
        let g = GroupId(1);
        db.record(1, g, NodeId(3), true);
        db.record(2, g, NodeId(3), true);
        assert_eq!(db.members_from_log(g), vec![NodeId(3)]);
    }
}
