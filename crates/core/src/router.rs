//! The SCMP router state machine (§II–III).
//!
//! Every node in the domain runs one [`ScmpRouter`]. Most are i-routers:
//! they keep one multicast routing entry per group — the paper's triple
//! *(group id, upstream, downstream)* — and perform only forwarding,
//! TREE/BRANCH processing and PRUNE propagation. One node is the
//! m-router: it owns the membership database, runs the DCDM algorithm on
//! every JOIN/LEAVE, emits TREE/BRANCH packets, keeps the accounting log
//! and (optionally) mirrors state to a hot-standby peer (§V item 4).
//!
//! Packet walk (Fig. 4): IGMP report → DR sends JOIN (unicast to
//! m-router) → m-router updates the tree (DCDM) → BRANCH packet (simple
//! graft) or TREE packets (restructure) install routing entries → data
//! flows on the bidirectional shared tree, with off-tree sources
//! encapsulating to the m-router.

use crate::igmp::{HostId, MembershipEdge, Subnet};
use crate::message::ScmpMsg;
use crate::session::SessionDb;
use crate::tree_packet::{BranchPacket, TreePacket};
use scmp_fabric::{GroupRequest, SandwichFabric};
use scmp_net::{AllPairsPaths, NodeId, Topology};
use scmp_sim::{AppEvent, Ctx, GroupId, Packet, Router};
use scmp_tree::{Dcdm, DelayBound, MulticastTree};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Timer tokens.
const TIMER_HEARTBEAT: u64 = 1;
const TIMER_REBUILD: u64 = 3;
/// Periodic m-router repair scan (robustness extension): check every
/// mirrored tree against the IGP liveness view and re-run DCDM over the
/// surviving topology when a tree is damaged.
const TIMER_REPAIR: u64 = 4;
/// Watchdog tokens are generation-stamped: `TIMER_WATCHDOG_BASE + gen`.
/// Every heartbeat bumps the generation, so only the deadman timer armed
/// after the *last* heartbeat can trigger a takeover.
const TIMER_WATCHDOG_BASE: u64 = 1_000;
/// Session-expiry tokens: `TIMER_EXPIRY_BASE + gid`. Must stay above
/// every watchdog token; group ids are small in practice, and the bases
/// are far enough apart that overlap would need 2^63 heartbeats.
const TIMER_EXPIRY_BASE: u64 = 1 << 63;
/// JOIN-retry tokens: `TIMER_JOIN_RETRY_BASE + gid`.
const TIMER_JOIN_RETRY_BASE: u64 = 1 << 62;
/// LEAVE-retry tokens: `TIMER_LEAVE_RETRY_BASE + gid`.
const TIMER_LEAVE_RETRY_BASE: u64 = 1 << 61;
/// Give up a JOIN/LEAVE retransmission series after this many attempts
/// (the m-router is gone for good; a takeover or operator intervenes).
const MAX_RETRIES: u32 = 8;
/// Exponential-backoff shift cap: delay = base << min(attempt, cap).
const BACKOFF_CAP: u32 = 6;

/// Domain-wide SCMP configuration, shared by every router.
#[derive(Clone, Debug)]
pub struct ScmpConfig {
    /// The (primary) m-router's address, provisioned in every router's
    /// configuration file (§III-A).
    pub m_router: NodeId,
    /// Additional m-routers for the §II-A extension ("an ISP may own
    /// more than one m-routers ... our approach can be easily extended
    /// to multiple m-routers per domain"). Groups are assigned
    /// round-robin by group id across `[m_router] ∪ extra_m_routers`.
    /// Mutually exclusive with `standby` (hot-standby failover is
    /// implemented for the single-m-router configuration).
    pub extra_m_routers: Vec<NodeId>,
    /// Optional hot-standby m-router.
    pub standby: Option<NodeId>,
    /// Delay-bound regime handed to DCDM.
    pub bound: DelayBound,
    /// Primary→standby heartbeat period (0 disables failover machinery).
    pub heartbeat_interval: u64,
    /// After a takeover, wait this long before pushing rebuilt TREE
    /// packets (lets the NewMRouter announcements land first).
    pub takeover_rebuild_delay: u64,
    /// Ablation switch: always distribute full TREE packets, never
    /// BRANCH packets (§III-E motivates BRANCH as the cheap path; the
    /// `ablation_branch` bench quantifies it).
    pub tree_packets_only: bool,
    /// Tear down a session after its group has been memberless this long
    /// (§II-C: "tear down an expired multicast session" and "revoke a
    /// multicast address from an abandoned multicast group").
    /// 0 disables expiry.
    pub session_expiry: u64,
    /// Retransmit a JOIN if the tree has not reached this DR after this
    /// long — protects membership against congestion-dropped JOIN or
    /// TREE/BRANCH packets when the link-capacity model is active.
    /// Retries back off exponentially (`join_retry << attempt`, capped)
    /// and give up after [`MAX_RETRIES`]. 0 disables retries.
    pub join_retry: u64,
    /// Retransmit an unacknowledged LEAVE after this long, with the same
    /// backoff/give-up policy as `join_retry`. LEAVE is the one §III
    /// message whose loss silently strands membership (and billing)
    /// state at the m-router, so the m-router acks it with LEAVE-ACK
    /// and the DR retries until acked. 0 disables retries.
    pub leave_retry: u64,
    /// m-router repair-scan period: every interval, check each mirrored
    /// tree against the domain's liveness view (the IGP's link-state
    /// database) and re-run DCDM over the surviving topology when the
    /// tree is damaged or a logged member is reachable but off-tree.
    /// 0 disables the scan. Note: a non-zero interval re-arms forever,
    /// so drive such simulations with `run_until`, not quiescence.
    pub repair_interval: u64,
}

impl ScmpConfig {
    /// Plain configuration: given m-router, dynamic bound, no standby.
    pub fn new(m_router: NodeId) -> Self {
        ScmpConfig {
            m_router,
            extra_m_routers: Vec::new(),
            standby: None,
            bound: DelayBound::Dynamic,
            heartbeat_interval: 0,
            takeover_rebuild_delay: 1_000,
            tree_packets_only: false,
            session_expiry: 0,
            join_retry: 500_000,
            leave_retry: 500_000,
            repair_interval: 0,
        }
    }
}

/// Immutable domain context shared by all routers (the m-router's global
/// knowledge; i-routers only use the topology for neighbour checks).
#[derive(Debug)]
pub struct ScmpDomain {
    /// The domain topology.
    pub topo: Topology,
    /// Precomputed `P_sl`/`P_lc` tables (link-state database).
    pub paths: AllPairsPaths,
    /// Protocol configuration.
    pub config: ScmpConfig,
    /// Failover view: the topology with the primary m-router's links
    /// removed, plus its path tables. Precomputed when a standby is
    /// configured so the takeover plans trees around the dead primary.
    pub failover: Option<(Topology, AllPairsPaths)>,
}

impl ScmpDomain {
    /// Build the shared context (computes the path tables).
    pub fn new(topo: Topology, config: ScmpConfig) -> Arc<Self> {
        let paths = AllPairsPaths::compute(&topo);
        let failover = config.standby.map(|_| {
            let ft = topo.without_node(config.m_router);
            let fp = AllPairsPaths::compute(&ft);
            (ft, fp)
        });
        Arc::new(ScmpDomain {
            topo,
            paths,
            config,
            failover,
        })
    }
}

/// One multicast routing entry: the paper's *(gid, upstream, downstream)*
/// triple; `downstream` splits into child routers and the local subnet
/// interface.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoutingEntry {
    /// Parent router on the tree (`None` at the m-router).
    pub upstream: Option<NodeId>,
    /// Child routers on the tree.
    pub downstream_routers: BTreeSet<NodeId>,
    /// True when the local subnet has at least one member host.
    pub local_interface: bool,
    /// Tree generation this entry was last written at. TREE/BRANCH/FLUSH
    /// packets carrying an older generation are ignored, so a stale
    /// BRANCH overtaken by a restructure's TREE refresh cannot corrupt
    /// the installed state.
    pub gen: u64,
}

impl RoutingEntry {
    /// The forwarding set `F` of §III-F: upstream ∪ downstream routers.
    pub fn forwarding_set(&self) -> Vec<NodeId> {
        let mut f: Vec<NodeId> = self.downstream_routers.iter().copied().collect();
        if let Some(u) = self.upstream {
            f.push(u);
        }
        f
    }

    /// A leaf entry with no local members can be discarded.
    pub fn is_prunable(&self) -> bool {
        self.downstream_routers.is_empty() && !self.local_interface
    }
}

/// m-router-only state.
#[derive(Debug)]
pub struct MRouterState {
    /// One mirrored multicast tree per group (§III-D: "the multicast
    /// tree is constructed in the m-router before it is physically
    /// formed in the domain").
    trees: BTreeMap<GroupId, MulticastTree>,
    /// Group/session database with the accounting log.
    pub sessions: SessionDb,
    /// Output-port assignment per group in the switching fabric.
    fabric_ports: BTreeMap<GroupId, usize>,
    /// The configured sandwich fabric (rebuilt when the group set
    /// changes); `None` until the first group appears.
    fabric: Option<SandwichFabric>,
    /// Fabric port count (power of two ≥ 2 × expected groups).
    fabric_size: usize,
    /// Per-group tree generation, bumped on every membership change.
    gens: BTreeMap<GroupId, u64>,
    heartbeat_seq: u64,
}

impl MRouterState {
    fn new() -> Self {
        MRouterState {
            trees: BTreeMap::new(),
            sessions: SessionDb::new(),
            fabric_ports: BTreeMap::new(),
            fabric: None,
            fabric_size: 64,
            gens: BTreeMap::new(),
            heartbeat_seq: 0,
        }
    }

    /// Bump and return the tree generation for `group`.
    fn next_gen(&mut self, group: GroupId) -> u64 {
        let g = self.gens.entry(group).or_insert(0);
        *g += 1;
        *g
    }

    /// The mirrored tree for `group`, if the group has been seen.
    pub fn tree(&self, group: GroupId) -> Option<&MulticastTree> {
        self.trees.get(&group)
    }

    /// The fabric output port assigned to `group`.
    pub fn fabric_port(&self, group: GroupId) -> Option<usize> {
        self.fabric_ports.get(&group).copied()
    }

    /// Reconfigure the sandwich fabric for the current group set: one
    /// input port per group (the line from the domain) merging onto the
    /// group's assigned output port. In a deployed m-router the sources
    /// of a group would occupy several input ports; the per-group
    /// input-port set here is the minimal one that keeps the
    /// configuration live and checked.
    fn reconfigure_fabric(&mut self) {
        let groups: Vec<GroupRequest> = self
            .fabric_ports
            .iter()
            .enumerate()
            .map(|(idx, (_, &port))| GroupRequest {
                sources: vec![idx],
                output: port,
            })
            .collect();
        if groups.is_empty() {
            self.fabric = None;
            return;
        }
        self.fabric = Some(
            SandwichFabric::configure(self.fabric_size, &groups)
                .expect("port assignment is collision-free"),
        );
    }

    fn assign_fabric_port(&mut self, group: GroupId) {
        if self.fabric_ports.contains_key(&group) {
            return;
        }
        // Grow the fabric when the group count approaches the port count
        // (half the ports serve as source lines, half as group outputs —
        // a bigger switching fabric is exactly the §II-B scaling story).
        while self.fabric_ports.len() + 1 > self.fabric_size / 2 {
            self.fabric_size *= 2;
        }
        // Deterministic first-free assignment from the top of the port
        // range (low ports serve as source lines).
        let used: BTreeSet<usize> = self.fabric_ports.values().copied().collect();
        let port = (0..self.fabric_size)
            .rev()
            .find(|p| !used.contains(p))
            .expect("fabric has free ports");
        self.fabric_ports.insert(group, port);
        self.reconfigure_fabric();
    }
}

/// Standby-only state: the mirrored membership plus the deadman
/// generation counter.
#[derive(Debug)]
pub struct StandbyState {
    membership: SessionDb,
    /// Bumped on every heartbeat; stale watchdog timers are ignored.
    watchdog_gen: u64,
}

/// Role of a node in the SCMP domain.
#[derive(Debug)]
pub enum Role {
    /// Ordinary intermediate multicast router.
    IRouter,
    /// The active master multicast router (boxed: the state is two
    /// orders of magnitude larger than the other variants).
    MRouter(Box<MRouterState>),
    /// Hot standby mirroring the primary.
    Standby(StandbyState),
}

/// The per-node SCMP state machine. Implements [`scmp_sim::Router`].
pub struct ScmpRouter {
    me: NodeId,
    domain: Arc<ScmpDomain>,
    /// Current believed m-router address (changes after a takeover).
    m_router: NodeId,
    role: Role,
    /// Multicast routing table: one entry per group.
    entries: BTreeMap<GroupId, RoutingEntry>,
    /// Groups whose local interface is marked pending a TREE/BRANCH
    /// packet (§III-B: "the interface ... is marked so that it will be
    /// added to the downstream ... when the DR receives the TREE packet
    /// later").
    pending_interfaces: BTreeSet<GroupId>,
    /// Flush tombstones: highest generation at which this router was
    /// told to discard a group's state; older TREE/BRANCH are ignored.
    flushed: BTreeMap<GroupId, u64>,
    /// IGMP subnet model.
    pub subnet: Subnet,
    /// Sequential host ids for app-injected join/leave events.
    next_host: u32,
    /// Host stack per group so Leave events pop a real joined host.
    joined_hosts: BTreeMap<GroupId, Vec<HostId>>,
    /// JOIN retransmissions already made per group (backoff exponent).
    join_attempts: BTreeMap<GroupId, u32>,
    /// LEAVEs awaiting a LEAVE-ACK, with retransmission count.
    pending_leaves: BTreeMap<GroupId, u32>,
}

impl ScmpRouter {
    /// Create the state machine for node `me`.
    pub fn new(me: NodeId, domain: Arc<ScmpDomain>) -> Self {
        let cfg = &domain.config;
        assert!(
            cfg.extra_m_routers.is_empty() || cfg.standby.is_none(),
            "hot standby is only supported with a single m-router"
        );
        let role = if me == cfg.m_router || cfg.extra_m_routers.contains(&me) {
            Role::MRouter(Box::new(MRouterState::new()))
        } else if Some(me) == cfg.standby {
            Role::Standby(StandbyState {
                membership: SessionDb::new(),
                watchdog_gen: 0,
            })
        } else {
            Role::IRouter
        };
        ScmpRouter {
            me,
            m_router: cfg.m_router,
            domain,
            role,
            entries: BTreeMap::new(),
            pending_interfaces: BTreeSet::new(),
            flushed: BTreeMap::new(),
            subnet: Subnet::new(),
            next_host: 0,
            joined_hosts: BTreeMap::new(),
            join_attempts: BTreeMap::new(),
            pending_leaves: BTreeMap::new(),
        }
    }

    /// The node's routing entry for `group` (None when off-tree).
    pub fn entry(&self, group: GroupId) -> Option<&RoutingEntry> {
        self.entries.get(&group)
    }

    /// Current believed m-router address (of the primary; per-group
    /// addresses come from [`Self::m_router_for`]).
    pub fn m_router_address(&self) -> NodeId {
        self.m_router
    }

    /// The m-router serving `group`: round-robin over the configured
    /// m-router set, or the (possibly failed-over) single m-router.
    pub fn m_router_for(&self, group: GroupId) -> NodeId {
        let extra = &self.domain.config.extra_m_routers;
        if extra.is_empty() {
            return self.m_router;
        }
        let idx = group.0 as usize % (1 + extra.len());
        if idx == 0 {
            self.domain.config.m_router
        } else {
            extra[idx - 1]
        }
    }

    /// True while this node acts as the m-router.
    pub fn is_m_router(&self) -> bool {
        matches!(self.role, Role::MRouter(_))
    }

    /// m-router state, if this node is (currently) the m-router.
    pub fn m_state(&self) -> Option<&MRouterState> {
        match &self.role {
            Role::MRouter(s) => Some(s),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Member joining / leaving (§III-B, §III-C)
    // ------------------------------------------------------------------

    fn handle_host_join(&mut self, group: GroupId, ctx: &mut Ctx<'_, ScmpMsg>) {
        let host = HostId(self.next_host);
        self.next_host += 1;
        let edge = self.subnet.host_join(host, group);
        self.joined_hosts.entry(group).or_default().push(host);
        if edge != MembershipEdge::FirstJoined(group) {
            return;
        }
        if let Some(entry) = self.entries.get_mut(&group) {
            // Already on the tree: just open the interface; the JOIN is
            // still sent "for possible accounting and billing purposes".
            entry.local_interface = true;
        } else {
            self.pending_interfaces.insert(group);
            let retry = self.domain.config.join_retry;
            if retry > 0 {
                self.join_attempts.insert(group, 0);
                ctx.set_timer(retry, TIMER_JOIN_RETRY_BASE + group.0 as u64);
            }
        }
        let m = self.m_router_for(group);
        let me = self.me;
        ctx.unicast(m, Packet::control(group, ScmpMsg::Join { requester: me }));
    }

    /// JOIN retry: if the subnet still wants the group but no tree state
    /// arrived (the JOIN or its TREE/BRANCH answer was lost), resend with
    /// exponential backoff, giving up after [`MAX_RETRIES`].
    fn retry_join_if_unanswered(&mut self, group: GroupId, ctx: &mut Ctx<'_, ScmpMsg>) {
        let wants = self.subnet.has_members(group);
        let answered = self
            .entries
            .get(&group)
            .is_some_and(|e| e.local_interface || !wants);
        if !wants || answered || self.is_m_router() {
            self.join_attempts.remove(&group);
            return;
        }
        let attempt = self.join_attempts.entry(group).or_insert(0);
        *attempt += 1;
        if *attempt > MAX_RETRIES {
            self.join_attempts.remove(&group);
            return;
        }
        let backoff = self.domain.config.join_retry << (*attempt).min(BACKOFF_CAP);
        self.pending_interfaces.insert(group);
        let m = self.m_router_for(group);
        let me = self.me;
        ctx.unicast(m, Packet::control(group, ScmpMsg::Join { requester: me }));
        if self.domain.config.join_retry > 0 {
            ctx.set_timer(backoff, TIMER_JOIN_RETRY_BASE + group.0 as u64);
        }
    }

    /// LEAVE retry: the m-router never acked, so either the LEAVE or the
    /// LEAVE-ACK was lost; resend with backoff until acked or exhausted.
    fn retry_leave_if_unacked(&mut self, group: GroupId, ctx: &mut Ctx<'_, ScmpMsg>) {
        let Some(attempt) = self.pending_leaves.get_mut(&group) else {
            return; // acked in the meantime
        };
        *attempt += 1;
        let attempt = *attempt;
        if attempt > MAX_RETRIES {
            self.pending_leaves.remove(&group);
            return;
        }
        let backoff = self.domain.config.leave_retry << attempt.min(BACKOFF_CAP);
        let m = self.m_router_for(group);
        let me = self.me;
        ctx.unicast(m, Packet::control(group, ScmpMsg::Leave { requester: me }));
        ctx.set_timer(backoff, TIMER_LEAVE_RETRY_BASE + group.0 as u64);
    }

    fn handle_host_leave(&mut self, group: GroupId, ctx: &mut Ctx<'_, ScmpMsg>) {
        let Some(host) = self.joined_hosts.get_mut(&group).and_then(|v| v.pop()) else {
            return; // no joined host to leave
        };
        let edge = self.subnet.host_leave(host, group);
        if edge != MembershipEdge::LastLeft(group) {
            return;
        }
        self.pending_interfaces.remove(&group);
        let mut send_leave = false;
        if let Some(entry) = self.entries.get_mut(&group) {
            entry.local_interface = false;
            if entry.is_prunable() {
                // Became a leaf: PRUNE upstream and forget the entry.
                if let Some(up) = entry.upstream {
                    ctx.send(up, Packet::control(group, ScmpMsg::Prune));
                }
                self.entries.remove(&group);
                send_leave = true;
            } else if !entry.downstream_routers.is_empty() {
                // Still forwarding for children: LEAVE for accounting only.
                send_leave = true;
            }
        } else {
            // Leave raced ahead of the BRANCH/TREE install.
            send_leave = true;
        }
        if send_leave {
            let m = self.m_router_for(group);
            let me = self.me;
            ctx.unicast(m, Packet::control(group, ScmpMsg::Leave { requester: me }));
            let retry = self.domain.config.leave_retry;
            if retry > 0 {
                self.pending_leaves.insert(group, 0);
                ctx.set_timer(retry, TIMER_LEAVE_RETRY_BASE + group.0 as u64);
            }
        }
    }

    // ------------------------------------------------------------------
    // Data plane (§III-F)
    // ------------------------------------------------------------------

    fn handle_host_send(&mut self, group: GroupId, tag: u64, ctx: &mut Ctx<'_, ScmpMsg>) {
        if let Some(entry) = self.entries.get(&group) {
            let pkt = Packet::data(group, tag, ctx.now(), ScmpMsg::Data);
            if entry.local_interface {
                ctx.deliver_local(&pkt);
            }
            for to in entry.forwarding_set() {
                ctx.send(to, pkt.clone());
            }
        } else {
            // Off-tree source: encapsulate toward the m-router (§III-F).
            let m = self.m_router_for(group);
            let pkt = Packet::data(group, tag, ctx.now(), ScmpMsg::EncapData);
            ctx.unicast(m, pkt);
        }
    }

    fn forward_on_tree(&mut self, from: NodeId, pkt: Packet<ScmpMsg>, ctx: &mut Ctx<'_, ScmpMsg>) {
        let Some(entry) = self.entries.get(&pkt.group) else {
            ctx.drop_packet();
            return;
        };
        let f = entry.forwarding_set();
        if !f.contains(&from) {
            // §III-F: packets from routers outside F are dropped.
            ctx.drop_packet();
            return;
        }
        if entry.local_interface {
            ctx.deliver_local(&pkt);
        }
        for to in f {
            if to != from {
                ctx.send(to, pkt.clone());
            }
        }
    }

    fn handle_encap_data(&mut self, pkt: Packet<ScmpMsg>, ctx: &mut Ctx<'_, ScmpMsg>) {
        if !self.is_m_router() {
            // Stale sender configuration (e.g. right after a takeover):
            // relay toward the address we believe in, unless that's us.
            let m = self.m_router_for(pkt.group);
            if m != self.me {
                ctx.unicast(m, pkt);
            } else {
                ctx.drop_packet();
            }
            return;
        }
        // Decapsulate and push down the tree (§III-F).
        let data = Packet {
            body: ScmpMsg::Data,
            ..pkt
        };
        if let Some(entry) = self.entries.get(&data.group) {
            if entry.local_interface {
                ctx.deliver_local(&data);
            }
            for to in entry.downstream_routers.clone() {
                ctx.send(to, data.clone());
            }
        }
        // No entry: empty group, payload evaporates at the root.
    }

    // ------------------------------------------------------------------
    // Tree distribution (§III-E)
    // ------------------------------------------------------------------

    /// A TREE/BRANCH packet is stale when an equal-or-newer generation
    /// has already been installed or flushed.
    fn is_stale(&self, group: GroupId, gen: u64) -> bool {
        if self.flushed.get(&group).is_some_and(|&fg| gen <= fg) {
            return true;
        }
        self.entries.get(&group).is_some_and(|e| gen <= e.gen)
    }

    fn install_tree_packet(
        &mut self,
        from: NodeId,
        group: GroupId,
        gen: u64,
        tp: TreePacket,
        ctx: &mut Ctx<'_, ScmpMsg>,
    ) {
        if self.is_stale(group, gen) {
            ctx.drop_packet();
            return;
        }
        // The DR's subnet is the ground truth for the local interface:
        // a concurrent restructure may have flushed an entry (losing the
        // flag) while this router's own JOIN was still in flight.
        self.pending_interfaces.remove(&group);
        self.join_attempts.remove(&group);
        let local = self.subnet.has_members(group);
        let entry = self.entries.entry(group).or_default();
        let old_upstream = entry.upstream;
        entry.upstream = Some(from);
        entry.downstream_routers = tp.downstream_routers().into_iter().collect();
        entry.gen = gen;
        entry.local_interface = local;
        // Moving under a new parent: tell the old one to stop forwarding
        // to us, or it would keep a stale child pointer forever.
        if let Some(old) = old_upstream {
            if old != from {
                ctx.send(old, Packet::control(group, ScmpMsg::Prune));
            }
        }
        for (child, sub) in tp.split() {
            ctx.send(child, Packet::control(group, ScmpMsg::Tree { gen, packet: sub }));
        }
        self.prune_if_orphaned(group, ctx);
    }

    fn install_branch_packet(
        &mut self,
        from: NodeId,
        group: GroupId,
        gen: u64,
        bp: BranchPacket,
        ctx: &mut Ctx<'_, ScmpMsg>,
    ) {
        if self.is_stale(group, gen) {
            // A newer TREE refresh already encodes this (or a newer)
            // tree; the stale branch must not resurrect old edges.
            ctx.drop_packet();
            return;
        }
        let (next, rest) = bp.advance(self.me);
        self.pending_interfaces.remove(&group);
        self.join_attempts.remove(&group);
        let local = self.subnet.has_members(group);
        let entry = self.entries.entry(group).or_default();
        let old_upstream = entry.upstream;
        entry.upstream = Some(from);
        entry.gen = gen;
        entry.local_interface = local;
        if let Some(old) = old_upstream {
            if old != from {
                ctx.send(old, Packet::control(group, ScmpMsg::Prune));
            }
        }
        if let Some(next) = next {
            entry.downstream_routers.insert(next);
            ctx.send(next, Packet::control(group, ScmpMsg::Branch { gen, packet: rest }));
        } else {
            self.prune_if_orphaned(group, ctx);
        }
    }

    /// A just-installed leaf entry with no local members (the join was
    /// cancelled by a leave racing past it) prunes itself immediately.
    fn prune_if_orphaned(&mut self, group: GroupId, ctx: &mut Ctx<'_, ScmpMsg>) {
        if self.is_m_router() {
            return;
        }
        if let Some(entry) = self.entries.get(&group) {
            if entry.is_prunable() {
                if let Some(up) = entry.upstream {
                    ctx.send(up, Packet::control(group, ScmpMsg::Prune));
                }
                self.entries.remove(&group);
            }
        }
    }

    fn handle_prune(&mut self, from: NodeId, group: GroupId, ctx: &mut Ctx<'_, ScmpMsg>) {
        let Some(entry) = self.entries.get_mut(&group) else {
            return;
        };
        entry.downstream_routers.remove(&from);
        if !self.is_m_router() {
            self.prune_if_orphaned(group, ctx);
        }
    }

    // ------------------------------------------------------------------
    // m-router: centralized tree construction (§III-D)
    // ------------------------------------------------------------------

    fn m_handle_join(&mut self, group: GroupId, requester: NodeId, ctx: &mut Ctx<'_, ScmpMsg>) {
        let domain = Arc::clone(&self.domain);
        let me = self.me;
        let Role::MRouter(state) = &mut self.role else {
            return; // JOIN addressed to a node that is not the m-router
        };
        state.sessions.register_group(group);
        state.sessions.record(ctx.now(), group, requester, true);
        state.assign_fabric_port(group);
        let gen = state.next_gen(group);
        let tree = state
            .trees
            .remove(&group)
            .unwrap_or_else(|| MulticastTree::new(domain.topo.node_count(), me));
        let mut dcdm = Dcdm::with_tree(&domain.topo, &domain.paths, tree, domain.config.bound);
        let outcome = dcdm.join(requester);
        let tree = dcdm.into_tree();

        // Refresh the m-router's own routing entry from the mirror.
        let entry = self.entries.entry(group).or_default();
        entry.upstream = None;
        entry.downstream_routers = tree.children(me).iter().copied().collect();
        if requester == me {
            self.pending_interfaces.remove(&group);
            entry.local_interface = true;
        }

        // Physically form the change in the domain.
        if requester != me {
            if outcome.path.len() == 1 {
                // Requester was already on the tree — but its entry may
                // be gone (crash-recovered DR, TREE/BRANCH lost to
                // congestion), so re-send a BRANCH refresh along its root
                // path instead of distributing nothing. This makes a
                // repeated JOIN an idempotent state-repair primitive.
                if let Some(path) = tree.path_from_root(requester) {
                    if path.len() > 1 {
                        let bp = BranchPacket::from_root_path(&path);
                        let first = bp.path[0];
                        ctx.send(first, Packet::control(group, ScmpMsg::Branch { gen, packet: bp }));
                    }
                }
            } else if outcome.is_simple_graft() && !domain.config.tree_packets_only {
                let path = tree.path_from_root(requester).expect("member on tree");
                let bp = BranchPacket::from_root_path(&path);
                let first = bp.path[0];
                ctx.send(first, Packet::control(group, ScmpMsg::Branch { gen, packet: bp }));
            } else {
                // Restructured (or ablation): full TREE refresh, plus
                // explicit flushes for routers pruned off the tree.
                for &child in tree.children(me) {
                    let tp = TreePacket::from_tree(&tree, child);
                    ctx.send(child, Packet::control(group, ScmpMsg::Tree { gen, packet: tp }));
                }
                for &gone in &outcome.pruned {
                    ctx.unicast(gone, Packet::control(group, ScmpMsg::Flush { gen }));
                }
            }
        }

        let Role::MRouter(state) = &mut self.role else {
            unreachable!()
        };
        state.trees.insert(group, tree);
        if let Some(standby) = domain.config.standby {
            if standby != me {
                ctx.unicast(
                    standby,
                    Packet::control(
                        group,
                        ScmpMsg::StandbySync {
                            member: requester,
                            joined: true,
                        },
                    ),
                );
            }
        }
    }

    fn m_handle_leave(&mut self, group: GroupId, requester: NodeId, ctx: &mut Ctx<'_, ScmpMsg>) {
        let domain = Arc::clone(&self.domain);
        let me = self.me;
        let Role::MRouter(state) = &mut self.role else {
            return;
        };
        // Ack first: the DR retransmits until acked, and processing below
        // is made idempotent so a duplicate LEAVE (lost ack) is harmless.
        // Membership ground truth is the accounting log, not the mirrored
        // tree — a repair rebuild may have dropped an unreachable member
        // from the tree while its join is still on the books.
        ctx.unicast(requester, Packet::control(group, ScmpMsg::LeaveAck));
        if !state.sessions.members_from_log(group).contains(&requester) {
            return; // duplicate of an already-processed LEAVE
        }
        state.sessions.record(ctx.now(), group, requester, false);
        state.next_gen(group);
        let Some(tree) = state.trees.remove(&group) else {
            return;
        };
        let mut dcdm = Dcdm::with_tree(&domain.topo, &domain.paths, tree, domain.config.bound);
        dcdm.leave(requester);
        let tree = dcdm.into_tree();
        // The physical prune travels hop-by-hop from the leaving DR
        // (§III-D: "the real prune operation is accomplished by the
        // leaving member sending the PRUNE message upstream hop by
        // hop") — the m-router only refreshes its mirror and entry.
        let entry = self.entries.entry(group).or_default();
        entry.downstream_routers = tree.children(me).iter().copied().collect();
        if requester == me {
            entry.local_interface = false;
        }
        let emptied = tree.member_count() == 0;
        let Role::MRouter(state) = &mut self.role else {
            unreachable!()
        };
        state.trees.insert(group, tree);
        if emptied && domain.config.session_expiry > 0 {
            ctx.set_timer(domain.config.session_expiry, TIMER_EXPIRY_BASE + group.0 as u64);
        }
        if let Some(standby) = domain.config.standby {
            if standby != me {
                ctx.unicast(
                    standby,
                    Packet::control(
                        group,
                        ScmpMsg::StandbySync {
                            member: requester,
                            joined: false,
                        },
                    ),
                );
            }
        }
    }

    /// Expiry timer fired for a group: if it is still memberless, tear
    /// down the session — revoke the address, free the fabric port and
    /// drop the tree state.
    fn expire_session_if_empty(&mut self, group: GroupId) {
        let Role::MRouter(state) = &mut self.role else {
            return;
        };
        let still_empty = state
            .trees
            .get(&group)
            .is_none_or(|t| t.member_count() == 0);
        if !still_empty {
            return;
        }
        state.trees.remove(&group);
        state.gens.remove(&group);
        state.sessions.expire_group(group);
        if state.fabric_ports.remove(&group).is_some() {
            state.reconfigure_fabric();
        }
        self.entries.remove(&group);
    }

    // ------------------------------------------------------------------
    // Hot standby (§V item 4)
    // ------------------------------------------------------------------

    fn standby_takeover(&mut self, ctx: &mut Ctx<'_, ScmpMsg>) {
        let domain = Arc::clone(&self.domain);
        let me = self.me;
        let Role::Standby(standby) = std::mem::replace(&mut self.role, Role::IRouter) else {
            return;
        };
        let mut state = Box::new(MRouterState::new());
        state.sessions = standby.membership;
        // Announce the new address to every router first; the rebuilt
        // TREE packets follow after `takeover_rebuild_delay`.
        for v in domain.topo.nodes() {
            if v != me {
                ctx.unicast(
                    v,
                    Packet::control(GroupId(0), ScmpMsg::NewMRouter { address: me }),
                );
            }
        }
        self.m_router = me;
        self.role = Role::MRouter(state);
        ctx.set_timer(domain.config.takeover_rebuild_delay, TIMER_REBUILD);
    }

    fn rebuild_after_takeover(&mut self, ctx: &mut Ctx<'_, ScmpMsg>) {
        let domain = Arc::clone(&self.domain);
        let me = self.me;
        // Plan around the failed primary: its links are unusable.
        let (topo, paths) = match &domain.failover {
            Some((t, p)) => (t, p),
            None => (&domain.topo, &domain.paths),
        };
        let Role::MRouter(state) = &mut self.role else {
            return;
        };
        let groups: Vec<GroupId> = state.sessions.active_groups();
        let mut rebuilt = Vec::new();
        for group in groups {
            // Members partitioned away by the primary's failure cannot be
            // served until the operator restores connectivity; skip them.
            let members: Vec<NodeId> = state
                .sessions
                .members_from_log(group)
                .into_iter()
                .filter(|&m| paths.unicast_delay(m, me).is_some())
                .collect();
            if members.is_empty() {
                continue;
            }
            state.assign_fabric_port(group);
            let mut dcdm = Dcdm::new(topo, paths, me, domain.config.bound);
            for m in &members {
                dcdm.join(*m);
            }
            rebuilt.push((group, dcdm.into_tree()));
        }
        for (group, tree) in rebuilt {
            let Role::MRouter(state) = &mut self.role else {
                unreachable!()
            };
            let gen = state.next_gen(group);
            let entry = self.entries.entry(group).or_default();
            entry.upstream = None;
            entry.downstream_routers = tree.children(me).iter().copied().collect();
            entry.local_interface = tree.is_member(me);
            entry.gen = gen;
            for &child in tree.children(me) {
                let tp = TreePacket::from_tree(&tree, child);
                ctx.send(child, Packet::control(group, ScmpMsg::Tree { gen, packet: tp }));
            }
            let Role::MRouter(state) = &mut self.role else {
                unreachable!()
            };
            state.trees.insert(group, tree);
        }
    }

    // ------------------------------------------------------------------
    // m-router: periodic tree repair (robustness extension)
    // ------------------------------------------------------------------

    /// Periodic repair scan. The m-router already owns the domain's
    /// link-state database (§II-D), so it learns about dead links and
    /// routers from the IGP; here that view is the simulator's liveness
    /// state. Every mirrored tree is assessed against it, and a damaged
    /// tree — or a tree missing a reachable logged member, e.g. after a
    /// partition heals — is rebuilt by re-running DCDM over the
    /// surviving topology. Pruned-off routers get explicit flushes so
    /// stale entries cannot black-hole later traffic.
    fn m_repair_scan(&mut self, ctx: &mut Ctx<'_, ScmpMsg>) {
        let domain = Arc::clone(&self.domain);
        let me = self.me;
        if !self.is_m_router() {
            return; // role changed since the timer was armed
        }
        let interval = domain.config.repair_interval;
        if interval > 0 {
            // Re-arm first so a scan can never silence itself.
            ctx.set_timer(interval, TIMER_REPAIR);
        }
        let surviving = ctx.surviving_topology();
        let reachable = scmp_net::metrics::reachable_set(&surviving, me);
        // Phase 1 (read-only): which groups need surgery?
        let mut damaged: Vec<GroupId> = Vec::new();
        {
            let Role::MRouter(state) = &self.role else {
                unreachable!()
            };
            for (&group, tree) in &state.trees {
                let damage = scmp_tree::repair::assess(
                    tree,
                    |v| ctx.node_up(v),
                    |a, b| ctx.link_up(a, b),
                );
                let readopt = state
                    .sessions
                    .members_from_log(group)
                    .into_iter()
                    .any(|m| !tree.is_member(m) && reachable[m.index()]);
                if !damage.is_intact() || readopt {
                    damaged.push(group);
                }
            }
        }
        if damaged.is_empty() {
            return;
        }
        let paths = AllPairsPaths::compute(&surviving);
        for group in damaged {
            let Role::MRouter(state) = &mut self.role else {
                unreachable!()
            };
            // Members partitioned away stay off the tree until a later
            // scan sees them reachable again (the readopt check above).
            let members: Vec<NodeId> = state
                .sessions
                .members_from_log(group)
                .into_iter()
                .filter(|&m| paths.unicast_delay(m, me).is_some())
                .collect();
            let old_nodes = state
                .trees
                .get(&group)
                .map(|t| t.on_tree_nodes())
                .unwrap_or_default();
            let gen = state.next_gen(group);
            let mut dcdm = Dcdm::new(&surviving, &paths, me, domain.config.bound);
            for &m in &members {
                dcdm.join(m);
            }
            let tree = dcdm.into_tree();
            let entry = self.entries.entry(group).or_default();
            entry.upstream = None;
            entry.downstream_routers = tree.children(me).iter().copied().collect();
            entry.local_interface = self.subnet.has_members(group);
            entry.gen = gen;
            for &child in tree.children(me) {
                let tp = TreePacket::from_tree(&tree, child);
                ctx.send(child, Packet::control(group, ScmpMsg::Tree { gen, packet: tp }));
            }
            // Flush reachable routers that fell off the tree; partitioned
            // ones keep stale state, which generation stamps and the
            // §III-F forwarding-set check neutralise.
            for v in old_nodes {
                if v != me && !tree.contains(v) && reachable[v.index()] {
                    ctx.unicast(v, Packet::control(group, ScmpMsg::Flush { gen }));
                }
            }
            let Role::MRouter(state) = &mut self.role else {
                unreachable!()
            };
            state.trees.insert(group, tree);
        }
        ctx.record_repair();
    }
}

impl Router for ScmpRouter {
    type Msg = ScmpMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ScmpMsg>) {
        let cfg = &self.domain.config;
        if cfg.repair_interval > 0 && self.is_m_router() {
            ctx.set_timer(cfg.repair_interval, TIMER_REPAIR);
        }
        if cfg.heartbeat_interval == 0 {
            return;
        }
        match self.role {
            Role::MRouter(_) if cfg.standby.is_some() => {
                ctx.set_timer(cfg.heartbeat_interval, TIMER_HEARTBEAT);
            }
            Role::Standby(_) => {
                // Generous first deadline: the primary may be several
                // propagation delays away.
                ctx.set_timer(cfg.heartbeat_interval * 8, TIMER_WATCHDOG_BASE);
            }
            _ => {}
        }
    }

    fn on_packet(&mut self, from: NodeId, pkt: Packet<ScmpMsg>, ctx: &mut Ctx<'_, ScmpMsg>) {
        let group = pkt.group;
        match pkt.body.clone() {
            ScmpMsg::Join { requester } => self.m_handle_join(group, requester, ctx),
            ScmpMsg::Leave { requester } => self.m_handle_leave(group, requester, ctx),
            ScmpMsg::Prune => self.handle_prune(from, group, ctx),
            ScmpMsg::Tree { gen, packet } => self.install_tree_packet(from, group, gen, packet, ctx),
            ScmpMsg::Branch { gen, packet } => self.install_branch_packet(from, group, gen, packet, ctx),
            ScmpMsg::Flush { gen } => {
                let tomb = self.flushed.entry(group).or_insert(0);
                if gen > *tomb {
                    *tomb = gen;
                }
                // Only state at or below the flushed generation dies; a
                // newer BRANCH/TREE may have legitimately re-added us
                // while the flush was in flight.
                if self.entries.get(&group).is_some_and(|e| e.gen <= gen) {
                    self.entries.remove(&group);
                }
            }
            ScmpMsg::Data => self.forward_on_tree(from, pkt, ctx),
            ScmpMsg::EncapData => self.handle_encap_data(pkt, ctx),
            ScmpMsg::Heartbeat { .. } => {
                let interval = self.domain.config.heartbeat_interval;
                if let Role::Standby(s) = &mut self.role {
                    // Re-arm the deadman timer: takeover only when no
                    // heartbeat lands for 4 intervals.
                    s.watchdog_gen += 1;
                    let gen = s.watchdog_gen;
                    ctx.set_timer(interval * 4, TIMER_WATCHDOG_BASE + gen);
                }
            }
            ScmpMsg::StandbySync { member, joined } => {
                if let Role::Standby(s) = &mut self.role {
                    s.membership.register_group(group);
                    s.membership.record(ctx.now(), group, member, joined);
                }
            }
            ScmpMsg::LeaveAck => {
                self.pending_leaves.remove(&group);
            }
            ScmpMsg::NewMRouter { address } => {
                // The old trees are rooted at the dead primary: drop all
                // forwarding state. The new m-router pushes fresh TREE
                // packets after `takeover_rebuild_delay`; until they
                // arrive, sources fall back to unicast encapsulation.
                // Subnets that still have members re-mark their interface
                // as pending so the rebuilt tree re-opens it on arrival.
                self.m_router = address;
                self.entries.clear();
                self.flushed.clear();
                self.pending_interfaces = self.subnet.active_groups().into_iter().collect();
                // Restart the JOIN retry series toward the new address:
                // the rebuilt TREE push may miss a DR whose original JOIN
                // died with the primary.
                let retry = self.domain.config.join_retry;
                if retry > 0 {
                    for &g in &self.pending_interfaces {
                        self.join_attempts.insert(g, 0);
                        ctx.set_timer(retry, TIMER_JOIN_RETRY_BASE + g.0 as u64);
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, ScmpMsg>) {
        match token {
            TIMER_HEARTBEAT => {
                let cfg = self.domain.config.clone();
                if let Role::MRouter(state) = &mut self.role {
                    state.heartbeat_seq += 1;
                    let seq = state.heartbeat_seq;
                    if let Some(standby) = cfg.standby {
                        ctx.unicast(
                            standby,
                            Packet::control(GroupId(0), ScmpMsg::Heartbeat { seq }),
                        );
                    }
                    ctx.set_timer(cfg.heartbeat_interval, TIMER_HEARTBEAT);
                }
            }
            TIMER_REBUILD => self.rebuild_after_takeover(ctx),
            TIMER_REPAIR => self.m_repair_scan(ctx),
            token if token >= TIMER_EXPIRY_BASE => {
                self.expire_session_if_empty(GroupId((token - TIMER_EXPIRY_BASE) as u32));
            }
            token if token >= TIMER_JOIN_RETRY_BASE => {
                self.retry_join_if_unanswered(GroupId((token - TIMER_JOIN_RETRY_BASE) as u32), ctx);
            }
            token if token >= TIMER_LEAVE_RETRY_BASE => {
                self.retry_leave_if_unacked(GroupId((token - TIMER_LEAVE_RETRY_BASE) as u32), ctx);
            }
            token if token >= TIMER_WATCHDOG_BASE => {
                let take_over = match &self.role {
                    Role::Standby(s) => token - TIMER_WATCHDOG_BASE == s.watchdog_gen,
                    _ => false,
                };
                if take_over {
                    self.standby_takeover(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_app(&mut self, ev: AppEvent, ctx: &mut Ctx<'_, ScmpMsg>) {
        match ev {
            AppEvent::Join(g) => self.handle_host_join(g, ctx),
            AppEvent::Leave(g) => self.handle_host_leave(g, ctx),
            AppEvent::Send { group, tag } => self.handle_host_send(group, tag, ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scmp_net::topology::examples::fig5;
    use scmp_sim::Engine;

    const G: GroupId = GroupId(1);

    fn build(topo: Topology, config: ScmpConfig) -> Engine<ScmpRouter> {
        let domain = ScmpDomain::new(topo, config);
        Engine::new(domain.topo.clone(), move |me, _, _| {
            ScmpRouter::new(me, Arc::clone(&domain))
        })
    }

    fn fig5_engine() -> Engine<ScmpRouter> {
        build(fig5(), ScmpConfig::new(NodeId(0)))
    }

    #[test]
    fn single_join_installs_branch() {
        let mut e = fig5_engine();
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.run_to_quiescence();
        // BRANCH path 0-1-4: node 1 forwards, node 4 is the member.
        let r1 = e.router(NodeId(1));
        let entry = r1.entry(G).expect("node 1 on tree");
        assert_eq!(entry.upstream, Some(NodeId(0)));
        assert!(entry.downstream_routers.contains(&NodeId(4)));
        assert!(!entry.local_interface);
        let r4 = e.router(NodeId(4));
        let entry = r4.entry(G).expect("node 4 on tree");
        assert_eq!(entry.upstream, Some(NodeId(1)));
        assert!(entry.local_interface);
        // m-router mirror matches.
        let m = e.router(NodeId(0)).m_state().unwrap();
        assert!(m.tree(G).unwrap().is_member(NodeId(4)));
    }

    #[test]
    fn fig5_walkthrough_forms_paper_tree() {
        let mut e = fig5_engine();
        e.schedule_app(0, NodeId(4), AppEvent::Join(G)); // g1
        e.schedule_app(1_000, NodeId(3), AppEvent::Join(G)); // g2
        e.schedule_app(2_000, NodeId(5), AppEvent::Join(G)); // g3
        e.run_to_quiescence();
        // Final tree (Fig. 5d): 0-1-4, 0-2, 2-3, 2-5.
        let expect = [
            (NodeId(0), None, vec![NodeId(1), NodeId(2)]),
            (NodeId(1), Some(NodeId(0)), vec![NodeId(4)]),
            (NodeId(2), Some(NodeId(0)), vec![NodeId(3), NodeId(5)]),
            (NodeId(3), Some(NodeId(2)), vec![]),
            (NodeId(4), Some(NodeId(1)), vec![]),
            (NodeId(5), Some(NodeId(2)), vec![]),
        ];
        for (node, up, down) in expect {
            let entry = e.router(node).entry(G).unwrap_or_else(|| panic!("{node:?} off tree"));
            assert_eq!(entry.upstream, up, "{node:?} upstream");
            let d: Vec<NodeId> = entry.downstream_routers.iter().copied().collect();
            assert_eq!(d, down, "{node:?} downstream");
        }
    }

    #[test]
    fn on_tree_source_reaches_all_members() {
        let mut e = fig5_engine();
        for (t, n) in [(0, 4u32), (1_000, 3), (2_000, 5)] {
            e.schedule_app(t, NodeId(n), AppEvent::Join(G));
        }
        e.schedule_app(10_000, NodeId(4), AppEvent::Send { group: G, tag: 1 });
        e.run_to_quiescence();
        for m in [4u32, 3, 5] {
            assert_eq!(
                e.stats().delivery_count(G, 1, NodeId(m)),
                1,
                "member {m}"
            );
        }
        assert!(!e.stats().has_duplicate_deliveries());
    }

    #[test]
    fn off_tree_source_encapsulates_via_m_router() {
        let mut e = fig5_engine();
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        // Node 5 is NOT on the tree; it sends.
        e.schedule_app(5_000, NodeId(5), AppEvent::Send { group: G, tag: 7 });
        e.run_to_quiescence();
        assert_eq!(e.stats().delivery_count(G, 7, NodeId(4)), 1);
        // Sender itself has no members: no local delivery.
        assert_eq!(e.stats().delivery_count(G, 7, NodeId(5)), 0);
    }

    #[test]
    fn leave_prunes_physically() {
        let mut e = fig5_engine();
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.schedule_app(1_000, NodeId(3), AppEvent::Join(G));
        e.schedule_app(5_000, NodeId(4), AppEvent::Leave(G));
        e.run_to_quiescence();
        assert!(e.router(NodeId(4)).entry(G).is_none(), "4 pruned");
        // Node 1 still forwards toward 2-3 (Fig. 5b tree), so it stays.
        let e1 = e.router(NodeId(1)).entry(G).expect("1 keeps forwarding");
        assert_eq!(
            e1.downstream_routers.iter().copied().collect::<Vec<_>>(),
            vec![NodeId(2)]
        );
        // Tree mirror agrees.
        let m = e.router(NodeId(0)).m_state().unwrap();
        assert!(!m.tree(G).unwrap().contains(NodeId(4)));
        assert!(m.tree(G).unwrap().is_member(NodeId(3)));
        // Data still reaches the remaining member.
        let mut e2 = e;
        let later = e2.now() + 20_000;
        e2.schedule_app(later, NodeId(0), AppEvent::Send { group: G, tag: 2 });
        e2.run_to_quiescence();
        assert_eq!(e2.stats().delivery_count(G, 2, NodeId(3)), 1);
        assert_eq!(e2.stats().delivery_count(G, 2, NodeId(4)), 0);
    }

    #[test]
    fn second_host_join_and_partial_leave_keep_tree() {
        let mut e = fig5_engine();
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.schedule_app(1_000, NodeId(4), AppEvent::Join(G)); // second host, same subnet
        e.schedule_app(2_000, NodeId(4), AppEvent::Leave(G)); // one host leaves
        e.run_to_quiescence();
        // Subnet still has a member: entry and interface stay.
        let entry = e.router(NodeId(4)).entry(G).expect("still on tree");
        assert!(entry.local_interface);
    }

    #[test]
    fn m_router_subnet_membership() {
        let mut e = fig5_engine();
        e.schedule_app(0, NodeId(0), AppEvent::Join(G));
        e.schedule_app(1_000, NodeId(4), AppEvent::Join(G));
        e.schedule_app(5_000, NodeId(4), AppEvent::Send { group: G, tag: 3 });
        e.run_to_quiescence();
        // The m-router's own subnet hears the data.
        assert_eq!(e.stats().delivery_count(G, 3, NodeId(0)), 1);
        assert_eq!(e.stats().delivery_count(G, 3, NodeId(4)), 1);
    }

    #[test]
    fn restructure_sends_tree_packets_and_flushes() {
        // The Fig. 5 walkthrough restructures on g3's join; verify node
        // entries stay consistent and no stale path remains from node 1
        // to node 2.
        let mut e = fig5_engine();
        for (t, n) in [(0, 4u32), (1_000, 3), (2_000, 5)] {
            e.schedule_app(t, NodeId(n), AppEvent::Join(G));
        }
        e.schedule_app(10_000, NodeId(0), AppEvent::Send { group: G, tag: 9 });
        e.run_to_quiescence();
        for m in [3u32, 4, 5] {
            assert_eq!(e.stats().delivery_count(G, 9, NodeId(m)), 1, "member {m}");
        }
        assert!(!e.stats().has_duplicate_deliveries());
        // Node 1's downstream no longer contains node 2.
        assert!(!e
            .router(NodeId(1))
            .entry(G)
            .unwrap()
            .downstream_routers
            .contains(&NodeId(2)));
    }

    #[test]
    fn tree_packets_only_ablation_works() {
        let mut cfg = ScmpConfig::new(NodeId(0));
        cfg.tree_packets_only = true;
        let mut e = build(fig5(), cfg);
        for (t, n) in [(0, 4u32), (1_000, 3), (2_000, 5)] {
            e.schedule_app(t, NodeId(n), AppEvent::Join(G));
        }
        e.schedule_app(10_000, NodeId(4), AppEvent::Send { group: G, tag: 1 });
        e.run_to_quiescence();
        for m in [3u32, 4, 5] {
            assert_eq!(e.stats().delivery_count(G, 1, NodeId(m)), 1);
        }
    }

    #[test]
    fn fabric_port_assigned_per_group() {
        let mut e = fig5_engine();
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.schedule_app(0, NodeId(3), AppEvent::Join(GroupId(2)));
        e.run_to_quiescence();
        let m = e.router(NodeId(0)).m_state().unwrap();
        let p1 = m.fabric_port(G).unwrap();
        let p2 = m.fabric_port(GroupId(2)).unwrap();
        assert_ne!(p1, p2);
    }

    #[test]
    fn accounting_log_records_all_membership_traffic() {
        let mut e = fig5_engine();
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.schedule_app(1_000, NodeId(3), AppEvent::Join(G));
        e.schedule_app(2_000, NodeId(4), AppEvent::Leave(G));
        e.run_to_quiescence();
        let m = e.router(NodeId(0)).m_state().unwrap();
        let log = m.sessions.log();
        assert_eq!(log.len(), 3);
        assert!(log[0].joined && log[0].node == NodeId(4));
        assert!(!log[2].joined && log[2].node == NodeId(4));
        assert_eq!(m.sessions.members_from_log(G), vec![NodeId(3)]);
    }

    #[test]
    fn failover_restores_service() {
        let mut cfg = ScmpConfig::new(NodeId(0));
        cfg.standby = Some(NodeId(2));
        cfg.heartbeat_interval = 500;
        cfg.takeover_rebuild_delay = 500;
        let mut e = build(fig5(), cfg);
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.schedule_app(1_000, NodeId(3), AppEvent::Join(G));
        e.run_until(3_000);
        // Primary dies.
        e.set_node_down(NodeId(0), true);
        e.run_until(20_000);
        // Standby must have taken over.
        assert!(e.router(NodeId(2)).is_m_router(), "standby promoted");
        assert_eq!(e.router(NodeId(4)).m_router_address(), NodeId(2));
        // Data from an off-tree source flows through the new m-router.
        e.schedule_app(21_000, NodeId(1), AppEvent::Send { group: G, tag: 5 });
        e.run_to_quiescence();
        assert_eq!(e.stats().delivery_count(G, 5, NodeId(4)), 1);
        assert_eq!(e.stats().delivery_count(G, 5, NodeId(3)), 1);
    }

    #[test]
    fn no_takeover_while_primary_alive() {
        let mut cfg = ScmpConfig::new(NodeId(0));
        cfg.standby = Some(NodeId(2));
        cfg.heartbeat_interval = 500;
        let mut e = build(fig5(), cfg);
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.run_until(50_000);
        assert!(e.router(NodeId(0)).is_m_router());
        assert!(!e.router(NodeId(2)).is_m_router());
        assert_eq!(e.router(NodeId(4)).m_router_address(), NodeId(0));
    }

    #[test]
    fn data_to_empty_group_evaporates() {
        let mut e = fig5_engine();
        e.schedule_app(0, NodeId(5), AppEvent::Send { group: G, tag: 1 });
        e.run_to_quiescence();
        assert_eq!(e.stats().distinct_deliveries(), 0);
        // The encapsulated packet still cost data overhead on its way.
        assert!(e.stats().data_overhead > 0);
    }

    #[test]
    fn staleness_rules() {
        // A protocol run stamps real generations...
        let mut e = fig5_engine();
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.run_to_quiescence();
        assert!(e.router(NodeId(1)).entry(G).unwrap().gen >= 1);
        // ...and the staleness predicate orders packets against both the
        // installed entry and the flush tombstone.
        let domain = ScmpDomain::new(fig5(), ScmpConfig::new(NodeId(0)));
        let mut r = ScmpRouter::new(NodeId(1), domain);
        r.entries.insert(
            G,
            RoutingEntry {
                upstream: Some(NodeId(0)),
                downstream_routers: [NodeId(4)].into(),
                local_interface: false,
                gen: 5,
            },
        );
        assert!(r.is_stale(G, 5), "equal generation is stale");
        assert!(r.is_stale(G, 3), "older generation is stale");
        assert!(!r.is_stale(G, 6), "newer generation applies");
        r.flushed.insert(G, 9);
        assert!(r.is_stale(G, 7), "tombstone outranks the entry");
        assert!(!r.is_stale(G, 10));
    }

    #[test]
    fn join_retries_through_transient_failure() {
        // The link carrying the JOIN is down when the host joins; the
        // retry timer must re-register the member once it recovers.
        let mut e = fig5_engine();
        e.set_link_down(NodeId(0), NodeId(3), true);
        e.set_link_down(NodeId(2), NodeId(3), true);
        // Node 3 is now unreachable except via... fig5: 3 connects to 0
        // and 2 only, so it is fully cut off.
        e.schedule_app(0, NodeId(3), AppEvent::Join(G));
        e.run_until(400_000);
        assert!(e.router(NodeId(3)).entry(G).is_none(), "join lost while cut off");
        e.set_link_down(NodeId(0), NodeId(3), false);
        e.set_link_down(NodeId(2), NodeId(3), false);
        e.run_to_quiescence();
        let entry = e.router(NodeId(3)).entry(G).expect("retry re-registered");
        assert!(entry.local_interface);
        // Data now reaches it.
        let later = e.now() + 10_000;
        e.schedule_app(later, NodeId(5), AppEvent::Send { group: G, tag: 1 });
        e.run_to_quiescence();
        assert_eq!(e.stats().delivery_count(G, 1, NodeId(3)), 1);
    }

    #[test]
    fn session_expires_after_memberless_period() {
        use crate::session::SessionState;
        let mut cfg = ScmpConfig::new(NodeId(0));
        cfg.session_expiry = 100_000;
        let mut e = build(fig5(), cfg);
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.schedule_app(50_000, NodeId(4), AppEvent::Leave(G));
        e.run_to_quiescence();
        let m = e.router(NodeId(0)).m_state().unwrap();
        assert!(m.tree(G).is_none(), "tree state torn down");
        assert!(m.fabric_port(G).is_none(), "fabric port revoked");
        assert_eq!(m.sessions.state(G), Some(SessionState::Expired));
    }

    #[test]
    fn rejoin_before_expiry_cancels_teardown() {
        let mut cfg = ScmpConfig::new(NodeId(0));
        cfg.session_expiry = 500_000;
        let mut e = build(fig5(), cfg);
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.schedule_app(50_000, NodeId(4), AppEvent::Leave(G));
        // Rejoin while the expiry timer is pending.
        e.schedule_app(200_000, NodeId(3), AppEvent::Join(G));
        e.run_to_quiescence();
        let m = e.router(NodeId(0)).m_state().unwrap();
        let tree = m.tree(G).expect("session survived");
        assert!(tree.is_member(NodeId(3)));
        // Data still flows.
        let mut e2 = e;
        e2.schedule_app(2_000_000, NodeId(5), AppEvent::Send { group: G, tag: 1 });
        e2.run_to_quiescence();
        assert_eq!(e2.stats().delivery_count(G, 1, NodeId(3)), 1);
    }

    #[test]
    fn generations_increase_per_membership_change() {
        let mut e = fig5_engine();
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.run_to_quiescence();
        let g1 = e.router(NodeId(4)).entry(G).unwrap().gen;
        let later = e.now() + 10_000;
        e.schedule_app(later, NodeId(3), AppEvent::Join(G));
        e.run_to_quiescence();
        let g2 = e.router(NodeId(3)).entry(G).unwrap().gen;
        assert!(g2 > g1, "second join distributes a newer generation");
    }

    #[test]
    fn rapid_join_leave_churn_stays_consistent() {
        let mut e = fig5_engine();
        let mut t = 0;
        for round in 0..5 {
            for n in [3u32, 4, 5] {
                e.schedule_app(t, NodeId(n), AppEvent::Join(G));
                t += 100;
            }
            for n in [3u32, 4, 5] {
                e.schedule_app(t, NodeId(n), AppEvent::Leave(G));
                t += 100;
            }
            let _ = round;
        }
        e.run_to_quiescence();
        // Everyone left: no entries anywhere except possibly the root's.
        for v in 1..6u32 {
            assert!(
                e.router(NodeId(v)).entry(G).is_none(),
                "node {v} kept a stale entry"
            );
        }
        let m = e.router(NodeId(0)).m_state().unwrap();
        assert_eq!(m.tree(G).unwrap().member_count(), 0);
        assert_eq!(m.tree(G).unwrap().on_tree_count(), 1);
    }

    #[test]
    fn repair_scan_reroutes_around_cut_tree_link() {
        use scmp_sim::FaultEvent;
        let mut cfg = ScmpConfig::new(NodeId(0));
        cfg.repair_interval = 2_000;
        let mut e = build(fig5(), cfg);
        for (t, n) in [(0, 4u32), (1_000, 3), (2_000, 5)] {
            e.schedule_app(t, NodeId(n), AppEvent::Join(G));
        }
        // Fig. 5d tree: 0-1-4, 0-2, 2-3, 2-5. Cutting 0-2 orphans the
        // whole right side; 2 stays reachable via 1-2 and 3-2.
        e.schedule_fault(20_000, FaultEvent::LinkDown {
            a: NodeId(0),
            b: NodeId(2),
        });
        e.schedule_app(15_000, NodeId(0), AppEvent::Send { group: G, tag: 1 });
        e.schedule_app(30_000, NodeId(0), AppEvent::Send { group: G, tag: 2 });
        e.run_until(60_000);
        for m in [4u32, 3, 5] {
            assert_eq!(e.stats().delivery_count(G, 1, NodeId(m)), 1, "pre-cut to {m}");
            assert_eq!(
                e.stats().delivery_count(G, 2, NodeId(m)),
                1,
                "post-repair to {m}"
            );
        }
        assert!(!e.stats().has_duplicate_deliveries());
        assert!(e.stats().repairs >= 1, "repair scan must have fired");
        // The scan runs within one interval of the fault; allow slack for
        // the timer phase.
        assert!(
            e.stats().max_repair_latency <= 2 * 2_000,
            "repair latency {} too high",
            e.stats().max_repair_latency
        );
        // The repaired mirror avoids the dead link.
        let m = e.router(NodeId(0)).m_state().unwrap();
        let tree = m.tree(G).unwrap();
        assert_eq!(tree.validate(None), Ok(()));
        for (p, c) in tree.edges() {
            assert!(
                !(p.0.min(c.0) == 0 && p.0.max(c.0) == 2),
                "repaired tree still uses the dead link"
            );
        }
    }

    #[test]
    fn repair_scan_idle_when_network_healthy() {
        let mut cfg = ScmpConfig::new(NodeId(0));
        cfg.repair_interval = 1_000;
        let mut e = build(fig5(), cfg);
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        let before = {
            e.run_until(5_000);
            e.stats().protocol_overhead
        };
        e.run_until(100_000);
        // Scans keep running but distribute nothing: no repairs, no
        // control traffic beyond the initial join.
        assert_eq!(e.stats().repairs, 0);
        assert_eq!(e.stats().protocol_overhead, before);
    }

    #[test]
    fn repair_readopts_member_after_partition_heals() {
        use scmp_sim::FaultEvent;
        let mut cfg = ScmpConfig::new(NodeId(0));
        cfg.repair_interval = 2_000;
        let mut e = build(fig5(), cfg);
        for (t, n) in [(0, 4u32), (1_000, 3), (2_000, 5)] {
            e.schedule_app(t, NodeId(n), AppEvent::Join(G));
        }
        // Cut node 5 off entirely (its only link is 2-5): the repair
        // drops it from the tree; when the link heals, a later scan must
        // graft it back without any new JOIN from the host.
        e.schedule_fault(10_000, FaultEvent::LinkDown {
            a: NodeId(2),
            b: NodeId(5),
        });
        e.run_until(20_000);
        {
            let m = e.router(NodeId(0)).m_state().unwrap();
            assert!(!m.tree(G).unwrap().is_member(NodeId(5)), "5 dropped while cut");
        }
        e.schedule_fault(30_000, FaultEvent::LinkUp {
            a: NodeId(2),
            b: NodeId(5),
        });
        e.schedule_app(50_000, NodeId(0), AppEvent::Send { group: G, tag: 9 });
        e.run_until(80_000);
        let m = e.router(NodeId(0)).m_state().unwrap();
        assert!(m.tree(G).unwrap().is_member(NodeId(5)), "5 re-adopted");
        assert_eq!(e.stats().delivery_count(G, 9, NodeId(5)), 1);
        assert!(e.stats().repairs >= 2, "cut + heal each trigger a repair");
    }

    #[test]
    fn rejoin_after_dr_crash_reinstalls_entry() {
        use scmp_sim::FaultEvent;
        let mut e = fig5_engine();
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.schedule_fault(10_000, FaultEvent::RouterCrash { node: NodeId(4) });
        e.schedule_fault(20_000, FaultEvent::RouterRecover { node: NodeId(4) });
        // The recovered DR lost its entry and subnet, but the m-router
        // still counts node 4 as a member. A fresh host join must
        // re-install the entry via the BRANCH refresh (a JOIN for an
        // existing member used to distribute nothing).
        e.schedule_app(30_000, NodeId(4), AppEvent::Join(G));
        e.run_to_quiescence();
        let entry = e.router(NodeId(4)).entry(G).expect("entry reinstalled");
        assert!(entry.local_interface);
        assert_eq!(entry.upstream, Some(NodeId(1)));
        let later = e.now() + 1_000;
        e.schedule_app(later, NodeId(0), AppEvent::Send { group: G, tag: 3 });
        e.run_to_quiescence();
        assert_eq!(e.stats().delivery_count(G, 3, NodeId(4)), 1);
    }

    #[test]
    fn leave_is_acked_and_recorded_once() {
        let mut e = fig5_engine();
        e.schedule_app(0, NodeId(4), AppEvent::Join(G));
        e.schedule_app(10_000, NodeId(4), AppEvent::Leave(G));
        e.run_to_quiescence();
        let m = e.router(NodeId(0)).m_state().unwrap();
        // Ack landed before the first retry: exactly one leave record.
        assert_eq!(m.sessions.log().len(), 2);
        assert!(m.sessions.members_from_log(G).is_empty());
    }

    #[test]
    fn leave_retries_through_transient_failure() {
        // The member is cut off when its last host leaves; the LEAVE is
        // lost, and the retransmission after the links heal must still
        // deregister it (otherwise billing runs forever).
        let mut e = fig5_engine();
        e.schedule_app(0, NodeId(3), AppEvent::Join(G));
        e.run_until(5_000);
        e.set_link_down(NodeId(0), NodeId(3), true);
        e.set_link_down(NodeId(2), NodeId(3), true);
        e.schedule_app(6_000, NodeId(3), AppEvent::Leave(G));
        e.run_until(400_000);
        {
            let m = e.router(NodeId(0)).m_state().unwrap();
            assert_eq!(
                m.sessions.members_from_log(G),
                vec![NodeId(3)],
                "LEAVE lost while cut off"
            );
        }
        e.set_link_down(NodeId(0), NodeId(3), false);
        e.set_link_down(NodeId(2), NodeId(3), false);
        e.run_to_quiescence();
        let m = e.router(NodeId(0)).m_state().unwrap();
        assert!(
            m.sessions.members_from_log(G).is_empty(),
            "retried LEAVE deregistered the member"
        );
    }
}
