//! Property-based tests for scmp-core's pure components: the TREE
//! packet codec, BRANCH packets, the IGMP subnet model and the session
//! database.

use proptest::prelude::*;
use scmp_core::igmp::{HostId, MembershipEdge, Subnet};
use scmp_core::message::ScmpMsg;
use scmp_core::session::SessionDb;
use scmp_core::tree_packet::BranchPacket;
use scmp_core::{wire, TreePacket};
use scmp_net::NodeId;
use scmp_sim::{GroupId, Packet};
use scmp_tree::MulticastTree;

/// Build a random tree over `n` nodes rooted at 0 from a parent-choice
/// vector: node `i` attaches under `choices[i] % i` (a classic uniform
/// random recursive tree).
fn random_tree(choices: &[u32]) -> MulticastTree {
    let n = choices.len() + 1;
    let mut t = MulticastTree::new(n, NodeId(0));
    for (i, &c) in choices.iter().enumerate() {
        let node = (i + 1) as u32;
        let parent = c % node;
        t.attach(NodeId(parent), NodeId(node));
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Word-level and byte-level codecs roundtrip any tree shape.
    #[test]
    fn tree_packet_roundtrips(choices in prop::collection::vec(any::<u32>(), 0..100)) {
        let tree = random_tree(&choices);
        let pkt = TreePacket::from_tree(&tree, NodeId(0));
        prop_assert_eq!(pkt.router_count(), choices.len());
        let words = pkt.encode_words();
        prop_assert_eq!(TreePacket::decode_words(&words).unwrap(), pkt.clone());
        let bytes = pkt.encode_bytes();
        prop_assert_eq!(bytes.len(), words.len() * 4);
        prop_assert_eq!(TreePacket::decode_bytes(bytes).unwrap(), pkt);
    }

    /// Splitting a TREE packet preserves the router count and yields one
    /// subpacket per child, matching the tree structure.
    #[test]
    fn tree_packet_split_conserves(choices in prop::collection::vec(any::<u32>(), 1..60)) {
        let tree = random_tree(&choices);
        let pkt = TreePacket::from_tree(&tree, NodeId(0));
        let total = pkt.router_count();
        let parts = pkt.split();
        let children = tree.children(NodeId(0));
        prop_assert_eq!(parts.len(), children.len());
        let sum: usize = parts.iter().map(|(_, sub)| 1 + sub.router_count()).sum();
        prop_assert_eq!(sum, total);
        for ((child, sub), &expect) in parts.iter().zip(children) {
            prop_assert_eq!(*child, expect);
            prop_assert_eq!(sub.clone(), TreePacket::from_tree(&tree, expect));
        }
    }

    /// Truncating an encoded packet anywhere always fails cleanly (no
    /// panic, no bogus success).
    #[test]
    fn truncated_packets_rejected(choices in prop::collection::vec(any::<u32>(), 1..40)) {
        let tree = random_tree(&choices);
        let words = TreePacket::from_tree(&tree, NodeId(0)).encode_words();
        for cut in 0..words.len() {
            prop_assert!(TreePacket::decode_words(&words[..cut]).is_err());
        }
    }

    /// IGMP subnet: the routing-visible edges fire exactly on 0->1 and
    /// 1->0 transitions of the member count, for any event sequence.
    #[test]
    fn igmp_edges_match_counts(events in prop::collection::vec((0u32..6, any::<bool>()), 0..60)) {
        let mut subnet = Subnet::new();
        let mut model: std::collections::BTreeSet<u32> = Default::default();
        let g = GroupId(1);
        for (host, join) in events {
            let edge = if join {
                subnet.host_join(HostId(host), g)
            } else {
                subnet.host_leave(HostId(host), g)
            };
            let before = model.len();
            if join {
                model.insert(host);
            } else {
                model.remove(&host);
            }
            let expected = match (before, model.len()) {
                (0, 1) => MembershipEdge::FirstJoined(g),
                (1, 0) => MembershipEdge::LastLeft(g),
                _ => MembershipEdge::NoChange,
            };
            prop_assert_eq!(edge, expected);
            prop_assert_eq!(subnet.member_count(g), model.len());
            prop_assert_eq!(subnet.has_members(g), !model.is_empty());
        }
    }

    /// The wire codec roundtrips every representable packet, including
    /// TREE messages over arbitrary tree shapes.
    #[test]
    fn wire_roundtrip(
        choices in prop::collection::vec(any::<u32>(), 0..40),
        group in any::<u32>(),
        tag in any::<u64>(),
        created in any::<u64>(),
        origin in any::<u32>(),
        gen in any::<u64>(),
        variant in 0usize..15,
    ) {
        let tree = random_tree(&choices);
        let body = match variant {
            0 => ScmpMsg::Join { requester: NodeId(7) },
            1 => ScmpMsg::Leave { requester: NodeId(8) },
            2 => ScmpMsg::Prune,
            3 => ScmpMsg::Tree { gen, packet: TreePacket::from_tree(&tree, NodeId(0)) },
            4 => ScmpMsg::Branch { gen, packet: BranchPacket { path: vec![NodeId(1), NodeId(2)] } },
            5 => ScmpMsg::Flush { gen },
            6 => ScmpMsg::Data { seq: gen },
            7 => ScmpMsg::EncapData { seq: gen },
            8 => ScmpMsg::StandbySync { member: NodeId(9), joined: gen.is_multiple_of(2) },
            9 => ScmpMsg::NewMRouter { address: NodeId(10) },
            10 => ScmpMsg::LeaveAck,
            11 => ScmpMsg::Nack { origin: NodeId(origin), seq: gen },
            12 => ScmpMsg::Repair { origin: NodeId(origin), seq: gen },
            13 => ScmpMsg::SeqAnnounce { origin: NodeId(origin), seq: gen, round: group },
            _ => ScmpMsg::Heartbeat { seq: gen },
        };
        let pkt = Packet {
            class: if matches!(body, ScmpMsg::Data { .. } | ScmpMsg::EncapData { .. }) {
                scmp_sim::PacketClass::Data
            } else {
                scmp_sim::PacketClass::Control
            },
            group: GroupId(group),
            tag,
            created_at: created,
            origin: NodeId(origin),
            body,
        };
        let back = wire::decode(wire::encode(&pkt)).unwrap();
        prop_assert_eq!(back.body, pkt.body);
        prop_assert_eq!(back.group, pkt.group);
        prop_assert_eq!(back.tag, pkt.tag);
        prop_assert_eq!(back.created_at, pkt.created_at);
        prop_assert_eq!(back.origin, pkt.origin);
    }

    /// Arbitrary byte soup never panics the decoder.
    #[test]
    fn wire_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = wire::decode(bytes::Bytes::from(bytes));
    }

    /// Session-log replay equals a straightforward set interpretation.
    #[test]
    fn session_log_replay(events in prop::collection::vec((0u32..8, any::<bool>()), 0..60)) {
        let mut db = SessionDb::new();
        let g = GroupId(3);
        let mut model: Vec<NodeId> = Vec::new();
        for (t, (node, join)) in events.iter().enumerate() {
            let node = NodeId(*node);
            db.record(t as u64, g, node, *join);
            if *join {
                if !model.contains(&node) {
                    model.push(node);
                }
            } else {
                model.retain(|&m| m != node);
            }
        }
        prop_assert_eq!(db.members_from_log(g), model);
    }
}
