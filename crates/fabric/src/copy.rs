//! Self-routing copy network (the paper's reference \[10\]: Yang & Wang,
//! "A new self-routing multicast network").
//!
//! SCMP borrows its TREE packet idea from the self-routing multicast
//! networks of \[10\]: a cell carries a compact tag and each switching
//! stage splits it locally, with no global controller. This module is a
//! functional model of the *copy network* half of that design: `log₂ n`
//! stages of 1×2 splitters that replicate an input cell into a
//! contiguous block of outputs `[lo, hi]`.
//!
//! At stage `k` (handling bit `k` counted from the most significant),
//! a cell at line `x` carrying interval `[lo, hi]`:
//!
//! * goes straight when the interval lies entirely in one half of the
//!   current sub-range, or
//! * **splits**: one copy continues with the low sub-interval, the other
//!   with the high sub-interval — exactly how a TREE packet splits into
//!   subpackets at each i-router.
//!
//! The model is cycle-accurate at splitter granularity: [`CopyNetwork::route`]
//! returns every (stage, line) activation, so tests can check both the
//! final outputs and the internal replication work.

/// A copy network over `n = 2^k` lines.
#[derive(Clone, Debug)]
pub struct CopyNetwork {
    n: usize,
    stages: usize,
}

/// One splitter activation during routing (for work accounting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Activation {
    /// Stage index, 0 = first.
    pub stage: usize,
    /// Line occupied entering the stage.
    pub line: usize,
    /// Whether the splitter duplicated the cell here.
    pub split: bool,
}

impl CopyNetwork {
    /// Build a copy network with `n` (power of two ≥ 2) lines.
    ///
    /// # Panics
    /// If `n` is not a power of two ≥ 2.
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 2 && n.is_power_of_two(),
            "size must be a power of two ≥ 2"
        );
        CopyNetwork {
            n,
            stages: n.trailing_zeros() as usize,
        }
    }

    /// Number of lines.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Number of splitter stages (`log₂ n`).
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Replicate a cell entering on `input` to the contiguous output
    /// block `lo..=hi`. Returns `(outputs, activations)`.
    ///
    /// # Panics
    /// If the interval is empty or out of range.
    pub fn route(&self, input: usize, lo: usize, hi: usize) -> (Vec<usize>, Vec<Activation>) {
        assert!(input < self.n, "input out of range");
        assert!(lo <= hi && hi < self.n, "bad output interval");
        let mut acts = Vec::new();
        let mut outputs = Vec::new();
        // Each in-flight copy: (line, remaining interval). The line's
        // high `stage` bits progressively take on the interval's bits.
        let mut cells = vec![(input, lo, hi)];
        for stage in 0..self.stages {
            let shift = self.stages - 1 - stage; // bit decided this stage
            let mut next = Vec::with_capacity(cells.len() * 2);
            for (line, lo, hi) in cells {
                let bit_lo = (lo >> shift) & 1;
                let bit_hi = (hi >> shift) & 1;
                if bit_lo == bit_hi {
                    // Whole interval in one half: route straight.
                    acts.push(Activation {
                        stage,
                        line,
                        split: false,
                    });
                    next.push((set_bit(line, shift, bit_lo), lo, hi));
                } else {
                    // Interval straddles the halves: split the cell.
                    acts.push(Activation {
                        stage,
                        line,
                        split: true,
                    });
                    let mid_hi = (hi >> shift) << shift; // first index of high half
                    next.push((set_bit(line, shift, 0), lo, mid_hi - 1));
                    next.push((set_bit(line, shift, 1), mid_hi, hi));
                }
            }
            cells = next;
        }
        for (line, lo, hi) in cells {
            debug_assert_eq!(lo, hi, "interval fully resolved");
            debug_assert_eq!(line, lo, "cell landed on its output");
            outputs.push(line);
        }
        outputs.sort_unstable();
        (outputs, acts)
    }
}

fn set_bit(x: usize, bit: usize, val: usize) -> usize {
    (x & !(1 << bit)) | (val << bit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unicast_passes_through() {
        let cn = CopyNetwork::new(8);
        let (outs, acts) = cn.route(5, 3, 3);
        assert_eq!(outs, vec![3]);
        assert_eq!(acts.len(), 3, "one activation per stage");
        assert!(acts.iter().all(|a| !a.split));
    }

    #[test]
    fn full_broadcast_doubles_each_stage() {
        let cn = CopyNetwork::new(16);
        let (outs, acts) = cn.route(9, 0, 15);
        assert_eq!(outs, (0..16).collect::<Vec<_>>());
        // Splits: 1 + 2 + 4 + 8 = 15 activations, all splitting.
        assert_eq!(acts.len(), 15);
        assert!(acts.iter().all(|a| a.split));
    }

    #[test]
    fn arbitrary_intervals() {
        let cn = CopyNetwork::new(32);
        for input in [0usize, 7, 31] {
            for (lo, hi) in [(0, 0), (3, 17), (5, 5), (16, 31), (1, 30)] {
                let (outs, _) = cn.route(input, lo, hi);
                assert_eq!(
                    outs,
                    (lo..=hi).collect::<Vec<_>>(),
                    "{input} -> [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn activation_count_is_copies_minus_one_plus_stages() {
        // Every split creates one extra copy; straight hops are one per
        // stage per live copy. Total outputs = splits + 1.
        let cn = CopyNetwork::new(64);
        let (outs, acts) = cn.route(10, 20, 43);
        let splits = acts.iter().filter(|a| a.split).count();
        assert_eq!(splits + 1, outs.len());
    }

    #[test]
    fn exhaustive_small() {
        let cn = CopyNetwork::new(8);
        for input in 0..8 {
            for lo in 0..8 {
                for hi in lo..8 {
                    let (outs, _) = cn.route(input, lo, hi);
                    assert_eq!(outs, (lo..=hi).collect::<Vec<_>>());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        CopyNetwork::new(6);
    }
}
