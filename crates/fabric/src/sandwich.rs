//! The PN–CCN–DN sandwich fabric (§II-B, Fig. 3).
//!
//! Given a set of many-to-many requests — each multicast group has a set
//! of source input ports and one assigned output port — the fabric is
//! configured in three steps:
//!
//! 1. the **PN** permutes inputs so each group's sources occupy a
//!    contiguous run of internal lines;
//! 2. the **CCN** merges every run onto its first line (the reversed
//!    fan-in tree);
//! 3. the **DN** permutes merged lines to the groups' assigned output
//!    ports.
//!
//! [`SandwichFabric::eval`] traces a cell through all three stages, so
//! tests can verify end-to-end that every source reaches exactly its
//! group's output and that distinct groups are never connected.

use crate::benes::Benes;
use crate::ccn::ConnectionComponentNetwork;

/// One many-to-many connection request: all `sources` of a group merge
/// onto the single `output` port (which leads to the root of the group's
/// multicast tree in the Internet).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupRequest {
    /// Input ports carrying this group's sources (non-empty, disjoint
    /// from every other group).
    pub sources: Vec<usize>,
    /// Output port the m-router assigned to the group.
    pub output: usize,
}

/// Configuration-time errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FabricError {
    /// Port count must be a power of two ≥ 2 (Beneš constraint).
    SizeNotPowerOfTwo,
    /// A request referenced a port ≥ n, or had no sources.
    BadRequest,
    /// Two groups claimed the same input port.
    SourceConflict { port: usize },
    /// Two groups claimed the same output port.
    OutputConflict { port: usize },
}

/// A fully configured sandwich fabric.
#[derive(Clone, Debug)]
pub struct SandwichFabric {
    n: usize,
    pn: Benes,
    ccn: ConnectionComponentNetwork,
    dn: Benes,
    /// group id per input port (None = idle).
    group_of_input: Vec<Option<usize>>,
    outputs: Vec<usize>,
}

impl SandwichFabric {
    /// Configure the fabric for `groups` over `n` ports.
    pub fn configure(n: usize, groups: &[GroupRequest]) -> Result<Self, FabricError> {
        if n < 2 || !n.is_power_of_two() {
            return Err(FabricError::SizeNotPowerOfTwo);
        }
        let mut group_of_input = vec![None; n];
        let mut output_taken = vec![false; n];
        for (k, g) in groups.iter().enumerate() {
            if g.sources.is_empty() || g.output >= n || g.sources.iter().any(|&s| s >= n) {
                return Err(FabricError::BadRequest);
            }
            for &s in &g.sources {
                if group_of_input[s].is_some() {
                    return Err(FabricError::SourceConflict { port: s });
                }
                group_of_input[s] = Some(k);
            }
            if output_taken[g.output] {
                return Err(FabricError::OutputConflict { port: g.output });
            }
            output_taken[g.output] = true;
        }

        // PN: pack each group's sources into a contiguous run of internal
        // lines, groups in order, idle inputs after them.
        let mut pn_perm = vec![usize::MAX; n];
        let mut next_line = 0usize;
        let mut runs: Vec<Vec<usize>> = Vec::with_capacity(groups.len());
        let mut root_line = Vec::with_capacity(groups.len());
        for g in groups {
            let base = next_line;
            let mut run = Vec::with_capacity(g.sources.len());
            for &s in &g.sources {
                pn_perm[s] = next_line;
                run.push(next_line);
                next_line += 1;
            }
            root_line.push(base);
            runs.push(run);
        }
        for (port, slot) in group_of_input.iter().enumerate() {
            if slot.is_none() {
                pn_perm[port] = next_line;
                next_line += 1;
            }
        }
        debug_assert_eq!(next_line, n);
        let pn = Benes::route(&pn_perm);

        // CCN: merge each run to its first line.
        let ccn = ConnectionComponentNetwork::configure(n, &runs)
            .expect("runs are contiguous by construction");

        // DN: root lines go to assigned outputs; all remaining lines take
        // the remaining outputs in ascending order.
        let mut dn_perm = vec![usize::MAX; n];
        for (k, g) in groups.iter().enumerate() {
            dn_perm[root_line[k]] = g.output;
        }
        let mut free_outputs = (0..n).filter(|&o| !output_taken[o]);
        for slot in dn_perm.iter_mut() {
            if *slot == usize::MAX {
                *slot = free_outputs.next().expect("counts match");
            }
        }
        let dn = Benes::route(&dn_perm);

        Ok(SandwichFabric {
            n,
            pn,
            ccn,
            dn,
            group_of_input,
            outputs: groups.iter().map(|g| g.output).collect(),
        })
    }

    /// Port count.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Trace a cell from `input` through PN → CCN → DN.
    pub fn eval(&self, input: usize) -> usize {
        let line = self.pn.eval(input);
        let merged = self.ccn.eval(line);
        self.dn.eval(merged)
    }

    /// The group an input port belongs to, if any.
    pub fn group_of_input(&self, port: usize) -> Option<usize> {
        self.group_of_input[port]
    }

    /// The output port assigned to group `k`.
    pub fn output_of_group(&self, k: usize) -> usize {
        self.outputs[k]
    }

    /// Crossbar columns a cell traverses (PN depth + CCN merge depth +
    /// DN depth) — the fabric latency model used by the m-router design
    /// discussion.
    pub fn depth(&self) -> usize {
        self.pn.depth() + self.ccn.depth() + self.dn.depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(sources: &[usize], output: usize) -> GroupRequest {
        GroupRequest {
            sources: sources.to_vec(),
            output,
        }
    }

    #[test]
    fn single_group_many_to_one() {
        let f = SandwichFabric::configure(8, &[req(&[1, 4, 6], 3)]).unwrap();
        for s in [1, 4, 6] {
            assert_eq!(f.eval(s), 3, "source {s}");
        }
    }

    #[test]
    fn multiple_groups_are_isolated() {
        let groups = [req(&[0, 5], 7), req(&[2, 3, 6], 1), req(&[7], 0)];
        let f = SandwichFabric::configure(8, &groups).unwrap();
        assert_eq!(f.eval(0), 7);
        assert_eq!(f.eval(5), 7);
        assert_eq!(f.eval(2), 1);
        assert_eq!(f.eval(3), 1);
        assert_eq!(f.eval(6), 1);
        assert_eq!(f.eval(7), 0);
        // Idle inputs must not land on any group output.
        for idle in [1usize, 4] {
            let out = f.eval(idle);
            assert!(
                ![7, 1, 0].contains(&out),
                "idle {idle} hit group output {out}"
            );
        }
    }

    #[test]
    fn full_port_utilisation() {
        // Every input a source, every output assigned.
        let groups = [
            req(&[0, 1], 0),
            req(&[2], 1),
            req(&[3, 4, 5], 2),
            req(&[6, 7], 3),
        ];
        let f = SandwichFabric::configure(8, &groups).unwrap();
        for (k, g) in groups.iter().enumerate() {
            for &s in &g.sources {
                assert_eq!(f.eval(s), g.output, "group {k}");
            }
        }
    }

    #[test]
    fn rejects_conflicts() {
        assert_eq!(
            SandwichFabric::configure(8, &[req(&[0], 1), req(&[0], 2)]).unwrap_err(),
            FabricError::SourceConflict { port: 0 }
        );
        assert_eq!(
            SandwichFabric::configure(8, &[req(&[0], 1), req(&[2], 1)]).unwrap_err(),
            FabricError::OutputConflict { port: 1 }
        );
        assert_eq!(
            SandwichFabric::configure(6, &[]).unwrap_err(),
            FabricError::SizeNotPowerOfTwo
        );
        assert_eq!(
            SandwichFabric::configure(8, &[req(&[], 0)]).unwrap_err(),
            FabricError::BadRequest
        );
        assert_eq!(
            SandwichFabric::configure(8, &[req(&[9], 0)]).unwrap_err(),
            FabricError::BadRequest
        );
    }

    #[test]
    fn empty_configuration_passes_through_distinctly() {
        let f = SandwichFabric::configure(4, &[]).unwrap();
        let mut outs: Vec<usize> = (0..4).map(|i| f.eval(i)).collect();
        outs.sort_unstable();
        assert_eq!(outs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn depth_accounts_all_stages() {
        let f = SandwichFabric::configure(16, &[req(&[0, 1, 2], 5)]).unwrap();
        // Two Beneš of depth 7 plus merge depth ⌈log2 3⌉ = 2.
        assert_eq!(f.depth(), 7 + 2 + 7);
    }
}
