//! # scmp-fabric — the m-router's switching fabric
//!
//! §II-B of the paper sketches the m-router's internal `n × n` switching
//! fabric as a *sandwich network* (refs \[11\], \[12\]): three `n × n`
//! subnetworks in series —
//!
//! ```text
//!   inputs ── PN ── CCN ── DN ── outputs
//! ```
//!
//! * **PN** (permutation network) reorders incoming links so that the
//!   sources of each multicast group sit on adjacent lines;
//! * **CCN** (connection component network) merges each adjacent run of
//!   sources into one line — the reversed tree that lets multiple
//!   sources of a many-to-many session share one multicast tree;
//! * **DN** (distribution network) permutes the merged lines to the
//!   output ports the m-router assigned to the groups (and load-balances
//!   across them).
//!
//! The PN and DN are [Beneš networks](benes) — rearrangeably nonblocking
//! permutation networks of `2·log₂n − 1` stages of 2×2 crossbars — routed
//! with the classical looping algorithm. The CCN is a functional model of
//! a fan-in merge network over contiguous line runs. [`sandwich`]
//! composes the three and checks the paper's isolation guarantee:
//! "sources to different multicast groups are never connected in the
//! switching fabric".

pub mod benes;
pub mod ccn;
pub mod copy;
pub mod sandwich;

pub use benes::Benes;
pub use ccn::ConnectionComponentNetwork;
pub use copy::CopyNetwork;
pub use sandwich::{FabricError, GroupRequest, SandwichFabric};
