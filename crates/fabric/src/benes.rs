//! Beneš rearrangeably-nonblocking permutation networks.
//!
//! A Beneš network of size `n = 2^k` consists of an input column of
//! `n/2` 2×2 crossbars, two recursively nested size-`n/2` Beneš networks
//! (the *top* and *bottom* subnets), and an output column of `n/2`
//! crossbars — `2k − 1` columns in total. Any permutation of the `n`
//! inputs can be realised; the constructive proof is the *looping
//! algorithm* implemented by [`Benes::route`].
//!
//! The m-router uses two of these: the PN in front of the CCN and the DN
//! behind it (§II-B).

/// A configured Beneš network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Benes {
    /// Size-2 base case: one crossbar, `true` = crossed.
    Single(bool),
    /// Size-`n` recursive case.
    Rec {
        /// Input-column crossbar settings (`n/2` of them).
        in_sw: Vec<bool>,
        /// Top subnet (lines leaving crossbar upper outputs).
        top: Box<Benes>,
        /// Bottom subnet (lines leaving crossbar lower outputs).
        bottom: Box<Benes>,
        /// Output-column crossbar settings.
        out_sw: Vec<bool>,
        /// Port count `n`.
        n: usize,
    },
}

impl Benes {
    /// Port count of this network.
    pub fn size(&self) -> usize {
        match self {
            Benes::Single(_) => 2,
            Benes::Rec { n, .. } => *n,
        }
    }

    /// Number of crossbar columns: `2·log₂n − 1`.
    pub fn depth(&self) -> usize {
        match self {
            Benes::Single(_) => 1,
            Benes::Rec { top, .. } => top.depth() + 2,
        }
    }

    /// Total number of 2×2 crossbars.
    pub fn switch_count(&self) -> usize {
        match self {
            Benes::Single(_) => 1,
            Benes::Rec { top, bottom, n, .. } => n + top.switch_count() + bottom.switch_count(),
        }
    }

    /// Route `perm`: configure the network so input `i` exits at output
    /// `perm[i]`.
    ///
    /// # Panics
    /// If `perm.len()` is not a power of two ≥ 2 or `perm` is not a
    /// permutation.
    pub fn route(perm: &[usize]) -> Benes {
        let n = perm.len();
        assert!(
            n >= 2 && n.is_power_of_two(),
            "size must be a power of two ≥ 2"
        );
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(p < n && !seen[p], "not a permutation");
            seen[p] = true;
        }
        Self::route_unchecked(perm)
    }

    fn route_unchecked(perm: &[usize]) -> Benes {
        let n = perm.len();
        if n == 2 {
            return Benes::Single(perm[0] == 1);
        }
        // inverse permutation
        let mut inv = vec![0usize; n];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        // Looping algorithm: 2-colour inputs/outputs with subnet ids so
        // that crossbar partners differ and in_sub[i] == out_sub[perm[i]].
        const UNSET: u8 = 2;
        let mut in_sub = vec![UNSET; n];
        let mut out_sub = vec![UNSET; n];
        for start in 0..n {
            if in_sub[start] != UNSET {
                continue;
            }
            let mut i = start;
            let mut colour = 0u8;
            loop {
                in_sub[i] = colour;
                let o = perm[i];
                out_sub[o] = colour;
                let o2 = o ^ 1; // partner output in the same crossbar
                out_sub[o2] = colour ^ 1;
                let j = inv[o2];
                let j2 = j ^ 1; // partner input
                if in_sub[j] != UNSET {
                    debug_assert_eq!(in_sub[j], colour ^ 1);
                    break;
                }
                in_sub[j] = colour ^ 1;
                if in_sub[j2] != UNSET {
                    break;
                }
                // Continue the chain from j's crossbar partner, which is
                // forced to the colour opposite to j's.
                i = j2;
                colour = in_sub[j] ^ 1;
            }
        }
        // Crossbar settings from the colouring.
        let half = n / 2;
        let in_sw: Vec<bool> = (0..half).map(|s| in_sub[2 * s] == 1).collect();
        let out_sw: Vec<bool> = (0..half).map(|t| out_sub[2 * t] == 1).collect();
        // Sub-permutations.
        let mut top_perm = vec![0usize; half];
        let mut bot_perm = vec![0usize; half];
        for i in 0..n {
            let s = i / 2;
            let t = perm[i] / 2;
            if in_sub[i] == 0 {
                top_perm[s] = t;
            } else {
                bot_perm[s] = t;
            }
        }
        Benes::Rec {
            in_sw,
            top: Box::new(Self::route_unchecked(&top_perm)),
            bottom: Box::new(Self::route_unchecked(&bot_perm)),
            out_sw,
            n,
        }
    }

    /// Trace a cell entering at `input` through the configured crossbars
    /// and return the output port it exits at.
    pub fn eval(&self, input: usize) -> usize {
        match self {
            Benes::Single(cross) => {
                assert!(input < 2);
                if *cross {
                    input ^ 1
                } else {
                    input
                }
            }
            Benes::Rec {
                in_sw,
                top,
                bottom,
                out_sw,
                n,
            } => {
                assert!(input < *n);
                let s = input / 2;
                let pos = input % 2;
                let out_pos = if in_sw[s] { pos ^ 1 } else { pos };
                // Upper crossbar output feeds top subnet line s; lower
                // feeds bottom subnet line s.
                let (t, from_bottom) = if out_pos == 0 {
                    (top.eval(s), false)
                } else {
                    (bottom.eval(s), true)
                };
                // Output crossbar t: top subnet arrives at its upper
                // input, bottom at its lower input.
                let pos_in = if from_bottom { 1 } else { 0 };
                let pos_out = if out_sw[t] { pos_in ^ 1 } else { pos_in };
                2 * t + pos_out
            }
        }
    }

    /// Evaluate the whole permutation this configuration realises.
    pub fn permutation(&self) -> Vec<usize> {
        (0..self.size()).map(|i| self.eval(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn check(perm: Vec<usize>) {
        let b = Benes::route(&perm);
        assert_eq!(b.permutation(), perm);
    }

    #[test]
    fn identity_and_swap_size2() {
        check(vec![0, 1]);
        check(vec![1, 0]);
    }

    #[test]
    fn all_permutations_size4() {
        // Exhaustive over 4! = 24 permutations.
        let mut p = vec![0, 1, 2, 3];
        let mut perms = Vec::new();
        permute(&mut p, 0, &mut perms);
        assert_eq!(perms.len(), 24);
        for perm in perms {
            check(perm);
        }
    }

    fn permute(p: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
        if k == p.len() {
            out.push(p.clone());
            return;
        }
        for i in k..p.len() {
            p.swap(k, i);
            permute(p, k + 1, out);
            p.swap(k, i);
        }
    }

    #[test]
    fn all_permutations_size8_sampled_plus_structured() {
        check((0..8).collect()); // identity
        check((0..8).rev().collect()); // reversal
        check(vec![1, 0, 3, 2, 5, 4, 7, 6]); // neighbour swaps
        check(vec![4, 5, 6, 7, 0, 1, 2, 3]); // halves swap
    }

    #[test]
    fn random_permutations_large() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        for &n in &[8usize, 16, 32, 64, 128] {
            for _ in 0..20 {
                let mut perm: Vec<usize> = (0..n).collect();
                perm.shuffle(&mut rng);
                check(perm);
            }
        }
    }

    #[test]
    fn depth_and_switch_count() {
        let b = Benes::route(&(0..16).collect::<Vec<_>>());
        assert_eq!(b.size(), 16);
        assert_eq!(b.depth(), 2 * 4 - 1); // 2 log2(16) - 1 = 7
                                          // N/2 switches per column × depth columns: 8 × 7 = 56.
        assert_eq!(b.switch_count(), 56);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        Benes::route(&[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_duplicates() {
        Benes::route(&[0, 0, 1, 2]);
    }
}
