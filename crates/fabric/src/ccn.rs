//! The connection component network (CCN).
//!
//! §II-B: "The CCN realizes the connections of multiple sources by
//! merging them in a reversed tree rooted at an output ... the multiple
//! sources can share one multicast tree via the connections in the CCN.
//! However, ... sources to different multicast groups are never
//! connected in the switching fabric."
//!
//! Physically the CCN is a column of fan-in (merge) trees over adjacent
//! lines — it can merge any set of *contiguous* line runs, each run onto
//! its first line. The sandwich PN's job is exactly to make each group's
//! sources contiguous. This module is a cycle-accurate functional model:
//! configuration assigns a component id per line, evaluation maps an
//! input line to the output line its component is rooted at, with
//! structural checks that no two components overlap or interleave.

/// A configured CCN over `n` lines.
#[derive(Clone, Debug)]
pub struct ConnectionComponentNetwork {
    /// Component id per line (`None` = idle line, passed through).
    component: Vec<Option<usize>>,
    /// Root line (first line) per component id.
    root: Vec<usize>,
}

/// Errors rejected at configuration time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CcnError {
    /// A run referenced a line ≥ n or was empty.
    BadRun,
    /// Two runs claimed the same line (groups would be connected).
    Overlap { line: usize },
    /// A run was not contiguous (the PN must pre-sort lines).
    NotContiguous { component: usize },
}

impl ConnectionComponentNetwork {
    /// Configure merge components. `runs[k]` is the sorted list of lines
    /// belonging to component `k`; each run must be non-empty,
    /// contiguous, and disjoint from every other run.
    pub fn configure(n: usize, runs: &[Vec<usize>]) -> Result<Self, CcnError> {
        let mut component = vec![None; n];
        let mut root = Vec::with_capacity(runs.len());
        for (k, run) in runs.iter().enumerate() {
            if run.is_empty() || run.iter().any(|&l| l >= n) {
                return Err(CcnError::BadRun);
            }
            let lo = run[0];
            for (off, &l) in run.iter().enumerate() {
                if l != lo + off {
                    return Err(CcnError::NotContiguous { component: k });
                }
                if component[l].is_some() {
                    return Err(CcnError::Overlap { line: l });
                }
                component[l] = Some(k);
            }
            root.push(lo);
        }
        Ok(ConnectionComponentNetwork { component, root })
    }

    /// Number of lines.
    pub fn size(&self) -> usize {
        self.component.len()
    }

    /// Output line for a cell entering on `line`: the root of its merge
    /// component, or the line itself when idle (pass-through).
    pub fn eval(&self, line: usize) -> usize {
        match self.component[line] {
            Some(k) => self.root[k],
            None => line,
        }
    }

    /// Component id of `line`, if any.
    pub fn component_of(&self, line: usize) -> Option<usize> {
        self.component[line]
    }

    /// Gate-level depth of the merge trees: ⌈log₂(max run length)⌉
    /// levels of 2-input merge elements (0 when nothing merges).
    pub fn depth(&self) -> usize {
        let mut max_len = 1usize;
        for k in 0..self.root.len() {
            let len = self.component.iter().filter(|c| **c == Some(k)).count();
            max_len = max_len.max(len);
        }
        usize::BITS as usize - (max_len - 1).leading_zeros() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_runs_to_roots() {
        let c = ConnectionComponentNetwork::configure(8, &[vec![1, 2, 3], vec![5, 6]]).unwrap();
        assert_eq!(c.eval(1), 1);
        assert_eq!(c.eval(2), 1);
        assert_eq!(c.eval(3), 1);
        assert_eq!(c.eval(5), 5);
        assert_eq!(c.eval(6), 5);
        // Idle lines pass through.
        assert_eq!(c.eval(0), 0);
        assert_eq!(c.eval(4), 4);
        assert_eq!(c.eval(7), 7);
    }

    #[test]
    fn isolation_between_components() {
        let c = ConnectionComponentNetwork::configure(8, &[vec![0, 1], vec![2, 3]]).unwrap();
        assert_ne!(c.eval(0), c.eval(2));
        assert_ne!(c.component_of(1), c.component_of(2));
    }

    #[test]
    fn rejects_overlap() {
        let e = ConnectionComponentNetwork::configure(4, &[vec![0, 1], vec![1, 2]]);
        assert_eq!(e.unwrap_err(), CcnError::Overlap { line: 1 });
    }

    #[test]
    fn rejects_non_contiguous() {
        let e = ConnectionComponentNetwork::configure(4, &[vec![0, 2]]);
        assert_eq!(e.unwrap_err(), CcnError::NotContiguous { component: 0 });
    }

    #[test]
    fn rejects_bad_lines() {
        assert_eq!(
            ConnectionComponentNetwork::configure(4, &[vec![]]).unwrap_err(),
            CcnError::BadRun
        );
        assert_eq!(
            ConnectionComponentNetwork::configure(4, &[vec![4]]).unwrap_err(),
            CcnError::BadRun
        );
    }

    #[test]
    fn depth_is_log_of_longest_run() {
        let c =
            ConnectionComponentNetwork::configure(16, &[vec![0, 1, 2, 3, 4], vec![8, 9]]).unwrap();
        assert_eq!(c.depth(), 3); // ⌈log2 5⌉
        let solo = ConnectionComponentNetwork::configure(4, &[vec![2]]).unwrap();
        assert_eq!(solo.depth(), 0);
    }
}
