//! Property-based tests for the switching fabric.

use proptest::prelude::*;
use scmp_fabric::{Benes, GroupRequest, SandwichFabric};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Beneš realises every permutation it is given.
    #[test]
    fn benes_realises_any_permutation(k in 1u32..8, seed in any::<u64>()) {
        let n = 1usize << k;
        let mut perm: Vec<usize> = (0..n).collect();
        // Fisher–Yates with a splitmix-style stream derived from `seed`.
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let b = Benes::route(&perm);
        prop_assert_eq!(b.permutation(), perm);
        prop_assert_eq!(b.depth(), 2 * k as usize - 1);
    }

    /// Random many-to-many patterns: every source reaches its group's
    /// output, outputs of distinct groups differ, and the whole fabric
    /// mapping stays injective per active line.
    #[test]
    fn sandwich_many_to_many(k in 2u32..7, pattern in any::<u64>()) {
        let n = 1usize << k;
        // Derive a random grouping: each input joins group (h % (g+1)),
        // value g meaning idle.
        let g = (n / 2).max(1);
        let mut sources: Vec<Vec<usize>> = vec![Vec::new(); g];
        let mut state = pattern | 1;
        for port in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pick = (state >> 33) as usize % (g + 1);
            if pick < g {
                sources[pick].push(port);
            }
        }
        let groups: Vec<GroupRequest> = sources
            .into_iter()
            .filter(|s| !s.is_empty())
            .enumerate()
            .map(|(k, sources)| GroupRequest { sources, output: k })
            .collect();
        let f = SandwichFabric::configure(n, &groups).unwrap();
        for (k, gr) in groups.iter().enumerate() {
            for &s in &gr.sources {
                prop_assert_eq!(f.eval(s), gr.output, "group {} source {}", k, s);
                prop_assert_eq!(f.group_of_input(s), Some(k));
            }
            prop_assert_eq!(f.output_of_group(k), gr.output);
        }
        // Idle inputs never collide with a group output.
        let taken: Vec<usize> = groups.iter().map(|g| g.output).collect();
        for port in 0..n {
            if f.group_of_input(port).is_none() {
                prop_assert!(!taken.contains(&f.eval(port)));
            }
        }
    }
}
