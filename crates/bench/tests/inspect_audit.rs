//! `scmp-inspect --audit` exit-code contract: the process must exit
//! non-zero on EVERY hard violation class — duplicate delivery,
//! phantom delivery, unaccounted loss, disordered timestamps — and
//! zero on a clean trace. CI pipes the audit straight into shell `&&`
//! chains, so the exit code *is* the API.

use scmp_telemetry::{encode_events, Event, EventKind};
use std::process::Command;

fn run_audit(name: &str, events: &[Event]) -> (bool, String) {
    let dir = std::env::temp_dir().join("scmp-inspect-audit-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}.jsonl"));
    std::fs::write(&path, encode_events(events)).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_scmp-inspect"))
        .arg(&path)
        .arg("--audit")
        .output()
        .expect("run scmp-inspect");
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.success(), text)
}

fn ev(time: u64, node: u32, kind: EventKind) -> Event {
    Event { time, node, kind }
}

const G: u32 = 1;

/// A member that joins, a payload that reaches it: the audit baseline.
fn clean() -> Vec<Event> {
    vec![
        ev(0, 4, EventKind::Join { group: G }),
        ev(10, 1, EventKind::Send { group: G, tag: 7 }),
        ev(
            15,
            4,
            EventKind::DeliverLocal {
                group: G,
                tag: 7,
                delay: 5,
            },
        ),
    ]
}

#[test]
fn clean_trace_exits_zero() {
    let (ok, report) = run_audit("clean", &clean());
    assert!(ok, "clean trace must pass: {report}");
    assert!(report.contains("verdict=PASS"), "{report}");
}

#[test]
fn duplicate_delivery_exits_nonzero() {
    let mut events = clean();
    events.push(ev(
        16,
        4,
        EventKind::DeliverLocal {
            group: G,
            tag: 7,
            delay: 6,
        },
    ));
    let (ok, report) = run_audit("duplicate", &events);
    assert!(!ok, "duplicate delivery must fail the audit: {report}");
    assert!(report.contains("DUPLICATE"), "{report}");
}

#[test]
fn phantom_delivery_exits_nonzero() {
    let mut events = clean();
    events.push(ev(
        20,
        4,
        EventKind::DeliverLocal {
            group: G,
            tag: 99, // never sent
            delay: 1,
        },
    ));
    let (ok, report) = run_audit("phantom", &events);
    assert!(!ok, "phantom delivery must fail the audit: {report}");
    assert!(report.contains("PHANTOM"), "{report}");
}

#[test]
fn unaccounted_loss_exits_nonzero() {
    // The member never hears the payload, and there is no drop and no
    // fault anywhere in the trace to explain the loss.
    let events = vec![
        ev(0, 4, EventKind::Join { group: G }),
        ev(10, 1, EventKind::Send { group: G, tag: 7 }),
    ];
    let (ok, report) = run_audit("unaccounted", &events);
    assert!(!ok, "unaccounted loss must fail the audit: {report}");
    assert!(report.contains("UNACCOUNTED"), "{report}");
}

#[test]
fn disordered_timestamps_exit_nonzero() {
    let mut events = clean();
    // A fourth event earlier than the third: time ran backwards.
    events.push(ev(3, 2, EventKind::Timer { token: 1 }));
    let (ok, report) = run_audit("disordered", &events);
    assert!(!ok, "disordered timestamps must fail the audit: {report}");
    assert!(report.contains("DISORDERED"), "{report}");
}
