//! Criterion benchmarks of full protocol simulations: one Fig. 8 cell
//! (ARPANET, 6 members, 30 packets) per protocol, measuring simulator
//! throughput end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scmp_bench::netperf::{run_one, Protocol, TopologyKind};

fn bench_protocol_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol_simulation");
    g.sample_size(20);
    for proto in Protocol::ALL {
        g.bench_with_input(
            BenchmarkId::new("arpanet_g6", proto.label()),
            &proto,
            |b, &p| b.iter(|| run_one(TopologyKind::Arpanet, p, 6, 0).data_overhead),
        );
        g.bench_with_input(
            BenchmarkId::new("random50deg3_g20", proto.label()),
            &proto,
            |b, &p| b.iter(|| run_one(TopologyKind::Random50Deg3, p, 20, 0).data_overhead),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_protocol_runs);
criterion_main!(benches);
