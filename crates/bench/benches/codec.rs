//! Criterion benchmarks for the TREE-packet codec (§III-E): encoding and
//! decoding the recursive self-routing packet for trees of increasing
//! size and for the two degenerate shapes (chain and star).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scmp_core::TreePacket;
use scmp_net::NodeId;
use scmp_tree::MulticastTree;

fn chain(n: usize) -> MulticastTree {
    let mut t = MulticastTree::new(n, NodeId(0));
    for i in 1..n as u32 {
        t.attach(NodeId(i - 1), NodeId(i));
    }
    t
}

fn star(n: usize) -> MulticastTree {
    let mut t = MulticastTree::new(n, NodeId(0));
    for i in 1..n as u32 {
        t.attach(NodeId(0), NodeId(i));
    }
    t
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_packet");
    for (shape, make) in [
        ("chain", chain as fn(usize) -> MulticastTree),
        ("star", star),
    ] {
        for &n in &[16usize, 128, 512] {
            let tree = make(n);
            let pkt = TreePacket::from_tree(&tree, NodeId(0));
            g.bench_with_input(
                BenchmarkId::new(format!("encode_{shape}"), n),
                &pkt,
                |b, p| b.iter(|| p.encode_words().len()),
            );
            let words = pkt.encode_words();
            g.bench_with_input(
                BenchmarkId::new(format!("decode_{shape}"), n),
                &words,
                |b, w| b.iter(|| TreePacket::decode_words(w).unwrap().router_count()),
            );
            g.bench_with_input(
                BenchmarkId::new(format!("from_tree_{shape}"), n),
                &tree,
                |b, t| b.iter(|| TreePacket::from_tree(t, NodeId(0)).router_count()),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
