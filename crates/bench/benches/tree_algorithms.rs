//! Criterion microbenchmarks for the tree-construction algorithms
//! (Fig. 7's machinery): DCDM incremental joins, KMB, SPT, and the
//! all-pairs precomputation they depend on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::seq::SliceRandom;
use scmp_net::rng::rng_for;
use scmp_net::topology::{waxman, WaxmanConfig};
use scmp_net::{AllPairsPaths, NodeId, Topology};
use scmp_tree::{kmb_tree, spt_tree, Dcdm, DelayBound};

fn setup(n: usize, group: usize) -> (Topology, AllPairsPaths, Vec<NodeId>) {
    let mut rng = rng_for("bench-tree", n as u64);
    let topo = waxman(
        &WaxmanConfig {
            n,
            ..WaxmanConfig::default()
        },
        &mut rng,
    );
    let paths = AllPairsPaths::compute(&topo);
    let mut pool: Vec<NodeId> = topo.nodes().filter(|v| v.0 != 0).collect();
    pool.shuffle(&mut rng);
    pool.truncate(group);
    (topo, paths, pool)
}

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_construction");
    for &(n, gs) in &[(50usize, 20usize), (100, 50), (200, 80)] {
        let (topo, paths, members) = setup(n, gs);
        g.bench_with_input(
            BenchmarkId::new("dcdm", format!("n{n}_g{gs}")),
            &(),
            |b, _| {
                b.iter(|| {
                    let mut d = Dcdm::new(&topo, &paths, NodeId(0), DelayBound::Dynamic);
                    for &m in &members {
                        d.join(m);
                    }
                    d.into_tree().tree_cost(&topo)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("kmb", format!("n{n}_g{gs}")),
            &(),
            |b, _| b.iter(|| kmb_tree(&topo, &paths, NodeId(0), &members).tree_cost(&topo)),
        );
        g.bench_with_input(
            BenchmarkId::new("spt", format!("n{n}_g{gs}")),
            &(),
            |b, _| b.iter(|| spt_tree(&topo, &paths, NodeId(0), &members).tree_cost(&topo)),
        );
    }
    g.finish();
}

fn bench_all_pairs(c: &mut Criterion) {
    let mut g = c.benchmark_group("all_pairs_paths");
    for &n in &[50usize, 100, 200] {
        let mut rng = rng_for("bench-ap", n as u64);
        let topo = waxman(
            &WaxmanConfig {
                n,
                ..WaxmanConfig::default()
            },
            &mut rng,
        );
        g.bench_with_input(BenchmarkId::from_parameter(n), &topo, |b, t| {
            b.iter(|| AllPairsPaths::compute(t).node_count())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_construction, bench_all_pairs);
criterion_main!(benches);
