//! Criterion benchmarks for the switching fabric: Beneš routing
//! (the looping algorithm) and sandwich configuration at m-router
//! port counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scmp_fabric::{Benes, GroupRequest, SandwichFabric};

fn bench_benes(c: &mut Criterion) {
    let mut g = c.benchmark_group("benes_route");
    for &n in &[16usize, 64, 256, 1024] {
        // A fixed non-trivial permutation: rotate by n/3.
        let perm: Vec<usize> = (0..n).map(|i| (i + n / 3) % n).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &perm, |b, p| {
            b.iter(|| Benes::route(p).depth())
        });
    }
    g.finish();

    let mut g = c.benchmark_group("benes_eval");
    for &n in &[64usize, 1024] {
        let perm: Vec<usize> = (0..n).rev().collect();
        let net = Benes::route(&perm);
        g.bench_with_input(BenchmarkId::from_parameter(n), &net, |b, net| {
            b.iter(|| (0..net.size()).map(|i| net.eval(i)).sum::<usize>())
        });
    }
    g.finish();
}

fn bench_sandwich(c: &mut Criterion) {
    let mut g = c.benchmark_group("sandwich_configure");
    for &n in &[64usize, 256] {
        // n/4 groups of 2 sources each.
        let groups: Vec<GroupRequest> = (0..n / 4)
            .map(|k| GroupRequest {
                sources: vec![2 * k, 2 * k + 1],
                output: n - 1 - k,
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &groups, |b, gs| {
            b.iter(|| SandwichFabric::configure(n, gs).unwrap().depth())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_benes, bench_sandwich);
criterion_main!(benches);
