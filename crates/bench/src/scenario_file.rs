//! JSON scenario files: declarative SCMP simulations for the `scenario`
//! binary.
//!
//! A scenario file picks a topology, an m-router placement, an optional
//! link-capacity model, and a timeline of join/leave/send events; the
//! runner executes it on the full SCMP protocol and reports the §IV-B
//! metrics plus per-member delivery. Example:
//!
//! ```json
//! {
//!   "topology": { "kind": "waxman", "n": 50, "seed": 7 },
//!   "m_router": "rule1",
//!   "events": [
//!     { "time": 0,      "node": 4, "op": "join", "group": 1 },
//!     { "time": 1000,   "node": 9, "op": "join", "group": 1 },
//!     { "time": 500000, "node": 2, "op": "send", "group": 1, "tag": 1 }
//!   ]
//! }
//! ```

use scmp_core::placement;
use scmp_core::router::{ScmpConfig, ScmpDomain, ScmpRouter};
use scmp_net::rng::rng_for;
use scmp_net::topology::{arpanet, gt_itm_flat, waxman, GtItmConfig, WaxmanConfig};
use scmp_net::{AllPairsPaths, NodeId, Topology};
use scmp_sim::{AppEvent, CapacityModel, Engine, GroupId, SimStats};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Topology selection.
#[derive(Clone, Debug, Deserialize, Serialize)]
#[serde(tag = "kind", rename_all = "lowercase")]
pub enum TopologySpec {
    /// The paper's Waxman model.
    Waxman {
        /// Node count.
        n: usize,
        /// Generator seed.
        seed: u64,
    },
    /// GT-ITM-like flat random.
    Gtitm {
        /// Node count.
        n: usize,
        /// Target average degree.
        degree: f64,
        /// Generator seed.
        seed: u64,
    },
    /// The classic ARPANET map with seeded weights.
    Arpanet {
        /// Weight seed.
        seed: u64,
    },
    /// An explicit topology: `links[k] = [a, b, delay, cost]`.
    Custom {
        /// Node count.
        nodes: usize,
        /// Undirected links with weights.
        links: Vec<[u64; 4]>,
    },
}

impl TopologySpec {
    /// Materialise the topology.
    pub fn build(&self) -> Topology {
        match *self {
            TopologySpec::Waxman { n, seed } => waxman(
                &WaxmanConfig {
                    n,
                    min_delay_one: true,
                    ..WaxmanConfig::default()
                },
                &mut rng_for("scenario-waxman", seed),
            ),
            TopologySpec::Gtitm { n, degree, seed } => gt_itm_flat(
                &GtItmConfig {
                    n,
                    average_degree: degree,
                    grid: 32_767,
                },
                &mut rng_for("scenario-gtitm", seed),
            ),
            TopologySpec::Arpanet { seed } => arpanet(&mut rng_for("scenario-arpanet", seed)),
            TopologySpec::Custom { nodes, ref links } => {
                let mut b = scmp_net::TopologyBuilder::new(nodes);
                for &[a, bb, delay, cost] in links {
                    b.add_link(
                        NodeId(a as u32),
                        NodeId(bb as u32),
                        scmp_net::LinkWeight { delay, cost },
                    );
                }
                b.build()
            }
        }
    }
}

/// m-router placement: a fixed node id or one of the §IV-A rules.
#[derive(Clone, Debug, Deserialize, Serialize)]
#[serde(untagged)]
pub enum MRouterSpec {
    /// Explicit node id.
    Node(u32),
    /// Placement rule: `"rule1"`, `"rule2"`, `"rule3"`.
    Rule(String),
}

impl MRouterSpec {
    /// Resolve to a node.
    pub fn resolve(&self, topo: &Topology, paths: &AllPairsPaths) -> Result<NodeId, String> {
        match self {
            MRouterSpec::Node(v) => {
                let id = NodeId(*v);
                if id.index() < topo.node_count() {
                    Ok(id)
                } else {
                    Err(format!("m_router {v} out of range"))
                }
            }
            MRouterSpec::Rule(r) => match r.as_str() {
                "rule1" => Ok(placement::min_average_delay(topo, paths)),
                "rule2" => Ok(placement::max_degree(topo)),
                "rule3" => Ok(placement::diameter_midpoint(topo, paths)),
                other => Err(format!("unknown placement rule {other:?}")),
            },
        }
    }
}

/// One timeline event.
#[derive(Clone, Debug, Deserialize, Serialize)]
pub struct EventSpec {
    /// Absolute simulation time (ticks).
    pub time: u64,
    /// Router (DR) the event occurs at.
    pub node: u32,
    /// `"join"`, `"leave"` or `"send"`.
    pub op: String,
    /// Group id.
    pub group: u32,
    /// Payload tag (send only; defaults to an auto-increment).
    #[serde(default)]
    pub tag: Option<u64>,
}

/// Optional capacity model.
#[derive(Clone, Debug, Deserialize, Serialize)]
pub struct CapacitySpec {
    /// Per-packet serialisation time.
    pub link_tx: u64,
    /// Queue slots per link direction.
    pub queue_limit: u64,
    /// Give the m-router faster ports.
    #[serde(default)]
    pub m_router_tx: Option<u64>,
}

/// A complete scenario file.
#[derive(Clone, Debug, Deserialize, Serialize)]
pub struct ScenarioFile {
    /// Topology to simulate.
    pub topology: TopologySpec,
    /// m-router placement.
    pub m_router: MRouterSpec,
    /// Timeline.
    pub events: Vec<EventSpec>,
    /// Optional finite link capacities.
    #[serde(default)]
    pub capacity: Option<CapacitySpec>,
}

/// Result summary the runner prints as JSON.
#[derive(Clone, Debug, Serialize)]
pub struct ScenarioResult {
    /// Resolved m-router node.
    pub m_router: u32,
    /// §IV-B metrics.
    pub data_overhead: u64,
    pub protocol_overhead: u64,
    pub max_end_to_end_delay: u64,
    pub drops: u64,
    pub queue_drops: u64,
    /// Per (group, tag): how many routers' subnets received it.
    pub deliveries: Vec<DeliveryLine>,
}

/// Delivery record for one payload.
#[derive(Clone, Debug, Serialize)]
pub struct DeliveryLine {
    pub group: u32,
    pub tag: u64,
    pub receivers: usize,
}

/// Parse and run a scenario, returning the summary.
pub fn run_scenario(json: &str) -> Result<ScenarioResult, String> {
    let spec: ScenarioFile = serde_json::from_str(json).map_err(|e| e.to_string())?;
    let topo = spec.topology.build();
    let paths = AllPairsPaths::compute(&topo);
    let m_router = spec.m_router.resolve(&topo, &paths)?;
    for ev in &spec.events {
        if ev.node as usize >= topo.node_count() {
            return Err(format!("event node {} out of range", ev.node));
        }
        if !matches!(ev.op.as_str(), "join" | "leave" | "send") {
            return Err(format!("unknown op {:?}", ev.op));
        }
    }

    let domain = ScmpDomain::new(topo.clone(), ScmpConfig::new(m_router));
    let mut engine = Engine::new(topo.clone(), move |me, _, _| {
        ScmpRouter::new(me, Arc::clone(&domain))
    });
    if let Some(cap) = &spec.capacity {
        let mut model = CapacityModel::uniform(cap.link_tx, cap.queue_limit);
        if let Some(tx) = cap.m_router_tx {
            model = model.with_node_tx(m_router, tx);
        }
        engine.set_capacity(model);
    }

    let mut auto_tag = 0u64;
    let mut sent: Vec<(GroupId, u64)> = Vec::new();
    for ev in &spec.events {
        let group = GroupId(ev.group);
        let app = match ev.op.as_str() {
            "join" => AppEvent::Join(group),
            "leave" => AppEvent::Leave(group),
            "send" => {
                let tag = ev.tag.unwrap_or_else(|| {
                    auto_tag += 1;
                    auto_tag | 1 << 32 // auto tags never collide with explicit small tags
                });
                sent.push((group, tag));
                AppEvent::Send { group, tag }
            }
            _ => unreachable!("validated above"),
        };
        engine.schedule_app(ev.time, NodeId(ev.node), app);
    }
    engine.run_to_quiescence();

    let stats: &SimStats = engine.stats();
    let deliveries = sent
        .iter()
        .map(|&(g, tag)| DeliveryLine {
            group: g.0,
            tag,
            receivers: topo
                .nodes()
                .filter(|&v| stats.delivery_count(g, tag, v) > 0)
                .count(),
        })
        .collect();
    Ok(ScenarioResult {
        m_router: m_router.0,
        data_overhead: stats.data_overhead,
        protocol_overhead: stats.protocol_overhead,
        max_end_to_end_delay: stats.max_end_to_end_delay,
        drops: stats.drops,
        queue_drops: stats.queue_drops,
        deliveries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASIC: &str = r#"{
        "topology": { "kind": "arpanet", "seed": 1 },
        "m_router": "rule1",
        "events": [
            { "time": 0,      "node": 4,  "op": "join", "group": 1 },
            { "time": 1000,   "node": 9,  "op": "join", "group": 1 },
            { "time": 500000, "node": 15, "op": "send", "group": 1, "tag": 1 }
        ]
    }"#;

    #[test]
    fn basic_scenario_runs() {
        let r = run_scenario(BASIC).unwrap();
        assert_eq!(r.deliveries.len(), 1);
        assert_eq!(r.deliveries[0].receivers, 2, "both members heard tag 1");
        assert!(r.data_overhead > 0);
        assert!(r.protocol_overhead > 0);
    }

    #[test]
    fn fixed_m_router_and_leave() {
        let json = r#"{
            "topology": { "kind": "waxman", "n": 20, "seed": 3 },
            "m_router": 0,
            "events": [
                { "time": 0,      "node": 5, "op": "join",  "group": 2 },
                { "time": 100000, "node": 5, "op": "leave", "group": 2 },
                { "time": 600000, "node": 7, "op": "send",  "group": 2 }
            ]
        }"#;
        let r = run_scenario(json).unwrap();
        assert_eq!(r.m_router, 0);
        assert_eq!(r.deliveries[0].receivers, 0, "member left before the send");
    }

    #[test]
    fn capacity_section_applies() {
        let json = r#"{
            "topology": { "kind": "arpanet", "seed": 1 },
            "m_router": "rule2",
            "capacity": { "link_tx": 10, "queue_limit": 4, "m_router_tx": 1 },
            "events": [
                { "time": 0,     "node": 4,  "op": "join", "group": 1 },
                { "time": 50000, "node": 15, "op": "send", "group": 1 }
            ]
        }"#;
        let r = run_scenario(json).unwrap();
        assert_eq!(r.deliveries[0].receivers, 1);
    }

    #[test]
    fn errors_are_reported() {
        assert!(run_scenario("{").is_err());
        let bad_node = BASIC.replace("\"node\": 4", "\"node\": 99");
        assert!(run_scenario(&bad_node).unwrap_err().contains("out of range"));
        let bad_op = BASIC.replace("\"op\": \"send\"", "\"op\": \"explode\"");
        assert!(run_scenario(&bad_op).unwrap_err().contains("unknown op"));
        let bad_rule = BASIC.replace("\"rule1\"", "\"rule9\"");
        assert!(run_scenario(&bad_rule).unwrap_err().contains("placement rule"));
    }

    #[test]
    fn custom_topology() {
        // The paper's Fig. 5 expressed inline.
        let json = r#"{
            "topology": { "kind": "custom", "nodes": 6, "links": [
                [0,1,3,6],[0,2,4,5],[0,3,2,6],[1,2,3,2],[1,4,9,3],[2,3,4,1],[2,5,7,2]
            ]},
            "m_router": 0,
            "events": [
                { "time": 0,     "node": 4, "op": "join", "group": 1 },
                { "time": 100,   "node": 3, "op": "join", "group": 1 },
                { "time": 200,   "node": 5, "op": "join", "group": 1 },
                { "time": 10000, "node": 4, "op": "send", "group": 1, "tag": 1 }
            ]
        }"#;
        let r = run_scenario(json).unwrap();
        assert_eq!(r.deliveries[0].receivers, 3);
        // The Fig. 5(d) tree costs 17; one on-tree send = 17 data units
        // plus the per-hop copies... data overhead equals the tree cost
        // because the source is a member and every tree edge carries the
        // packet exactly once.
        assert_eq!(r.data_overhead, 17);
    }

    #[test]
    fn deterministic() {
        let a = run_scenario(BASIC).unwrap();
        let b = run_scenario(BASIC).unwrap();
        assert_eq!(a.data_overhead, b.data_overhead);
        assert_eq!(a.max_end_to_end_delay, b.max_end_to_end_delay);
    }
}
